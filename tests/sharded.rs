//! Integration suite for the sharded cluster engine (ISSUE 7).
//!
//! A [`ClusterSim`] partitions a 64–128-GPU fleet into node-group shards
//! under the conservative parallel engine. The contract pinned here:
//!
//! * **functional** — every admitted invocation terminates, every completed
//!   one answers its admitting gateway, remote routing actually happens;
//! * **determinism across thread counts** — the same seed produces
//!   byte-identical merged metrics CSV and merged recovery log whether the
//!   groups run inline or on 2 or 8 worker threads (the hard requirement
//!   of DESIGN.md §5.7);
//! * **chaos** — the PR 5 recovery contract (termination, no leaks,
//!   replayability) holds per group when randomized fault plans run inside
//!   a sharded cluster.

use grouter::runtime::cluster::ClusterSim;
use grouter::runtime::simple_plane::LocalityPlane;
use grouter::sim::fault::{CtlFaultConfig, FaultDomain, FaultPlan, FaultPlanConfig};
use grouter::sim::time::SimDuration;
use grouter_ctl::{ServiceConfig, ServiceSim};
use grouter_runtime::cluster::GroupSetup;
use grouter_workloads::azure::ArrivalPattern;
use grouter_workloads::cluster::{group_setups, ClusterPreset};

const SEED: u64 = 4242;

/// A reduced fleet (4 V100 groups, 32 GPUs) the suite can run in seconds.
fn small_preset() -> ClusterPreset {
    let mut p = ClusterPreset::uniform_64();
    p.groups.truncate(4);
    p
}

fn setups(per_group: u64, faults: bool) -> Vec<GroupSetup> {
    let preset = small_preset();
    let mut setups = group_setups(
        &preset,
        ArrivalPattern::Sporadic,
        400.0,
        per_group,
        SEED,
        |_| Box::new(LocalityPlane::new()),
    );
    if faults {
        for (g, setup) in setups.iter_mut().enumerate() {
            let domain = FaultDomain {
                gpus: setup.topo.gpus_per_node * setup.nodes,
                nodes: setup.nodes,
                nics_per_node: setup.topo.nics.len(),
                links: Vec::new(),
            };
            setup.fault_plans = vec![FaultPlan::randomized(
                SEED ^ (g as u64).wrapping_mul(0x9E37_79B9),
                &domain,
                &FaultPlanConfig {
                    horizon: SimDuration::from_secs(2),
                    faults: 4,
                    ..FaultPlanConfig::default()
                },
            )];
        }
    }
    setups
}

/// Functional contract: the cluster drains, every completion answers its
/// gateway, and locality routing leaves real cross-group traffic.
#[test]
fn cluster_completes_and_routes_cross_group() {
    let mut sim = ClusterSim::new(SEED, setups(1_500, false));
    let stats = sim.run(1);
    assert!(stats.epochs > 0);
    assert!(stats.messages > 0, "locality < 1 must produce envelopes");
    let total = 4 * 1_500;
    assert_eq!(sim.arrivals(), total);
    assert_eq!(sim.completed() as u64 + sim.failed(), total);
    assert_eq!(sim.failed(), 0, "fault-free run must not fail requests");
    assert_eq!(
        sim.responses(),
        sim.completed() as u64,
        "every completed invocation answers its admitting gateway"
    );
    let remote: u64 = (0..sim.groups()).map(|g| sim.port(g).remote_in).sum();
    assert!(remote > 0, "0.9 locality must forward some invocations");
    for g in 0..sim.groups() {
        let w = sim.world(g);
        assert!(w.quiescent(), "group {g} did not drain");
        assert!(w.store.is_empty(), "group {g} leaked objects");
    }
}

/// The hard requirement: same seed ⇒ byte-identical merged metrics CSV and
/// recovery log for 1, 2 and 8 worker threads, fault plans included.
#[test]
fn thread_count_never_changes_merged_outputs() {
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut sim = ClusterSim::new(SEED, setups(800, true));
        sim.run(threads);
        runs.push((threads, sim.merged_csv(), sim.merged_recovery_log()));
    }
    let (_, csv0, rec0) = &runs[0];
    assert!(!csv0.is_empty() && csv0.lines().count() > 1);
    assert!(!rec0.is_empty(), "fault plans must leave a recovery log");
    for (threads, csv, rec) in &runs[1..] {
        assert_eq!(csv, csv0, "metrics CSV diverged at {threads} threads");
        assert_eq!(rec, rec0, "recovery log diverged at {threads} threads");
    }
}

/// Chaos inside the sharded engine: the PR 5 recovery contract holds per
/// group, and the run still drains globally.
#[test]
fn sharded_chaos_preserves_recovery_contract() {
    let mut sim = ClusterSim::new(SEED, setups(800, true));
    sim.run(2);
    let total = 4 * 800;
    assert_eq!(sim.arrivals(), total);
    assert_eq!(
        sim.completed() as u64 + sim.failed(),
        total,
        "every arrival must terminate under faults"
    );
    assert_eq!(sim.responses(), sim.completed() as u64);
    for g in 0..sim.groups() {
        let w = sim.world(g);
        assert!(w.quiescent(), "group {g} did not drain");
        assert!(w.ledgers_idle(), "group {g} leaked NVLink bandwidth");
        assert!(w.store.is_empty(), "group {g} leaked objects");
        for (idx, pool) in w.pools.iter().enumerate() {
            assert!(
                pool.used() == 0.0 && pool.runtime_used() == 0.0,
                "group {g} pool {idx} leaked"
            );
        }
    }
}

/// Service mode under the same hard requirement: the heartbeat-view router
/// at the gateway plus randomized control-plane faults, and still the same
/// seed ⇒ byte-identical merged metrics CSV, admission log, *and* recovery
/// log on 1, 2 and 8 worker threads.
#[test]
fn service_mode_thread_count_never_changes_outputs() {
    let cfg = ServiceConfig {
        total: 2_000,
        seed: SEED,
        ctl_faults: Some(CtlFaultConfig::default()),
        ..ServiceConfig::default()
    };
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut svc = ServiceSim::build(&small_preset(), &cfg);
        svc.run(threads);
        runs.push((
            threads,
            svc.merged_csv(),
            svc.admission_log(),
            svc.merged_recovery_log(),
        ));
    }
    let (_, csv0, adm0, rec0) = &runs[0];
    assert!(csv0.lines().count() > 1, "service run produced no records");
    assert_eq!(
        adm0.lines().count(),
        2_000,
        "router must log every admission"
    );
    assert!(!rec0.is_empty(), "ctl fault plan must leave a recovery log");
    for (threads, csv, adm, rec) in &runs[1..] {
        assert_eq!(csv, csv0, "service CSV diverged at {threads} threads");
        assert_eq!(adm, adm0, "admission log diverged at {threads} threads");
        assert_eq!(rec, rec0, "recovery log diverged at {threads} threads");
    }
}

/// Heterogeneous preset sanity: V100 and A100 groups coexist, each with
/// its own GPU-tuned registry, and the cluster still drains.
#[test]
fn heterogeneous_cluster_drains() {
    let mut preset = ClusterPreset::hetero_64();
    preset.groups.truncate(4);
    let mut sim = ClusterSim::new(
        SEED,
        group_setups(&preset, ArrivalPattern::Sporadic, 300.0, 600, SEED, |_| {
            Box::new(LocalityPlane::new())
        }),
    );
    sim.run(2);
    assert_eq!(sim.completed() as u64 + sim.failed(), 4 * 600);
    assert_eq!(sim.responses(), sim.completed() as u64);
}
