//! Observability acceptance tests (ISSUE 5): the virtual-time trace is
//! byte-deterministic across identical runs, exports valid Chrome
//! trace_event JSON, and records the plane-level decisions (route-GPU
//! selection, `Rate_least` clamps) a cross-node transfer must take.

use std::sync::Arc;

use grouter::runtime::dataplane::Destination;
use grouter::runtime::placement::PlacementPolicy;
use grouter::runtime::spec::{StageSpec, WorkflowSpec};
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::{presets, GpuRef};
use grouter::{GrouterConfig, GrouterPlane};
use grouter_obs::export::validate_json;
use grouter_obs::Comp;
use grouter_workloads::azure::{generate_trace, ArrivalPattern};

/// A two-stage pipeline pinned across nodes: the producer runs on
/// node 0 / GPU 0 and the consumer on node 1 / GPU 3, so the consumer's
/// `Get` is a cross-node GPU-to-GPU transfer (Fig. 13(c) shape).
fn cross_node_spec() -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("xnode-trace", 16e6);
    let a = wf.push(StageSpec::gpu(
        "produce",
        vec![],
        SimDuration::from_millis(2),
        64e6,
        1e9,
    ));
    wf.push(StageSpec::gpu(
        "consume",
        vec![a],
        SimDuration::from_millis(2),
        1e6,
        1e9,
    ));
    Arc::new(wf.with_slo(SimDuration::from_millis(200)))
}

fn traced_cross_node_run(seed: u64) -> Runtime {
    let pin = PlacementPolicy::Pinned(vec![
        Destination::Gpu(GpuRef::new(0, 0)),
        Destination::Gpu(GpuRef::new(1, 3)),
    ]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0, 1],
        trace: true,
        ..Default::default()
    };
    let mut rt = Runtime::new(
        presets::dgx_v100(),
        2,
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        cfg,
    );
    let spec = cross_node_spec();
    let mut rng = DetRng::new(seed);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        4.0,
        SimDuration::from_secs(2),
        &mut rng,
    ) {
        rt.submit(spec.clone(), t);
    }
    rt.run();
    rt
}

/// Same seed, same workload → the Chrome export must be byte-identical,
/// and it must be syntactically valid JSON a trace viewer can load.
#[test]
fn trace_export_is_deterministic_and_valid_json() {
    let a = traced_cross_node_run(7).recorder().snapshot().chrome_json();
    let b = traced_cross_node_run(7).recorder().snapshot().chrome_json();
    assert!(!a.is_empty(), "traced run must produce events");
    assert_eq!(a, b, "same-seed trace exports diverged");
    validate_json(&a).expect("chrome export must be valid JSON");
}

/// The acceptance query of ISSUE 5: a cross-node transfer must leave
/// route-GPU-selection and rate-clamp events in the trace.
#[test]
fn cross_node_transfer_emits_route_and_clamp_events() {
    let rt = traced_cross_node_run(11);
    let trace = rt.recorder().snapshot();

    let routes = trace.events_named("route_gpu");
    assert!(
        !routes.is_empty(),
        "cross-node Get must record a route-GPU selection"
    );
    for e in &routes {
        assert_eq!(e.comp, Comp::Plane);
        let src_node = e.args.iter().find(|(k, _)| *k == "src_node");
        let dst_node = e.args.iter().find(|(k, _)| *k == "dst_node");
        assert!(
            src_node.is_some() && dst_node.is_some(),
            "route_gpu must carry endpoint coordinates: {e:?}"
        );
    }

    let clamps = trace.events_named("rate_clamp");
    assert!(
        !clamps.is_empty(),
        "SLO'd cross-node transfer must record a Rate_least clamp"
    );
    assert_eq!(
        trace.counter(Comp::Plane, "rate_clamps"),
        clamps.len() as u64,
        "clamp counter must agree with the event stream"
    );
    assert!(
        trace.counter(Comp::Plane, "route_gpu_selections") >= routes.len() as u64,
        "selection counter must cover the retained events"
    );

    // The clamp's flow-correlation id links it back to the rate-controller
    // registration, so per-flow queries can find it.
    let flow = clamps[0].ids.flow.expect("rate_clamp carries a flow id");
    assert!(
        trace
            .events_for_flow(flow)
            .iter()
            .any(|e| e.name == "rate_clamp"),
        "per-flow query must surface the clamp"
    );
}

/// Transfer legs appear as spans that overlap the mid-run window, and the
/// runtime op spans nest around them in virtual time.
#[test]
fn transfer_legs_are_queryable_as_spans() {
    let rt = traced_cross_node_run(3);
    let trace = rt.recorder().snapshot();
    let horizon = trace.events.last().map_or(0, |e| e.t_ns);
    let spans = trace.spans_overlapping(0, horizon);
    assert!(
        spans.iter().any(|s| s.begin.comp == Comp::Transfer),
        "transfer legs must be visible to the span query"
    );
    assert!(
        spans.iter().any(|s| s.begin.comp == Comp::Runtime),
        "runtime ops must be visible to the span query"
    );
}

/// Tracing must observe, never steer: the same run with the recorder off
/// produces identical metrics.
#[test]
fn tracing_does_not_change_the_simulation() {
    let traced = traced_cross_node_run(5);
    let pin = PlacementPolicy::Pinned(vec![
        Destination::Gpu(GpuRef::new(0, 0)),
        Destination::Gpu(GpuRef::new(1, 3)),
    ]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0, 1],
        trace: false,
        ..Default::default()
    };
    let mut rt = Runtime::new(
        presets::dgx_v100(),
        2,
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        cfg,
    );
    let spec = cross_node_spec();
    let mut rng = DetRng::new(5);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        4.0,
        SimDuration::from_secs(2),
        &mut rng,
    ) {
        rt.submit(spec.clone(), t);
    }
    rt.run();
    assert_eq!(rt.metrics().arrivals, traced.metrics().arrivals);
    assert_eq!(rt.metrics().completed(), traced.metrics().completed());
    assert_eq!(
        rt.metrics().latency_ms(None).p99(),
        traced.metrics().latency_ms(None).p99(),
        "tracing changed request latencies"
    );
}
