//! Whole-system integration: every workflow × every plane × every testbed
//! completes, leaves no residue, and preserves the paper's ordering.

use grouter::runtime::metrics::PassCategory;
use grouter::topology::presets;
use grouter_integration_tests::{all_planes, run_bursty};
use grouter_workloads::apps::{suite, WorkloadParams};
use grouter_workloads::models::GpuClass;

#[test]
fn every_workflow_completes_on_every_plane() {
    let params = WorkloadParams {
        batch: 4,
        gpu: GpuClass::V100,
    };
    for spec in suite(params) {
        for plane in all_planes(5) {
            let label = plane.name();
            let rt = run_bursty(presets::dgx_v100(), 1, plane, spec.clone(), 3.0, 4, 9);
            let m = rt.metrics();
            assert_eq!(
                m.completed() as u64,
                m.arrivals,
                "{label}/{}: {} of {} completed",
                spec.name,
                m.completed(),
                m.arrivals
            );
            assert!(rt.world().quiescent(), "{label}/{}: residue", spec.name);
            // Latency is at least the compute floor for every record.
            for rec in m.records() {
                assert!(
                    rec.latency() >= rec.compute || rec.compute > rec.latency(),
                    "sanity"
                );
                assert!(rec.latency().as_nanos() > 0);
            }
        }
    }
}

#[test]
fn every_testbed_runs_the_traffic_workflow() {
    for (spec, gpu) in [
        (presets::dgx_v100(), GpuClass::V100),
        (presets::dgx_a100(), GpuClass::A100),
        (presets::a10x4(), GpuClass::A10),
        (presets::h800x8(), GpuClass::H800),
    ] {
        let params = WorkloadParams { batch: 4, gpu };
        let wf = grouter_workloads::apps::traffic(params);
        for plane in all_planes(3) {
            let label = plane.name();
            // High enough rate that the bursty trace always produces
            // arrivals inside the short test horizon.
            let rt = run_bursty(spec.clone(), 1, plane, wf.clone(), 10.0, 4, 1);
            assert!(rt.metrics().completed() > 0, "{label} on {:?}", spec.kind);
            assert!(rt.world().quiescent());
        }
    }
}

#[test]
fn grouter_never_loses_to_host_centric_on_data_passing() {
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    for spec in suite(params) {
        let mut passing = Vec::new();
        for plane in all_planes(7) {
            let rt = run_bursty(presets::dgx_v100(), 1, plane, spec.clone(), 2.0, 4, 3);
            passing.push(rt.metrics().passing_ms(None).mean());
        }
        // planes order: INFless+, NVSHMEM+, DeepPlan+, GROUTER
        assert!(
            passing[3] <= passing[0],
            "{}: GROUTER {} vs INFless+ {}",
            spec.name,
            passing[3],
            passing[0]
        );
        assert!(
            passing[3] <= passing[1] * 1.05,
            "{}: GROUTER {} vs NVSHMEM+ {}",
            spec.name,
            passing[3],
            passing[1]
        );
    }
}

#[test]
fn multi_node_cluster_distributes_and_completes() {
    let params = WorkloadParams {
        batch: 4,
        gpu: GpuClass::V100,
    };
    let spec = grouter_workloads::apps::video(params);
    for plane in all_planes(11) {
        let label = plane.name();
        let rt = run_bursty(presets::dgx_v100(), 3, plane, spec.clone(), 4.0, 4, 13);
        assert_eq!(
            rt.metrics().completed() as u64,
            rt.metrics().arrivals,
            "{label}"
        );
        assert!(rt.world().quiescent(), "{label}");
    }
}

#[test]
fn runs_are_bit_deterministic() {
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    let spec = grouter_workloads::apps::traffic(params);
    let collect = || {
        let plane = Box::new(grouter::GrouterPlane::new(grouter::GrouterConfig::full()));
        let rt = run_bursty(presets::dgx_v100(), 1, plane, spec.clone(), 5.0, 5, 99);
        rt.metrics()
            .records()
            .iter()
            .map(|r| (r.arrived.as_nanos(), r.completed.as_nanos()))
            .collect::<Vec<_>>()
    };
    assert_eq!(collect(), collect());
}

#[test]
fn cfn_cfn_passing_is_negligible() {
    // Paper §2.2: cFn–cFn via shared memory is negligible overhead.
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    let spec = grouter_workloads::apps::image(params);
    for plane in all_planes(17) {
        let rt = run_bursty(presets::dgx_v100(), 1, plane, spec.clone(), 2.0, 4, 5);
        for rec in rt.metrics().records() {
            let hh = rec.passing_of(PassCategory::HostHost).as_millis_f64();
            assert!(hh < 5.0, "cFn-cFn took {hh} ms");
        }
    }
}

#[test]
fn degradation_with_flows_in_flight_does_not_strand_them() {
    // Regression test for the stale-wake hazard: degrade a link while a
    // large transfer is actively using it; the transfer must still finish.
    use grouter::runtime::dataplane::Destination;
    use grouter::runtime::placement::PlacementPolicy;
    use grouter::runtime::spec::{StageSpec, WorkflowSpec};
    use grouter::sim::time::{SimDuration, SimTime};
    use grouter::topology::GpuRef;
    use std::sync::Arc;

    let mut wf = WorkflowSpec::new("bigegress", 1e6);
    wf.push(StageSpec::gpu(
        "render",
        vec![],
        SimDuration::from_millis(1),
        480e6, // ~10 ms on one 48 GB/s path, far longer once degraded
        1e9,
    ));
    let pin = PlacementPolicy::Pinned(vec![Destination::Gpu(GpuRef::new(0, 0))]);
    let cfg = grouter::runtime::world::RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0],
        ..Default::default()
    };
    let mut rt = grouter::runtime::Runtime::new(
        presets::dgx_v100(),
        1,
        Box::new(grouter::GrouterPlane::new(grouter::GrouterConfig::full())),
        cfg,
    );
    rt.submit(Arc::new(wf), SimTime::ZERO);
    // Stop in the middle of the egress transfer.
    rt.run_until(SimTime(5_000_000));
    assert!(
        rt.world().net.num_flows() > 0,
        "test setup: a flow must be in flight"
    );
    // Every PCIe uplink collapses to 5% capacity.
    for uplink in rt.world().topo.uplink_links(0) {
        let cap = rt.world().net.link_capacity(uplink);
        rt.set_link_capacity(uplink, cap * 0.05);
    }
    rt.run();
    assert_eq!(rt.metrics().completed(), 1, "transfer stranded");
    let lat = rt.metrics().records()[0].latency();
    assert!(
        lat > SimDuration::from_millis(50),
        "degradation should visibly slow the transfer, got {lat}"
    );
    assert!(rt.world().quiescent());
}

#[test]
fn workloads_survive_mid_run_link_degradation() {
    // Failure injection: halfway through a bursty run, the busiest PCIe
    // uplink and a double NVLink drop to 10% capacity. Everything must
    // still complete (slower), and the ledgers must stay clean.
    use grouter::sim::time::SimTime;
    use grouter_workloads::apps::{traffic, WorkloadParams};
    use grouter_workloads::models::GpuClass;

    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    let spec = traffic(params);
    for plane in all_planes(31) {
        let label = plane.name();
        let mut rt = grouter::runtime::Runtime::new(
            presets::dgx_v100(),
            1,
            plane,
            grouter::runtime::world::RuntimeConfig::default(),
        );
        let mut rng = grouter::sim::rng::DetRng::new(41);
        for t in grouter_workloads::azure::generate_trace(
            grouter_workloads::azure::ArrivalPattern::Bursty,
            8.0,
            grouter::sim::time::SimDuration::from_secs(8),
            &mut rng,
        ) {
            rt.submit(spec.clone(), t);
        }
        // Run half the horizon, then degrade links under live traffic.
        rt.run_until(SimTime(4_000_000_000));
        let uplink = rt.world().topo.uplink_links(0)[0];
        let cap = rt.world().net.link_capacity(uplink);
        rt.set_link_capacity(uplink, cap * 0.1);
        rt.run();
        let m = rt.metrics();
        assert_eq!(m.completed() as u64, m.arrivals, "{label}: lost requests");
        assert!(rt.world().quiescent(), "{label}: residue");
        assert!(rt.world().ledgers_idle(), "{label}: reservation leak");
    }
}

/// Build the diamond DAG (s0 → {s1, s2} → s3) pinned to four distinct GPUs
/// so the producer's output must cross NVLink to both consumers, with a
/// scripted fault plan installed before the run.
fn diamond_with_faults(plan: grouter::sim::fault::FaultPlan) -> grouter::runtime::Runtime {
    use std::sync::Arc;

    use grouter::runtime::dataplane::Destination;
    use grouter::runtime::spec::{StageSpec, WorkflowSpec};
    use grouter::runtime::PlacementPolicy;
    use grouter::sim::time::{SimDuration, SimTime};
    use grouter::topology::GpuRef;
    use grouter::{GrouterConfig, GrouterPlane};

    let mut wf = WorkflowSpec::new("diamond", 16e6);
    let s0 = wf.push(StageSpec::gpu(
        "s0",
        vec![],
        SimDuration::from_millis(4),
        512e6,
        2e9,
    ));
    let s1 = wf.push(StageSpec::gpu(
        "s1",
        vec![s0],
        SimDuration::from_millis(3),
        32e6,
        2e9,
    ));
    let s2 = wf.push(StageSpec::gpu(
        "s2",
        vec![s0],
        SimDuration::from_millis(3),
        32e6,
        2e9,
    ));
    wf.push(StageSpec::gpu(
        "s3",
        vec![s1, s2],
        SimDuration::from_millis(2),
        8e6,
        2e9,
    ));
    let config = grouter::runtime::world::RuntimeConfig {
        placement: PlacementPolicy::Pinned(vec![
            Destination::Gpu(GpuRef::new(0, 0)),
            Destination::Gpu(GpuRef::new(0, 1)),
            Destination::Gpu(GpuRef::new(0, 2)),
            Destination::Gpu(GpuRef::new(0, 3)),
        ]),
        ..Default::default()
    };
    let mut rt = grouter::runtime::Runtime::new(
        presets::dgx_v100(),
        1,
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        config,
    );
    rt.submit(Arc::new(wf), SimTime::ZERO);
    rt.install_fault_plan(&plan);
    rt.run();
    rt
}

#[test]
fn diamond_dag_replays_lineage_after_producer_gpu_failure() {
    // Kill the producer GPU while its 512 MB output is mid-transfer to both
    // consumers: the object is purged with pending claims, so recovery must
    // re-execute s0 on a healthy GPU (lineage) and the instance must still
    // complete — never stall, never silently drop.
    use grouter::runtime::RecoveryEvent;
    use grouter::sim::fault::{FaultEvent, FaultKind, FaultPlan};
    use grouter::sim::time::{SimDuration, SimTime};

    let rt = diamond_with_faults(FaultPlan::scripted(vec![FaultEvent {
        at: SimTime::ZERO + SimDuration::from_millis(7),
        kind: FaultKind::GpuFail { gpu: 0 },
    }]));
    let m = rt.metrics();
    assert_eq!(
        m.completed(),
        1,
        "instance must complete via lineage replay"
    );
    assert_eq!(
        m.failed, 0,
        "no typed failure expected: lineage can recover"
    );
    let log = &rt.world().recovery_log();
    assert!(
        log.iter()
            .any(|(_, e)| matches!(e, RecoveryEvent::GpuFailed { gpu: 0, .. })),
        "log must record the absorbed GPU failure: {log:?}"
    );
    assert!(
        log.iter()
            .any(|(_, e)| matches!(e, RecoveryEvent::StageRestarted { stage: 0, .. })),
        "producer must be re-executed from lineage: {log:?}"
    );
    assert!(rt.world().quiescent(), "residue after recovery");
    assert!(rt.world().ledgers_idle(), "reservation leak after recovery");
    assert!(rt.world().store.is_empty(), "object leak after recovery");
}

#[test]
fn diamond_dag_route_loss_reissues_transfers_under_recovery_category() {
    // The producer GPU's NVLink ports die mid-transfer but its memory
    // survives: in-flight transfers are cancelled and re-issued over the
    // degraded matrix (gFn–host PCIe fallback), and the re-issued passing
    // time lands in `PassCategory::Recovery` so the paper-figure categories
    // stay failure-free.
    use grouter::runtime::RecoveryEvent;
    use grouter::sim::fault::{FaultEvent, FaultKind, FaultPlan};
    use grouter::sim::time::{SimDuration, SimTime};

    let rt = diamond_with_faults(FaultPlan::scripted(vec![
        FaultEvent {
            at: SimTime::ZERO + SimDuration::from_millis(7),
            kind: FaultKind::RouteGpuLoss { gpu: 0 },
        },
        FaultEvent {
            at: SimTime::ZERO + SimDuration::from_millis(60),
            kind: FaultKind::RouteGpuRestore { gpu: 0 },
        },
    ]));
    let m = rt.metrics();
    assert_eq!(m.completed(), 1, "route loss alone must not fail the DAG");
    assert_eq!(m.failed, 0);
    let log = &rt.world().recovery_log();
    assert!(
        log.iter()
            .any(|(_, e)| matches!(e, RecoveryEvent::OpRetried { .. })),
        "in-flight transfers must be retried: {log:?}"
    );
    let rec = &m.records()[0];
    assert!(
        rec.op_durations
            .iter()
            .any(|(c, _)| *c == PassCategory::Recovery),
        "re-issued ops must be accounted under Recovery; ops: {:?}, log: {log:?}",
        rec.op_durations
    );
    assert!(rt.world().quiescent(), "residue after route-loss recovery");
    assert!(rt.world().ledgers_idle(), "reservation leak after recovery");
}
