//! Property-based invariants across the core data structures: bandwidth
//! conservation in the flow network, byte conservation in chunking,
//! soundness of eviction selection, and Algorithm 1 reservation hygiene.

use proptest::prelude::*;

use grouter::mem::{EvictionPolicy, GrouterPolicy, LruPolicy, ObjectMeta};
use grouter::sim::time::SimTime;
use grouter::sim::{FlowNet, FlowOptions};
use grouter::topology::paths::select_parallel_paths;
use grouter::topology::{presets, BwMatrix, Topology};
use grouter::transfer::chunk::{chunk_count, proportional_split};

proptest! {
    /// Shares are non-negative, sum to the total, and only positive-capacity
    /// paths receive bytes.
    #[test]
    fn proportional_split_conserves_bytes(
        bytes in 0.0f64..1e12,
        caps in proptest::collection::vec(-1.0f64..100.0, 0..12),
    ) {
        let shares = proportional_split(bytes, &caps);
        prop_assert_eq!(shares.len(), caps.len());
        let sum: f64 = shares.iter().sum();
        let usable: f64 = caps.iter().filter(|&&c| c > 0.0).sum();
        if usable > 0.0 {
            prop_assert!((sum - bytes).abs() < 1e-3 * bytes.max(1.0), "sum {} vs {}", sum, bytes);
        } else {
            prop_assert_eq!(sum, 0.0);
        }
        for (share, cap) in shares.iter().zip(&caps) {
            prop_assert!(*share >= 0.0);
            if *cap <= 0.0 {
                prop_assert_eq!(*share, 0.0);
            }
        }
    }

    /// Chunk counts are ceilings: enough chunks to hold the bytes, never one
    /// more than needed.
    #[test]
    fn chunk_count_is_tight(bytes in 0.0f64..1e11, chunk in 1.0f64..1e8) {
        let n = chunk_count(bytes, chunk);
        prop_assert!(n as f64 * chunk >= bytes);
        if n > 0 {
            prop_assert!((n - 1) as f64 * chunk < bytes);
        }
    }

    /// Max-min allocation never oversubscribes a link, and every flow on an
    /// otherwise-empty link gets the full capacity.
    #[test]
    fn flownet_respects_capacities(
        seed in 0u64..1000,
        n_links in 1usize..8,
        n_flows in 1usize..24,
    ) {
        let mut rng = grouter::sim::rng::DetRng::new(seed);
        let mut net = FlowNet::new();
        let links: Vec<_> = (0..n_links)
            .map(|i| net.add_link(format!("l{i}"), rng.uniform(1e9, 50e9)))
            .collect();
        let mut flows = Vec::new();
        for _ in 0..n_flows {
            let len = 1 + rng.next_below(3.min(n_links as u64)) as usize;
            let mut path = Vec::new();
            let mut start = rng.next_below(n_links as u64) as usize;
            for _ in 0..len {
                if !path.contains(&links[start]) {
                    path.push(links[start]);
                }
                start = (start + 1) % n_links;
            }
            flows.push(
                net.start_flow(SimTime::ZERO, path, rng.uniform(1.0, 1e9), FlowOptions::default())
                    .expect("valid flow"),
            );
        }
        for (i, &l) in links.iter().enumerate() {
            let used = net.link_utilization(l);
            let cap = net.link_capacity(l);
            prop_assert!(used <= cap + 16.0, "link {i}: {used} > {cap}");
        }
        for f in &flows {
            prop_assert!(net.flow_rate(*f).expect("live") >= 0.0);
        }
        // Everything eventually completes.
        let mut guard = 0;
        while net.num_flows() > 0 {
            let t = net.next_completion().expect("progress");
            net.advance_to(t);
            guard += 1;
            prop_assert!(guard < 10_000, "no progress");
        }
    }

    /// Flows with floors get at least the floor when the link has room.
    #[test]
    fn flownet_honours_feasible_floors(
        floor_gb in 0.1f64..4.0,
        extra_flows in 0usize..8,
    ) {
        let mut net = FlowNet::new();
        let l = net.add_link("l", 10e9);
        let protected = net
            .start_flow(
                SimTime::ZERO,
                vec![l],
                1e9,
                FlowOptions { floor: floor_gb * 1e9, ..Default::default() },
            )
            .expect("flow");
        for _ in 0..extra_flows {
            net.start_flow(SimTime::ZERO, vec![l], 1e9, FlowOptions::default())
                .expect("flow");
        }
        let rate = net.flow_rate(protected).expect("live");
        prop_assert!(rate >= floor_gb * 1e9 - 16.0, "rate {rate} < floor");
    }

    /// Eviction policies: victims are unique, drawn from the resident set,
    /// and cover the need whenever it is coverable at all.
    #[test]
    fn eviction_selection_is_sound(
        seed in 0u64..1000,
        n in 0usize..64,
        need_mb in 0.0f64..2000.0,
    ) {
        let mut rng = grouter::sim::rng::DetRng::new(seed);
        let objects: Vec<ObjectMeta> = (0..n)
            .map(|i| ObjectMeta {
                key: i as u64,
                bytes: rng.uniform(1e6, 100e6),
                last_access: SimTime(rng.next_below(1_000_000)),
                next_use: if rng.next_f64() < 0.3 { None } else { Some(rng.next_below(100)) },
            })
            .collect();
        let need = need_mb * 1e6;
        for policy in [&LruPolicy as &dyn EvictionPolicy, &GrouterPolicy] {
            let victims = policy.select_victims(&objects, need);
            let mut seen = std::collections::HashSet::new();
            let mut freed = 0.0;
            for v in &victims {
                prop_assert!(seen.insert(*v), "duplicate victim {v}");
                let obj = objects.iter().find(|o| o.key == *v);
                prop_assert!(obj.is_some(), "victim {v} not resident");
                freed += obj.expect("present").bytes;
            }
            let total: f64 = objects.iter().map(|o| o.bytes).sum();
            if total >= need {
                prop_assert!(freed >= need, "{}: freed {freed} < need {need}", policy.name());
            } else {
                prop_assert_eq!(victims.len(), objects.len());
            }
        }
    }

    /// Algorithm 1 never leaves the bandwidth matrix negative, and releasing
    /// every selection restores full idleness.
    #[test]
    fn algorithm1_reservation_hygiene(
        src in 0usize..8,
        dst in 0usize..8,
        max_paths in 1usize..8,
    ) {
        prop_assume!(src != dst);
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::dgx_v100(), 1, &mut net);
        let mut bwm = BwMatrix::from_topology(&topo);
        let sel = select_parallel_paths(&mut bwm, src, dst, 3, max_paths);
        for a in 0..8 {
            for b in 0..8 {
                prop_assert!(bwm.residual(a, b) >= 0.0);
                prop_assert!(bwm.residual(a, b) <= bwm.capacity(a, b));
            }
        }
        for p in &sel.paths {
            prop_assert!(p.gpus.len() >= 2);
            prop_assert_eq!(p.gpus[0], src);
            prop_assert_eq!(*p.gpus.last().expect("path"), dst);
            prop_assert!(p.rate > 0.0);
            bwm.release_path(&p.gpus, p.rate);
        }
        for a in 0..8 {
            for b in 0..8 {
                if bwm.capacity(a, b) > 0.0 {
                    prop_assert!(bwm.is_idle(a, b), "({a},{b}) not restored");
                }
            }
        }
    }
}
