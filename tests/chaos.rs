//! Chaos property suite for the fault-injection/recovery engine (ISSUE 4).
//!
//! Each case runs the full GROUTER plane under a bursty `traffic` trace with
//! a seed-derived randomized [`FaultPlan`] and asserts the recovery
//! contract from DESIGN.md §5.4:
//!
//! * **termination** — every arrival ends as exactly one completion or one
//!   typed failure; the world drains to quiescence (no silent stalls);
//! * **no leaks** — pools, scalers, ledgers, and the object store are all
//!   empty once the last instance terminates;
//! * **determinism** — re-running the same seed reproduces the metrics CSV
//!   and the recovery log byte-for-byte.
//!
//! Every assertion message carries the seed. Replay a failure with
//! `GROUTER_CHAOS_SEED=<seed> cargo test -p grouter-integration-tests
//! --test chaos` — when the env var is set, only that seed runs (on both
//! topologies).

use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::{RecoveryEvent, Runtime};
use grouter::sim::fault::CtlFaultConfig;
use grouter::sim::fault::{FaultDomain, FaultPlan, FaultPlanConfig};
use grouter::sim::rng::DetRng;
use grouter::sim::time::{SimDuration, SimTime};
use grouter::sim::LinkId;
use grouter::topology::graph::TopologySpec;
use grouter::topology::presets;
use grouter::{GrouterConfig, GrouterPlane};
use grouter_ctl::{ServiceConfig, ServiceSim};
use grouter_workloads::apps::{traffic, WorkloadParams};
use grouter_workloads::azure::{generate_trace, ArrivalPattern};
use grouter_workloads::cluster::ClusterPreset;
use grouter_workloads::models::GpuClass;

/// How long the trace keeps arriving; faults land inside the same window so
/// recovery always races live work.
const TRACE_SECS: u64 = 2;
const RPS: f64 = 8.0;

/// Harvested fault targets: every GPU/node/NIC, plus the NIC links and the
/// D2H chains of the first few GPUs as degrade/restore candidates.
fn domain_of(rt: &Runtime) -> FaultDomain {
    let topo = &rt.world().topo;
    let mut links: Vec<LinkId> = Vec::new();
    for node in 0..topo.num_nodes() {
        for nic in 0..topo.num_nics() {
            let (tx, rx) = topo.nic_links(node, nic);
            links.push(tx);
            links.push(rx);
        }
        for gpu in 0..topo.gpus_per_node().min(4) {
            links.extend(topo.d2h_path(node, gpu));
        }
    }
    FaultDomain {
        gpus: topo.num_gpus(),
        nodes: topo.num_nodes(),
        nics_per_node: topo.num_nics(),
        links,
    }
}

/// One chaos run; returns the runtime (drained) and the plan it absorbed.
fn chaos_run(seed: u64, topo: TopologySpec, gpu: GpuClass) -> (Runtime, FaultPlan) {
    let spec = traffic(WorkloadParams { batch: 4, gpu });
    let mut rt = Runtime::new(
        topo,
        1,
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        RuntimeConfig::default(),
    );
    let mut rng = DetRng::new(seed);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        RPS,
        SimDuration::from_secs(TRACE_SECS),
        &mut rng,
    ) {
        rt.submit(spec.clone(), t);
    }
    let plan = FaultPlan::randomized(
        seed,
        &domain_of(&rt),
        &FaultPlanConfig {
            horizon: SimDuration::from_secs(TRACE_SECS),
            faults: 5,
            ..FaultPlanConfig::default()
        },
    );
    rt.install_fault_plan(&plan);
    rt.run();
    (rt, plan)
}

/// The recovery contract every chaos run must satisfy at drain.
fn assert_contract(rt: &Runtime, seed: u64, plan: &FaultPlan) {
    let m = rt.metrics();
    let w = rt.world();
    assert_eq!(
        m.completed() as u64 + m.failed,
        m.arrivals,
        "seed {seed}: arrivals must all terminate (plan: {:?})",
        plan.events()
    );
    assert!(w.quiescent(), "seed {seed}: world did not drain");
    assert!(w.ledgers_idle(), "seed {seed}: NVLink bandwidth leaked");
    assert!(
        w.store.is_empty(),
        "seed {seed}: {} object(s) leaked in the store",
        w.store.len()
    );
    for (idx, pool) in w.pools.iter().enumerate() {
        assert!(
            pool.used() == 0.0 && pool.runtime_used() == 0.0,
            "seed {seed}: pool {idx} leaked (used {}, runtime {})",
            pool.used(),
            pool.runtime_used()
        );
    }
    for (idx, scaler) in w.scalers.iter().enumerate() {
        assert_eq!(
            scaler.total_live_outputs(),
            0,
            "seed {seed}: scaler {idx} still counts live outputs"
        );
    }
}

/// Seeds to sweep: the env override when set, otherwise a fixed batch.
fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("GROUTER_CHAOS_SEED") {
        let seed = s
            .parse::<u64>()
            .expect("GROUTER_CHAOS_SEED must be an integer seed");
        return vec![seed];
    }
    (1..=6).map(|i| 0xC4A0_5000 + i).collect()
}

fn sweep(topo: fn() -> TopologySpec, gpu: GpuClass) {
    for seed in seeds() {
        let (rt, plan) = chaos_run(seed, topo(), gpu);
        assert_contract(&rt, seed, &plan);
    }
}

#[test]
fn chaos_traffic_v100_terminates_without_leaks() {
    sweep(presets::dgx_v100, GpuClass::V100);
}

#[test]
fn chaos_traffic_a100_terminates_without_leaks() {
    sweep(presets::dgx_a100, GpuClass::A100);
}

/// Cross-node: two V100 boxes so NIC failures and cross-node re-plans are
/// actually on the fault path.
#[test]
fn chaos_traffic_two_node_terminates_without_leaks() {
    for seed in seeds() {
        let spec = traffic(WorkloadParams {
            batch: 4,
            gpu: GpuClass::V100,
        });
        let mut rt = Runtime::new(
            presets::dgx_v100(),
            2,
            Box::new(GrouterPlane::new(GrouterConfig::full())),
            RuntimeConfig::default(),
        );
        let mut rng = DetRng::new(seed);
        for t in generate_trace(
            ArrivalPattern::Bursty,
            RPS,
            SimDuration::from_secs(TRACE_SECS),
            &mut rng,
        ) {
            rt.submit(spec.clone(), t);
        }
        let plan = FaultPlan::randomized(
            seed,
            &domain_of(&rt),
            &FaultPlanConfig {
                horizon: SimDuration::from_secs(TRACE_SECS),
                faults: 5,
                ..FaultPlanConfig::default()
            },
        );
        rt.install_fault_plan(&plan);
        rt.run();
        assert_contract(&rt, seed, &plan);
    }
}

/// Same seed twice → byte-identical metrics CSV, identical recovery log.
#[test]
fn chaos_same_seed_replays_byte_identically() {
    for seed in seeds() {
        let (a, _) = chaos_run(seed, presets::dgx_v100(), GpuClass::V100);
        let (b, _) = chaos_run(seed, presets::dgx_v100(), GpuClass::V100);
        assert_eq!(
            a.metrics().to_csv(),
            b.metrics().to_csv(),
            "seed {seed}: metrics CSV diverged between identical runs"
        );
        assert_eq!(
            a.metrics().failed,
            b.metrics().failed,
            "seed {seed}: failure count diverged"
        );
        assert_eq!(
            a.world().recovery_log(),
            b.world().recovery_log(),
            "seed {seed}: recovery log diverged between identical runs"
        );
    }
}

/// A plan with GPU failures must leave a typed trail — never a silent stall.
#[test]
fn chaos_recovery_log_records_absorbed_faults() {
    let mut saw_gpu_fail = false;
    for seed in seeds() {
        let (rt, plan) = chaos_run(seed, presets::dgx_v100(), GpuClass::V100);
        if !plan.is_empty() {
            assert!(
                !rt.world().recovery_log().is_empty(),
                "seed {seed}: faults were injected but the recovery log is empty"
            );
        }
        saw_gpu_fail |= rt
            .world()
            .recovery_log()
            .iter()
            .any(|(_, ev)| matches!(ev, RecoveryEvent::GpuFailed { .. }));
    }
    if std::env::var("GROUTER_CHAOS_SEED").is_err() {
        assert!(
            saw_gpu_fail,
            "fixed seed batch never produced a GpuFailed event; rebalance seeds"
        );
    }
}

/// `SimTime` sanity for the suite's window: every injected fault lies inside
/// the configured horizon, so the assertions above always race live work.
#[test]
fn chaos_plans_stay_inside_horizon() {
    for seed in seeds() {
        let spec = traffic(WorkloadParams {
            batch: 4,
            gpu: GpuClass::V100,
        });
        let mut rt = Runtime::new(
            presets::dgx_v100(),
            1,
            Box::new(GrouterPlane::new(GrouterConfig::full())),
            RuntimeConfig::default(),
        );
        rt.submit(spec, SimTime::ZERO);
        let cfg = FaultPlanConfig {
            horizon: SimDuration::from_secs(TRACE_SECS),
            faults: 5,
            ..FaultPlanConfig::default()
        };
        let plan = FaultPlan::randomized(seed, &domain_of(&rt), &cfg);
        let restore_slack = cfg.max_outage;
        for ev in plan.events() {
            assert!(
                ev.at <= SimTime::ZERO + cfg.horizon + restore_slack,
                "seed {seed}: event at {:?} beyond horizon+outage",
                ev.at
            );
        }
        assert_eq!(plan.seed(), seed, "plan must carry its seed for replay");
    }
}

// ---------------------------------------------------------------------------
// Control-plane chaos (ISSUE 9): worker death mid-heartbeat-interval and
// router-side heartbeat loss, injected into a live service-mode cluster.
// ---------------------------------------------------------------------------

/// A reduced service fleet (4 V100 groups) with the heartbeat router at the
/// gateway and the randomized control-plane fault plan armed.
fn ctl_chaos_run(seed: u64, threads: usize) -> ServiceSim {
    let mut preset = ClusterPreset::uniform_64();
    preset.groups.truncate(4);
    let cfg = ServiceConfig {
        total: 1_500,
        seed,
        ctl_faults: Some(CtlFaultConfig::default()),
        ..ServiceConfig::default()
    };
    let mut svc = ServiceSim::build(&preset, &cfg);
    svc.run(threads);
    svc
}

fn ctl_seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("GROUTER_CHAOS_SEED") {
        let seed = s
            .parse::<u64>()
            .expect("GROUTER_CHAOS_SEED must be an integer seed");
        return vec![seed];
    }
    (1..=4).map(|i| 0xC71_7000 + i).collect()
}

/// Termination and leak-freedom with the control plane active: worker
/// deaths and dropped heartbeats must not strand an invocation, leak an
/// object, or leave bandwidth reserved in any group.
#[test]
fn ctl_chaos_terminates_without_leaks() {
    for seed in ctl_seeds() {
        let svc = ctl_chaos_run(seed, 2);
        assert_eq!(
            svc.completed() as u64 + svc.failed(),
            svc.arrivals(),
            "seed {seed}: every admitted request must terminate"
        );
        let sim = svc.cluster();
        for g in 0..sim.groups() {
            let w = sim.world(g);
            assert!(w.quiescent(), "seed {seed}: group {g} did not drain");
            assert!(
                w.ledgers_idle(),
                "seed {seed}: group {g} leaked NVLink bandwidth"
            );
            assert!(
                w.store.is_empty(),
                "seed {seed}: group {g} leaked {} object(s)",
                w.store.len()
            );
            for (idx, pool) in w.pools.iter().enumerate() {
                assert!(
                    pool.used() == 0.0 && pool.runtime_used() == 0.0,
                    "seed {seed}: group {g} pool {idx} leaked"
                );
            }
            for (idx, scaler) in w.scalers.iter().enumerate() {
                assert_eq!(
                    scaler.total_live_outputs(),
                    0,
                    "seed {seed}: group {g} scaler {idx} still counts live outputs"
                );
            }
        }
    }
}

/// The new fault kinds actually land and are visible in the typed recovery
/// log: worker deaths, heartbeat-loss arming, and the per-beat drops the
/// budget burns.
#[test]
fn ctl_chaos_recovery_log_records_ctl_faults() {
    let svc = ctl_chaos_run(0xC71_7001, 2);
    let log = svc.merged_recovery_log();
    assert!(
        log.contains("WorkerDied"),
        "no worker death in the recovery log:\n{log}"
    );
    assert!(
        log.contains("HbLossArmed"),
        "no heartbeat-loss arming in the recovery log:\n{log}"
    );
    let (_, _, dropped) = svc.cluster().heartbeat_stats();
    if dropped > 0 {
        assert!(
            log.contains("HbDropped"),
            "{dropped} beats dropped but none logged:\n{log}"
        );
    }
}

/// Replayability with the control plane active: same seed, same outputs,
/// byte for byte — metrics CSV, admission log and recovery log.
#[test]
fn ctl_chaos_same_seed_replays_byte_identically() {
    for seed in ctl_seeds() {
        let a = ctl_chaos_run(seed, 2);
        let b = ctl_chaos_run(seed, 2);
        assert_eq!(
            a.merged_csv(),
            b.merged_csv(),
            "seed {seed}: metrics CSV not replayable"
        );
        assert_eq!(
            a.admission_log(),
            b.admission_log(),
            "seed {seed}: admission log not replayable"
        );
        assert_eq!(
            a.merged_recovery_log(),
            b.merged_recovery_log(),
            "seed {seed}: recovery log not replayable"
        );
    }
}

// ---------------------------------------------------------------------------
// LLM serving chaos (ISSUE 10): a decode GPU dies mid-stream while its
// continuous batch holds pinned KV. Streams either re-materialize from
// lineage (prompt + emitted tokens re-prefilled elsewhere) or fail typed;
// nothing leaks, and the same seed replays byte-for-byte at any thread
// count. Leak-freedom is enforced inside `run_llm_serve` itself: every
// group's `assert_drained` (store/pool/scaler all empty) runs before the
// report is built, so a leak panics the run rather than skewing metrics.
// ---------------------------------------------------------------------------

/// Reduced-scale disaggregated run with the second decode GPU of group 0
/// killed mid-run. The fail time is seed-derived so different seeds cut the
/// batch at different stream depths.
fn llm_chaos_cfg(seed: u64) -> grouter_llm::LlmServeConfig {
    let base = grouter_llm::LlmServeConfig::reference(grouter_llm::PlaneKind::Grouter);
    let fail_at = SimTime::ZERO + SimDuration::from_millis(1_500 + (seed % 5) * 700);
    grouter_llm::LlmServeConfig {
        requests: 300,
        rps: 40.0,
        seed,
        fail: Some((0, base.prefill_gpus + 1, fail_at)),
        ..base
    }
}

fn llm_seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("GROUTER_CHAOS_SEED") {
        let seed = s
            .parse::<u64>()
            .expect("GROUTER_CHAOS_SEED must be an integer seed");
        return vec![seed];
    }
    (1..=3).map(|i| 0x11A_A000 + i).collect()
}

/// Termination under decode failure: every admitted request still resolves
/// as a completion or a typed failure, and the failure window actually hits
/// live streams (re-materializations or typed failures are visible).
#[test]
fn llm_chaos_decode_failure_terminates_without_leaks() {
    for seed in llm_seeds() {
        let cfg = llm_chaos_cfg(seed);
        let report = grouter_llm::run_llm_serve(&cfg);
        assert_eq!(
            report.completed + report.failed,
            cfg.requests,
            "seed {seed}: requests leaked at the router"
        );
        assert_eq!(
            report.metrics.completed + report.metrics.failed,
            cfg.requests,
            "seed {seed}: requests leaked in the groups"
        );
        assert!(
            report.metrics.rematerialized > 0 || report.failed > 0,
            "seed {seed}: the decode failure never hit an in-flight stream"
        );
        assert!(
            report.completed > 0,
            "seed {seed}: the surviving decode GPUs completed nothing"
        );
    }
}

/// Chaos replay: the same seed under the same decode failure produces a
/// byte-identical metrics CSV whether the shards run on 1 or 8 threads.
#[test]
fn llm_chaos_same_seed_replays_byte_identically() {
    for seed in llm_seeds() {
        let cfg = llm_chaos_cfg(seed);
        let a = grouter_llm::run_llm_serve(&cfg);
        let b = grouter_llm::run_llm_serve(&grouter_llm::LlmServeConfig {
            threads: 8,
            ..cfg.clone()
        });
        assert_eq!(a.csv, b.csv, "seed {seed}: chaos replay CSV diverged");
        assert_eq!(
            a.digest, b.digest,
            "seed {seed}: chaos replay digest diverged"
        );
    }
}
