//! Shared fixtures for the cross-crate integration tests.

use std::sync::Arc;

use grouter::runtime::dataplane::DataPlane;
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::graph::TopologySpec;
use grouter::{GrouterConfig, GrouterPlane};
use grouter_baselines::{deepplan_plane, InflessPlane, NvshmemPlane};
use grouter_runtime::spec::WorkflowSpec;
use grouter_workloads::azure::{generate_trace, ArrivalPattern};

/// All four evaluated planes with a deterministic seed, in the paper's
/// order: INFless+, NVSHMEM+, DeepPlan+, GROUTER.
pub fn all_planes(seed: u64) -> Vec<Box<dyn DataPlane>> {
    vec![
        Box::new(InflessPlane::new()),
        Box::new(NvshmemPlane::new(seed)),
        deepplan_plane(seed),
        Box::new(GrouterPlane::new(GrouterConfig::full())),
    ]
}

/// Run `spec` under a short bursty trace on `topo` and return the runtime.
pub fn run_bursty(
    topo: TopologySpec,
    nodes: usize,
    plane: Box<dyn DataPlane>,
    spec: Arc<WorkflowSpec>,
    rps: f64,
    secs: u64,
    seed: u64,
) -> Runtime {
    let mut rt = Runtime::new(topo, nodes, plane, RuntimeConfig::default());
    let mut rng = DetRng::new(seed);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        rps,
        SimDuration::from_secs(secs),
        &mut rng,
    ) {
        rt.submit(spec.clone(), t);
    }
    rt.run();
    rt
}
