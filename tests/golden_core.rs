//! Golden determinism tests for the event core (ISSUE 6 satellite).
//!
//! The typed-event scheduler replaced the boxed-closure `BinaryHeap` core;
//! these tests pin the *observable* behaviour of the old core byte-for-byte:
//! the golden files under `tests/golden/` were generated on the
//! boxed-closure engine before the rearchitecture and are compared, not
//! regenerated, by CI. Any ordering drift in the bucketed timeline — ties
//! firing out of schedule order, flow-completion waves batched differently,
//! interned ids leaking into output — shows up here as a byte diff.
//!
//! Regenerate (only when an intentional behaviour change is being made):
//! `GROUTER_GOLDEN_WRITE=1 cargo test -p grouter-integration-tests --test
//! golden_core`.

use std::fmt::Write as _;
use std::path::PathBuf;

use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::fault::{FaultDomain, FaultPlan, FaultPlanConfig};
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::sim::LinkId;
use grouter::topology::presets;
use grouter::{GrouterConfig, GrouterPlane};
use grouter_workloads::apps::{suite, traffic, WorkloadParams};
use grouter_workloads::azure::{generate_trace, ArrivalPattern};
use grouter_workloads::models::GpuClass;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// Compare `got` against the committed golden file, or rewrite it when
/// `GROUTER_GOLDEN_WRITE=1`.
fn check(name: &str, got: &str) {
    let path = golden_dir().join(name);
    if std::env::var("GROUTER_GOLDEN_WRITE").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        got,
        want,
        "output diverged from boxed-closure golden {} — the event core is no \
         longer byte-identical",
        path.display()
    );
}

fn fault_domain(rt: &Runtime) -> FaultDomain {
    let topo = &rt.world().topo;
    let mut links: Vec<LinkId> = Vec::new();
    for node in 0..topo.num_nodes() {
        for nic in 0..topo.num_nics() {
            let (tx, rx) = topo.nic_links(node, nic);
            links.push(tx);
            links.push(rx);
        }
        for gpu in 0..topo.gpus_per_node().min(4) {
            links.extend(topo.d2h_path(node, gpu));
        }
    }
    FaultDomain {
        gpus: topo.num_gpus(),
        nodes: topo.num_nodes(),
        nics_per_node: topo.num_nics(),
        links,
    }
}

/// Chaos run identical in shape to `chaos.rs::chaos_run` (bursty traffic,
/// randomized 5-fault plan) for a fixed seed.
fn chaos_run(seed: u64) -> Runtime {
    let spec = traffic(WorkloadParams {
        batch: 4,
        gpu: GpuClass::V100,
    });
    let mut rt = Runtime::new(
        presets::dgx_v100(),
        1,
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        RuntimeConfig::default(),
    );
    let mut rng = DetRng::new(seed);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        8.0,
        SimDuration::from_secs(2),
        &mut rng,
    ) {
        rt.submit(spec.clone(), t);
    }
    let plan = FaultPlan::randomized(
        seed,
        &fault_domain(&rt),
        &FaultPlanConfig {
            horizon: SimDuration::from_secs(2),
            faults: 5,
            ..FaultPlanConfig::default()
        },
    );
    rt.install_fault_plan(&plan);
    rt.run();
    rt
}

fn recovery_log_text(rt: &Runtime) -> String {
    let mut out = String::new();
    for (at, ev) in rt.world().recovery_log() {
        writeln!(out, "{} {:?}", at.as_nanos(), ev).unwrap();
    }
    out
}

/// Fault-free run of the full six-workflow suite on a contended two-node
/// V100 testbed — the same regime as `bench_e2e`'s `v100_contended` case.
fn suite_run() -> Runtime {
    let specs = suite(WorkloadParams {
        batch: 4,
        gpu: GpuClass::V100,
    });
    let mut rt = Runtime::new(
        presets::dgx_v100(),
        2,
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        RuntimeConfig::default(),
    );
    let mut rng = DetRng::new(42);
    let mut arrivals = Vec::new();
    for (k, spec) in specs.iter().enumerate() {
        let mut sub = rng.fork(k as u64);
        for t in generate_trace(
            ArrivalPattern::Sporadic,
            3.0,
            SimDuration::from_secs(4),
            &mut sub,
        ) {
            arrivals.push((spec.clone(), t));
        }
    }
    arrivals.sort_by_key(|&(_, t)| t);
    for (spec, t) in arrivals {
        rt.submit(spec, t);
    }
    rt.run();
    rt
}

#[test]
fn golden_chaos_metrics_and_recovery_log() {
    for seed in [0xC4A0_5001u64, 0xC4A0_5004] {
        let rt = chaos_run(seed);
        check(
            &format!("chaos_{seed:x}_metrics.csv"),
            &rt.metrics().to_csv(),
        );
        check(
            &format!("chaos_{seed:x}_recovery.txt"),
            &recovery_log_text(&rt),
        );
    }
}

#[test]
fn golden_suite_metrics() {
    let rt = suite_run();
    check("suite_v100_metrics.csv", &rt.metrics().to_csv());
}

/// The two golden runs repeated in-process must agree with themselves —
/// catches process-random iteration (e.g. an un-seeded hash map) that a
/// single-run golden comparison could miss if the golden file happened to
/// be regenerated in the same process layout.
#[test]
fn golden_runs_self_replay() {
    let a = chaos_run(0xC4A0_5001);
    let b = chaos_run(0xC4A0_5001);
    assert_eq!(a.metrics().to_csv(), b.metrics().to_csv());
    assert_eq!(recovery_log_text(&a), recovery_log_text(&b));
    let c = suite_run();
    let d = suite_run();
    assert_eq!(c.metrics().to_csv(), d.metrics().to_csv());
}

// ---------------------------------------------------------------------------
// Service-mode goldens (ISSUE 9): heartbeat-view router + control-plane
// faults, pinned byte-for-byte across shard thread counts.
// ---------------------------------------------------------------------------

/// A reduced service-mode run (4 V100 groups, heartbeat router at the
/// gateway, randomized control-plane fault plan armed) on `threads` shard
/// workers. The golden files pin the *merged* outputs, so any ordering
/// drift in the conservative parallel engine or the router's admission
/// order shows up as a byte diff.
fn service_run(threads: usize) -> grouter_ctl::ServiceSim {
    use grouter::sim::fault::CtlFaultConfig;
    use grouter_ctl::{ServiceConfig, ServiceSim};
    use grouter_workloads::cluster::ClusterPreset;

    let mut preset = ClusterPreset::uniform_64();
    preset.groups.truncate(4);
    let cfg = ServiceConfig {
        total: 1_000,
        seed: 0xC4A0_5009,
        ctl_faults: Some(CtlFaultConfig::default()),
        ..ServiceConfig::default()
    };
    let mut svc = ServiceSim::build(&preset, &cfg);
    svc.run(threads);
    svc
}

/// Merged metrics CSV and admission log, byte-identical on 1, 2 and 8
/// threads *and* to the committed goldens.
#[test]
fn golden_service_outputs_thread_invariant() {
    let base = service_run(1);
    check("service_c4a05009_metrics.csv", &base.merged_csv());
    check("service_c4a05009_admission.txt", &base.admission_log());
    check("service_c4a05009_recovery.txt", &base.merged_recovery_log());
    for threads in [2usize, 8] {
        let svc = service_run(threads);
        assert_eq!(
            svc.merged_csv(),
            base.merged_csv(),
            "service CSV diverged from the 1-thread run at {threads} threads"
        );
        assert_eq!(
            svc.admission_log(),
            base.admission_log(),
            "admission log diverged from the 1-thread run at {threads} threads"
        );
        assert_eq!(
            svc.merged_recovery_log(),
            base.merged_recovery_log(),
            "recovery log diverged from the 1-thread run at {threads} threads"
        );
    }
}
