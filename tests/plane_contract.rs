//! Data-plane contract: every plane must satisfy the same Put/Get semantics
//! across all source/destination pattern combinations, enforce access
//! control, and clean up pool accounting.

use grouter::mem::{ElasticPool, PinnedRing, PoolDiscipline, PrewarmScaler};
use grouter::runtime::dataplane::{Destination, PlaneCtx};
use grouter::sim::time::SimTime;
use grouter::sim::FlowNet;
use grouter::store::{AccessToken, DataStore, FunctionId, StoreError, WorkflowId};
use grouter::topology::{presets, GpuRef, PathLedger, Topology};
use grouter::transfer::rate::RateController;
use grouter_integration_tests::all_planes;

struct Cluster {
    topo: Topology,
    net: FlowNet,
    store: DataStore,
    pools: Vec<ElasticPool>,
    scalers: Vec<PrewarmScaler>,
    ledgers: Vec<PathLedger>,
    pinned: Vec<PinnedRing>,
    rates: Vec<RateController>,
}

impl Cluster {
    fn new(nodes: usize) -> Cluster {
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::dgx_v100(), nodes, &mut net);
        Cluster {
            store: DataStore::new(nodes),
            pools: (0..topo.num_gpus())
                .map(|_| ElasticPool::new(PoolDiscipline::Elastic, topo.gpu_mem_bytes()))
                .collect(),
            scalers: (0..topo.num_gpus()).map(|_| PrewarmScaler::new()).collect(),
            ledgers: (0..nodes)
                .map(|_| PathLedger::from_topology(&topo))
                .collect(),
            pinned: (0..nodes)
                .map(|_| PinnedRing::new(grouter_sim::params::PINNED_RING_BYTES))
                .collect(),
            rates: (0..nodes).map(|_| RateController::new()).collect(),
            topo,
            net,
        }
    }

    fn ctx(&mut self) -> PlaneCtx<'_> {
        PlaneCtx {
            topo: &self.topo,
            net: &self.net,
            store: &mut self.store,
            pools: &mut self.pools,
            scalers: &mut self.scalers,
            ledgers: &mut self.ledgers,
            pinned: &mut self.pinned,
            rates: &mut self.rates,
            now: SimTime::ZERO,
            slo: None,
            trace: grouter_obs::Recorder::disabled(),
        }
    }
}

fn token(wf: u64) -> AccessToken {
    AccessToken {
        function: FunctionId(1),
        workflow: WorkflowId(wf),
    }
}

/// Every (source, destination) combination must produce a plan whose flows
/// reference valid links and whose byte totals match the object size.
#[test]
fn put_get_covers_every_pattern() {
    let sources = [
        Destination::Gpu(GpuRef::new(0, 0)),
        Destination::Host(0),
        Destination::Gpu(GpuRef::new(1, 5)),
    ];
    let dests = [
        Destination::Gpu(GpuRef::new(0, 0)),
        Destination::Gpu(GpuRef::new(0, 3)),
        Destination::Gpu(GpuRef::new(1, 2)),
        Destination::Host(0),
        Destination::Host(1),
    ];
    for mut plane in all_planes(3) {
        for &src in &sources {
            for &dst in &dests {
                let mut cl = Cluster::new(2);
                let bytes = 32e6;
                let put = plane
                    .put(&mut cl.ctx(), token(1), src, bytes, 1)
                    .unwrap_or_else(|e| panic!("{}: put {src:?} failed: {e}", plane.name()));
                let get = plane
                    .get(&mut cl.ctx(), token(1), put.id, dst)
                    .unwrap_or_else(|e| {
                        panic!("{}: get {src:?}->{dst:?} failed: {e}", plane.name())
                    });
                // Legs carry the full object (or nothing for zero-copy).
                for leg in put.op.legs.iter().chain(get.legs.iter()) {
                    if !leg.plan.is_zero_copy() {
                        let assigned = leg.plan.assigned_bytes();
                        assert!(
                            (assigned - bytes).abs() < 1.0,
                            "{}: leg carries {assigned} of {bytes}",
                            plane.name()
                        );
                    }
                    // Paths reference links that exist.
                    for flow in &leg.plan.flows {
                        for l in &flow.links {
                            assert!((l.0 as usize) < cl.net.num_links());
                        }
                    }
                }
                // Consuming releases the object.
                plane.on_consumed(&mut cl.ctx(), put.id);
                assert!(
                    cl.store.peek(put.id).is_none(),
                    "{}: object not GC'd",
                    plane.name()
                );
            }
        }
    }
}

#[test]
fn pools_return_to_zero_after_consumption() {
    for mut plane in all_planes(7) {
        let mut cl = Cluster::new(1);
        let mut ids = Vec::new();
        for i in 0..6 {
            let put = plane
                .put(
                    &mut cl.ctx(),
                    token(1),
                    Destination::Gpu(GpuRef::new(0, i % 8)),
                    64e6,
                    1,
                )
                .expect("put");
            ids.push(put.id);
        }
        for id in ids {
            plane.on_consumed(&mut cl.ctx(), id);
        }
        for (i, pool) in cl.pools.iter().enumerate() {
            assert_eq!(
                pool.used(),
                0.0,
                "{}: pool {i} still holds {}",
                plane.name(),
                pool.used()
            );
        }
    }
}

#[test]
fn access_control_is_universal() {
    for mut plane in all_planes(11) {
        let mut cl = Cluster::new(1);
        let put = plane
            .put(
                &mut cl.ctx(),
                token(1),
                Destination::Gpu(GpuRef::new(0, 2)),
                1e6,
                1,
            )
            .expect("put");
        let err = plane
            .get(
                &mut cl.ctx(),
                token(2),
                put.id,
                Destination::Gpu(GpuRef::new(0, 3)),
            )
            .unwrap_err();
        assert!(
            matches!(err, StoreError::AccessDenied { .. }),
            "{}: expected AccessDenied, got {err:?}",
            plane.name()
        );
    }
}

#[test]
fn unknown_object_is_reported_not_panicked() {
    use grouter::store::DataId;
    for mut plane in all_planes(13) {
        let mut cl = Cluster::new(1);
        let err = plane
            .get(
                &mut cl.ctx(),
                token(1),
                DataId(424242),
                Destination::Gpu(GpuRef::new(0, 0)),
            )
            .unwrap_err();
        assert!(
            matches!(err, StoreError::UnknownData(_)),
            "{}",
            plane.name()
        );
    }
}

#[test]
fn double_consume_is_idempotent() {
    for mut plane in all_planes(17) {
        let mut cl = Cluster::new(1);
        let put = plane
            .put(
                &mut cl.ctx(),
                token(1),
                Destination::Gpu(GpuRef::new(0, 1)),
                8e6,
                1,
            )
            .expect("put");
        plane.on_consumed(&mut cl.ctx(), put.id);
        // Second consume of a GC'd object must be harmless.
        plane.on_consumed(&mut cl.ctx(), put.id);
        assert_eq!(cl.pools[1].used(), 0.0, "{}", plane.name());
    }
}

#[test]
fn memory_pressure_hook_never_leaves_overflow() {
    for mut plane in all_planes(19) {
        let mut cl = Cluster::new(1);
        // Fill GPU 0's pool.
        let mut ids = Vec::new();
        for _ in 0..10 {
            if let Ok(put) = plane.put(
                &mut cl.ctx(),
                token(1),
                Destination::Gpu(GpuRef::new(0, 0)),
                500e6,
                1,
            ) {
                ids.push(put.id);
            }
        }
        // Functions suddenly occupy most of the GPU.
        let capacity = cl.topo.gpu_mem_bytes();
        for pool in cl.pools.iter_mut() {
            pool.set_runtime_used(capacity * 0.9);
        }
        for g in 0..8 {
            plane.on_memory_change(&mut cl.ctx(), GpuRef::new(0, g));
        }
        for (i, pool) in cl.pools.iter().enumerate() {
            assert!(
                pool.used() <= pool.storage_cap() + 1.0,
                "{}: pool {i} over cap after pressure hook ({} > {})",
                plane.name(),
                pool.used(),
                pool.storage_cap()
            );
        }
    }
}

#[test]
fn multi_consumer_objects_survive_until_last_reader() {
    for mut plane in all_planes(23) {
        let mut cl = Cluster::new(1);
        let put = plane
            .put(
                &mut cl.ctx(),
                token(1),
                Destination::Gpu(GpuRef::new(0, 0)),
                16e6,
                3,
            )
            .expect("put");
        // Three consumers read it; the object must stay resolvable until the
        // last one consumes.
        for round in 0..3 {
            let get = plane.get(
                &mut cl.ctx(),
                token(1),
                put.id,
                Destination::Gpu(GpuRef::new(0, (round + 1) as usize)),
            );
            assert!(get.is_ok(), "{}: round {round} failed", plane.name());
            plane.on_consumed(&mut cl.ctx(), put.id);
        }
        assert!(
            cl.store.peek(put.id).is_none(),
            "{}: object outlived its consumers",
            plane.name()
        );
        let total_pool: f64 = cl.pools.iter().map(|p| p.used()).sum();
        assert_eq!(total_pool, 0.0, "{}: pool leak", plane.name());
    }
}

#[test]
fn oversized_objects_fall_back_to_host_storage() {
    use grouter::store::Location;
    for mut plane in all_planes(29) {
        let mut cl = Cluster::new(1);
        // 10 GB exceeds the 8 GB storage cap of an idle 16 GB V100.
        let put = plane
            .put(
                &mut cl.ctx(),
                token(1),
                Destination::Gpu(GpuRef::new(0, 0)),
                10e9,
                1,
            )
            .expect("oversized put must still succeed");
        let loc = cl.store.peek(put.id).expect("registered").location;
        assert!(
            matches!(loc, Location::Host(_)),
            "{}: oversized object stored at {loc:?}",
            plane.name()
        );
        // And it is still readable.
        let get = plane.get(
            &mut cl.ctx(),
            token(1),
            put.id,
            Destination::Gpu(GpuRef::new(0, 1)),
        );
        assert!(get.is_ok(), "{}", plane.name());
    }
}
