#!/bin/sh
# Offline CI gate: formatting, lints, the tier-1 test suite, and the
# benchmark smoke run with its speedup gates. Everything runs locally with
# no network access.
#
# Usage: scripts/ci.sh

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tier-1 tests (cargo build --release && cargo test -q)"
cargo build --release
cargo test -q

echo "==> benchmark smoke (BENCH_flownet.json + BENCH_paths.json)"
scripts/bench_smoke.sh

echo "CI OK"
