#!/bin/sh
# Offline CI gate: formatting, lints, the workspace linter, the tier-1 test
# suite (with the data-plane invariant auditors unified on), the benchmark
# smoke run with its speedup gates, the trace-export determinism smoke, and
# the experiment-suite byte-identity check. Everything runs locally with no network access.
#
# Usage: scripts/ci.sh

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> grouter-lint (workspace rules over crates/)"
cargo run -q --release -p grouter-lint -- crates

echo "==> grouter-analyze (call-graph passes; zero unbaselined findings)"
# Interprocedural panic-/wallclock-reachability and determinism taint over
# every crate. Known findings live in analyze-baseline.txt with per-entry
# justifications; any new finding, stale entry, bad pragma, or a call-site
# resolution rate under 90% fails here.
cargo run -q --release -p grouter-analyze -- \
    --baseline analyze-baseline.txt --min-resolution 0.90 crates

echo "==> tier-1 tests, audited (cargo build --release && cargo test -q)"
# The workspace test graph includes crates/audit, whose dev-dependencies
# enable the `audit` feature on every data-plane crate — so this single run
# is the audited tier-1 pass, and crates/audit/tests/coverage.rs fails it
# if any invariant checker stopped firing.
cargo build --release
cargo test -q

echo "==> chaos smoke (fixed-seed fault injection over the GROUTER plane)"
# Bounded and deterministic: the suite sweeps a fixed seed batch of
# randomized fault plans (GPU/NIC/link failures) and asserts termination,
# leak-freedom, and byte-identical same-seed replay. Reproduce a failure
# with: GROUTER_CHAOS_SEED=<seed> cargo test -p grouter-integration-tests --test chaos
cargo test -q -p grouter-integration-tests --test chaos

echo "==> sharded-determinism smoke (same seed, inline vs 2 vs 8 worker threads)"
# Reduced-scale cluster run under the conservative sharded engine: the
# merged metrics CSV and recovery log must be byte-identical whether the
# group shards run inline on one thread or spread over workers. Thread-
# count-dependent nondeterminism fails here fast, before the bench gates.
cargo test -q -p grouter-integration-tests --test sharded thread_count_never_changes_merged_outputs

echo "==> ctl smoke (service mode: heartbeat router, 1 vs 2 vs 8 threads, faults on)"
# A reduced-scale `serve` run of the control plane: the heartbeat-view
# router admits an open-loop stream while the randomized control-plane
# fault plan kills workers and drops heartbeats. The printed output digests
# (metrics CSV, admission log, recovery log) must be identical for any
# shard thread count.
ctl_a=$(cargo run -q --release -p grouter-cli -- serve --groups 4 --total 20000 \
    --threads 1 --faults --seed 42 | grep digests:)
for t in 2 8; do
    ctl_b=$(cargo run -q --release -p grouter-cli -- serve --groups 4 --total 20000 \
        --threads "$t" --faults --seed 42 | grep digests:)
    [ "$ctl_a" = "$ctl_b" ] || {
        echo "serve digests diverged at $t threads: $ctl_a vs $ctl_b" >&2; exit 1;
    }
done

echo "==> llm smoke (disaggregated serving: both planes, 1 vs 2 vs 8 threads)"
# A reduced-scale disaggregated LLM serving run on both data planes: open-
# loop arrivals through the router shard, prefill/decode handoff, KV
# migration under decode pressure. The printed metrics digest must be
# identical at any shard thread count.
llm_a=$(cargo run -q --release -p grouter-cli -- llm --requests 2000 \
    --threads 1 --seed 42 | grep digests:)
for t in 2 8; do
    llm_b=$(cargo run -q --release -p grouter-cli -- llm --requests 2000 \
        --threads "$t" --seed 42 | grep digests:)
    [ "$llm_a" = "$llm_b" ] || {
        echo "llm digests diverged at $t threads: $llm_a vs $llm_b" >&2; exit 1;
    }
done

echo "==> benchmark smoke (BENCH_flownet.json + BENCH_paths.json + BENCH_obs.json)"
scripts/bench_smoke.sh

echo "==> trace smoke (fixed-seed Chrome export: valid JSON, byte-identical re-run)"
# A short fixed-seed CLI run with the flight recorder on. The export must
# be loadable JSON (checked by the obs crate's validator via the trace
# integration test) and byte-identical when the same seed runs again —
# the observability subsystem must never inject nondeterminism.
trace_a=$(mktemp)
trace_b=$(mktemp)
cargo run -q --release -p grouter-cli -- examples/workflows/traffic_lite.wf \
    --nodes 2 --seconds 3 --seed 42 --trace-out "$trace_a" > /dev/null
cargo run -q --release -p grouter-cli -- examples/workflows/traffic_lite.wf \
    --nodes 2 --seconds 3 --seed 42 --trace-out "$trace_b" > /dev/null
cmp "$trace_a" "$trace_b"
head -c 1 "$trace_a" | grep -q '{' || { echo "trace export is not JSON" >&2; exit 1; }
cargo test -q -p grouter-integration-tests --test trace
rm -f "$trace_a" "$trace_b"

echo "==> experiments_output.txt is current (byte-identical to --serial)"
tmp_out=$(mktemp)
trap 'rm -f "$tmp_out"' EXIT
cargo run -q --release -p grouter-bench --bin all_experiments -- --serial > "$tmp_out"
cmp experiments_output.txt "$tmp_out"

echo "CI OK"
