#!/bin/sh
# Offline CI gate: formatting, lints, the workspace linter, the tier-1 test
# suite (with the data-plane invariant auditors unified on), the benchmark
# smoke run with its speedup gates, and the experiment-suite byte-identity
# check. Everything runs locally with no network access.
#
# Usage: scripts/ci.sh

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> grouter-lint (workspace rules over crates/)"
cargo run -q --release -p grouter-lint -- crates

echo "==> tier-1 tests, audited (cargo build --release && cargo test -q)"
# The workspace test graph includes crates/audit, whose dev-dependencies
# enable the `audit` feature on every data-plane crate — so this single run
# is the audited tier-1 pass, and crates/audit/tests/coverage.rs fails it
# if any invariant checker stopped firing.
cargo build --release
cargo test -q

echo "==> chaos smoke (fixed-seed fault injection over the GROUTER plane)"
# Bounded and deterministic: the suite sweeps a fixed seed batch of
# randomized fault plans (GPU/NIC/link failures) and asserts termination,
# leak-freedom, and byte-identical same-seed replay. Reproduce a failure
# with: GROUTER_CHAOS_SEED=<seed> cargo test -p grouter-integration-tests --test chaos
cargo test -q -p grouter-integration-tests --test chaos

echo "==> benchmark smoke (BENCH_flownet.json + BENCH_paths.json)"
scripts/bench_smoke.sh

echo "==> experiments_output.txt is current (byte-identical to --serial)"
tmp_out=$(mktemp)
trap 'rm -f "$tmp_out"' EXIT
cargo run -q --release -p grouter-bench --bin all_experiments -- --serial > "$tmp_out"
cmp experiments_output.txt "$tmp_out"

echo "CI OK"
