#!/bin/sh
# Quick-turnaround benchmark smoke run.
#
# Runs the `bench_flownet` churn group with a reduced sample count, scrapes
# the machine-readable CRITERION_JSON lines into BENCH_flownet.json, and
# checks that the incremental allocator holds its speedup target (>= 5x at
# 1024 concurrent flows) against the full-recompute reference.
#
# Usage: scripts/bench_smoke.sh [output.json]

set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_flownet.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

cargo bench --bench flownet -- --sample-size 10 2>&1 | tee "$raw"

grep '^CRITERION_JSON ' "$raw" | sed 's/^CRITERION_JSON //' | awk '
    BEGIN { print "{"; print "  \"group\": \"bench_flownet\","; print "  \"results\": [" }
    { lines[NR] = $0 }
    END {
        for (i = 1; i <= NR; i++)
            printf "    %s%s\n", lines[i], (i < NR ? "," : "")
        print "  ],"
    }
' > "$out.tmp"

# Append the headline speedup (reference median / incremental median at
# each population size) so the acceptance check is self-contained.
grep '^CRITERION_JSON ' "$raw" | sed 's/^CRITERION_JSON //' | awk '
    {
        name = $0; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
        med = $0; sub(/.*"median_ns":/, "", med); sub(/,.*/, "", med)
        if (name ~ /^flownet_churn\//) { sub(/^flownet_churn\//, "", name); inc[name] = med }
        else if (name ~ /^flownet_ref_churn\//) { sub(/^flownet_ref_churn\//, "", name); ref[name] = med }
    }
    END {
        printf "  \"speedup\": {"
        first = 1
        for (k in inc) if (k in ref) {
            printf "%s\"%s\": %.2f", (first ? "" : ", "), k, ref[k] / inc[k]
            first = 0
        }
        print "}"
        print "}"
    }
' >> "$out.tmp"
mv "$out.tmp" "$out"

echo "wrote $out"

# Acceptance gate: >= 5x on the 1024-flow churn workload.
speedup=$(sed -n 's/.*"1024": \([0-9.]*\).*/\1/p' "$out")
if [ -z "$speedup" ]; then
    echo "ERROR: no 1024-flow speedup in $out" >&2
    exit 1
fi
ok=$(awk -v s="$speedup" 'BEGIN { print (s >= 5.0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: 1024-flow churn speedup ${speedup}x is below the 5x target" >&2
    exit 1
fi
echo "1024-flow churn speedup: ${speedup}x (target: >= 5x)"
