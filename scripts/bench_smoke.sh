#!/bin/sh
# Quick-turnaround benchmark smoke run.
#
# Runs the `bench_flownet` churn, `bench_paths` selection, and `bench_obs`
# overhead groups
# with a reduced sample count, scrapes the machine-readable CRITERION_JSON
# lines into BENCH_flownet.json / BENCH_paths.json, and checks the two
# headline targets:
#   - incremental flow allocator >= 5x over the full-recompute reference at
#     1024 concurrent flows;
#   - cached Algorithm 1 selection >= 10x over the seed DFS selector on the
#     contended DGX-V100 case.
#   - disabled-path observability overhead <= 3% on 1k-flow churn
#     (BENCH_obs.json).
#   - end-to-end macro throughput on the contended DGX-V100 testbed
#     (BENCH_e2e.json): minimum ops/sec and simulated-seconds-per-wall-
#     second floors, plus the paired typed-vs-boxed dispatch ratio.
#
#   - cluster-scale sharded-vs-monolithic sweep (BENCH_sweep.json): the
#     sharded engine at >= 4 shards must hold the committed
#     sim-sec/wall-sec speedup floor over the single-shard core.
#
#   - disaggregated LLM serving, GROUTER vs Mooncake+ (BENCH_llm.json):
#     p99-TTFT and mean-TBT ratio floors, GROUTER migrations > 0.
#
# Usage: scripts/bench_smoke.sh [flownet.json] [paths.json] [obs.json] [e2e.json] [sweep.json] [llm.json]

set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_flownet.json}"
paths_out="${2:-BENCH_paths.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# `-p grouter-bench` keeps grouter-audit (a workspace member whose
# dev-dependencies switch the data-plane `audit` feature on) out of the
# feature graph: the benches must measure the unaudited hot paths.
cargo bench -p grouter-bench --bench flownet -- --sample-size 10 2>&1 | tee "$raw"

grep '^CRITERION_JSON ' "$raw" | sed 's/^CRITERION_JSON //' | awk '
    BEGIN { print "{"; print "  \"group\": \"bench_flownet\","; print "  \"results\": [" }
    { lines[NR] = $0 }
    END {
        for (i = 1; i <= NR; i++)
            printf "    %s%s\n", lines[i], (i < NR ? "," : "")
        print "  ],"
    }
' > "$out.tmp"

# Append the headline speedup (reference median / incremental median at
# each population size) so the acceptance check is self-contained.
grep '^CRITERION_JSON ' "$raw" | sed 's/^CRITERION_JSON //' | awk '
    {
        name = $0; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
        med = $0; sub(/.*"median_ns":/, "", med); sub(/,.*/, "", med)
        if (name ~ /^flownet_churn\//) { sub(/^flownet_churn\//, "", name); inc[name] = med }
        else if (name ~ /^flownet_ref_churn\//) { sub(/^flownet_ref_churn\//, "", name); ref[name] = med }
    }
    END {
        printf "  \"speedup\": {"
        first = 1
        for (k in inc) if (k in ref) {
            printf "%s\"%s\": %.2f", (first ? "" : ", "), k, ref[k] / inc[k]
            first = 0
        }
        print "}"
        print "}"
    }
' >> "$out.tmp"
mv "$out.tmp" "$out"

echo "wrote $out"

# Acceptance gate: >= 5x on the 1024-flow churn workload.
speedup=$(sed -n 's/.*"1024": \([0-9.]*\).*/\1/p' "$out")
if [ -z "$speedup" ]; then
    echo "ERROR: no 1024-flow speedup in $out" >&2
    exit 1
fi
ok=$(awk -v s="$speedup" 'BEGIN { print (s >= 5.0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: 1024-flow churn speedup ${speedup}x is below the 5x target" >&2
    exit 1
fi
echo "1024-flow churn speedup: ${speedup}x (target: >= 5x)"

# ---------------------------------------------------------------------------
# bench_paths: cached vs uncached Algorithm 1 selection.

cargo bench -p grouter-bench --bench paths -- --sample-size 10 2>&1 | tee "$raw"

grep '^CRITERION_JSON ' "$raw" | sed 's/^CRITERION_JSON //' | awk '
    BEGIN { print "{"; print "  \"group\": \"bench_paths\","; print "  \"results\": [" }
    { lines[NR] = $0 }
    END {
        for (i = 1; i <= NR; i++)
            printf "    %s%s\n", lines[i], (i < NR ? "," : "")
        print "  ],"
    }
' > "$paths_out.tmp"

# Per-case speedup: seed DFS selector median / cached selector median.
grep '^CRITERION_JSON ' "$raw" | sed 's/^CRITERION_JSON //' | awk '
    {
        name = $0; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
        med = $0; sub(/.*"median_ns":/, "", med); sub(/,.*/, "", med)
        if (name ~ /^paths_cached\//) { sub(/^paths_cached\//, "", name); cached[name] = med }
        else if (name ~ /^paths_uncached\//) { sub(/^paths_uncached\//, "", name); unc[name] = med }
    }
    END {
        printf "  \"speedup\": {"
        first = 1
        for (k in cached) if (k in unc) {
            printf "%s\"%s\": %.2f", (first ? "" : ", "), k, unc[k] / cached[k]
            first = 0
        }
        print "}"
        print "}"
    }
' >> "$paths_out.tmp"
mv "$paths_out.tmp" "$paths_out"

echo "wrote $paths_out"

# Acceptance gate: >= 10x cached-vs-uncached selection on the contended
# DGX-V100 case.
pspeed=$(sed -n 's/.*"v100_contended": \([0-9.]*\).*/\1/p' "$paths_out")
if [ -z "$pspeed" ]; then
    echo "ERROR: no v100_contended speedup in $paths_out" >&2
    exit 1
fi
ok=$(awk -v s="$pspeed" 'BEGIN { print (s >= 10.0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: contended V100 selection speedup ${pspeed}x is below the 10x target" >&2
    exit 1
fi
echo "contended V100 selection speedup: ${pspeed}x (target: >= 10x)"

# ---------------------------------------------------------------------------
# bench_obs: observability overhead on 1k-flow churn.

obs_out="${3:-BENCH_obs.json}"

cargo bench -p grouter-bench --bench obs -- --sample-size 10 2>&1 | tee "$raw"

grep '^CRITERION_JSON ' "$raw" | sed 's/^CRITERION_JSON //' | awk '
    BEGIN { print "{"; print "  \"group\": \"bench_obs\","; print "  \"results\": [" }
    { lines[NR] = $0 }
    END {
        for (i = 1; i <= NR; i++)
            printf "    %s%s\n", lines[i], (i < NR ? "," : "")
        print "  ],"
    }
' > "$obs_out.tmp"

# Overhead ratios. The gated "disabled" number is the paired
# measurement the bench prints on its OBS_OVERHEAD_JSON line (median of
# alternating-round time ratios) — comparing the Criterion groups, which
# run tens of seconds apart, picks up CPU frequency drift larger than
# the 3% bound. "enabled" stays a cross-group min_ns ratio and is
# informational only.
paired=$(sed -n 's/^OBS_OVERHEAD_JSON .*"disabled_vs_untraced":\([0-9.]*\).*/\1/p' "$raw")
if [ -z "$paired" ]; then
    echo "ERROR: no OBS_OVERHEAD_JSON line in bench output" >&2
    exit 1
fi
grep '^CRITERION_JSON ' "$raw" | sed 's/^CRITERION_JSON //' | awk -v paired="$paired" '
    {
        name = $0; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
        min = $0; sub(/.*"min_ns":/, "", min); sub(/,.*/, "", min)
        if (name ~ /^obs_untraced\//) base = min
        else if (name ~ /^obs_enabled\//) en = min
    }
    END {
        printf "  \"overhead\": {\"disabled\": %s, \"enabled\": %.4f}\n", paired, en / base
        print "}"
    }
' >> "$obs_out.tmp"
mv "$obs_out.tmp" "$obs_out"

echo "wrote $obs_out"

# Acceptance gate: disabled-path tracing costs <= 3% on the churn loop.
ratio=$(sed -n 's/.*"disabled": \([0-9.]*\).*/\1/p' "$obs_out")
if [ -z "$ratio" ]; then
    echo "ERROR: no disabled-path overhead ratio in $obs_out" >&2
    exit 1
fi
ok=$(awk -v r="$ratio" 'BEGIN { print (r <= 1.03) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: disabled-path tracing overhead ${ratio}x exceeds the 1.03x bound" >&2
    exit 1
fi
echo "disabled-path tracing overhead: ${ratio}x (bound: <= 1.03x)"

# ---------------------------------------------------------------------------
# bench_e2e: whole-trace macro throughput (typed event core vs the boxed-
# closure baseline, both testbeds).

e2e_out="${4:-BENCH_e2e.json}"

# Gate floors on the contended DGX-V100 testbed, set 25-30% below the
# numbers measured on the reference dev machine (recorded under "measured"
# in BENCH_e2e.json): regression protection, not aspiration. The ISSUE 6
# target of >= 3x ops/sec over the boxed-closure seed baseline was NOT
# reached: the event-core rework plus the allocation/bookkeeping work
# delivers ~1.7x end to end (552k vs 325.5k ops/sec), because the remaining
# cycles are genuine simulation arithmetic (water-filling rate allocation,
# percentile tracking, the stage state machine), not dispatch overhead —
# the paired typed-vs-boxed ratio on the *optimized* bookkeeping is ~1.0x,
# i.e. the seed's cost was the per-event allocations and tree walks around
# dispatch, not the BinaryHeap itself. The honest measured ratio is
# committed as "speedup_vs_seed_baseline" and floored here so it cannot
# silently regress.
e2e_ops_floor=400000
e2e_simwall_floor=1300

# a100_steady floors (ISSUE 7 satellite): the lighter single-box trace
# measured 661k ops/sec and 5345 sim-sec/wall-sec on the reference dev
# machine; floors sit 25-30% under that, same policy as the contended bed.
a100_ops_floor=480000
a100_simwall_floor=3900

cargo bench -p grouter-bench --bench e2e -- --sample-size 10 2>&1 | tee "$raw"

awk '
    /^E2E_JSON / {
        line = $0; sub(/^E2E_JSON /, "", line); work[++nw] = line
        name = line; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
        ops = line; sub(/.*"ops":/, "", ops); sub(/,.*/, "", ops)
        sim = line; sub(/.*"sim_ns":/, "", sim); sub(/[^0-9].*/, "", sim)
        opsOf[name] = ops; simOf[name] = sim
    }
    /^CRITERION_JSON / {
        line = $0; sub(/^CRITERION_JSON /, "", line); res[++nr] = line
        name = line; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
        med = line; sub(/.*"median_ns":/, "", med); sub(/,.*/, "", med)
        if (name ~ /^e2e\//) { sub(/^e2e\//, "", name); typed[name] = med }
        else if (name ~ /^e2e_boxed\//) { sub(/^e2e_boxed\//, "", name); boxed[name] = med }
    }
    END {
        print "{"
        print "  \"group\": \"bench_e2e\","
        print "  \"results\": ["
        for (i = 1; i <= nr; i++) printf "    %s%s\n", res[i], (i < nr ? "," : "")
        print "  ],"
        print "  \"work\": ["
        for (i = 1; i <= nw; i++) printf "    %s%s\n", work[i], (i < nw ? "," : "")
        print "  ],"
        # Frozen seed reference: the boxed-closure event core with the pre-
        # refactor bookkeeping (String clones, BTree tables) ran this exact
        # contended trace at 325513 ops/sec on the reference dev machine.
        print "  \"seed_baseline_ops_per_sec\": {\"v100_contended\": 325513},"
        print "  \"measured\": {"
        n = 0
        for (k in typed) n++
        i = 0
        for (k in typed) {
            i++
            ops_s = opsOf[k] * 1e9 / typed[k]
            simwall = simOf[k] / typed[k]
            ratio = (k in boxed) ? boxed[k] / typed[k] : 0
            printf "    \"%s\": {\"ops_per_sec\": %.0f, \"sim_sec_per_wall_sec\": %.1f, \"dispatch_speedup_vs_boxed\": %.2f}%s\n", k, ops_s, simwall, ratio, (i < n ? "," : "")
        }
        print "  },"
        printf "  \"speedup_vs_seed_baseline\": {\"v100_contended\": %.2f}\n", (opsOf["v100_contended"] * 1e9 / typed["v100_contended"]) / 325513
        print "}"
    }
' "$raw" > "$e2e_out.tmp"
mv "$e2e_out.tmp" "$e2e_out"

echo "wrote $e2e_out"

# Acceptance gates: ops/sec and simulated-seconds-per-wall-second floors on
# the contended testbed.
e2e_ops=$(sed -n 's/.*"v100_contended": {"ops_per_sec": \([0-9]*\),.*/\1/p' "$e2e_out")
e2e_simwall=$(sed -n 's/.*"v100_contended": {"ops_per_sec": [0-9]*, "sim_sec_per_wall_sec": \([0-9.]*\),.*/\1/p' "$e2e_out")
if [ -z "$e2e_ops" ] || [ -z "$e2e_simwall" ]; then
    echo "ERROR: no v100_contended measurements in $e2e_out" >&2
    exit 1
fi
ok=$(awk -v s="$e2e_ops" -v f="$e2e_ops_floor" 'BEGIN { print (s + 0 >= f + 0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: contended e2e throughput ${e2e_ops} ops/sec is below the ${e2e_ops_floor} floor" >&2
    exit 1
fi
ok=$(awk -v s="$e2e_simwall" -v f="$e2e_simwall_floor" 'BEGIN { print (s + 0 >= f + 0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: contended e2e sim-sec/wall-sec ${e2e_simwall} is below the ${e2e_simwall_floor} floor" >&2
    exit 1
fi
echo "contended e2e: ${e2e_ops} ops/sec (floor: ${e2e_ops_floor}), ${e2e_simwall} sim-sec/wall-sec (floor: ${e2e_simwall_floor})"

# Same floors policy on the steady single-box testbed.
a100_ops=$(sed -n 's/.*"a100_steady": {"ops_per_sec": \([0-9]*\),.*/\1/p' "$e2e_out")
a100_simwall=$(sed -n 's/.*"a100_steady": {"ops_per_sec": [0-9]*, "sim_sec_per_wall_sec": \([0-9.]*\),.*/\1/p' "$e2e_out")
if [ -z "$a100_ops" ] || [ -z "$a100_simwall" ]; then
    echo "ERROR: no a100_steady measurements in $e2e_out" >&2
    exit 1
fi
ok=$(awk -v s="$a100_ops" -v f="$a100_ops_floor" 'BEGIN { print (s + 0 >= f + 0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: steady e2e throughput ${a100_ops} ops/sec is below the ${a100_ops_floor} floor" >&2
    exit 1
fi
ok=$(awk -v s="$a100_simwall" -v f="$a100_simwall_floor" 'BEGIN { print (s + 0 >= f + 0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: steady e2e sim-sec/wall-sec ${a100_simwall} is below the ${a100_simwall_floor} floor" >&2
    exit 1
fi
echo "steady e2e: ${a100_ops} ops/sec (floor: ${a100_ops_floor}), ${a100_simwall} sim-sec/wall-sec (floor: ${a100_simwall_floor})"

# ---------------------------------------------------------------------------
# bench_sweep: cluster-scale monolithic vs sharded (ISSUE 7 tentpole).

sweep_out="${5:-BENCH_sweep.json}"

# Committed speedup floor: sharded at >= 4 shards on ONE worker thread vs
# the monolithic single-shard core, sim-sec/wall-sec ratio on the same
# trace. The ISSUE 7 target of >= 2x at >= 4 shards was NOT reached: the
# full 1M-invocation run measures 1.18x at 64 GPUs (8 shards) and 1.12x
# at 128 GPUs (16 shards). Profiling shows why — the monolithic core has
# no single superlinear term to shard away (a RoundRobin-placement
# control run is *slower* than the cluster-wide MAPA scan, because
# placement quality dominates scan cost), so the sharded win is the
# diffuse architectural one: group-local timelines, placement domains
# and flow networks, and eight small cache-friendly worlds instead of
# one large one. Worker threads add nothing on the single-CPU reference
# machine (w2/w8 rows are strictly slower) and are covered by the
# determinism smoke instead. The honest measured ratios are committed in
# BENCH_sweep.json under "speedup_vs_monolithic"; the floor below is the
# regression gate — sharding must never make the same trace slower —
# set under the measured 1.18x with margin for run-to-run noise on
# shared hardware.
sweep_floor=1.05
# The smoke runs a reduced trace; the committed BENCH_sweep.json numbers
# come from the full 1M-invocation run (cargo bench -p grouter-bench
# --bench sweep with no override).
sweep_n="${GROUTER_SWEEP_INVOCATIONS:-200000}"

GROUTER_SWEEP_INVOCATIONS="$sweep_n" \
    cargo bench -p grouter-bench --bench sweep 2>&1 | tee "$raw"

grep '^SWEEP_JSON ' "$raw" | sed 's/^SWEEP_JSON //' | awk '
    BEGIN { print "{"; print "  \"group\": \"bench_sweep\","; print "  \"results\": [" }
    { lines[NR] = $0 }
    END {
        for (i = 1; i <= NR; i++)
            printf "    %s%s\n", lines[i], (i < NR ? "," : "")
        print "  ],"
    }
' > "$sweep_out.tmp"

# Headline ratios: sharded single-worker sim/wall over the monolithic core
# at the same GPU count.
grep '^SWEEP_JSON ' "$raw" | sed 's/^SWEEP_JSON //' | awk '
    {
        name = $0; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
        spw = $0; sub(/.*"sim_per_wall":/, "", spw); sub(/[^0-9.].*/, "", spw)
        v[name] = spw
    }
    END {
        printf "  \"speedup_vs_monolithic\": {"
        first = 1
        for (gpus = 64; gpus <= 128; gpus += 64) {
            mono = v["mono" gpus]; shard = v["uniform" gpus "/w1"]
            if (mono > 0 && shard > 0) {
                printf "%s\"uniform%d/w1\": %.2f", (first ? "" : ", "), gpus, shard / mono
                first = 0
            }
        }
        print "}"
        print "}"
    }
' >> "$sweep_out.tmp"
mv "$sweep_out.tmp" "$sweep_out"

echo "wrote $sweep_out"

# Acceptance gate: the committed floor at >= 4 shards (8 groups, 64 GPUs).
sspeed=$(sed -n 's/.*"uniform64\/w1": \([0-9.]*\).*/\1/p' "$sweep_out")
if [ -z "$sspeed" ]; then
    echo "ERROR: no uniform64/w1 speedup in $sweep_out" >&2
    exit 1
fi
ok=$(awk -v s="$sspeed" -v f="$sweep_floor" 'BEGIN { print (s + 0 >= f + 0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: sharded-vs-monolithic speedup ${sspeed}x is below the ${sweep_floor}x floor" >&2
    exit 1
fi
echo "sharded 64-GPU sweep speedup: ${sspeed}x (floor: >= ${sweep_floor}x)"

# The heterogeneous preset (alternating V100/A100 groups — the only sweep
# row exercising A100 iron) was measured but never gated. The committed
# full run has hetero64/w8 at 12.64 sim-sec/wall-sec vs 11.42 for
# uniform64/w8: mixing in the faster A100 groups is a mild speedup, never
# a cliff. Gate the hetero/uniform ratio at the same worker count — it is
# scale-invariant under the reduced smoke trace — with wide noise margin.
hetero_ratio_floor=0.75
hval=$(grep '^SWEEP_JSON ' "$raw" | grep '"name":"hetero64/w8"' \
    | sed -n 's/.*"sim_per_wall":\([0-9.]*\).*/\1/p')
uval=$(grep '^SWEEP_JSON ' "$raw" | grep '"name":"uniform64/w8"' \
    | sed -n 's/.*"sim_per_wall":\([0-9.]*\).*/\1/p')
if [ -z "$hval" ] || [ -z "$uval" ]; then
    echo "ERROR: missing hetero64/w8 or uniform64/w8 sim_per_wall in sweep output" >&2
    exit 1
fi
ok=$(awk -v h="$hval" -v u="$uval" -v f="$hetero_ratio_floor" \
    'BEGIN { print (u > 0 && h / u >= f) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: hetero64/w8 (${hval}) fell below ${hetero_ratio_floor}x of uniform64/w8 (${uval})" >&2
    exit 1
fi
echo "hetero (A100) 64-GPU sweep: ${hval} sim-sec/wall-sec vs uniform ${uval} (floor: >= ${hetero_ratio_floor}x ratio)"

# ---------------------------------------------------------------------------
# bench_llm: disaggregated LLM serving, GROUTER vs Mooncake+ (ISSUE 10).

llm_out="${6:-BENCH_llm.json}"

# Committed gates at the reference operating point (10k requests, 20 rps,
# 2x8 H800, 4 prefill + 4 decode per group, pressure from decode
# activations): GROUTER must beat Mooncake+ on p99 TTFT and mean TBT, and
# its migration count must be strictly positive — the TTFT/TBT win has to
# come *through* pressure-triggered KV migration, not from an idle pool.
# Measured on the reference dev machine: p99-TTFT ratio ~17.7x (Mooncake+'s
# single cache GPU saturates on handoff relays at this load and queues),
# TBT ratio ~1.25x. Floors sit far below with margin: regression gates,
# not aspiration.
llm_ttft_ratio_floor=1.2
llm_tbt_ratio_floor=1.02
llm_n="${GROUTER_LLM_REQUESTS:-10000}"

GROUTER_LLM_REQUESTS="$llm_n" \
    cargo bench -p grouter-bench --bench llm 2>&1 | tee "$raw"

grep '^LLM_JSON ' "$raw" | sed 's/^LLM_JSON //' | awk '
    BEGIN { print "{"; print "  \"group\": \"bench_llm\","; print "  \"results\": [" }
    { lines[NR] = $0 }
    END {
        for (i = 1; i <= NR; i++)
            printf "    %s%s\n", lines[i], (i < NR ? "," : "")
        print "  ],"
    }
' > "$llm_out.tmp"

# Headline ratios: Mooncake+ over GROUTER on the gated metrics, plus
# GROUTER's migration count.
grep '^LLM_JSON ' "$raw" | sed 's/^LLM_JSON //' | awk '
    {
        name = $0; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
        p99 = $0; sub(/.*"ttft_p99_us":/, "", p99); sub(/,.*/, "", p99)
        tbt = $0; sub(/.*"tbt_mean_us":/, "", tbt); sub(/,.*/, "", tbt)
        mig = $0; sub(/.*"migrations":/, "", mig); sub(/,.*/, "", mig)
        ttft[name] = p99; tbtm[name] = tbt; migs[name] = mig
    }
    END {
        printf "  \"ttft_p99_ratio_vs_mooncake\": %.2f,\n", ttft["mooncake"] / ttft["grouter"]
        printf "  \"tbt_mean_ratio_vs_mooncake\": %.2f,\n", tbtm["mooncake"] / tbtm["grouter"]
        printf "  \"grouter_migrations\": %s\n", migs["grouter"]
        print "}"
    }
' >> "$llm_out.tmp"
mv "$llm_out.tmp" "$llm_out"

echo "wrote $llm_out"

# Acceptance gates: the committed ratio floors plus migrations > 0.
lr=$(sed -n 's/.*"ttft_p99_ratio_vs_mooncake": \([0-9.]*\).*/\1/p' "$llm_out")
tr_=$(sed -n 's/.*"tbt_mean_ratio_vs_mooncake": \([0-9.]*\).*/\1/p' "$llm_out")
mig=$(sed -n 's/.*"grouter_migrations": \([0-9]*\).*/\1/p' "$llm_out")
if [ -z "$lr" ] || [ -z "$tr_" ] || [ -z "$mig" ]; then
    echo "ERROR: missing LLM headline numbers in $llm_out" >&2
    exit 1
fi
ok=$(awk -v s="$lr" -v f="$llm_ttft_ratio_floor" 'BEGIN { print (s + 0 >= f + 0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: p99-TTFT ratio ${lr}x vs Mooncake+ is below the ${llm_ttft_ratio_floor}x floor" >&2
    exit 1
fi
ok=$(awk -v s="$tr_" -v f="$llm_tbt_ratio_floor" 'BEGIN { print (s + 0 >= f + 0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
    echo "ERROR: mean-TBT ratio ${tr_}x vs Mooncake+ is below the ${llm_tbt_ratio_floor}x floor" >&2
    exit 1
fi
if [ "$mig" -le 0 ]; then
    echo "ERROR: GROUTER reported no KV migrations — the win did not come through pressure" >&2
    exit 1
fi
echo "llm serving: p99-TTFT ${lr}x, mean-TBT ${tr_}x vs Mooncake+ (floors: ${llm_ttft_ratio_floor}x / ${llm_tbt_ratio_floor}x), ${mig} migrations"
