//! LLM Mixture-of-Agents (paper §6.4): pass a prompt's KV cache between
//! agent stages on separate 8×H800 nodes and measure the receiver's
//! time-to-first-token (TTFT).
//!
//! ```text
//! cargo run -p grouter-examples --bin llm_moa --release
//! ```

use std::sync::Arc;

use grouter::runtime::dataplane::{DataPlane, Destination};
use grouter::runtime::metrics::PassCategory;
use grouter::runtime::placement::PlacementPolicy;
use grouter::runtime::spec::{StageSpec, WorkflowSpec};
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::time::SimTime;
use grouter::topology::{presets, GpuRef};
use grouter::{GrouterConfig, GrouterPlane};
use grouter_baselines::{InflessPlane, MooncakePlane};
use grouter_workloads::llm::LlmModel;

/// Sender agent on node 0 → receiver agent on node 1, passing the KV cache.
fn kv_workflow(model: LlmModel, input_tokens: u32, tp: u32) -> Arc<WorkflowSpec> {
    let kv = model.kv_bytes(input_tokens);
    let mut wf = WorkflowSpec::new("moa-hop", 1e6);
    let sender = wf.push(StageSpec::gpu(
        "agent-sender",
        vec![],
        model.prefill_latency(input_tokens, tp),
        kv,
        20e9,
    ));
    wf.push(StageSpec::gpu(
        "agent-receiver",
        vec![sender],
        model.first_token_latency(tp),
        1e6,
        20e9,
    ));
    Arc::new(wf)
}

/// Receiver TTFT = KV transfer time + first-token latency.
fn ttft_ms(plane: Box<dyn DataPlane>, model: LlmModel, tokens: u32, tp: u32) -> f64 {
    let pin = PlacementPolicy::Pinned(vec![
        Destination::Gpu(GpuRef::new(0, 1)),
        Destination::Gpu(GpuRef::new(1, 2)),
    ]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0, 1],
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::h800x8(), 2, plane, cfg);
    rt.submit(kv_workflow(model, tokens, tp), SimTime::ZERO);
    rt.run();
    let rec = &rt.metrics().records()[0];
    let transfer = rec.passing_of(PassCategory::GpuGpu).as_millis_f64()
        + rec.passing_of(PassCategory::GpuHost).as_millis_f64();
    transfer + model.first_token_latency(tp).as_millis_f64()
}

fn main() {
    println!("MoA KV-cache passing between 8xH800 nodes (200 Gbps NICs).\n");

    println!("--- TTFT vs input length (7B, TP=1), cf. Fig. 19a ---");
    println!(
        "{:<8} {:>14} {:>14} {:>14}",
        "tokens", "INFless+ (ms)", "Mooncake+ (ms)", "GROUTER (ms)"
    );
    for tokens in [1024u32, 2048, 4096, 8192] {
        let inf = ttft_ms(Box::new(InflessPlane::new()), LlmModel::Llama7B, tokens, 1);
        let moon = ttft_ms(
            Box::new(MooncakePlane::new(1)),
            LlmModel::Llama7B,
            tokens,
            1,
        );
        let ours = ttft_ms(
            Box::new(GrouterPlane::new(GrouterConfig::full())),
            LlmModel::Llama7B,
            tokens,
            1,
        );
        println!("{:<8} {:>14.1} {:>14.1} {:>14.1}", tokens, inf, moon, ours);
    }

    println!("\n--- TTFT vs model and tensor parallelism (4K tokens), cf. Fig. 19b ---");
    println!(
        "{:<8} {:<4} {:>14} {:>14} {:>14}",
        "model", "TP", "INFless+ (ms)", "Mooncake+ (ms)", "GROUTER (ms)"
    );
    for model in LlmModel::ALL {
        for tp in [1u32, 8] {
            let inf = ttft_ms(Box::new(InflessPlane::new()), model, 4096, tp);
            let moon = ttft_ms(Box::new(MooncakePlane::new(tp)), model, 4096, tp);
            let ours = ttft_ms(
                Box::new(GrouterPlane::new(GrouterConfig::full())),
                model,
                4096,
                tp,
            );
            println!(
                "{:<8} {:<4} {:>14.1} {:>14.1} {:>14.1}",
                model.name(),
                tp,
                inf,
                moon,
                ours
            );
        }
    }
    println!("\nAt TP=8 Mooncake+ also drives multiple NICs, narrowing the gap");
    println!("to GROUTER's remaining advantage: locality (no cache-GPU relay).");
}
