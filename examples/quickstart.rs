//! Quickstart: run one inference workflow on a simulated DGX-V100 node and
//! compare GROUTER against the host-centric baseline.
//!
//! ```text
//! cargo run -p grouter-examples --bin quickstart
//! ```

use std::sync::Arc;

use grouter::runtime::dataplane::DataPlane;
use grouter::runtime::spec::{StageSpec, WorkflowSpec};
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::time::{SimDuration, SimTime};
use grouter::topology::presets;
use grouter::{GrouterConfig, GrouterPlane};
use grouter_baselines::{InflessPlane, NvshmemPlane};

const MB: f64 = 1e6;

/// A three-stage detection pipeline: decode (CPU) → detect → classify.
fn pipeline() -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("quickstart", 4.0 * MB);
    let decode = wf.push(StageSpec::cpu(
        "decode",
        vec![],
        SimDuration::from_millis(4),
        48.0 * MB,
    ));
    let detect = wf.push(StageSpec::gpu(
        "detect",
        vec![decode],
        SimDuration::from_millis(22),
        24.0 * MB,
        1.9e9,
    ));
    wf.push(StageSpec::gpu(
        "classify",
        vec![detect],
        SimDuration::from_millis(9),
        1.0 * MB,
        0.8e9,
    ));
    Arc::new(wf)
}

fn run(plane: Box<dyn DataPlane>) -> (String, f64, f64, f64) {
    let name = plane.name().to_string();
    let mut rt = Runtime::new(presets::dgx_v100(), 1, plane, RuntimeConfig::default());
    for i in 0..20 {
        rt.submit(pipeline(), SimTime(i * 100_000_000));
    }
    rt.run();
    let m = rt.metrics();
    let (compute, gg, gh, _) = m.breakdown_ms(None);
    (name, m.latency_ms(None).mean(), compute, gg + gh)
}

fn main() {
    println!("GROUTER quickstart — 20 requests of a decode→detect→classify pipeline");
    println!("on one simulated DGX-V100 node (8×V100, asymmetric NVLink).\n");
    println!(
        "{:<12} {:>14} {:>14} {:>16}",
        "plane", "mean e2e (ms)", "compute (ms)", "data passing (ms)"
    );
    let planes: Vec<Box<dyn DataPlane>> = vec![
        Box::new(InflessPlane::new()),
        Box::new(NvshmemPlane::new(42)),
        Box::new(GrouterPlane::new(GrouterConfig::full())),
    ];
    let mut rows = Vec::new();
    for plane in planes {
        let row = run(plane);
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>16.2}",
            row.0, row.1, row.2, row.3
        );
        rows.push(row);
    }
    let host = rows[0].3;
    let ours = rows[2].3;
    println!(
        "\nGROUTER cuts data-passing latency by {:.0}% vs the host-centric plane.",
        (1.0 - ours / host) * 100.0
    );
}
