//! The paper's motivating application (Fig. 1): the *Traffic* monitoring
//! workflow under a bursty Azure-style trace, across all four data planes.
//!
//! ```text
//! cargo run -p grouter-examples --bin traffic_pipeline --release
//! ```

use grouter::runtime::dataplane::DataPlane;
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::presets;
use grouter::{GrouterConfig, GrouterPlane};
use grouter_baselines::{deepplan_plane, InflessPlane, NvshmemPlane};
use grouter_workloads::apps::{traffic, WorkloadParams};
use grouter_workloads::azure::{generate_trace, ArrivalPattern};
use grouter_workloads::models::GpuClass;

fn run(plane: Box<dyn DataPlane>) -> (String, f64, f64, f64, f64) {
    let name = plane.name().to_string();
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    let spec = traffic(params);
    let mut rng = DetRng::new(2024);
    let trace = generate_trace(
        ArrivalPattern::Bursty,
        12.0,
        SimDuration::from_secs(20),
        &mut rng,
    );
    let mut rt = Runtime::new(presets::dgx_v100(), 1, plane, RuntimeConfig::default());
    for t in &trace {
        rt.submit(spec.clone(), *t);
    }
    rt.run();
    let m = rt.metrics();
    let lat = m.latency_ms(None);
    let (compute, gg, gh, _) = m.breakdown_ms(None);
    (name, lat.p50(), lat.p99(), compute, gg + gh)
}

fn main() {
    println!("Traffic-monitoring workflow (Fig. 1), bursty trace, DGX-V100.");
    println!("decode → preprocess → YOLO → postprocess → person|car recognition\n");
    println!(
        "{:<12} {:>10} {:>10} {:>13} {:>15}",
        "plane", "p50 (ms)", "p99 (ms)", "compute (ms)", "data pass (ms)"
    );
    let planes: Vec<Box<dyn DataPlane>> = vec![
        Box::new(InflessPlane::new()),
        Box::new(NvshmemPlane::new(7)),
        deepplan_plane(7),
        Box::new(GrouterPlane::new(GrouterConfig::full())),
    ];
    let mut p99s = Vec::new();
    for plane in planes {
        let (name, p50, p99, compute, pass) = run(plane);
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>13.1} {:>15.1}",
            name, p50, p99, compute, pass
        );
        p99s.push((name, p99));
    }
    let base = p99s[0].1;
    let ours = p99s.last().expect("rows").1;
    println!(
        "\nGROUTER reduces P99 latency by {:.0}% vs INFless+ on this trace.",
        (1.0 - ours / base) * 100.0
    );
}
