//! Elastic GPU storage under memory pressure (paper §4.4 / Fig. 18):
//! run a bursty workload with most GPU memory occupied by models and watch
//! how eviction policy and proactive restoration change tail latency.
//!
//! ```text
//! cargo run -p grouter-examples --bin elastic_storage --release
//! ```

use std::sync::Arc;

use grouter::runtime::dataplane::{DataPlane, Destination};
use grouter::runtime::placement::PlacementPolicy;
use grouter::runtime::spec::{StageSpec, WorkflowSpec};
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::{presets, GpuRef};
use grouter::{GrouterConfig, GrouterPlane};
use grouter_baselines::NvshmemPlane;
use grouter_workloads::azure::{generate_trace, ArrivalPattern};

const MB: f64 = 1e6;

/// Producer/consumer chain on two GPUs: outputs pile up in GPU storage
/// while the consumer queue drains, forcing migrations when memory is
/// scarce.
fn chain() -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("chain", 2.0 * MB);
    let a = wf.push(StageSpec::gpu(
        "produce",
        vec![],
        SimDuration::from_millis(4),
        220.0 * MB,
        1e9,
    ));
    wf.push(StageSpec::gpu(
        "consume",
        vec![a],
        SimDuration::from_millis(18),
        1.0 * MB,
        1e9,
    ));
    Arc::new(wf)
}

fn run(plane: Box<dyn DataPlane>, occupied_frac: f64) -> (String, f64, f64, u64) {
    let name = plane.name().to_string();
    let pin = PlacementPolicy::Pinned(vec![
        Destination::Gpu(GpuRef::new(0, 0)),
        Destination::Gpu(GpuRef::new(0, 3)),
    ]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0],
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::dgx_v100(), 1, plane, cfg);
    // Models occupy most of both GPUs before any request arrives.
    let capacity = rt.world().topo.gpu_mem_bytes();
    for idx in [0usize, 3] {
        rt.world_mut().pools[idx].set_runtime_used(capacity * occupied_frac);
    }
    let mut rng = DetRng::new(99);
    let trace = generate_trace(
        ArrivalPattern::Bursty,
        25.0,
        SimDuration::from_secs(12),
        &mut rng,
    );
    for t in &trace {
        rt.submit(chain(), *t);
    }
    rt.run();
    let m = rt.metrics();
    let lat = m.latency_ms(None);
    let pool = &rt.world().pools[0];
    (name, lat.p50(), lat.p99(), pool.native_allocs())
}

fn main() {
    println!("Elastic storage under memory pressure (cf. Fig. 18).");
    println!("Producer/consumer chain, bursty trace, 80% of GPU memory taken by models.\n");
    println!(
        "{:<22} {:>10} {:>10} {:>14}",
        "plane", "p50 (ms)", "p99 (ms)", "native allocs"
    );
    let runs: Vec<(Box<dyn DataPlane>, &str)> = vec![
        (Box::new(NvshmemPlane::new(3)), "NVSHMEM+ (LRU)"),
        (
            Box::new(GrouterPlane::new(GrouterConfig::full().no_es())),
            "GROUTER w/o ES (LRU)",
        ),
        (
            Box::new(GrouterPlane::new(GrouterConfig::full())),
            "GROUTER (queue-aware)",
        ),
    ];
    let mut p99 = Vec::new();
    for (plane, label) in runs {
        let (_, p50, p99v, allocs) = run(plane, 0.8);
        println!("{:<22} {:>10.1} {:>10.1} {:>14}", label, p50, p99v, allocs);
        p99.push(p99v);
    }
    println!(
        "\nQueue-aware migration + proactive restore cuts P99 by {:.0}% vs LRU.",
        (1.0 - p99[2] / p99[0]) * 100.0
    );
}
