//! SLO-aware bandwidth partitioning (paper §4.3.2 / Fig. 17): a
//! latency-critical *driving* workflow co-located with the transfer-hungry
//! *video* workflow, with and without GROUTER's `Rate_least` guarantees.
//!
//! ```text
//! cargo run -p grouter-examples --bin bandwidth_partitioning --release
//! ```

use std::sync::Arc;

use grouter::runtime::spec::WorkflowSpec;
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::{SimDuration, SimTime};
use grouter::topology::presets;
use grouter::{GrouterConfig, GrouterPlane};
use grouter_workloads::apps::{driving, video, WorkloadParams};
use grouter_workloads::azure::{generate_trace, ArrivalPattern};
use grouter_workloads::models::GpuClass;

/// Calibrate the driving workflow's SLO at 1.5× its solo mean latency.
fn calibrated_driving(params: WorkloadParams) -> Arc<WorkflowSpec> {
    let spec = driving(params);
    let mut rt = Runtime::new(
        presets::dgx_v100(),
        1,
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        RuntimeConfig::default(),
    );
    for i in 0..10u64 {
        rt.submit(spec.clone(), SimTime(i * 2_000_000_000));
    }
    rt.run();
    let solo_ms = rt.metrics().latency_ms(None).mean();
    let mut wf = (*spec).clone();
    wf.slo = SimDuration::from_secs_f64(solo_ms / 1e3 * 1.5);
    Arc::new(wf)
}

fn corun(cfg: GrouterConfig, d: &Arc<WorkflowSpec>, v: &Arc<WorkflowSpec>) -> (f64, f64, f64) {
    let mut rt = Runtime::new(
        presets::dgx_v100(),
        1,
        Box::new(GrouterPlane::new(cfg)),
        RuntimeConfig::default(),
    );
    let mut rng = DetRng::new(55);
    let mut sub = rng.fork(0);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        8.0,
        SimDuration::from_secs(12),
        &mut sub,
    ) {
        rt.submit(d.clone(), t);
    }
    let mut sub = rng.fork(1);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        8.0,
        SimDuration::from_secs(12),
        &mut sub,
    ) {
        rt.submit(v.clone(), t);
    }
    rt.run();
    let m = rt.metrics();
    (
        m.latency_ms(Some("driving")).p99(),
        m.slo_compliance(Some("driving"), d.slo) * 100.0,
        m.latency_ms(Some("video")).p99(),
    )
}

fn main() {
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    println!("Bandwidth partitioning under co-location (cf. Fig. 17).");
    println!("driving (latency-critical, SLO = 1.5x solo) + video (transfer-hungry), DGX-V100.\n");

    let d = calibrated_driving(params);
    let v = video(params);
    println!("driving SLO: {:.0} ms\n", d.slo.as_millis_f64());
    println!(
        "{:<34} {:>16} {:>12} {:>14}",
        "variant", "driving p99 (ms)", "SLO met", "video p99 (ms)"
    );
    let (p99, slo, vp99) = corun(GrouterConfig::full(), &d, &v);
    println!(
        "{:<34} {:>16.0} {:>11.0}% {:>14.0}",
        "GROUTER (Rate_least guarantees)", p99, slo, vp99
    );
    let (p99n, slon, vp99n) = corun(GrouterConfig::full().no_bh(), &d, &v);
    println!(
        "{:<34} {:>16.0} {:>11.0}% {:>14.0}",
        "no partitioning (shared links)", p99n, slon, vp99n
    );
    println!(
        "\npartitioning cuts driving p99 by {:.0}% (video p99 changes by {:+.0}%).",
        (1.0 - p99 / p99n) * 100.0,
        (vp99 / vp99n - 1.0) * 100.0
    );
}
