//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset used by this workspace's benches: `Criterion`,
//! `Bencher::iter`, `black_box`, `criterion_group!` (named form) and
//! `criterion_main!`. Each benchmark warms up briefly, picks an iteration
//! count targeting ~5 ms per sample, then records `sample_size` samples.
//!
//! Results are printed human-readably plus one machine-readable line per
//! benchmark (`CRITERION_JSON {...}`) that `scripts/bench_smoke.sh` scrapes
//! into JSON artifacts.
//!
//! Recognised CLI arguments (others are ignored for `cargo bench`
//! compatibility): `--sample-size N`, and a bare token as a name filter.

use std::sync::OnceLock;
use std::time::Instant;

pub use std::hint::black_box;

static CLI: OnceLock<CliArgs> = OnceLock::new();

#[derive(Default, Debug)]
struct CliArgs {
    sample_size: Option<usize>,
    filter: Option<String>,
}

/// Parse and record CLI arguments; called by the `criterion_main!` entry
/// point before any group runs.
pub fn init_from_args() {
    let mut parsed = CliArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sample-size" => {
                parsed.sample_size = args.next().and_then(|v| v.parse().ok());
            }
            "--bench" | "--test" | "--nocapture" => {}
            s if s.starts_with("--") => {
                // Unknown criterion flag (e.g. --noplot): skip, consuming a
                // value if one follows that is not itself a flag.
            }
            s => parsed.filter = Some(s.to_string()),
        }
    }
    let _ = CLI.set(parsed);
}

/// Benchmark driver. Mirrors criterion's builder-style configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cli = CLI.get_or_init(CliArgs::default);
        if let Some(filter) = &cli.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let samples = cli.sample_size.unwrap_or(self.sample_size).max(2);
        let mut bencher = Bencher {
            samples,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(r) => r.report(name),
            None => eprintln!("warning: bench {name} never called Bencher::iter"),
        }
        self
    }
}

/// Passed to each benchmark closure; `iter` measures the hot loop.
pub struct Bencher {
    samples: usize,
    result: Option<Measurement>,
}

struct Measurement {
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

impl Measurement {
    fn report(&self, name: &str) {
        println!(
            "bench: {name:<48} median {:>12} mean {:>12} min {:>12} ({} samples x {} iters)",
            fmt_ns(self.median_ns),
            fmt_ns(self.mean_ns),
            fmt_ns(self.min_ns),
            self.samples,
            self.iters_per_sample,
        );
        println!(
            "CRITERION_JSON {{\"name\":\"{name}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
            self.median_ns, self.mean_ns, self.min_ns, self.samples, self.iters_per_sample,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warmup: estimate per-iteration cost over ~20 ms.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed().as_millis() < 20 || warmup_iters < 3 {
            black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        // Target ~5 ms per sample, capped to keep total runtime bounded.
        let iters_per_sample = ((5e6 / est_ns.max(0.1)) as u64).clamp(1, 1_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let min_ns = samples_ns[0];
        let median_ns = samples_ns[samples_ns.len() / 2];
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        self.result = Some(Measurement {
            mean_ns,
            median_ns,
            min_ns,
            samples: samples_ns.len(),
            iters_per_sample,
        });
    }
}

/// Named-form group definition, e.g.
/// `criterion_group!(name = benches; config = Criterion::default(); targets = a, b)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Generates `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args();
            $($group();)+
        }
    };
}
