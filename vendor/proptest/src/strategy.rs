//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from a deterministic RNG.
///
/// Combinator methods are `Self: Sized` so the trait stays object-safe
/// (`prop_oneof!` erases arm types behind `BoxedStrategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*
    };
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical unconstrained strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
            let s = (0usize..4).generate(&mut rng);
            assert!(s < 4);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_case("compose", 0);
        let s = (1u32..5).prop_map(|v| v * 10).prop_flat_map(|hi| 0u32..hi);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 50);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let mut rng = TestRng::for_case("union", 0);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
