//! Deterministic RNG and run configuration.

/// Per-test configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Splitmix64-based deterministic generator. Each (test name, case index)
/// pair maps to an independent, reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream for one case of one named property.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name keeps streams distinct across properties.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn cases_differ() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
