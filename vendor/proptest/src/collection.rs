//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted by [`vec`] as a length spec: a fixed size or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of `element` values with a length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_respects_spec() {
        let mut rng = TestRng::for_case("vec_len", 0);
        let s = vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let fixed = vec(0u32..10, 3usize);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }
}
