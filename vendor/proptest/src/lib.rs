//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest's API that the workspace's property
//! tests actually use: range / tuple / `Just` / `any::<bool>()` strategies,
//! `prop_map` / `prop_flat_map`, `proptest::collection::vec`, `prop_oneof!`,
//! the `proptest!` macro with an optional `#![proptest_config(..)]` header,
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with its case index and the
//!   deterministic seed; re-running reproduces it exactly.
//! * **Deterministic generation.** Inputs derive from a fixed seed mixed
//!   with the case index (splitmix64), so test runs are reproducible
//!   without `proptest-regressions` files (existing ones are ignored).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Property-test entry point. Accepts one optional
/// `#![proptest_config(expr)]` header followed by any number of
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(msg) = outcome {
                        panic!("property failed on case {case}: {msg}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property; on failure the harness reports the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", format!($($fmt)*), file!(), line!()
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}` ({}:{})", l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}`: {} ({}:{})",
                l, r, format!($($fmt)*), file!(), line!()
            ));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(format!(
                "assertion failed: `{:?} != {:?}` ({}:{})",
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
