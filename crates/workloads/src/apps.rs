//! The benchmarking suite (paper Fig. 12).
//!
//! Six real-world inference workflows spanning the four DAG patterns:
//!
//! | workflow | pattern | source |
//! |---|---|---|
//! | Traffic | condition | Boggart \[3\] / Fig. 1 |
//! | Driving | sequence | AdaInf \[40\] |
//! | Video | fan-out | Aquatope \[55\] |
//! | Image | fan-in | Cocktail \[11\] |
//! | MoA | layered fan-in/out | Mixture-of-Agents \[45\] |
//! | Chatbot | sequence (multi-stage QoS service) | Astraea-style \[54\], substituted for the sixth workflow (DESIGN.md §3) |
//!
//! Intermediate data sizes are per-item (frame/image/chunk) and scale with
//! batch size; compute latencies come from [`crate::models`].

use std::sync::Arc;

use grouter_runtime::spec::{StageSpec, WorkflowSpec};
use grouter_sim::time::SimDuration;

use crate::models::{self, GpuClass, MIB};

/// Batch size and GPU class a suite instance is built for.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadParams {
    pub batch: u32,
    pub gpu: GpuClass,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            batch: 8,
            gpu: GpuClass::V100,
        }
    }
}

impl WorkloadParams {
    fn cpu_ms(&self, per_item_ms: f64, base_ms: f64) -> SimDuration {
        SimDuration::from_nanos(((base_ms + per_item_ms * self.batch as f64) * 1e6).round() as u64)
    }

    fn per_item(&self, bytes_per_item: f64) -> f64 {
        bytes_per_item * self.batch as f64
    }
}

/// *Traffic* (Fig. 1): decode → preprocess → YOLO detection → postprocess →
/// conditional person/vehicle recognition.
pub fn traffic(p: WorkloadParams) -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("traffic", p.per_item(0.4 * MIB));
    let decode = wf.push(StageSpec::cpu(
        "decode",
        vec![],
        p.cpu_ms(2.0, 1.0),
        p.per_item(6.0 * MIB), // raw 1080p frames
    ));
    let pre = wf.push(StageSpec::gpu(
        "preprocess",
        vec![decode],
        models::PREPROCESS.latency(p.batch, p.gpu),
        p.per_item(4.4 * MIB), // 608² fp32 tensors
        models::PREPROCESS.mem_bytes,
    ));
    let det = wf.push(StageSpec::gpu(
        "yolo-det",
        vec![pre],
        models::YOLO_DET.latency(p.batch, p.gpu),
        p.per_item(2.5 * MIB), // boxes + feature maps
        models::YOLO_DET.mem_bytes,
    ));
    let post = wf.push(StageSpec::gpu(
        "postprocess",
        vec![det],
        models::POSTPROCESS.latency(p.batch, p.gpu),
        p.per_item(2.5 * MIB), // object crops
        models::POSTPROCESS.mem_bytes,
    ));
    wf.push(
        StageSpec::gpu(
            "person-rec",
            vec![post],
            models::RESNET50.latency(p.batch, p.gpu),
            p.per_item(0.02 * MIB),
            models::RESNET50.mem_bytes,
        )
        .with_cond(0, 0.5),
    );
    wf.push(
        StageSpec::gpu(
            "car-rec",
            vec![post],
            models::RESNET50.latency(p.batch, p.gpu),
            p.per_item(0.02 * MIB),
            models::RESNET50.mem_bytes,
        )
        .with_cond(0, 0.5),
    );
    Arc::new(wf)
}

/// *Driving* (AdaInf): linear denoise → segmentation → colourised output.
/// Latency-critical in the bandwidth-partitioning experiment (Fig. 17).
pub fn driving(p: WorkloadParams) -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("driving", p.per_item(0.5 * MIB));
    let decode = wf.push(StageSpec::cpu(
        "decode",
        vec![],
        p.cpu_ms(1.5, 1.0),
        p.per_item(6.0 * MIB),
    ));
    let den = wf.push(StageSpec::gpu(
        "denoise",
        vec![decode],
        models::DENOISE.latency(p.batch, p.gpu),
        p.per_item(6.0 * MIB),
        models::DENOISE.mem_bytes,
    ));
    let seg = wf.push(StageSpec::gpu(
        "segment",
        vec![den],
        models::SEGMENT.latency(p.batch, p.gpu),
        p.per_item(2.0 * MIB), // class masks
        models::SEGMENT.mem_bytes,
    ));
    wf.push(StageSpec::gpu(
        "colorize",
        vec![seg],
        models::COLORIZE.latency(p.batch, p.gpu),
        p.per_item(6.0 * MIB), // rendered image
        models::COLORIZE.mem_bytes,
    ));
    Arc::new(wf)
}

/// *Video* (Aquatope): four chunkers fan out to parallel face detectors,
/// fanning into one recognition stage. Transfer-intensive — the chunk loads
/// are what starves the driving workflow in Fig. 5(b)/17(a).
pub fn video(p: WorkloadParams) -> Arc<WorkflowSpec> {
    const BRANCHES: usize = 4;
    let mut wf = WorkflowSpec::new("video", p.per_item(8.0 * MIB));
    let mut dets = Vec::new();
    for i in 0..BRANCHES {
        let chunk = wf.push(StageSpec::cpu(
            format!("chunk{i}"),
            vec![],
            p.cpu_ms(0.8, 0.5),
            p.per_item(16.0 * MIB), // decoded video chunk
        ));
        let det = wf.push(StageSpec::gpu(
            format!("face-det{i}"),
            vec![chunk],
            models::FACE_DET.latency(p.batch, p.gpu),
            p.per_item(2.0 * MIB), // face crops
            models::FACE_DET.mem_bytes,
        ));
        dets.push(det);
    }
    wf.push(StageSpec::gpu(
        "face-rec",
        dets,
        models::FACE_REC.latency(p.batch, p.gpu),
        p.per_item(0.05 * MIB),
        models::FACE_REC.mem_bytes,
    ));
    Arc::new(wf)
}

/// *Image* (Cocktail): denoise feeding a classifier ensemble whose votes a
/// CPU stage aggregates (fan-in).
pub fn image(p: WorkloadParams) -> Arc<WorkflowSpec> {
    const ENSEMBLE: usize = 3;
    let mut wf = WorkflowSpec::new("image", p.per_item(0.5 * MIB));
    let den = wf.push(StageSpec::gpu(
        "denoise",
        vec![],
        models::DENOISE.latency(p.batch, p.gpu),
        p.per_item(6.0 * MIB),
        models::DENOISE.mem_bytes,
    ));
    let mut members = Vec::new();
    for i in 0..ENSEMBLE {
        members.push(wf.push(StageSpec::gpu(
            format!("classifier{i}"),
            vec![den],
            models::CLASSIFIER.latency(p.batch, p.gpu),
            p.per_item(0.01 * MIB),
            models::CLASSIFIER.mem_bytes,
        )));
    }
    wf.push(StageSpec::cpu(
        "aggregate",
        members,
        p.cpu_ms(0.05, 0.3),
        p.per_item(0.01 * MIB),
    ));
    Arc::new(wf)
}

/// *Mixture-of-Agents* (suite-scale variant): `layers` layers of `agents`
/// LLM agents; each agent consumes every previous-layer output (KV cache +
/// response). The full H800-scale LLM experiment lives in [`crate::llm`].
pub fn moa(p: WorkloadParams, layers: usize, agents: usize, kv_bytes: f64) -> Arc<WorkflowSpec> {
    assert!(layers >= 1 && agents >= 1);
    let mut wf = WorkflowSpec::new("moa", 2.0 * MIB);
    let mut prev: Vec<usize> = Vec::new();
    for l in 0..layers {
        let mut cur = Vec::new();
        for a in 0..agents {
            // Per-agent generation latency grows with fan-in (longer prompt).
            let fanin = prev.len().max(1) as u32;
            let compute = SimDuration::from_nanos(
                ((20_000.0 + 6_000.0 * fanin as f64) * p.gpu.speed_factor() * 1_000.0) as u64,
            );
            cur.push(wf.push(StageSpec::gpu(
                format!("agent-l{l}a{a}"),
                prev.clone(),
                compute,
                kv_bytes,
                4.0e9,
            )));
        }
        prev = cur;
    }
    // Aggregator produces the final answer from the last layer.
    wf.push(StageSpec::gpu(
        "aggregator",
        prev,
        SimDuration::from_nanos((40_000.0 * p.gpu.speed_factor() * 1_000.0) as u64),
        0.5 * MIB,
        4.0e9,
    ));
    Arc::new(wf)
}

/// *Chatbot*: ASR → NLU → TTS multi-stage service (Astraea-style),
/// substituted for the sixth Fig. 12 workflow.
pub fn chatbot(p: WorkloadParams) -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("chatbot", p.per_item(1.0 * MIB));
    let dec = wf.push(StageSpec::cpu(
        "audio-decode",
        vec![],
        p.cpu_ms(0.6, 0.4),
        p.per_item(3.0 * MIB), // PCM audio
    ));
    let asr = wf.push(StageSpec::gpu(
        "asr",
        vec![dec],
        models::ASR.latency(p.batch, p.gpu),
        p.per_item(0.02 * MIB), // transcript
        models::ASR.mem_bytes,
    ));
    let nlu = wf.push(StageSpec::gpu(
        "nlu",
        vec![asr],
        models::NLU.latency(p.batch, p.gpu),
        p.per_item(0.05 * MIB), // response text
        models::NLU.mem_bytes,
    ));
    wf.push(StageSpec::gpu(
        "tts",
        vec![nlu],
        models::TTS.latency(p.batch, p.gpu),
        p.per_item(4.0 * MIB), // synthesised audio
        models::TTS.mem_bytes,
    ));
    Arc::new(wf)
}

/// The full suite at the given parameters (MoA at suite scale: 2 layers × 3
/// agents with 100 MB KV objects, sized for 16 GB GPUs).
pub fn suite(p: WorkloadParams) -> Vec<Arc<WorkflowSpec>> {
    vec![
        traffic(p),
        driving(p),
        video(p),
        image(p),
        moa(p, 2, 3, 100.0 * MIB),
        chatbot(p),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suite_specs_validate() {
        for spec in suite(WorkloadParams::default()) {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(spec.critical_path_compute() > SimDuration::ZERO);
        }
    }

    #[test]
    fn suite_covers_all_patterns() {
        let s = suite(WorkloadParams::default());
        let by_name = |n: &str| s.iter().find(|w| w.name == n).expect("present");
        // Condition: traffic has a conditional group.
        assert!(by_name("traffic")
            .stages
            .iter()
            .any(|st| st.cond_group.is_some()));
        // Sequence: driving is a chain (every stage ≤ 1 dep, one terminal).
        assert!(by_name("driving")
            .stages
            .iter()
            .all(|st| st.deps.len() <= 1));
        assert_eq!(by_name("driving").terminals().len(), 1);
        // Fan-out: video has 4 parallel branches.
        let video = by_name("video");
        assert_eq!(
            video.stages.iter().filter(|st| st.deps.is_empty()).count(),
            4
        );
        // Fan-in: image's aggregate has 3 deps.
        let image = by_name("image");
        assert_eq!(image.stages.last().expect("stages").deps.len(), 3);
    }

    #[test]
    fn batch_scales_sizes_and_latency() {
        let small = traffic(WorkloadParams {
            batch: 1,
            gpu: GpuClass::V100,
        });
        let large = traffic(WorkloadParams {
            batch: 16,
            gpu: GpuClass::V100,
        });
        assert!(large.input_bytes > small.input_bytes);
        assert!(large.critical_path_compute() > small.critical_path_compute());
        assert_eq!(
            large.stages[0].output_bytes,
            16.0 * small.stages[0].output_bytes
        );
    }

    #[test]
    fn moa_layers_are_fully_connected() {
        let wf = moa(WorkloadParams::default(), 3, 2, 10.0 * MIB);
        // Layer 1 agents (indices 2, 3) consume both layer-0 agents.
        assert_eq!(wf.stages[2].deps, vec![0, 1]);
        assert_eq!(wf.stages[3].deps, vec![0, 1]);
        // Aggregator consumes the whole last layer.
        assert_eq!(wf.stages.last().expect("stages").deps, vec![4, 5]);
        wf.validate().expect("valid");
    }

    #[test]
    fn gpu_class_changes_compute() {
        let v = driving(WorkloadParams {
            batch: 8,
            gpu: GpuClass::V100,
        });
        let a = driving(WorkloadParams {
            batch: 8,
            gpu: GpuClass::A100,
        });
        assert!(a.critical_path_compute() < v.critical_path_compute());
    }
}
