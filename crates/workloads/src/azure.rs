//! Azure-Functions-style request traces (paper §6, \[39\]).
//!
//! The paper drives its evaluation with production traces whose request
//! arrivals fall into three characteristic patterns; we synthesise each with
//! matching statistics (the raw traces are not redistributable —
//! DESIGN.md §2):
//!
//! * **Sporadic** — low-rate Poisson arrivals (the long tail of rarely
//!   invoked functions).
//! * **Periodic** — diurnal/cron-like sinusoidal rate modulation.
//! * **Bursty** — Markov-modulated on/off process: quiet background traffic
//!   punctuated by bursts an order of magnitude above the mean.

use grouter_sim::rng::DetRng;
use grouter_sim::time::{SimDuration, SimTime};

/// The three arrival patterns of the Azure trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalPattern {
    Sporadic,
    Periodic,
    Bursty,
}

impl ArrivalPattern {
    pub const ALL: [ArrivalPattern; 3] = [
        ArrivalPattern::Sporadic,
        ArrivalPattern::Periodic,
        ArrivalPattern::Bursty,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ArrivalPattern::Sporadic => "sporadic",
            ArrivalPattern::Periodic => "periodic",
            ArrivalPattern::Bursty => "bursty",
        }
    }
}

/// Generate arrival times over `[0, duration)` with mean rate `mean_rps`.
///
/// All patterns use thinning over a fine time grid so the mean rate is met
/// while the shape differs:
/// * sporadic: constant rate;
/// * periodic: `λ(t) = mean · (1 + 0.9 sin(2πt / period))` with a 10 s
///   period;
/// * bursty: two-state modulation — ON at 8× mean for ~0.5 s, OFF at
///   0.12× mean for ~4 s (expected rate ≈ mean).
pub fn generate_trace(
    pattern: ArrivalPattern,
    mean_rps: f64,
    duration: SimDuration,
    rng: &mut DetRng,
) -> Vec<SimTime> {
    assert!(mean_rps > 0.0, "rate must be positive");
    let horizon = duration.as_secs_f64();
    let mut out = Vec::new();
    match pattern {
        ArrivalPattern::Sporadic => {
            let mut t = 0.0;
            loop {
                t += rng.exponential(1.0 / mean_rps);
                if t >= horizon {
                    break;
                }
                out.push(SimTime((t * 1e9) as u64));
            }
        }
        ArrivalPattern::Periodic => {
            // Thinning against the peak rate.
            let peak = mean_rps * 1.9;
            let period = 10.0;
            let mut t = 0.0;
            loop {
                t += rng.exponential(1.0 / peak);
                if t >= horizon {
                    break;
                }
                let lambda =
                    mean_rps * (1.0 + 0.9 * (2.0 * std::f64::consts::PI * t / period).sin());
                if rng.next_f64() < lambda / peak {
                    out.push(SimTime((t * 1e9) as u64));
                }
            }
        }
        ArrivalPattern::Bursty => {
            let on_rate = mean_rps * 8.0;
            let off_rate = mean_rps * 0.12;
            let mut t = 0.0;
            let mut on = false;
            let mut phase_end = rng.exponential(4.0);
            loop {
                let rate = if on { on_rate } else { off_rate };
                let dt = rng.exponential(1.0 / rate);
                if t + dt >= phase_end {
                    t = phase_end;
                    on = !on;
                    phase_end = t + if on {
                        rng.exponential(0.5)
                    } else {
                        rng.exponential(4.0)
                    };
                } else {
                    t += dt;
                    if t >= horizon {
                        break;
                    }
                    out.push(SimTime((t * 1e9) as u64));
                }
                if t >= horizon {
                    break;
                }
            }
        }
    }
    out
}

/// Coefficient of variation of inter-arrival times (trace shape check).
pub fn interarrival_cv(trace: &[SimTime]) -> f64 {
    if trace.len() < 3 {
        return 0.0;
    }
    let gaps: Vec<f64> = trace
        .windows(2)
        .map(|w| (w[1] - w[0]).as_secs_f64())
        .collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(p: ArrivalPattern, rps: f64, secs: u64, seed: u64) -> Vec<SimTime> {
        let mut rng = DetRng::new(seed);
        generate_trace(p, rps, SimDuration::from_secs(secs), &mut rng)
    }

    #[test]
    fn traces_are_sorted_and_within_horizon() {
        for p in ArrivalPattern::ALL {
            let t = trace(p, 20.0, 60, 7);
            assert!(t.windows(2).all(|w| w[0] <= w[1]), "{p:?} unsorted");
            assert!(t.iter().all(|&x| x < SimTime(60 * 1_000_000_000)));
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn mean_rates_are_close() {
        for p in ArrivalPattern::ALL {
            let t = trace(p, 50.0, 120, 11);
            let rate = t.len() as f64 / 120.0;
            assert!((rate - 50.0).abs() < 12.0, "{p:?} rate {rate} far from 50");
        }
    }

    #[test]
    fn burstiness_ordering_matches_patterns() {
        let cv_sporadic = interarrival_cv(&trace(ArrivalPattern::Sporadic, 30.0, 300, 3));
        let cv_bursty = interarrival_cv(&trace(ArrivalPattern::Bursty, 30.0, 300, 3));
        // Poisson CV ≈ 1; bursty must be clearly super-Poissonian.
        assert!((cv_sporadic - 1.0).abs() < 0.2, "sporadic cv {cv_sporadic}");
        assert!(cv_bursty > 1.5, "bursty cv {cv_bursty}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = trace(ArrivalPattern::Bursty, 25.0, 30, 9);
        let b = trace(ArrivalPattern::Bursty, 25.0, 30, 9);
        assert_eq!(a, b);
        let c = trace(ArrivalPattern::Bursty, 25.0, 30, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn periodic_rate_oscillates() {
        let t = trace(ArrivalPattern::Periodic, 100.0, 100, 5);
        // Count arrivals in 1 s buckets; the spread must exceed Poisson noise.
        let mut buckets = vec![0u32; 100];
        for x in &t {
            buckets[(x.as_secs_f64() as usize).min(99)] += 1;
        }
        let max = *buckets.iter().max().expect("nonempty") as f64;
        let min = *buckets.iter().min().expect("nonempty") as f64;
        assert!(
            max > 2.0 * min.max(1.0),
            "no visible modulation: {max} vs {min}"
        );
    }
}
