//! Azure-Functions-style request traces (paper §6, \[39\]).
//!
//! The paper drives its evaluation with production traces whose request
//! arrivals fall into three characteristic patterns; we synthesise each with
//! matching statistics (the raw traces are not redistributable —
//! DESIGN.md §2):
//!
//! * **Sporadic** — low-rate Poisson arrivals (the long tail of rarely
//!   invoked functions).
//! * **Periodic** — diurnal/cron-like sinusoidal rate modulation.
//! * **Bursty** — Markov-modulated on/off process: quiet background traffic
//!   punctuated by bursts an order of magnitude above the mean.

use grouter_sim::rng::DetRng;
use grouter_sim::time::{SimDuration, SimTime};

/// The three arrival patterns of the Azure trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalPattern {
    Sporadic,
    Periodic,
    Bursty,
}

impl ArrivalPattern {
    pub const ALL: [ArrivalPattern; 3] = [
        ArrivalPattern::Sporadic,
        ArrivalPattern::Periodic,
        ArrivalPattern::Bursty,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ArrivalPattern::Sporadic => "sporadic",
            ArrivalPattern::Periodic => "periodic",
            ArrivalPattern::Bursty => "bursty",
        }
    }
}

/// Generate arrival times over `[0, duration)` with mean rate `mean_rps`.
///
/// All patterns use thinning over a fine time grid so the mean rate is met
/// while the shape differs:
/// * sporadic: constant rate;
/// * periodic: `λ(t) = mean · (1 + 0.9 sin(2πt / period))` with a 10 s
///   period;
/// * bursty: two-state modulation — ON at 8× mean for ~0.5 s, OFF at
///   0.12× mean for ~4 s (expected rate ≈ mean).
pub fn generate_trace(
    pattern: ArrivalPattern,
    mean_rps: f64,
    duration: SimDuration,
    rng: &mut DetRng,
) -> Vec<SimTime> {
    assert!(mean_rps > 0.0, "rate must be positive");
    let horizon = duration.as_secs_f64();
    let mut out = Vec::new();
    match pattern {
        ArrivalPattern::Sporadic => {
            let mut t = 0.0;
            loop {
                t += rng.exponential(1.0 / mean_rps);
                if t >= horizon {
                    break;
                }
                out.push(SimTime((t * 1e9) as u64));
            }
        }
        ArrivalPattern::Periodic => {
            // Thinning against the peak rate.
            let peak = mean_rps * 1.9;
            let period = 10.0;
            let mut t = 0.0;
            loop {
                t += rng.exponential(1.0 / peak);
                if t >= horizon {
                    break;
                }
                let lambda =
                    mean_rps * (1.0 + 0.9 * (2.0 * std::f64::consts::PI * t / period).sin());
                if rng.next_f64() < lambda / peak {
                    out.push(SimTime((t * 1e9) as u64));
                }
            }
        }
        ArrivalPattern::Bursty => {
            let on_rate = mean_rps * 8.0;
            let off_rate = mean_rps * 0.12;
            let mut t = 0.0;
            let mut on = false;
            let mut phase_end = rng.exponential(4.0);
            loop {
                let rate = if on { on_rate } else { off_rate };
                let dt = rng.exponential(1.0 / rate);
                if t + dt >= phase_end {
                    t = phase_end;
                    on = !on;
                    phase_end = t + if on {
                        rng.exponential(0.5)
                    } else {
                        rng.exponential(4.0)
                    };
                } else {
                    t += dt;
                    if t >= horizon {
                        break;
                    }
                    out.push(SimTime((t * 1e9) as u64));
                }
                if t >= horizon {
                    break;
                }
            }
        }
    }
    out
}

/// Incremental arrival generator: the same processes as [`generate_trace`],
/// emitted one arrival at a time.
///
/// Cluster-scale sweeps drive millions of invocations; materialising the
/// whole trace up front costs hundreds of MB and pollutes the cache before
/// the run even starts. `OpenLoopGen` holds O(1) state and draws from the
/// RNG in *exactly* the order `generate_trace` does, so a bounded generator
/// yields the identical arrival sequence byte for byte
/// (`open_loop_matches_generate_trace` below pins this).
#[derive(Clone, Debug)]
pub struct OpenLoopGen {
    pattern: ArrivalPattern,
    mean_rps: f64,
    /// Horizon in seconds; `f64::INFINITY` for count-bounded callers.
    horizon: f64,
    rng: DetRng,
    /// Current process time, seconds.
    t: f64,
    /// Bursty modulation state.
    on: bool,
    phase_end: f64,
}

impl OpenLoopGen {
    /// Arrivals over `[0, duration)`, mirroring
    /// `generate_trace(pattern, mean_rps, duration, rng)`.
    pub fn new(
        pattern: ArrivalPattern,
        mean_rps: f64,
        duration: SimDuration,
        mut rng: DetRng,
    ) -> OpenLoopGen {
        assert!(mean_rps > 0.0, "rate must be positive");
        let phase_end = if pattern == ArrivalPattern::Bursty {
            rng.exponential(4.0)
        } else {
            0.0
        };
        OpenLoopGen {
            pattern,
            mean_rps,
            horizon: duration.as_secs_f64(),
            rng,
            t: 0.0,
            on: false,
            phase_end,
        }
    }

    /// An endless generator — the caller bounds the run by arrival count
    /// (open-loop cluster sweeps) instead of by horizon.
    pub fn unbounded(pattern: ArrivalPattern, mean_rps: f64, mut rng: DetRng) -> OpenLoopGen {
        assert!(mean_rps > 0.0, "rate must be positive");
        let phase_end = if pattern == ArrivalPattern::Bursty {
            rng.exponential(4.0)
        } else {
            0.0
        };
        OpenLoopGen {
            pattern,
            mean_rps,
            horizon: f64::INFINITY,
            rng,
            t: 0.0,
            on: false,
            phase_end,
        }
    }
}

impl Iterator for OpenLoopGen {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        match self.pattern {
            ArrivalPattern::Sporadic => {
                self.t += self.rng.exponential(1.0 / self.mean_rps);
                if self.t >= self.horizon {
                    return None;
                }
                Some(SimTime((self.t * 1e9) as u64))
            }
            ArrivalPattern::Periodic => {
                let peak = self.mean_rps * 1.9;
                let period = 10.0;
                loop {
                    self.t += self.rng.exponential(1.0 / peak);
                    if self.t >= self.horizon {
                        return None;
                    }
                    let lambda = self.mean_rps
                        * (1.0 + 0.9 * (2.0 * std::f64::consts::PI * self.t / period).sin());
                    if self.rng.next_f64() < lambda / peak {
                        return Some(SimTime((self.t * 1e9) as u64));
                    }
                }
            }
            ArrivalPattern::Bursty => {
                let on_rate = self.mean_rps * 8.0;
                let off_rate = self.mean_rps * 0.12;
                loop {
                    let rate = if self.on { on_rate } else { off_rate };
                    let dt = self.rng.exponential(1.0 / rate);
                    if self.t + dt >= self.phase_end {
                        self.t = self.phase_end;
                        self.on = !self.on;
                        self.phase_end = self.t
                            + if self.on {
                                self.rng.exponential(0.5)
                            } else {
                                self.rng.exponential(4.0)
                            };
                        if self.t >= self.horizon {
                            return None;
                        }
                    } else {
                        self.t += dt;
                        if self.t >= self.horizon {
                            return None;
                        }
                        return Some(SimTime((self.t * 1e9) as u64));
                    }
                }
            }
        }
    }
}

/// Coefficient of variation of inter-arrival times (trace shape check).
pub fn interarrival_cv(trace: &[SimTime]) -> f64 {
    if trace.len() < 3 {
        return 0.0;
    }
    let gaps: Vec<f64> = trace
        .windows(2)
        .map(|w| (w[1] - w[0]).as_secs_f64())
        .collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(p: ArrivalPattern, rps: f64, secs: u64, seed: u64) -> Vec<SimTime> {
        let mut rng = DetRng::new(seed);
        generate_trace(p, rps, SimDuration::from_secs(secs), &mut rng)
    }

    #[test]
    fn traces_are_sorted_and_within_horizon() {
        for p in ArrivalPattern::ALL {
            let t = trace(p, 20.0, 60, 7);
            assert!(t.windows(2).all(|w| w[0] <= w[1]), "{p:?} unsorted");
            assert!(t.iter().all(|&x| x < SimTime(60 * 1_000_000_000)));
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn mean_rates_are_close() {
        for p in ArrivalPattern::ALL {
            let t = trace(p, 50.0, 120, 11);
            let rate = t.len() as f64 / 120.0;
            assert!((rate - 50.0).abs() < 12.0, "{p:?} rate {rate} far from 50");
        }
    }

    #[test]
    fn burstiness_ordering_matches_patterns() {
        let cv_sporadic = interarrival_cv(&trace(ArrivalPattern::Sporadic, 30.0, 300, 3));
        let cv_bursty = interarrival_cv(&trace(ArrivalPattern::Bursty, 30.0, 300, 3));
        // Poisson CV ≈ 1; bursty must be clearly super-Poissonian.
        assert!((cv_sporadic - 1.0).abs() < 0.2, "sporadic cv {cv_sporadic}");
        assert!(cv_bursty > 1.5, "bursty cv {cv_bursty}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = trace(ArrivalPattern::Bursty, 25.0, 30, 9);
        let b = trace(ArrivalPattern::Bursty, 25.0, 30, 9);
        assert_eq!(a, b);
        let c = trace(ArrivalPattern::Bursty, 25.0, 30, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn open_loop_matches_generate_trace() {
        for p in ArrivalPattern::ALL {
            let eager = trace(p, 40.0, 60, 13);
            let lazy: Vec<SimTime> =
                OpenLoopGen::new(p, 40.0, SimDuration::from_secs(60), DetRng::new(13)).collect();
            assert_eq!(eager, lazy, "{p:?} open-loop diverged from eager trace");
        }
    }

    #[test]
    fn open_loop_same_seed_is_byte_identical() {
        let a: Vec<SimTime> =
            OpenLoopGen::unbounded(ArrivalPattern::Bursty, 500.0, DetRng::new(21))
                .take(10_000)
                .collect();
        let b: Vec<SimTime> =
            OpenLoopGen::unbounded(ArrivalPattern::Bursty, 500.0, DetRng::new(21))
                .take(10_000)
                .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn open_loop_rate_holds_under_backlog() {
        // Open-loop means the arrival process never slows down with the
        // consumer: after N draws the clock must sit at ≈ N/λ regardless
        // of how far behind a simulated server would be.
        let n = 200_000usize;
        let rps = 4_000.0;
        let last = OpenLoopGen::unbounded(ArrivalPattern::Sporadic, rps, DetRng::new(5))
            .take(n)
            .last()
            .expect("nonempty");
        let elapsed = last.as_secs_f64();
        let expect = n as f64 / rps;
        assert!(
            (elapsed - expect).abs() / expect < 0.05,
            "open-loop clock drifted: {elapsed:.2}s for {n} arrivals at {rps} rps (expect ≈{expect:.2}s)"
        );
    }

    #[test]
    fn open_loop_generates_a_million_arrivals() {
        // Generation speed guard for the cluster sweep: a million arrivals
        // must stream through in O(n) with O(1) state (no materialised
        // trace). Monotonicity is checked on the fly.
        let mut gen = OpenLoopGen::unbounded(ArrivalPattern::Sporadic, 4_000.0, DetRng::new(77));
        let mut prev = SimTime::ZERO;
        for _ in 0..1_000_000 {
            let t = gen.next().expect("unbounded generator never ends");
            assert!(t >= prev);
            prev = t;
        }
        assert!(prev > SimTime::ZERO);
    }

    #[test]
    fn periodic_rate_oscillates() {
        let t = trace(ArrivalPattern::Periodic, 100.0, 100, 5);
        // Count arrivals in 1 s buckets; the spread must exceed Poisson noise.
        let mut buckets = vec![0u32; 100];
        for x in &t {
            buckets[(x.as_secs_f64() as usize).min(99)] += 1;
        }
        let max = *buckets.iter().max().expect("nonempty") as f64;
        let min = *buckets.iter().min().expect("nonempty") as f64;
        assert!(
            max > 2.0 * min.max(1.0),
            "no visible modulation: {max} vs {min}"
        );
    }
}
