//! LLM profiles for the MoA experiment (paper §6.4).
//!
//! Stages pass the prompt + response **KV cache** between agents to skip
//! recomputation (DroidSpeak-style). The receiver's *time-to-first-token*
//! (TTFT) is then `KV-transfer time + first-token compute` instead of a full
//! prefill — which is exactly what makes the data plane the bottleneck and
//! GROUTER's multi-NIC, locality-aware transfers pay off.

use grouter_sim::rng::DetRng;
use grouter_sim::time::SimDuration;

/// An LLM size class used in Fig. 19(b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlmModel {
    Llama7B,
    Llama13B,
    Llama70B,
}

impl LlmModel {
    pub const ALL: [LlmModel; 3] = [LlmModel::Llama7B, LlmModel::Llama13B, LlmModel::Llama70B];

    pub fn name(self) -> &'static str {
        match self {
            LlmModel::Llama7B => "7B",
            LlmModel::Llama13B => "13B",
            LlmModel::Llama70B => "70B",
        }
    }

    /// KV-cache bytes per token (fp16, both K and V, all layers).
    pub fn kv_bytes_per_token(self) -> f64 {
        match self {
            // 32 layers × 4096 hidden × 2 (K+V) × 2 bytes
            LlmModel::Llama7B => 0.5e6,
            // 40 layers × 5120 hidden
            LlmModel::Llama13B => 0.8e6,
            // 80 layers × 8192 hidden, GQA 8:1
            LlmModel::Llama70B => 1.6e6,
        }
    }

    /// Full-prefill latency per token on one H800 (no KV reuse).
    pub fn prefill_us_per_token(self, tp: u32) -> f64 {
        let base = match self {
            LlmModel::Llama7B => 90.0,
            LlmModel::Llama13B => 160.0,
            LlmModel::Llama70B => 700.0,
        };
        // Tensor parallelism speeds prefill sub-linearly.
        base / (tp as f64).powf(0.85)
    }

    /// First-token generation latency once the KV cache is resident.
    pub fn first_token_latency(self, tp: u32) -> SimDuration {
        let us = match self {
            LlmModel::Llama7B => 18_000.0,
            LlmModel::Llama13B => 28_000.0,
            LlmModel::Llama70B => 80_000.0,
        } / (tp as f64).powf(0.7);
        SimDuration::from_nanos((us * 1_000.0) as u64)
    }

    /// One decode step (one token for every sequence of a continuous batch)
    /// on an H800 decode instance. Memory-bound: a per-step floor for the
    /// weight pass plus a per-sequence attention/KV-read cost that grows
    /// with the batch.
    pub fn decode_step_latency(self, batch: u32, tp: u32) -> SimDuration {
        let (base_us, per_seq_us) = match self {
            LlmModel::Llama7B => (9_000.0, 60.0),
            LlmModel::Llama13B => (14_000.0, 110.0),
            LlmModel::Llama70B => (40_000.0, 380.0),
        };
        let us = (base_us + per_seq_us * batch as f64) / (tp as f64).powf(0.7);
        SimDuration::from_nanos((us * 1_000.0) as u64)
    }

    /// KV-cache size for an `input_tokens`-token context.
    pub fn kv_bytes(self, input_tokens: u32) -> f64 {
        self.kv_bytes_per_token() * input_tokens as f64
    }

    /// Full-prefill latency for `input_tokens` (the no-KV-passing floor).
    pub fn prefill_latency(self, input_tokens: u32, tp: u32) -> SimDuration {
        SimDuration::from_nanos(
            (self.prefill_us_per_token(tp) * input_tokens as f64 * 1_000.0) as u64,
        )
    }
}

/// TTFT decomposition for a receiver agent: KV transfer + first token.
pub fn ttft(kv_transfer: SimDuration, model: LlmModel, tp: u32) -> SimDuration {
    kv_transfer + model.first_token_latency(tp)
}

/// One sampled serving request: which model, how long the prompt is, and how
/// many tokens the decode stream will emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LlmRequestSpec {
    pub model: LlmModel,
    pub prompt_tokens: u32,
    pub output_tokens: u32,
}

/// Request mix for the serving scenario: a weighted model choice plus
/// log-normal-ish prompt lengths and geometric-ish output lengths, all drawn
/// from a caller-owned [`DetRng`] so runs replay byte-identically.
#[derive(Clone, Debug)]
pub struct LlmMix {
    /// `(model, weight)` pairs; weights need not sum to 1.
    pub models: Vec<(LlmModel, f64)>,
    /// Median prompt length in tokens (log-space mean).
    pub prompt_median: f64,
    /// Log-space standard deviation of the prompt length.
    pub prompt_sigma: f64,
    /// Hard clamp on sampled prompt lengths.
    pub prompt_min: u32,
    pub prompt_max: u32,
    /// Mean output (decode) length in tokens.
    pub output_mean: f64,
    /// Hard clamp on sampled output lengths.
    pub output_min: u32,
    pub output_max: u32,
}

impl LlmMix {
    /// The chat-style mix used by the serving experiment: 13B-dominated with
    /// a 7B tail, ~1K-token prompts, ~128-token answers.
    pub fn chat() -> LlmMix {
        LlmMix {
            models: vec![(LlmModel::Llama13B, 0.7), (LlmModel::Llama7B, 0.3)],
            prompt_median: 1024.0,
            prompt_sigma: 0.6,
            prompt_min: 64,
            prompt_max: 8192,
            output_mean: 128.0,
            output_min: 8,
            output_max: 1024,
        }
    }

    /// Single-model variant, handy for pressure-focused runs.
    pub fn single(model: LlmModel) -> LlmMix {
        LlmMix {
            models: vec![(model, 1.0)],
            ..LlmMix::chat()
        }
    }

    pub fn sample(&self, rng: &mut DetRng) -> LlmRequestSpec {
        let total: f64 = self.models.iter().map(|(_, w)| w).sum();
        let mut pick = rng.next_f64() * total;
        let mut model = self.models[0].0;
        for &(m, w) in &self.models {
            model = m;
            if pick < w {
                break;
            }
            pick -= w;
        }
        let prompt = (self.prompt_median * rng.normal(0.0, self.prompt_sigma).exp()) as u32;
        let prompt_tokens = prompt.clamp(self.prompt_min, self.prompt_max);
        let output = rng.exponential(self.output_mean) as u32;
        let output_tokens = output.clamp(self.output_min, self.output_max);
        LlmRequestSpec {
            model,
            prompt_tokens,
            output_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_sizes_scale_with_model_and_context() {
        assert!(LlmModel::Llama70B.kv_bytes(1000) > LlmModel::Llama7B.kv_bytes(1000));
        assert_eq!(LlmModel::Llama7B.kv_bytes(4096), 0.5e6 * 4096.0);
        // 4K context on 7B ≈ 2 GB — matches deployed systems.
        let gb = LlmModel::Llama7B.kv_bytes(4096) / 1e9;
        assert!((1.5..2.5).contains(&gb), "kv {gb} GB");
    }

    #[test]
    fn tensor_parallelism_speeds_prefill() {
        let tp1 = LlmModel::Llama70B.prefill_latency(4096, 1);
        let tp8 = LlmModel::Llama70B.prefill_latency(4096, 8);
        assert!(tp8 < tp1);
        // Sub-linear: 8 GPUs give less than 8× speedup.
        assert!(tp1.as_secs_f64() / tp8.as_secs_f64() < 8.0);
    }

    #[test]
    fn kv_reuse_beats_full_prefill_at_long_context() {
        // Even with a slow 10 GB/s transfer, passing 4K-token KV beats
        // recomputing prefill for 70B.
        let kv = LlmModel::Llama70B.kv_bytes(4096);
        let transfer = SimDuration::from_secs_f64(kv / 10e9);
        let with_reuse = ttft(transfer, LlmModel::Llama70B, 4);
        let without =
            LlmModel::Llama70B.prefill_latency(4096, 4) + LlmModel::Llama70B.first_token_latency(4);
        assert!(with_reuse < without, "{with_reuse} vs {without}");
    }

    #[test]
    fn names_cover_all() {
        for m in LlmModel::ALL {
            assert!(!m.name().is_empty());
        }
    }

    #[test]
    fn decode_step_grows_with_batch_and_shrinks_with_tp() {
        let one = LlmModel::Llama13B.decode_step_latency(1, 1);
        let many = LlmModel::Llama13B.decode_step_latency(64, 1);
        assert!(many > one);
        // Sub-linear in batch: 64 sequences cost far less than 64 steps.
        assert!(many.as_secs_f64() < 64.0 * one.as_secs_f64());
        assert!(
            LlmModel::Llama13B.decode_step_latency(8, 4)
                < LlmModel::Llama13B.decode_step_latency(8, 1)
        );
    }

    #[test]
    fn mix_sampling_is_deterministic_and_clamped() {
        let mix = LlmMix::chat();
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..500 {
            let sa = mix.sample(&mut a);
            let sb = mix.sample(&mut b);
            assert_eq!(sa, sb);
            assert!((mix.prompt_min..=mix.prompt_max).contains(&sa.prompt_tokens));
            assert!((mix.output_min..=mix.output_max).contains(&sa.output_tokens));
        }
    }

    #[test]
    fn mix_draws_every_weighted_model() {
        let mix = LlmMix::chat();
        let mut rng = DetRng::new(11);
        let mut seen_7b = false;
        let mut seen_13b = false;
        for _ in 0..200 {
            match mix.sample(&mut rng).model {
                LlmModel::Llama7B => seen_7b = true,
                LlmModel::Llama13B => seen_13b = true,
                LlmModel::Llama70B => panic!("70B has zero weight in chat()"),
            }
        }
        assert!(seen_7b && seen_13b);
        assert_eq!(
            LlmMix::single(LlmModel::Llama70B).sample(&mut rng).model,
            LlmModel::Llama70B
        );
    }
}
