//! LLM profiles for the MoA experiment (paper §6.4).
//!
//! Stages pass the prompt + response **KV cache** between agents to skip
//! recomputation (DroidSpeak-style). The receiver's *time-to-first-token*
//! (TTFT) is then `KV-transfer time + first-token compute` instead of a full
//! prefill — which is exactly what makes the data plane the bottleneck and
//! GROUTER's multi-NIC, locality-aware transfers pay off.

use grouter_sim::time::SimDuration;

/// An LLM size class used in Fig. 19(b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlmModel {
    Llama7B,
    Llama13B,
    Llama70B,
}

impl LlmModel {
    pub const ALL: [LlmModel; 3] = [LlmModel::Llama7B, LlmModel::Llama13B, LlmModel::Llama70B];

    pub fn name(self) -> &'static str {
        match self {
            LlmModel::Llama7B => "7B",
            LlmModel::Llama13B => "13B",
            LlmModel::Llama70B => "70B",
        }
    }

    /// KV-cache bytes per token (fp16, both K and V, all layers).
    pub fn kv_bytes_per_token(self) -> f64 {
        match self {
            // 32 layers × 4096 hidden × 2 (K+V) × 2 bytes
            LlmModel::Llama7B => 0.5e6,
            // 40 layers × 5120 hidden
            LlmModel::Llama13B => 0.8e6,
            // 80 layers × 8192 hidden, GQA 8:1
            LlmModel::Llama70B => 1.6e6,
        }
    }

    /// Full-prefill latency per token on one H800 (no KV reuse).
    pub fn prefill_us_per_token(self, tp: u32) -> f64 {
        let base = match self {
            LlmModel::Llama7B => 90.0,
            LlmModel::Llama13B => 160.0,
            LlmModel::Llama70B => 700.0,
        };
        // Tensor parallelism speeds prefill sub-linearly.
        base / (tp as f64).powf(0.85)
    }

    /// First-token generation latency once the KV cache is resident.
    pub fn first_token_latency(self, tp: u32) -> SimDuration {
        let us = match self {
            LlmModel::Llama7B => 18_000.0,
            LlmModel::Llama13B => 28_000.0,
            LlmModel::Llama70B => 80_000.0,
        } / (tp as f64).powf(0.7);
        SimDuration::from_nanos((us * 1_000.0) as u64)
    }

    /// KV-cache size for an `input_tokens`-token context.
    pub fn kv_bytes(self, input_tokens: u32) -> f64 {
        self.kv_bytes_per_token() * input_tokens as f64
    }

    /// Full-prefill latency for `input_tokens` (the no-KV-passing floor).
    pub fn prefill_latency(self, input_tokens: u32, tp: u32) -> SimDuration {
        SimDuration::from_nanos(
            (self.prefill_us_per_token(tp) * input_tokens as f64 * 1_000.0) as u64,
        )
    }
}

/// TTFT decomposition for a receiver agent: KV transfer + first token.
pub fn ttft(kv_transfer: SimDuration, model: LlmModel, tp: u32) -> SimDuration {
    kv_transfer + model.first_token_latency(tp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_sizes_scale_with_model_and_context() {
        assert!(LlmModel::Llama70B.kv_bytes(1000) > LlmModel::Llama7B.kv_bytes(1000));
        assert_eq!(LlmModel::Llama7B.kv_bytes(4096), 0.5e6 * 4096.0);
        // 4K context on 7B ≈ 2 GB — matches deployed systems.
        let gb = LlmModel::Llama7B.kv_bytes(4096) / 1e9;
        assert!((1.5..2.5).contains(&gb), "kv {gb} GB");
    }

    #[test]
    fn tensor_parallelism_speeds_prefill() {
        let tp1 = LlmModel::Llama70B.prefill_latency(4096, 1);
        let tp8 = LlmModel::Llama70B.prefill_latency(4096, 8);
        assert!(tp8 < tp1);
        // Sub-linear: 8 GPUs give less than 8× speedup.
        assert!(tp1.as_secs_f64() / tp8.as_secs_f64() < 8.0);
    }

    #[test]
    fn kv_reuse_beats_full_prefill_at_long_context() {
        // Even with a slow 10 GB/s transfer, passing 4K-token KV beats
        // recomputing prefill for 70B.
        let kv = LlmModel::Llama70B.kv_bytes(4096);
        let transfer = SimDuration::from_secs_f64(kv / 10e9);
        let with_reuse = ttft(transfer, LlmModel::Llama70B, 4);
        let without =
            LlmModel::Llama70B.prefill_latency(4096, 4) + LlmModel::Llama70B.first_token_latency(4);
        assert!(with_reuse < without, "{with_reuse} vs {without}");
    }

    #[test]
    fn names_cover_all() {
        for m in LlmModel::ALL {
            assert!(!m.name().is_empty());
        }
    }
}
