//! Model execution profiles.
//!
//! The paper treats DNN inference latency as highly predictable and drives
//! SLO math from offline profiles (§4.3.2); we do the same. Latencies are
//! parametric in batch size (`base + per_item × batch`) and calibrated to
//! published V100 numbers for the respective model families; other GPUs
//! apply a speed factor.

use grouter_sim::time::SimDuration;

/// Relative GPU speed vs V100 for the paper's testbeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GpuClass {
    V100,
    A100,
    A10,
    H800,
}

impl GpuClass {
    /// Inference-latency scale factor relative to V100 (smaller = faster).
    pub fn speed_factor(self) -> f64 {
        match self {
            GpuClass::V100 => 1.0,
            GpuClass::A100 => 0.45,
            GpuClass::A10 => 1.15,
            GpuClass::H800 => 0.35,
        }
    }
}

/// A profiled model.
#[derive(Clone, Debug)]
pub struct ModelProfile {
    pub name: &'static str,
    /// Fixed per-invocation latency on a V100 (kernel launch, small layers).
    pub base_us: f64,
    /// Additional latency per batched item on a V100.
    pub per_item_us: f64,
    /// Resident model + activation memory while running.
    pub mem_bytes: f64,
}

impl ModelProfile {
    /// Inference latency at `batch` on `gpu`.
    pub fn latency(&self, batch: u32, gpu: GpuClass) -> SimDuration {
        let us = (self.base_us + self.per_item_us * batch as f64) * gpu.speed_factor();
        SimDuration::from_nanos((us * 1_000.0).round() as u64)
    }
}

/// MiB helper for size tables.
pub const MIB: f64 = 1024.0 * 1024.0;

/// YOLOv5 object detection at 608².
pub const YOLO_DET: ModelProfile = ModelProfile {
    name: "yolo-det",
    base_us: 9_000.0,
    per_item_us: 4_200.0,
    mem_bytes: 1.9e9,
};

/// ResNet-50 classification/recognition head.
pub const RESNET50: ModelProfile = ModelProfile {
    name: "resnet50",
    base_us: 3_500.0,
    per_item_us: 1_400.0,
    mem_bytes: 0.8e9,
};

/// GPU-side pre-processing (CV-CUDA resize/normalise).
pub const PREPROCESS: ModelProfile = ModelProfile {
    name: "preprocess",
    base_us: 1_200.0,
    per_item_us: 550.0,
    mem_bytes: 0.3e9,
};

/// GPU-side post-processing (NMS, crop extraction).
pub const POSTPROCESS: ModelProfile = ModelProfile {
    name: "postprocess",
    base_us: 1_000.0,
    per_item_us: 400.0,
    mem_bytes: 0.2e9,
};

/// Image denoising network (Driving/Image workflows).
pub const DENOISE: ModelProfile = ModelProfile {
    name: "denoise",
    base_us: 4_000.0,
    per_item_us: 2_200.0,
    mem_bytes: 0.6e9,
};

/// DeepLab-style semantic segmentation.
pub const SEGMENT: ModelProfile = ModelProfile {
    name: "segment",
    base_us: 16_000.0,
    per_item_us: 7_500.0,
    mem_bytes: 2.2e9,
};

/// Colourised-mask rendering (Driving output stage).
pub const COLORIZE: ModelProfile = ModelProfile {
    name: "colorize",
    base_us: 1_500.0,
    per_item_us: 700.0,
    mem_bytes: 0.2e9,
};

/// MTCNN-style face detection on video frames.
pub const FACE_DET: ModelProfile = ModelProfile {
    name: "face-det",
    base_us: 7_000.0,
    per_item_us: 3_000.0,
    mem_bytes: 1.1e9,
};

/// Face recognition / actor identification.
pub const FACE_REC: ModelProfile = ModelProfile {
    name: "face-rec",
    base_us: 3_000.0,
    per_item_us: 1_100.0,
    mem_bytes: 0.7e9,
};

/// One member of the Image workflow's classifier ensemble.
pub const CLASSIFIER: ModelProfile = ModelProfile {
    name: "classifier",
    base_us: 3_200.0,
    per_item_us: 1_300.0,
    mem_bytes: 0.8e9,
};

/// Speech recognition (Chatbot pipeline).
pub const ASR: ModelProfile = ModelProfile {
    name: "asr",
    base_us: 12_000.0,
    per_item_us: 5_000.0,
    mem_bytes: 1.4e9,
};

/// Language understanding (Chatbot pipeline).
pub const NLU: ModelProfile = ModelProfile {
    name: "nlu",
    base_us: 6_000.0,
    per_item_us: 2_500.0,
    mem_bytes: 1.0e9,
};

/// Speech synthesis (Chatbot pipeline).
pub const TTS: ModelProfile = ModelProfile {
    name: "tts",
    base_us: 10_000.0,
    per_item_us: 4_500.0,
    mem_bytes: 1.2e9,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_with_batch() {
        let b1 = YOLO_DET.latency(1, GpuClass::V100);
        let b8 = YOLO_DET.latency(8, GpuClass::V100);
        assert!(b8 > b1);
        // base 9 ms + 8×4.2 ms = 42.6 ms
        assert_eq!(b8.as_micros_f64(), 42_600.0);
    }

    #[test]
    fn faster_gpus_run_faster() {
        let v = SEGMENT.latency(4, GpuClass::V100);
        let a = SEGMENT.latency(4, GpuClass::A100);
        let h = SEGMENT.latency(4, GpuClass::H800);
        assert!(a < v);
        assert!(h < a);
        let a10 = SEGMENT.latency(4, GpuClass::A10);
        assert!(a10 > v);
    }

    #[test]
    fn profiles_have_positive_memory() {
        for p in [
            &YOLO_DET,
            &RESNET50,
            &PREPROCESS,
            &POSTPROCESS,
            &DENOISE,
            &SEGMENT,
            &COLORIZE,
            &FACE_DET,
            &FACE_REC,
            &CLASSIFIER,
            &ASR,
            &NLU,
            &TTS,
        ] {
            assert!(p.mem_bytes > 0.0, "{}", p.name);
            assert!(p.base_us > 0.0);
        }
    }
}
