//! Cluster-scale presets: 64–128-GPU heterogeneous fleets and the
//! open-loop request streams that drive them.
//!
//! The sharded engine models a cluster as node *groups* (one DGX-class
//! server each) under a frontend that routes requests mostly to the
//! admitting group ([`LOCALITY`]). This module packages:
//!
//! * [`cluster_mix`] — a light inference workflow mix (1–3 stages,
//!   single-digit-ms compute, MB-scale tensors) sized so one group
//!   sustains hundreds of requests per second and a million-invocation
//!   trace finishes in minutes of wall time;
//! * [`ClusterPreset`] — 64- and 128-GPU fleets, homogeneous (the
//!   apples-to-apples baseline against the monolithic single-shard core)
//!   and heterogeneous (alternating V100/A100 groups, each registering
//!   its own GPU-tuned workflow variants);
//! * [`OpenLoopArrivals`] — an [`ArrivalSource`] wrapping
//!   [`azure::OpenLoopGen`]: each group's gateway draws its own Poisson
//!   stream from a split RNG and routes 1-in-10 requests to a uniformly
//!   random other group;
//! * [`group_setups`] — assembly of ready-to-run [`GroupSetup`]s.

use std::sync::Arc;

use grouter_runtime::cluster::{ArrivalSource, ClusterArrival, GroupSetup};
use grouter_runtime::dataplane::DataPlane;
use grouter_runtime::spec::{StageSpec, WorkflowSpec};
use grouter_runtime::world::RuntimeConfig;
use grouter_sim::rng::DetRng;
use grouter_sim::time::{SimDuration, SimTime};
use grouter_topology::graph::TopologySpec;
use grouter_topology::presets;

use crate::azure::{ArrivalPattern, OpenLoopGen};
use crate::models::{GpuClass, MIB};

/// Fraction of requests a gateway keeps on its own group.
pub const LOCALITY: f64 = 0.9;

/// Light inference mix for cluster sweeps, tuned per GPU class. The three
/// workflows cover the single-stage, CPU→GPU and GPU→GPU shapes without
/// the heavyweight suite's 100-ms critical paths — throughput, not model
/// fidelity, is what the sweep stresses.
pub fn cluster_mix(gpu: GpuClass) -> Vec<Arc<WorkflowSpec>> {
    let f = gpu.speed_factor();
    let ms = |x: f64| SimDuration::from_nanos((x * f * 1e6).round() as u64);

    // Single GPU stage: an embedding lookup.
    let mut embed = WorkflowSpec::new("embed", 0.25 * MIB);
    embed.push(StageSpec::gpu("encode", vec![], ms(3.0), 0.02 * MIB, 0.8e9));

    // CPU decode feeding one GPU inference.
    let mut classify = WorkflowSpec::new("classify", 0.5 * MIB);
    let dec = classify.push(StageSpec::cpu(
        "decode",
        vec![],
        SimDuration::from_nanos(1_000_000),
        2.0 * MIB,
    ));
    classify.push(StageSpec::gpu(
        "infer",
        vec![dec],
        ms(5.0),
        0.06 * MIB,
        1.2e9,
    ));

    // Two chained GPU stages: the gFn→gFn hop the paper optimises.
    let mut rank = WorkflowSpec::new("rank", 1.0 * MIB);
    let enc = rank.push(StageSpec::gpu("encode", vec![], ms(4.0), 3.0 * MIB, 1.0e9));
    rank.push(StageSpec::gpu(
        "score",
        vec![enc],
        ms(3.0),
        0.04 * MIB,
        1.0e9,
    ));

    vec![Arc::new(embed), Arc::new(classify), Arc::new(rank)]
}

/// One node group of a cluster preset.
#[derive(Clone, Debug)]
pub struct GroupSpec {
    pub topo: fn() -> TopologySpec,
    pub gpu: GpuClass,
    /// Nodes in this group (each node is one `topo` replica).
    pub nodes: usize,
}

/// A fleet of node groups.
#[derive(Clone, Debug)]
pub struct ClusterPreset {
    pub name: &'static str,
    pub groups: Vec<GroupSpec>,
}

impl ClusterPreset {
    pub fn total_gpus(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.nodes * (g.topo)().gpus_per_node)
            .sum()
    }

    /// 64 GPUs as 8 homogeneous V100 groups — the sharded side of the
    /// gated monolithic-vs-sharded comparison ([`monolithic_64`] is the
    /// same iron as one world).
    pub fn uniform_64() -> ClusterPreset {
        ClusterPreset {
            name: "uniform64",
            groups: vec![
                GroupSpec {
                    topo: presets::dgx_v100,
                    gpu: GpuClass::V100,
                    nodes: 1,
                };
                8
            ],
        }
    }

    /// 128 GPUs as 16 homogeneous V100 groups (the 128-GPU side of the
    /// monolithic-vs-sharded scaling comparison).
    pub fn uniform_128() -> ClusterPreset {
        ClusterPreset {
            name: "uniform128",
            groups: vec![
                GroupSpec {
                    topo: presets::dgx_v100,
                    gpu: GpuClass::V100,
                    nodes: 1,
                };
                16
            ],
        }
    }

    /// 64 GPUs, heterogeneous: V100 and A100 groups alternating. Each
    /// group registers its own GPU-tuned workflow variants at matching
    /// logical ids, which a single monolithic world cannot express
    /// (`Topology::build` replicates one spec).
    pub fn hetero_64() -> ClusterPreset {
        ClusterPreset {
            name: "hetero64",
            groups: Self::alternating(8),
        }
    }

    /// 128 GPUs, heterogeneous, 16 groups.
    pub fn hetero_128() -> ClusterPreset {
        ClusterPreset {
            name: "hetero128",
            groups: Self::alternating(16),
        }
    }

    fn alternating(n: usize) -> Vec<GroupSpec> {
        (0..n)
            .map(|g| {
                if g % 2 == 0 {
                    GroupSpec {
                        topo: presets::dgx_v100,
                        gpu: GpuClass::V100,
                        nodes: 1,
                    }
                } else {
                    GroupSpec {
                        topo: presets::dgx_a100,
                        gpu: GpuClass::A100,
                        nodes: 1,
                    }
                }
            })
            .collect()
    }
}

/// The monolithic counterpart of [`ClusterPreset::uniform_64`]: the same
/// 64 V100 GPUs as one 8-node world with a single global timeline —
/// "the single-shard core" every sweep speedup is measured against.
pub fn monolithic_64() -> (TopologySpec, usize, GpuClass) {
    (presets::dgx_v100(), 8, GpuClass::V100)
}

/// Open-loop arrival source for one group's gateway: a Poisson(-ish)
/// stream of `count` invocations at `rps`, workflow drawn uniformly from
/// the registry, [`LOCALITY`] of them homed locally and the rest on a
/// uniformly random other group.
pub struct OpenLoopArrivals {
    gen: OpenLoopGen,
    rng: DetRng,
    group: u32,
    groups: u32,
    specs: u32,
    remaining: u64,
}

impl OpenLoopArrivals {
    /// `rng` seeds both the arrival process and the routing draws; give
    /// each group a distinct [`DetRng::split`] stream of the run seed.
    pub fn new(
        pattern: ArrivalPattern,
        rps: f64,
        count: u64,
        rng: DetRng,
        group: u32,
        groups: u32,
        specs: u32,
    ) -> OpenLoopArrivals {
        assert!(specs > 0 && groups > 0);
        OpenLoopArrivals {
            gen: OpenLoopGen::unbounded(pattern, rps, rng.split(0)),
            rng: rng.split(1),
            group,
            groups,
            specs,
            remaining: count,
        }
    }
}

impl ArrivalSource for OpenLoopArrivals {
    fn next(&mut self) -> Option<ClusterArrival> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let at: SimTime = self.gen.next()?;
        let spec = self.rng.next_below(self.specs as u64) as u32;
        let home = if self.groups == 1 || self.rng.next_f64() < LOCALITY {
            self.group
        } else {
            // Uniform over the other groups.
            let r = self.rng.next_below(self.groups as u64 - 1) as u32;
            if r >= self.group {
                r + 1
            } else {
                r
            }
        };
        Some(ClusterArrival { at, spec, home })
    }
}

/// Assemble ready-to-run group setups for `preset`: per-group GPU-tuned
/// [`cluster_mix`] registries and [`OpenLoopArrivals`] sources emitting
/// `per_group` invocations each at `rps` per group. `plane` builds each
/// group's data plane (planes are not `Clone`); `seed` splits into
/// per-group arrival streams — world RNGs are split separately by
/// `ClusterSim::new` from the run seed.
pub fn group_setups(
    preset: &ClusterPreset,
    pattern: ArrivalPattern,
    rps: f64,
    per_group: u64,
    seed: u64,
    plane: impl Fn(usize) -> Box<dyn DataPlane>,
) -> Vec<GroupSetup> {
    let n = preset.groups.len() as u32;
    let root = DetRng::new(seed).fork(0xA21);
    preset
        .groups
        .iter()
        .enumerate()
        .map(|(g, gs)| {
            let specs = cluster_mix(gs.gpu);
            let source = OpenLoopArrivals::new(
                pattern,
                rps,
                per_group,
                root.split(g as u64),
                g as u32,
                n,
                specs.len() as u32,
            );
            GroupSetup {
                topo: (gs.topo)(),
                nodes: gs.nodes,
                plane: plane(g),
                config: RuntimeConfig {
                    seed,
                    ..RuntimeConfig::default()
                },
                specs,
                source: Some(Box::new(source)),
                fault_plans: Vec::new(),
                hb: None,
                agent: None,
            }
        })
        .collect()
}

/// Service-mode arrival source: the whole open-loop stream enters at the
/// router group's gateway (group [`ROUTER_GROUP`]); the router's
/// heartbeat-view agent — not the trace — decides where each request runs.
/// Workflow draws use the same RNG stream shape as [`OpenLoopArrivals`].
pub struct ServiceArrivals {
    gen: OpenLoopGen,
    rng: DetRng,
    router: u32,
    specs: u32,
    remaining: u64,
}

/// The group hosting the service-mode router (and its gateway).
pub const ROUTER_GROUP: u32 = 0;

impl ServiceArrivals {
    pub fn new(
        pattern: ArrivalPattern,
        rps: f64,
        count: u64,
        rng: DetRng,
        router: u32,
        specs: u32,
    ) -> ServiceArrivals {
        assert!(specs > 0);
        ServiceArrivals {
            gen: OpenLoopGen::unbounded(pattern, rps, rng.split(0)),
            rng: rng.split(1),
            router,
            specs,
            remaining: count,
        }
    }
}

impl ArrivalSource for ServiceArrivals {
    fn next(&mut self) -> Option<ClusterArrival> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let at: SimTime = self.gen.next()?;
        let spec = self.rng.next_below(self.specs as u64) as u32;
        Some(ClusterArrival {
            at,
            spec,
            home: self.router,
        })
    }
}

/// Assemble service-mode group setups for `preset`: every group runs a
/// heartbeat daemon publishing to the router group, and the single
/// open-loop stream (`total` invocations at `rps`) enters at the router's
/// gateway. The caller installs the router agent on
/// `setups[ROUTER_GROUP as usize].agent` (the policy lives in
/// `grouter-ctl`; this crate only wires the fabric).
pub fn service_setups(
    preset: &ClusterPreset,
    pattern: ArrivalPattern,
    rps: f64,
    total: u64,
    seed: u64,
    hb_interval: SimDuration,
    plane: impl Fn(usize) -> Box<dyn DataPlane>,
) -> Vec<GroupSetup> {
    let root = DetRng::new(seed).fork(0xA22);
    preset
        .groups
        .iter()
        .enumerate()
        .map(|(g, gs)| {
            let specs = cluster_mix(gs.gpu);
            let source = (g as u32 == ROUTER_GROUP).then(|| {
                Box::new(ServiceArrivals::new(
                    pattern,
                    rps,
                    total,
                    root.split(g as u64),
                    ROUTER_GROUP,
                    specs.len() as u32,
                )) as Box<dyn ArrivalSource>
            });
            GroupSetup {
                topo: (gs.topo)(),
                nodes: gs.nodes,
                plane: plane(g),
                config: RuntimeConfig {
                    seed,
                    ..RuntimeConfig::default()
                },
                specs,
                source,
                fault_plans: Vec::new(),
                hb: Some(grouter_runtime::HeartbeatConfig {
                    to: ROUTER_GROUP,
                    interval: hb_interval,
                }),
                agent: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_the_advertised_gpu_counts() {
        assert_eq!(ClusterPreset::uniform_64().total_gpus(), 64);
        assert_eq!(ClusterPreset::hetero_64().total_gpus(), 64);
        assert_eq!(ClusterPreset::hetero_128().total_gpus(), 128);
    }

    #[test]
    fn arrivals_are_mostly_local_and_time_ordered() {
        let mut src = OpenLoopArrivals::new(
            ArrivalPattern::Sporadic,
            1000.0,
            20_000,
            DetRng::new(3),
            2,
            8,
            3,
        );
        let mut prev = SimTime::ZERO;
        let mut local = 0u64;
        let mut n = 0u64;
        while let Some(a) = src.next() {
            assert!(a.at >= prev);
            prev = a.at;
            assert!(a.home < 8 && a.spec < 3);
            if a.home == 2 {
                local += 1;
            }
            n += 1;
        }
        assert_eq!(n, 20_000);
        let frac = local as f64 / n as f64;
        assert!((frac - LOCALITY).abs() < 0.02, "locality {frac}");
    }

    #[test]
    fn cluster_mix_scales_with_gpu_class() {
        let v = cluster_mix(GpuClass::V100);
        let a = cluster_mix(GpuClass::A100);
        assert_eq!(v.len(), a.len());
        // A100 variants are faster but structurally identical.
        for (wv, wa) in v.iter().zip(&a) {
            assert_eq!(wv.name, wa.name);
            assert_eq!(wv.stages.len(), wa.stages.len());
        }
        assert!(v[0].stages[0].compute > a[0].stages[0].compute);
    }
}
