//! # grouter-workloads
//!
//! The evaluation workloads (paper §6):
//!
//! * [`models`] — parametric latency/size profiles for the models the six
//!   workflows run (YOLO, ResNets, segmentation, face detection, …) with
//!   per-testbed GPU speed factors.
//! * [`apps`] — the benchmarking suite of Fig. 12: *Traffic* (condition),
//!   *Driving* (sequence), *Video* (fan-out), *Image* (fan-in), *MoA*
//!   (layered LLM agents), plus the *Chatbot* pipeline substituted for the
//!   sixth workflow (DESIGN.md §3).
//! * [`azure`] — Azure-Functions-style request traces with the three
//!   arrival patterns the paper uses: sporadic, periodic, bursty.
//! * [`llm`] — KV-cache sizing and prefill/decode latency models for the
//!   MoA experiment (§6.4).

pub mod apps;
pub mod azure;
pub mod cluster;
pub mod llm;
pub mod models;

pub use apps::{suite, WorkloadParams};
pub use azure::{generate_trace, ArrivalPattern, OpenLoopGen};
pub use cluster::{
    cluster_mix, group_setups, service_setups, ClusterPreset, OpenLoopArrivals, ServiceArrivals,
    ROUTER_GROUP,
};
