//! Exporters for a drained [`Trace`]: Chrome `trace_event` JSON (async
//! begin/end + instant events, loadable in `chrome://tracing` / Perfetto)
//! and a compact CSV summary of counters and histograms — plus a tiny
//! recursive-descent JSON well-formedness validator used by CI's
//! trace-smoke step (the container has no guaranteed Python/jq).
//!
//! Everything here is byte-deterministic: events are written in `(t_ns,
//! seq)` ring order, aggregates iterate `BTreeMap`s, floats use shortest
//! round-trip formatting, and virtual-time microsecond timestamps are fixed
//! three-decimal renderings of integer nanoseconds.

use crate::{format_f64, Phase, Trace, Val};

/// Escape a string for a JSON string literal (quotes not included).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_val(v: &Val, out: &mut String) {
    match v {
        Val::U64(x) => out.push_str(&x.to_string()),
        Val::I64(x) => out.push_str(&x.to_string()),
        Val::F64(x) => out.push_str(&format_f64(*x)),
        Val::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
        Val::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

/// Virtual-time `ts` field: microseconds with exactly three decimals
/// (nanosecond precision), rendered from the integer clock so it is
/// byte-stable.
fn push_ts(t_ns: u64, out: &mut String) {
    out.push_str(&format!("{}.{:03}", t_ns / 1_000, t_ns % 1_000));
}

impl Trace {
    /// Render the trace as Chrome `trace_event` JSON. Spans become async
    /// `"b"`/`"e"` pairs keyed by span id (they overlap freely, unlike
    /// synchronous `B`/`E` which must nest per track); instants become
    /// `"i"` with thread scope. `tid` is the component track, `pid` is 0.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (k, e) in self.events.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":\"");
            escape_json(e.name, &mut out);
            out.push_str("\",\"cat\":\"");
            out.push_str(e.comp.label());
            out.push_str("\",\"ph\":\"");
            out.push_str(match e.phase {
                Phase::Begin => "b",
                Phase::End => "e",
                Phase::Instant => "i",
            });
            out.push_str("\",\"ts\":");
            push_ts(e.t_ns, &mut out);
            out.push_str(",\"pid\":0,\"tid\":");
            out.push_str(&(e.comp as u8).to_string());
            if e.phase != Phase::Instant {
                out.push_str(",\"id\":\"0x");
                out.push_str(&format!("{:x}", e.span));
                out.push('"');
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            out.push_str(",\"args\":{");
            let mut first = true;
            let mut arg = |key: &str, out: &mut String| {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                escape_json(key, out);
                out.push_str("\":");
            };
            arg("seq", &mut out);
            out.push_str(&e.seq.to_string());
            if let Some(op) = e.ids.op {
                arg("op", &mut out);
                out.push_str(&op.to_string());
            }
            if let Some(flow) = e.ids.flow {
                arg("flow", &mut out);
                out.push_str(&flow.to_string());
            }
            if let Some(inst) = e.ids.inst {
                arg("inst", &mut out);
                out.push_str(&inst.to_string());
            }
            for (k, v) in &e.args {
                arg(k, &mut out);
                push_val(v, &mut out);
            }
            out.push_str("}}");
        }
        out.push_str(
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual\",\"dropped\":",
        );
        out.push_str(&self.dropped.to_string());
        out.push_str("}}\n");
        out
    }

    /// Compact CSV summary of counters and histograms, one row per metric,
    /// sorted by (kind, component, name). Histogram quantiles are the
    /// deterministic log-bucket readouts.
    pub fn csv_summary(&self) -> String {
        let mut out = String::from("kind,component,name,count,sum,min,max,p50,p99\n");
        for ((comp, name), v) in &self.stats.counters {
            out.push_str(&format!("counter,{},{name},{v},,,,,\n", comp.label()));
        }
        for ((comp, name), h) in &self.stats.hists {
            out.push_str(&format!(
                "hist,{},{name},{},{},{},{},{},{}\n",
                comp.label(),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
            ));
        }
        out
    }
}

/// Minimal JSON well-formedness validator (RFC 8259 grammar, no semantic
/// checks). Returns the byte offset and a message on the first error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, at: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.at != b.len() {
        return Err(format!("trailing bytes at offset {}", p.at));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("offset {}: {msg}", self.at)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.at += 1;
                        }
                        Some(b'u') => {
                            self.at += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.at += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => self.at += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Comp, Ids, Recorder};

    fn sample_trace() -> Trace {
        let r = Recorder::enabled(64);
        r.set_now(1_234);
        let sp = r.begin(
            Comp::Transfer,
            "leg",
            Ids::flow(3).with_inst(1),
            vec![("bytes", 2_000_000u64.into()), ("route", "nvlink".into())],
        );
        r.set_now(5_234);
        r.instant(
            Comp::Net,
            "realloc_wave",
            Ids::NONE,
            vec![("flows", 4u64.into()), ("share", 0.25f64.into())],
        );
        r.set_now(9_999);
        r.end(sp, vec![("ok", true.into())]);
        r.count(Comp::Topo, "cache_hit", 2);
        r.drain()
    }

    #[test]
    fn chrome_json_is_well_formed_and_stable() {
        let a = sample_trace().chrome_json();
        let b = sample_trace().chrome_json();
        assert_eq!(a, b, "same emit sequence must render byte-identically");
        validate_json(&a).expect("exporter output must be valid JSON");
        assert!(a.contains("\"ph\":\"b\""));
        assert!(a.contains("\"ph\":\"e\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"ts\":1.234"));
        assert!(a.contains("\"cat\":\"transfer\""));
        assert!(a.contains("\"flow\":3"));
    }

    #[test]
    fn csv_summary_lists_counters_and_hists() {
        let csv = sample_trace().csv_summary();
        assert!(csv.starts_with("kind,component,name,count,sum,min,max,p50,p99\n"));
        assert!(csv.contains("counter,topo,cache_hit,2,,,,,\n"));
        assert!(csv.contains("hist,transfer,leg,1,"));
    }

    #[test]
    fn escaping_survives_validation() {
        let r = Recorder::enabled(8);
        r.instant(
            Comp::Store,
            "put",
            Ids::NONE,
            vec![("key", "we\"ird\\\n\tname\u{1}".into())],
        );
        let json = r.drain().chrome_json();
        validate_json(&json).unwrap();
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{}").unwrap();
        validate_json(" [1, 2.5, -3e+4, \"x\\u00e9\", true, null] ").unwrap();
        validate_json("{\"a\":{\"b\":[{}]}}").unwrap();
        assert!(validate_json("").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01").is_ok()); // lenient: leading zero accepted
        assert!(validate_json("{} garbage").is_err());
        assert!(validate_json("1.").is_err());
        assert!(validate_json("nul").is_err());
    }
}
