//! # grouter-obs — deterministic, virtual-time observability
//!
//! A zero-dependency structured-event subsystem for the GROUTER data plane.
//! Components emit *typed events* — spans (begin/end pairs) and instants —
//! tagged with correlation ids (data-op, flow, workflow instance) into a
//! bounded ring-buffer **flight recorder**, plus per-component counters and
//! log-bucketed histograms. A drained [`Trace`] snapshot can be queried
//! in-process ([`Trace::events_for_flow`], [`Trace::spans_overlapping`]) or
//! exported as Chrome `trace_event` JSON (loadable in `chrome://tracing` /
//! Perfetto) and a compact CSV summary.
//!
//! ## Determinism contract
//!
//! All timestamps are **virtual nanoseconds** mirrored from the simulation
//! clock ([`Recorder::set_now`], driven by `grouter_sim::Simulation::step`);
//! nothing in this crate reads wall-clock time. Event sequence numbers are
//! assigned in emit order, ring eviction is FIFO, and every exporter
//! iterates `BTreeMap`s — so same-seed, same-config runs produce
//! **byte-identical** exports. Traces are diffable CI artifacts.
//!
//! ## Cost model
//!
//! [`Recorder`] is a cheap cloneable handle. Tracing is runtime-switchable
//! per component via an atomic bitmask: a *disabled* emit is one relaxed
//! atomic load and a branch (measured ≤3% on the 1k-flow FlowNet churn
//! scenario — see `BENCH_obs.json`), and a fully detached handle
//! ([`Recorder::disabled`]) is a `None` check. Hot paths must pre-check
//! [`Recorder::on`] before building argument vectors.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub mod export;

/// The subsystem a trace event originates from. Doubles as the Chrome-trace
/// track (`tid`) and the bit position in the runtime enable mask.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Comp {
    /// Discrete-event scheduler (`grouter-sim::engine`).
    Sim = 0,
    /// Flow-level network model (`grouter-sim::flownet`).
    Net = 1,
    /// Path enumeration / cache (`grouter-topology`).
    Topo = 2,
    /// GPU memory pools and pre-warm scalers (`grouter-mem`).
    Mem = 3,
    /// Object store (`grouter-store`).
    Store = 4,
    /// Transfer engine legs and chunk batches (`grouter-transfer`).
    Transfer = 5,
    /// Workflow runtime: stage dispatch, queue waits (`grouter-runtime`).
    Runtime = 6,
    /// Data-plane policy decisions (`grouter-core`).
    Plane = 7,
    /// Fault injection and recovery waves (`grouter-runtime::fault`).
    Fault = 8,
    /// Control plane: router admission/routing decisions and worker
    /// heartbeats (`grouter-ctl` over `grouter-runtime::cluster`).
    Ctl = 9,
    /// LLM serving: prefill/decode disaggregation, KV block lifecycle and
    /// token-stream progress (`grouter-llm`).
    Llm = 10,
}

/// All components, in `tid` order. Keep in sync with [`Comp`].
pub const COMPONENTS: [Comp; 11] = [
    Comp::Sim,
    Comp::Net,
    Comp::Topo,
    Comp::Mem,
    Comp::Store,
    Comp::Transfer,
    Comp::Runtime,
    Comp::Plane,
    Comp::Fault,
    Comp::Ctl,
    Comp::Llm,
];

impl Comp {
    /// Bit in the runtime enable mask.
    #[inline]
    pub const fn bit(self) -> u32 {
        1 << (self as u8)
    }

    /// Short lowercase label used as the Chrome-trace category and the CSV
    /// component column.
    pub const fn label(self) -> &'static str {
        match self {
            Comp::Sim => "sim",
            Comp::Net => "net",
            Comp::Topo => "topo",
            Comp::Mem => "mem",
            Comp::Store => "store",
            Comp::Transfer => "transfer",
            Comp::Runtime => "runtime",
            Comp::Plane => "plane",
            Comp::Fault => "fault",
            Comp::Ctl => "ctl",
            Comp::Llm => "llm",
        }
    }
}

/// Enable mask covering every component.
pub const MASK_ALL: u32 = (1 << COMPONENTS.len()) - 1;
/// Default mask: only recovery/fault events, which back the runtime's
/// `recovery_log` view and must survive with tracing "off".
pub const MASK_FAULT_ONLY: u32 = Comp::Fault.bit();

/// A typed event argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum Val {
    U64(u64),
    I64(i64),
    /// Rendered with `format_f64` (shortest round-trip-stable form) so
    /// exports stay byte-identical across runs.
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for Val {
    fn from(v: u64) -> Self {
        Val::U64(v)
    }
}
impl From<usize> for Val {
    fn from(v: usize) -> Self {
        Val::U64(v as u64)
    }
}
impl From<u32> for Val {
    fn from(v: u32) -> Self {
        Val::U64(u64::from(v))
    }
}
impl From<i64> for Val {
    fn from(v: i64) -> Self {
        Val::I64(v)
    }
}
impl From<f64> for Val {
    fn from(v: f64) -> Self {
        Val::F64(v)
    }
}
impl From<bool> for Val {
    fn from(v: bool) -> Self {
        Val::Bool(v)
    }
}
impl From<&str> for Val {
    fn from(v: &str) -> Self {
        Val::Str(v.to_string())
    }
}
impl From<String> for Val {
    fn from(v: String) -> Self {
        Val::Str(v)
    }
}

/// Correlation ids attaching an event to data-plane entities. All optional;
/// [`Ids::NONE`] for purely structural events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ids {
    /// Data-op id (`runtime` op table key).
    pub op: Option<u64>,
    /// `FlowNet` flow id.
    pub flow: Option<u64>,
    /// Workflow instance id.
    pub inst: Option<u64>,
}

impl Ids {
    pub const NONE: Ids = Ids {
        op: None,
        flow: None,
        inst: None,
    };

    pub fn op(op: u64) -> Ids {
        Ids {
            op: Some(op),
            ..Ids::NONE
        }
    }

    pub fn flow(flow: u64) -> Ids {
        Ids {
            flow: Some(flow),
            ..Ids::NONE
        }
    }

    pub fn inst(inst: u64) -> Ids {
        Ids {
            inst: Some(inst),
            ..Ids::NONE
        }
    }

    pub fn with_flow(mut self, flow: u64) -> Ids {
        self.flow = Some(flow);
        self
    }

    pub fn with_inst(mut self, inst: u64) -> Ids {
        self.inst = Some(inst);
        self
    }
}

/// Event phase, mirroring the Chrome `trace_event` `ph` field.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Span begin (`ph:"b"` async begin; paired by span id).
    Begin,
    /// Span end (`ph:"e"`).
    End,
    /// Instant event (`ph:"i"`).
    Instant,
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Virtual time, nanoseconds.
    pub t_ns: u64,
    /// Emit-order sequence number (total order within a recorder).
    pub seq: u64,
    pub comp: Comp,
    pub name: &'static str,
    pub phase: Phase,
    /// Non-zero for [`Phase::Begin`]/[`Phase::End`]; pairs the two halves.
    pub span: u64,
    pub ids: Ids,
    pub args: Vec<(&'static str, Val)>,
}

/// Log2-bucketed histogram over `u64` samples (latency ns, bytes).
///
/// Bucket `b` holds values in `[2^(b-1)+1, 2^b]` (bucket 0 holds zero), so
/// quantile readout is exact to within one power of two and — because the
/// readout walks fixed integer bucket counts — perfectly deterministic.
#[derive(Clone, Debug)]
pub struct Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Hist {
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        self.min
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), clamped to the observed max. Returns `None` when
    /// empty. `quantile(0.5)` is the p50 readout, `quantile(0.99)` the p99.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; ceil without float rounding
        // surprises at the boundaries.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let hi = if b == 0 { 0 } else { 1u64 << b };
                return Some(hi.min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }
}

/// Aggregates owned by the recorder, keyed `(component, name)`.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    pub counters: BTreeMap<(Comp, &'static str), u64>,
    pub hists: BTreeMap<(Comp, &'static str), Hist>,
}

struct State {
    ring: VecDeque<Event>,
    cap: usize,
    /// Events evicted from the ring (FIFO) because it was full.
    dropped: u64,
    next_seq: u64,
    next_span: u64,
    /// Open spans: id → (comp, name, begin ns). Checked at drain time by the
    /// `obs.spans_balanced` auditor.
    live: BTreeMap<u64, (Comp, &'static str, u64)>,
    stats: Stats,
}

struct Inner {
    mask: AtomicU32,
    clock_ns: AtomicU64,
    state: Mutex<State>,
}

/// A drained, immutable snapshot of the flight recorder: the event ring in
/// `(t_ns, seq)` order plus counter/histogram aggregates. All queries and
/// exporters live here so the recorder lock is never held across I/O.
#[derive(Clone, Debug)]
pub struct Trace {
    pub events: Vec<Event>,
    pub stats: Stats,
    /// Events evicted by ring-buffer wrap before this snapshot.
    pub dropped: u64,
}

/// A reconstructed span (paired begin/end) returned by
/// [`Trace::spans_overlapping`].
#[derive(Clone, Debug)]
pub struct SpanView<'a> {
    pub begin: &'a Event,
    /// `None` when the end half was evicted or the span was still open.
    pub end: Option<&'a Event>,
    pub t0_ns: u64,
    /// End instant; open spans extend to the snapshot horizon (max event t).
    pub t1_ns: u64,
}

impl Trace {
    /// Every event correlated with `flow`, in `(t_ns, seq)` order.
    pub fn events_for_flow(&self, flow: u64) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| e.ids.flow == Some(flow))
            .collect()
    }

    /// Every event correlated with workflow instance `inst`.
    pub fn events_for_instance(&self, inst: u64) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| e.ids.inst == Some(inst))
            .collect()
    }

    /// Events with the given name, in order.
    pub fn events_named(&self, name: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.name == name).collect()
    }

    /// Spans whose `[t0, t1]` interval intersects `[from_ns, to_ns]`
    /// (inclusive). Spans whose begin was evicted from the ring are not
    /// reconstructable and are skipped; open spans extend to the snapshot
    /// horizon.
    pub fn spans_overlapping(&self, from_ns: u64, to_ns: u64) -> Vec<SpanView<'_>> {
        let horizon = self.events.last().map(|e| e.t_ns).unwrap_or(0);
        let mut ends: BTreeMap<u64, &Event> = BTreeMap::new();
        for e in &self.events {
            if e.phase == Phase::End {
                ends.insert(e.span, e);
            }
        }
        let mut out = Vec::new();
        for e in &self.events {
            if e.phase != Phase::Begin {
                continue;
            }
            let end = ends.get(&e.span).copied();
            let t1 = end.map(|x| x.t_ns).unwrap_or(horizon);
            if e.t_ns <= to_ns && t1 >= from_ns {
                out.push(SpanView {
                    begin: e,
                    end,
                    t0_ns: e.t_ns,
                    t1_ns: t1,
                });
            }
        }
        out
    }

    /// Counter value, 0 when never incremented.
    pub fn counter(&self, comp: Comp, name: &str) -> u64 {
        self.stats
            .counters
            .iter()
            .find(|((c, n), _)| *c == comp && *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Histogram readout, if any samples were recorded.
    pub fn hist(&self, comp: Comp, name: &str) -> Option<&Hist> {
        self.stats
            .hists
            .iter()
            .find(|((c, n), _)| *c == comp && *n == name)
            .map(|(_, h)| h)
    }
}

/// Cheap cloneable handle to the flight recorder. `Recorder::disabled()`
/// carries no allocation at all; emit calls on it are a `None` check.
#[derive(Clone)]
pub struct Recorder(Option<Arc<Inner>>);

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Recorder(disabled)"),
            Some(i) => write!(f, "Recorder(mask={:#x})", i.mask.load(Ordering::Relaxed)),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl Recorder {
    /// A detached handle: every call is a no-op after a `None` check.
    pub const fn disabled() -> Recorder {
        Recorder(None)
    }

    /// A recorder with a ring of `cap` events and the given component mask
    /// (see [`MASK_ALL`], [`MASK_FAULT_ONLY`]).
    pub fn with_mask(cap: usize, mask: u32) -> Recorder {
        Recorder(Some(Arc::new(Inner {
            mask: AtomicU32::new(mask),
            clock_ns: AtomicU64::new(0),
            state: Mutex::new(State {
                ring: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
                next_seq: 0,
                next_span: 0,
                live: BTreeMap::new(),
                stats: Stats::default(),
            }),
        })))
    }

    /// A fully enabled recorder.
    pub fn enabled(cap: usize) -> Recorder {
        Recorder::with_mask(cap, MASK_ALL)
    }

    /// True when this handle is attached to a ring (even if all components
    /// are currently masked off).
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// True when events from `comp` are currently recorded. Hot paths call
    /// this before building argument vectors.
    #[inline]
    pub fn on(&self, comp: Comp) -> bool {
        match &self.0 {
            None => false,
            Some(i) => i.mask.load(Ordering::Relaxed) & comp.bit() != 0,
        }
    }

    /// Replace the component enable mask.
    pub fn set_mask(&self, mask: u32) {
        if let Some(i) = &self.0 {
            i.mask.store(mask, Ordering::Relaxed);
        }
    }

    pub fn mask(&self) -> u32 {
        match &self.0 {
            None => 0,
            Some(i) => i.mask.load(Ordering::Relaxed),
        }
    }

    /// Advance the virtual clock. Called by the simulation engine before
    /// dispatching each event; standalone users (benches, tests) may drive
    /// it directly.
    #[inline]
    pub fn set_now(&self, t_ns: u64) {
        if let Some(i) = &self.0 {
            i.clock_ns.store(t_ns, Ordering::Relaxed);
        }
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            None => 0,
            Some(i) => i.clock_ns.load(Ordering::Relaxed),
        }
    }

    fn push(state: &mut State, ev: Event) {
        if state.ring.len() == state.cap {
            state.ring.pop_front();
            state.dropped += 1;
        }
        state.ring.push_back(ev);
    }

    /// Record an instant event at the recorder's current virtual time.
    pub fn instant(
        &self,
        comp: Comp,
        name: &'static str,
        ids: Ids,
        args: Vec<(&'static str, Val)>,
    ) {
        let t_ns = self.now_ns();
        self.instant_at(t_ns, comp, name, ids, args);
    }

    /// Record an instant event at an explicit virtual time — for callers
    /// that carry `now` themselves (e.g. fault handlers driven outside a
    /// `Simulation`, where the recorder clock may not be synced).
    pub fn instant_at(
        &self,
        t_ns: u64,
        comp: Comp,
        name: &'static str,
        ids: Ids,
        args: Vec<(&'static str, Val)>,
    ) {
        let Some(i) = &self.0 else { return };
        if i.mask.load(Ordering::Relaxed) & comp.bit() == 0 {
            return;
        }
        let mut st = i.state.lock().unwrap();
        let seq = st.next_seq;
        st.next_seq += 1;
        Self::push(
            &mut st,
            Event {
                t_ns,
                seq,
                comp,
                name,
                phase: Phase::Instant,
                span: 0,
                ids,
                args,
            },
        );
    }

    /// Open a span; returns its id (0 when not recorded). Pass the id to
    /// [`Recorder::end`]; `end(0, ..)` is a no-op, so callers need no
    /// enabled-state bookkeeping of their own.
    #[must_use]
    pub fn begin(
        &self,
        comp: Comp,
        name: &'static str,
        ids: Ids,
        args: Vec<(&'static str, Val)>,
    ) -> u64 {
        let Some(i) = &self.0 else { return 0 };
        if i.mask.load(Ordering::Relaxed) & comp.bit() == 0 {
            return 0;
        }
        let t_ns = i.clock_ns.load(Ordering::Relaxed);
        let mut st = i.state.lock().unwrap();
        st.next_span += 1;
        let span = st.next_span;
        let seq = st.next_seq;
        st.next_seq += 1;
        #[cfg(feature = "audit")]
        grouter_audit::check("obs.spans_balanced", !st.live.contains_key(&span), || {
            format!("span id {span} reused while open")
        });
        st.live.insert(span, (comp, name, t_ns));
        Self::push(
            &mut st,
            Event {
                t_ns,
                seq,
                comp,
                name,
                phase: Phase::Begin,
                span,
                ids,
                args,
            },
        );
        span
    }

    /// Close a span opened by [`Recorder::begin`]. The span's duration is
    /// also recorded into the `(comp, name)` latency histogram.
    pub fn end(&self, span: u64, args: Vec<(&'static str, Val)>) {
        if span == 0 {
            return;
        }
        let Some(i) = &self.0 else { return };
        let t_ns = i.clock_ns.load(Ordering::Relaxed);
        let mut st = i.state.lock().unwrap();
        let Some((comp, name, t0)) = st.live.remove(&span) else {
            return;
        };
        let seq = st.next_seq;
        st.next_seq += 1;
        st.stats
            .hists
            .entry((comp, name))
            .or_default()
            .record(t_ns.saturating_sub(t0));
        Self::push(
            &mut st,
            Event {
                t_ns,
                seq,
                comp,
                name,
                phase: Phase::End,
                span,
                ids: Ids::NONE,
                args,
            },
        );
    }

    /// Add `delta` to the `(comp, name)` counter (subject to the mask).
    pub fn count(&self, comp: Comp, name: &'static str, delta: u64) {
        let Some(i) = &self.0 else { return };
        if i.mask.load(Ordering::Relaxed) & comp.bit() == 0 {
            return;
        }
        let mut st = i.state.lock().unwrap();
        *st.stats.counters.entry((comp, name)).or_insert(0) += delta;
    }

    /// Record a sample (latency ns, bytes, ...) into the `(comp, name)`
    /// histogram (subject to the mask).
    pub fn sample(&self, comp: Comp, name: &'static str, v: u64) {
        let Some(i) = &self.0 else { return };
        if i.mask.load(Ordering::Relaxed) & comp.bit() == 0 {
            return;
        }
        let mut st = i.state.lock().unwrap();
        st.stats.hists.entry((comp, name)).or_default().record(v);
    }

    /// Number of open (unbalanced) spans right now.
    pub fn open_spans(&self) -> usize {
        match &self.0 {
            None => 0,
            Some(i) => i.state.lock().unwrap().live.len(),
        }
    }

    /// Clone out a snapshot without draining the ring.
    pub fn snapshot(&self) -> Trace {
        match &self.0 {
            None => Trace {
                events: Vec::new(),
                stats: Stats::default(),
                dropped: 0,
            },
            Some(i) => {
                let st = i.state.lock().unwrap();
                Trace {
                    events: st.ring.iter().cloned().collect(),
                    stats: st.stats.clone(),
                    dropped: st.dropped,
                }
            }
        }
    }

    /// Drain the ring into a [`Trace`], leaving counters/histograms in
    /// place. Drain time is when span balance is checked: under the `audit`
    /// feature the `obs.spans_balanced` checker fires, panicking if any span
    /// is still open (every begin must have had a matching end).
    pub fn drain(&self) -> Trace {
        match &self.0 {
            None => Trace {
                events: Vec::new(),
                stats: Stats::default(),
                dropped: 0,
            },
            Some(i) => {
                let mut st = i.state.lock().unwrap();
                #[cfg(feature = "audit")]
                grouter_audit::check("obs.spans_balanced", st.live.is_empty(), || {
                    let mut names: Vec<String> = st
                        .live
                        .values()
                        .map(|(c, n, t)| format!("{}.{n}@{t}ns", c.label()))
                        .collect();
                    names.truncate(8);
                    format!(
                        "{} span(s) still open at drain: {}",
                        st.live.len(),
                        names.join(", ")
                    )
                });
                let events: Vec<Event> = st.ring.drain(..).collect();
                let dropped = st.dropped;
                st.dropped = 0;
                Trace {
                    events,
                    stats: st.stats.clone(),
                    dropped,
                }
            }
        }
    }
}

/// Deterministic shortest-form rendering for `f64` values in exports.
/// Rust's `{}` float formatting is shortest-round-trip and stable across
/// runs and platforms for the same bit pattern.
pub fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "\"inf\"".to_string()
        } else {
            "\"-inf\"".to_string()
        }
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.on(Comp::Net));
        let sp = r.begin(Comp::Net, "x", Ids::NONE, vec![]);
        assert_eq!(sp, 0);
        r.end(sp, vec![]);
        r.instant(Comp::Net, "y", Ids::NONE, vec![]);
        r.count(Comp::Net, "c", 3);
        assert!(r.drain().events.is_empty());
    }

    #[test]
    fn mask_gates_components() {
        let r = Recorder::with_mask(16, Comp::Fault.bit());
        assert!(r.on(Comp::Fault));
        assert!(!r.on(Comp::Net));
        r.instant(Comp::Net, "dropped", Ids::NONE, vec![]);
        r.instant(Comp::Fault, "kept", Ids::NONE, vec![]);
        let t = r.drain();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].name, "kept");
    }

    #[test]
    fn spans_pair_and_record_latency() {
        let r = Recorder::enabled(16);
        r.set_now(1_000);
        let sp = r.begin(
            Comp::Transfer,
            "leg",
            Ids::flow(7),
            vec![("bytes", 64u64.into())],
        );
        assert_ne!(sp, 0);
        r.set_now(4_000);
        r.end(sp, vec![]);
        let t = r.drain();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].phase, Phase::Begin);
        assert_eq!(t.events[1].phase, Phase::End);
        assert_eq!(t.events[0].span, t.events[1].span);
        let h = t.hist(Comp::Transfer, "leg").unwrap();
        assert_eq!(h.count(), 1);
        // 3000 ns lands in bucket (4096]; readout clamps to observed max.
        assert_eq!(h.quantile(0.5), Some(3_000));
    }

    #[test]
    fn ring_evicts_fifo_and_counts_drops() {
        let r = Recorder::enabled(4);
        for k in 0..10u64 {
            r.set_now(k);
            r.instant(Comp::Sim, "tick", Ids::NONE, vec![("k", k.into())]);
        }
        let t = r.drain();
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 6);
        assert_eq!(t.events[0].t_ns, 6);
        let r2 = Recorder::enabled(4);
        for _ in 0..10u64 {
            r2.instant(Comp::Sim, "tick", Ids::NONE, vec![]);
        }
        assert_eq!(r2.snapshot().dropped, 6);
    }

    #[test]
    fn queries_filter_by_ids_and_window() {
        let r = Recorder::enabled(64);
        r.set_now(10);
        let a = r.begin(Comp::Transfer, "leg", Ids::flow(1), vec![]);
        r.set_now(20);
        let b = r.begin(Comp::Transfer, "leg", Ids::flow(2), vec![]);
        r.set_now(30);
        r.end(a, vec![]);
        r.set_now(40);
        r.end(b, vec![]);
        r.instant(Comp::Net, "wave", Ids::flow(2), vec![]);
        let t = r.drain();
        assert_eq!(t.events_for_flow(1).len(), 1);
        assert_eq!(t.events_for_flow(2).len(), 2);
        let spans = t.spans_overlapping(25, 35);
        assert_eq!(spans.len(), 2); // [10,30] and [20,40] both intersect
        let spans = t.spans_overlapping(31, 35);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].t0_ns, 20);
        assert_eq!(spans[0].t1_ns, 40);
    }

    #[test]
    fn hist_quantiles_are_deterministic() {
        let mut h = Hist::default();
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100_000);
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p99);
        assert_eq!(h.quantile(0.0), Some(2)); // bucket upper bound for value 1
        assert_eq!(h.quantile(1.0), Some(100_000));
        // Zero handling: bucket 0.
        let mut z = Hist::default();
        z.record(0);
        assert_eq!(z.quantile(0.5), Some(0));
    }

    #[test]
    fn counters_accumulate() {
        let r = Recorder::enabled(4);
        r.count(Comp::Topo, "cache_hit", 1);
        r.count(Comp::Topo, "cache_hit", 2);
        r.count(Comp::Topo, "cache_miss", 1);
        let t = r.snapshot();
        assert_eq!(t.counter(Comp::Topo, "cache_hit"), 3);
        assert_eq!(t.counter(Comp::Topo, "cache_miss"), 1);
        assert_eq!(t.counter(Comp::Topo, "absent"), 0);
    }
}
