//! **DeepPlan+** — NVSHMEM+ with storage-driven parallel PCIe (paper §6).
//!
//! DeepPlan's direct-host-access trick loads data over *all* PCIe links of a
//! node in parallel. Grafted onto the NVSHMEM+ store this accelerates
//! gFn–host transfers, but:
//!
//! * route GPUs are chosen without topology awareness — same-switch GPUs
//!   share one host uplink and NVLink-less peers double traffic on the
//!   source's own PCIe segment (§3.2.2), which is why DeepPlan+ can lose to
//!   NVSHMEM+ on asymmetric DGX-V100 boxes (Fig. 13b);
//! * bandwidth is not partitioned, so co-located workflows interfere
//!   (Fig. 5b: 3.65× gFn–host degradation);
//! * gFn–gFn transfers and the placement-blind store are unchanged.

use grouter_runtime::dataplane::DataPlane;
use grouter_transfer::plan::PlanConfig;

use crate::nvshmem::NvshmemPlane;

/// Build the DeepPlan+ plane (an [`NvshmemPlane`] with parallel-PCIe
/// gFn–host planning).
pub fn deepplan_plane(seed: u64) -> Box<dyn DataPlane> {
    Box::new(NvshmemPlane::new(seed).with_host_cfg(PlanConfig::deepplan(), "DeepPlan+"))
}

/// Type alias so callers can name the plane in signatures.
pub type DeepPlanPlane = NvshmemPlane;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepplan_reports_its_name() {
        let plane = deepplan_plane(1);
        assert_eq!(plane.name(), "DeepPlan+");
    }
}
