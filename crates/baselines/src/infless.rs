//! **INFless+** — the host-centric baseline (paper §6, Fig. 2a).
//!
//! INFless extended with a host-side shared-memory storage layer. Every
//! intermediate object lives in host memory: GPU producers serialise and
//! copy down over their own PCIe link; GPU consumers copy up and
//! deserialise. gFn–gFn hops therefore cost two PCIe crossings plus
//! serialisation at both ends — the 92 %-of-latency pathology of Fig. 3.

use grouter_runtime::dataplane::{DataOp, DataPlane, Destination, PlaneCtx, PutOp};
use grouter_sim::time::SimDuration;
use grouter_store::{AccessToken, DataId, Location, StoreError};
use grouter_topology::GpuRef;
use grouter_transfer::plan::PlanConfig;

use crate::common;

/// Host-centric data plane.
#[derive(Debug)]
pub struct InflessPlane {
    cfg: PlanConfig,
}

impl InflessPlane {
    pub fn new() -> InflessPlane {
        InflessPlane {
            cfg: PlanConfig::single_path(),
        }
    }
}

impl Default for InflessPlane {
    fn default() -> Self {
        Self::new()
    }
}

impl DataPlane for InflessPlane {
    fn name(&self) -> &'static str {
        "INFless+"
    }

    fn put(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        source: Destination,
        bytes: f64,
        consumers: u32,
    ) -> Result<PutOp, StoreError> {
        let node = match source {
            Destination::Gpu(g) => g.node,
            Destination::Host(n) => n,
        };
        let (id, lookup) = ctx
            .store
            .put(ctx.now, token, Location::Host(node), bytes, consumers);
        let mut legs = Vec::new();
        let mut control = lookup;
        if let Destination::Gpu(g) = source {
            // Serialise the device tensor, pin a staging buffer (allocated
            // per transfer — no shared ring), then stage it down over the
            // producer's own PCIe link only.
            control =
                control + common::serialize_latency(bytes) + grouter_sim::params::PINNED_ALLOC;
            legs.push(common::leg_d2h(ctx, g, bytes, &self.cfg));
        }
        Ok(PutOp {
            id,
            op: DataOp {
                control_latency: control,
                legs,
            },
        })
    }

    fn get(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        id: DataId,
        dest: Destination,
    ) -> Result<DataOp, StoreError> {
        let node = match dest {
            Destination::Gpu(g) => g.node,
            Destination::Host(n) => n,
        };
        let (entry, lookup) = ctx.store.resolve(ctx.now, node, token, id)?;
        let Location::Host(data_node) = entry.location else {
            unreachable!("host-centric store never holds GPU-resident data");
        };
        let mut legs = Vec::new();
        let mut control = lookup;
        match dest {
            Destination::Gpu(g) => {
                if data_node != g.node {
                    legs.push(common::leg_hh(ctx, data_node, g.node, entry.bytes));
                }
                control = control
                    + common::serialize_latency(entry.bytes)
                    + grouter_sim::params::PINNED_ALLOC;
                legs.push(common::leg_h2d(ctx, g, entry.bytes, &self.cfg));
            }
            Destination::Host(n) => {
                if data_node != n {
                    legs.push(common::leg_hh(ctx, data_node, n, entry.bytes));
                } else {
                    legs.push(common::leg_shm(ctx, n, entry.bytes));
                }
            }
        }
        Ok(DataOp {
            control_latency: control,
            legs,
        })
    }

    fn on_consumed(&mut self, ctx: &mut PlaneCtx<'_>, id: DataId) -> Vec<DataOp> {
        common::gc_consumed(ctx, id);
        Vec::new()
    }

    fn on_memory_change(&mut self, _ctx: &mut PlaneCtx<'_>, _gpu: GpuRef) -> Vec<DataOp> {
        // Host storage: nothing to migrate.
        Vec::new()
    }
}

/// Convenience: expected host-centric gFn–gFn round-trip floor for `bytes`
/// on a PCIe link of `pcie_bw` — serialise + d2h + h2d + deserialise. Used
/// by tests and the Fig. 3 analysis.
pub fn host_roundtrip_floor(bytes: f64, pcie_bw: f64) -> SimDuration {
    common::serialize_latency(bytes)
        + SimDuration::from_secs_f64(bytes / pcie_bw)
        + SimDuration::from_secs_f64(bytes / pcie_bw)
        + common::serialize_latency(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouter_runtime::placement::PlacementPolicy;
    use grouter_runtime::spec::{StageSpec, WorkflowSpec};
    use grouter_runtime::world::RuntimeConfig;
    use grouter_runtime::{metrics::PassCategory, Runtime};
    use grouter_sim::time::SimTime;
    use grouter_topology::presets;
    use std::sync::Arc;

    const MB: f64 = 1e6;

    #[test]
    fn gfn_to_gfn_passes_through_host() {
        // Two GPU stages on different GPUs: INFless+ must pay
        // serialise + d2h + h2d + deserialise for the 120 MB hop.
        let mut wf = WorkflowSpec::new("hop", 1.0 * MB);
        let a = wf.push(StageSpec::gpu(
            "a",
            vec![],
            SimDuration::from_millis(5),
            120.0 * MB,
            1e9,
        ));
        wf.push(StageSpec::gpu(
            "b",
            vec![a],
            SimDuration::from_millis(5),
            1.0 * MB,
            1e9,
        ));
        let pin = PlacementPolicy::Pinned(vec![
            Destination::Gpu(grouter_topology::GpuRef::new(0, 0)),
            Destination::Gpu(grouter_topology::GpuRef::new(0, 3)),
        ]);
        let cfg = RuntimeConfig {
            placement: pin,
            placement_nodes: vec![0],
            ..Default::default()
        };
        let mut rt = Runtime::new(presets::dgx_v100(), 1, Box::new(InflessPlane::new()), cfg);
        rt.submit(Arc::new(wf), SimTime::ZERO);
        rt.run();
        let rec = &rt.metrics().records()[0];
        // Logical-edge attribution: the a→b gFn–gFn hop is booked as
        // gFn–gFn even though INFless+ routes it through host memory, and
        // it must cost at least serialise + d2h + h2d + deserialise.
        let gg = rec.passing_of(PassCategory::GpuGpu);
        let floor = host_roundtrip_floor(120.0 * MB, grouter_sim::params::PCIE_GEN3_X16);
        assert!(
            gg >= floor,
            "gFn-gFn time {gg} below physical floor {floor}"
        );
        // Ingress/egress hops show up as gFn–host traffic.
        assert!(rec.passing_of(PassCategory::GpuHost) > SimDuration::ZERO);
    }

    #[test]
    fn serialization_dominates_large_objects() {
        // 1 GB at 1.5 GB/s serialise + deserialise ≈ 1.33 s vs ~0.17 s of
        // PCIe time: the paper's "data passing dominates" shape.
        let floor = host_roundtrip_floor(1e9, grouter_sim::params::PCIE_GEN3_X16);
        let ser = common::serialize_latency(1e9);
        assert!(ser.as_secs_f64() * 2.0 / floor.as_secs_f64() > 0.8);
    }
}
