//! **Mooncake+** — KV-cache-centric store for the LLM experiment (§6.4).
//!
//! Mooncake manages KV caches in a distributed cache pool. Ported onto the
//! serverless platform it keeps two of its traits the paper calls out:
//!
//! * **No function-placement awareness** — KV blocks live on a fixed
//!   per-node cache GPU, so producers and consumers pay relay copies;
//! * **NIC usage scales with tensor parallelism** — each TP rank drives its
//!   own NIC, so at TP=1 cross-node KV transfer uses a single NIC and only
//!   approaches GROUTER's multi-NIC bandwidth at TP=8 (Fig. 19b).

use grouter_mem::AllocError;
use grouter_runtime::dataplane::{DataOp, DataPlane, Destination, PlaneCtx, PutOp};
use grouter_sim::time::SimDuration;
use grouter_store::{AccessToken, DataId, Location, StoreError};
use grouter_topology::GpuRef;
use grouter_transfer::plan::PlanConfig;

use crate::common;

/// KV-cache store plane.
#[derive(Debug)]
pub struct MooncakePlane {
    /// Tensor-parallel degree of the deployment (NICs used per transfer).
    tp: u32,
    single: PlanConfig,
}

impl MooncakePlane {
    pub fn new(tp: u32) -> MooncakePlane {
        assert!(tp >= 1, "tensor parallelism must be at least 1");
        MooncakePlane {
            tp,
            single: PlanConfig::single_path(),
        }
    }

    /// The per-node cache GPU (fixed: GPU 0).
    fn cache_gpu(node: usize) -> GpuRef {
        GpuRef::new(node, 0)
    }

    /// Cross-node planning: one NIC per TP rank.
    fn xnode_cfg(&self) -> PlanConfig {
        PlanConfig {
            parallel_nics: self.tp > 1,
            max_paths: self.tp as usize,
            ..PlanConfig::grouter()
        }
    }
}

impl DataPlane for MooncakePlane {
    fn name(&self) -> &'static str {
        "Mooncake+"
    }

    fn put(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        source: Destination,
        bytes: f64,
        consumers: u32,
    ) -> Result<PutOp, StoreError> {
        match source {
            Destination::Gpu(g) => {
                let cache = Self::cache_gpu(g.node);
                let (alloc_lat, mut legs) = match ctx.pool(cache).try_alloc(bytes) {
                    Ok(grant) => (grant.latency, Vec::new()),
                    Err(AllocError::NeedsEviction { shortfall }) => {
                        let legs = common::evict_lru(ctx, cache, shortfall, &self.single);
                        let grant = ctx
                            .pool(cache)
                            .try_alloc(bytes)
                            .expect("eviction freed space");
                        (grant.latency, legs)
                    }
                    Err(AllocError::TooLarge) => {
                        let (id, lookup) =
                            ctx.store
                                .put(ctx.now, token, Location::Host(g.node), bytes, consumers);
                        return Ok(PutOp {
                            id,
                            op: DataOp {
                                control_latency: lookup,
                                legs: vec![common::leg_d2h(ctx, g, bytes, &self.single)],
                            },
                        });
                    }
                };
                let (id, lookup) =
                    ctx.store
                        .put(ctx.now, token, Location::Gpu(cache), bytes, consumers);
                if let Some(leg) =
                    common::leg_intra(ctx, g.node, g.gpu, cache.gpu, bytes, &self.single)
                {
                    legs.push(leg);
                }
                Ok(PutOp {
                    id,
                    op: DataOp {
                        control_latency: lookup + alloc_lat,
                        legs,
                    },
                })
            }
            Destination::Host(n) => {
                let (id, lookup) =
                    ctx.store
                        .put(ctx.now, token, Location::Host(n), bytes, consumers);
                Ok(PutOp {
                    id,
                    op: DataOp::control_only(lookup),
                })
            }
        }
    }

    fn get(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        id: DataId,
        dest: Destination,
    ) -> Result<DataOp, StoreError> {
        let node = match dest {
            Destination::Gpu(g) => g.node,
            Destination::Host(n) => n,
        };
        let (entry, lookup) = ctx.store.resolve(ctx.now, node, token, id)?;
        let mut legs = Vec::new();
        match (entry.location, dest) {
            (Location::Gpu(s), Destination::Gpu(d)) => {
                if s.node == d.node {
                    if let Some(leg) =
                        common::leg_intra(ctx, s.node, s.gpu, d.gpu, entry.bytes, &self.single)
                    {
                        legs.push(leg);
                    } else {
                        return Ok(DataOp::control_only(
                            lookup + grouter_sim::params::IPC_MAP_CACHED,
                        ));
                    }
                } else {
                    // Cache(A) → cache(B) over the TP ranks' NICs, then the
                    // local relay to the consumer.
                    let remote_cache = Self::cache_gpu(d.node);
                    legs.push(common::leg_xnode(
                        ctx,
                        s,
                        remote_cache,
                        entry.bytes,
                        &self.xnode_cfg(),
                    ));
                    if let Some(leg) = common::leg_intra(
                        ctx,
                        d.node,
                        remote_cache.gpu,
                        d.gpu,
                        entry.bytes,
                        &self.single,
                    ) {
                        legs.push(leg);
                    }
                }
            }
            (Location::Gpu(s), Destination::Host(n)) => {
                legs.push(common::leg_d2h(ctx, s, entry.bytes, &self.single));
                if s.node != n {
                    legs.push(common::leg_hh(ctx, s.node, n, entry.bytes));
                }
            }
            (Location::Host(h), Destination::Gpu(d)) => {
                if h != d.node {
                    legs.push(common::leg_hh(ctx, h, d.node, entry.bytes));
                }
                legs.push(common::leg_h2d(ctx, d, entry.bytes, &self.single));
            }
            (Location::Host(a), Destination::Host(b)) => {
                if a == b {
                    legs.push(common::leg_shm(ctx, a, entry.bytes));
                } else {
                    legs.push(common::leg_hh(ctx, a, b, entry.bytes));
                }
            }
        }
        Ok(DataOp {
            control_latency: lookup,
            legs,
        })
    }

    fn on_consumed(&mut self, ctx: &mut PlaneCtx<'_>, id: DataId) -> Vec<DataOp> {
        common::gc_consumed(ctx, id);
        Vec::new()
    }

    fn on_memory_change(&mut self, ctx: &mut PlaneCtx<'_>, gpu: GpuRef) -> Vec<DataOp> {
        let over = ctx.pool(gpu).used() - ctx.pool(gpu).storage_cap();
        if over <= 0.0 {
            return Vec::new();
        }
        let legs = common::evict_lru(ctx, gpu, over, &self.single);
        if legs.is_empty() {
            Vec::new()
        } else {
            vec![DataOp {
                control_latency: SimDuration::ZERO,
                legs,
            }]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouter_mem::{ElasticPool, PinnedRing, PoolDiscipline, PrewarmScaler};
    use grouter_sim::time::SimTime;
    use grouter_sim::FlowNet;
    use grouter_store::{DataStore, FunctionId, WorkflowId};
    use grouter_topology::{presets, PathLedger, Topology};
    use grouter_transfer::rate::RateController;

    struct Fixture {
        topo: Topology,
        net: FlowNet,
        store: DataStore,
        pools: Vec<ElasticPool>,
        scalers: Vec<PrewarmScaler>,
        ledgers: Vec<PathLedger>,
        pinned: Vec<grouter_mem::PinnedRing>,
        rates: Vec<RateController>,
    }

    impl Fixture {
        fn new(nodes: usize) -> Fixture {
            let mut net = FlowNet::new();
            let topo = Topology::build(presets::h800x8(), nodes, &mut net);
            let pools = (0..topo.num_gpus())
                .map(|_| ElasticPool::new(PoolDiscipline::Elastic, topo.gpu_mem_bytes()))
                .collect();
            let scalers = (0..topo.num_gpus()).map(|_| PrewarmScaler::new()).collect();
            let ledgers = (0..nodes)
                .map(|_| PathLedger::from_topology(&topo))
                .collect();
            let pinned = (0..nodes)
                .map(|_| PinnedRing::new(grouter_sim::params::PINNED_RING_BYTES))
                .collect();
            let rates = (0..nodes).map(|_| RateController::new()).collect();
            Fixture {
                store: DataStore::new(nodes),
                topo,
                net,
                pools,
                scalers,
                ledgers,
                pinned,
                rates,
            }
        }

        fn ctx(&mut self) -> PlaneCtx<'_> {
            PlaneCtx {
                topo: &self.topo,
                net: &self.net,
                store: &mut self.store,
                pools: &mut self.pools,
                scalers: &mut self.scalers,
                ledgers: &mut self.ledgers,
                pinned: &mut self.pinned,
                rates: &mut self.rates,
                now: SimTime::ZERO,
                slo: None,
                trace: grouter_obs::Recorder::disabled(),
            }
        }
    }

    fn token() -> AccessToken {
        AccessToken {
            function: FunctionId(1),
            workflow: WorkflowId(1),
        }
    }

    #[test]
    fn kv_lands_on_the_cache_gpu() {
        let mut fx = Fixture::new(1);
        let mut plane = MooncakePlane::new(1);
        let put = plane
            .put(
                &mut fx.ctx(),
                token(),
                Destination::Gpu(GpuRef::new(0, 5)),
                2e9,
                1,
            )
            .unwrap();
        assert_eq!(
            fx.store.peek(put.id).unwrap().location,
            Location::Gpu(GpuRef::new(0, 0))
        );
        // Producer ≠ cache GPU → relay copy.
        assert_eq!(put.op.legs.len(), 1);
    }

    #[test]
    fn nic_fanout_grows_with_tp() {
        let mut fx = Fixture::new(2);
        let mut plane1 = MooncakePlane::new(1);
        let mut plane8 = MooncakePlane::new(8);
        let put = plane1
            .put(
                &mut fx.ctx(),
                token(),
                Destination::Gpu(GpuRef::new(0, 0)),
                2e9,
                2,
            )
            .unwrap();
        let g1 = plane1
            .get(
                &mut fx.ctx(),
                token(),
                put.id,
                Destination::Gpu(GpuRef::new(1, 3)),
            )
            .unwrap();
        let g8 = plane8
            .get(
                &mut fx.ctx(),
                token(),
                put.id,
                Destination::Gpu(GpuRef::new(1, 3)),
            )
            .unwrap();
        let flows1 = g1.legs[0].plan.flows.len();
        let flows8 = g8.legs[0].plan.flows.len();
        assert_eq!(flows1, 1, "TP=1 uses a single NIC");
        assert!(flows8 > 2, "TP=8 fans over NICs, got {flows8}");
    }

    #[test]
    #[should_panic(expected = "tensor parallelism")]
    fn zero_tp_rejected() {
        let _ = MooncakePlane::new(0);
    }
}
