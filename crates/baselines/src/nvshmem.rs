//! **NVSHMEM+** — GPU-side storage without placement awareness (paper §3,
//! Fig. 4).
//!
//! INFless extended with an NVSHMEM-backed GPU store. Objects bypass host
//! memory, but the store cannot see where functions run:
//!
//! * a `Put` lands on a **random GPU** of the producer's node — usually a
//!   relay copy instead of staying local;
//! * a `Get` moves the data store → consumer over a **single path**;
//! * functions only talk to their **local node's** store, so cross-node
//!   consumption relays store(A) → store(B) over **one NIC**, then
//!   store(B) → consumer — the tripled copies of Fig. 4;
//! * eviction under memory pressure is **LRU** (§4.4.2's strawman).

use grouter_mem::AllocError;
use grouter_runtime::dataplane::{DataOp, DataPlane, Destination, PlaneCtx, PutOp};
use grouter_sim::rng::DetRng;
use grouter_sim::time::SimDuration;
use grouter_store::{AccessToken, DataId, Location, StoreError};
use grouter_topology::GpuRef;
use grouter_transfer::plan::PlanConfig;

use crate::common;

/// GPU-side store with random object placement.
#[derive(Debug)]
pub struct NvshmemPlane {
    rng: DetRng,
    /// gFn–host transfer planning (single path for NVSHMEM+, parallel PCIe
    /// for DeepPlan+ which reuses this plane).
    pub(crate) host_cfg: PlanConfig,
    /// gFn–gFn transfer planning (always single path).
    pub(crate) gpu_cfg: PlanConfig,
    /// DeepPlan+ only: the *storage service* performs host→GPU pulls, and —
    /// being blind to placement — stages into a random GPU first, then
    /// relays to the consumer (§6 "Baselines").
    pub(crate) storage_pull_relay: bool,
    name: &'static str,
}

impl NvshmemPlane {
    pub fn new(seed: u64) -> NvshmemPlane {
        NvshmemPlane {
            rng: DetRng::new(seed),
            host_cfg: PlanConfig::single_path(),
            gpu_cfg: PlanConfig::single_path(),
            storage_pull_relay: false,
            name: "NVSHMEM+",
        }
    }

    pub(crate) fn with_host_cfg(mut self, cfg: PlanConfig, name: &'static str) -> NvshmemPlane {
        self.host_cfg = cfg;
        self.storage_pull_relay = true;
        self.name = name;
        self
    }

    /// The store's placement choice: a uniformly random GPU on `node`.
    fn pick_store_gpu(&mut self, ctx: &PlaneCtx<'_>, node: usize) -> GpuRef {
        let g = self.rng.next_below(ctx.topo.gpus_per_node() as u64) as usize;
        GpuRef::new(node, g)
    }
}

impl DataPlane for NvshmemPlane {
    fn name(&self) -> &'static str {
        self.name
    }

    fn put(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        source: Destination,
        bytes: f64,
        consumers: u32,
    ) -> Result<PutOp, StoreError> {
        match source {
            Destination::Gpu(g) => {
                let store_gpu = self.pick_store_gpu(ctx, g.node);
                // Allocate symmetric-heap space; LRU-evict on pressure.
                let (alloc_lat, mut legs) = match ctx.pool(store_gpu).try_alloc(bytes) {
                    Ok(grant) => (grant.latency, Vec::new()),
                    Err(AllocError::NeedsEviction { shortfall }) => {
                        let legs = common::evict_lru(ctx, store_gpu, shortfall, &self.host_cfg);
                        let grant = ctx
                            .pool(store_gpu)
                            .try_alloc(bytes)
                            .expect("eviction freed space");
                        (grant.latency, legs)
                    }
                    Err(AllocError::TooLarge) => {
                        // Spill to host memory.
                        let (id, lookup) =
                            ctx.store
                                .put(ctx.now, token, Location::Host(g.node), bytes, consumers);
                        return Ok(PutOp {
                            id,
                            op: DataOp {
                                control_latency: lookup,
                                legs: vec![common::leg_d2h(ctx, g, bytes, &self.host_cfg)],
                            },
                        });
                    }
                };
                let (id, lookup) =
                    ctx.store
                        .put(ctx.now, token, Location::Gpu(store_gpu), bytes, consumers);
                // Relay copy producer → store GPU (zero-copy only by luck).
                if let Some(leg) =
                    common::leg_intra(ctx, g.node, g.gpu, store_gpu.gpu, bytes, &self.gpu_cfg)
                {
                    legs.push(leg);
                }
                Ok(PutOp {
                    id,
                    op: DataOp {
                        control_latency: lookup + alloc_lat,
                        legs,
                    },
                })
            }
            Destination::Host(n) => {
                let (id, lookup) =
                    ctx.store
                        .put(ctx.now, token, Location::Host(n), bytes, consumers);
                Ok(PutOp {
                    id,
                    op: DataOp::control_only(lookup),
                })
            }
        }
    }

    fn get(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        id: DataId,
        dest: Destination,
    ) -> Result<DataOp, StoreError> {
        let node = match dest {
            Destination::Gpu(g) => g.node,
            Destination::Host(n) => n,
        };
        let (entry, lookup) = ctx.store.resolve(ctx.now, node, token, id)?;
        let mut legs = Vec::new();
        match (entry.location, dest) {
            (Location::Gpu(s), Destination::Gpu(d)) => {
                if s.node == d.node {
                    if let Some(leg) =
                        common::leg_intra(ctx, s.node, s.gpu, d.gpu, entry.bytes, &self.gpu_cfg)
                    {
                        legs.push(leg);
                    } else {
                        return Ok(DataOp::control_only(
                            lookup + grouter_sim::params::IPC_MAP_CACHED,
                        ));
                    }
                } else {
                    // Functions only reach their local store: relay
                    // store(s.node) → store(d.node) over one NIC, then to
                    // the consumer (Fig. 4's tripled copies).
                    let remote_store = self.pick_store_gpu(ctx, d.node);
                    legs.push(common::leg_xnode(
                        ctx,
                        s,
                        remote_store,
                        entry.bytes,
                        &self.gpu_cfg,
                    ));
                    if let Some(leg) = common::leg_intra(
                        ctx,
                        d.node,
                        remote_store.gpu,
                        d.gpu,
                        entry.bytes,
                        &self.gpu_cfg,
                    ) {
                        legs.push(leg);
                    }
                }
            }
            (Location::Gpu(s), Destination::Host(n)) => {
                legs.push(common::leg_d2h(ctx, s, entry.bytes, &self.host_cfg));
                if s.node != n {
                    legs.push(common::leg_hh(ctx, s.node, n, entry.bytes));
                }
            }
            (Location::Host(h), Destination::Gpu(d)) => {
                if h != d.node {
                    legs.push(common::leg_hh(ctx, h, d.node, entry.bytes));
                }
                if self.storage_pull_relay {
                    // The storage service pulls to a random GPU of the node
                    // (it cannot see the consumer), then relays over a
                    // single path.
                    let staging = self.pick_store_gpu(ctx, d.node);
                    legs.push(common::leg_h2d(ctx, staging, entry.bytes, &self.host_cfg));
                    if let Some(leg) = common::leg_intra(
                        ctx,
                        d.node,
                        staging.gpu,
                        d.gpu,
                        entry.bytes,
                        &self.gpu_cfg,
                    ) {
                        legs.push(leg);
                    }
                } else {
                    legs.push(common::leg_h2d(ctx, d, entry.bytes, &self.host_cfg));
                }
            }
            (Location::Host(a), Destination::Host(b)) => {
                if a == b {
                    legs.push(common::leg_shm(ctx, a, entry.bytes));
                } else {
                    legs.push(common::leg_hh(ctx, a, b, entry.bytes));
                }
            }
        }
        Ok(DataOp {
            control_latency: lookup,
            legs,
        })
    }

    fn on_consumed(&mut self, ctx: &mut PlaneCtx<'_>, id: DataId) -> Vec<DataOp> {
        common::gc_consumed(ctx, id);
        Vec::new()
    }

    fn on_memory_change(&mut self, ctx: &mut PlaneCtx<'_>, gpu: GpuRef) -> Vec<DataOp> {
        let over = ctx.pool(gpu).used() - ctx.pool(gpu).storage_cap();
        if over <= 0.0 {
            return Vec::new();
        }
        let legs = common::evict_lru(ctx, gpu, over, &self.host_cfg);
        if legs.is_empty() {
            Vec::new()
        } else {
            vec![DataOp {
                control_latency: SimDuration::ZERO,
                legs,
            }]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouter_mem::{ElasticPool, PinnedRing, PoolDiscipline, PrewarmScaler};
    use grouter_sim::time::SimTime;
    use grouter_sim::FlowNet;
    use grouter_store::{DataStore, FunctionId, WorkflowId};
    use grouter_topology::{presets, PathLedger, Topology};
    use grouter_transfer::rate::RateController;

    const MB: f64 = 1e6;

    struct Fixture {
        topo: Topology,
        net: FlowNet,
        store: DataStore,
        pools: Vec<ElasticPool>,
        scalers: Vec<PrewarmScaler>,
        ledgers: Vec<PathLedger>,
        pinned: Vec<grouter_mem::PinnedRing>,
        rates: Vec<RateController>,
    }

    impl Fixture {
        fn new(nodes: usize) -> Fixture {
            let mut net = FlowNet::new();
            let topo = Topology::build(presets::dgx_v100(), nodes, &mut net);
            let pools = (0..topo.num_gpus())
                .map(|_| ElasticPool::new(PoolDiscipline::Elastic, topo.gpu_mem_bytes()))
                .collect();
            let scalers = (0..topo.num_gpus()).map(|_| PrewarmScaler::new()).collect();
            let ledgers = (0..nodes)
                .map(|_| PathLedger::from_topology(&topo))
                .collect();
            let pinned = (0..nodes)
                .map(|_| PinnedRing::new(grouter_sim::params::PINNED_RING_BYTES))
                .collect();
            let rates = (0..nodes).map(|_| RateController::new()).collect();
            Fixture {
                store: DataStore::new(nodes),
                topo,
                net,
                pools,
                scalers,
                ledgers,
                pinned,
                rates,
            }
        }

        fn ctx(&mut self) -> PlaneCtx<'_> {
            PlaneCtx {
                topo: &self.topo,
                net: &self.net,
                store: &mut self.store,
                pools: &mut self.pools,
                scalers: &mut self.scalers,
                ledgers: &mut self.ledgers,
                pinned: &mut self.pinned,
                rates: &mut self.rates,
                now: SimTime::ZERO,
                slo: None,
                trace: grouter_obs::Recorder::disabled(),
            }
        }
    }

    fn token() -> AccessToken {
        AccessToken {
            function: FunctionId(1),
            workflow: WorkflowId(1),
        }
    }

    #[test]
    fn put_lands_on_random_gpu_of_same_node() {
        let mut fx = Fixture::new(1);
        let mut plane = NvshmemPlane::new(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..32 {
            let put = plane
                .put(
                    &mut fx.ctx(),
                    token(),
                    Destination::Gpu(GpuRef::new(0, 2)),
                    1.0 * MB,
                    1,
                )
                .unwrap();
            let loc = fx.store.peek(put.id).unwrap().location;
            let Location::Gpu(g) = loc else {
                panic!("GPU store")
            };
            assert_eq!(g.node, 0);
            seen.insert(g.gpu);
        }
        // Random placement touches many GPUs — placement blindness.
        assert!(seen.len() >= 4, "store GPUs {seen:?}");
    }

    #[test]
    fn put_to_other_gpu_needs_a_relay_leg() {
        let mut fx = Fixture::new(1);
        let mut plane = NvshmemPlane::new(1);
        // Find a put that landed on a different GPU than the producer.
        let mut relayed = 0;
        for _ in 0..16 {
            let put = plane
                .put(
                    &mut fx.ctx(),
                    token(),
                    Destination::Gpu(GpuRef::new(0, 0)),
                    1.0 * MB,
                    1,
                )
                .unwrap();
            if !put.op.legs.is_empty() {
                relayed += 1;
            }
        }
        // 7/8 of random picks are non-local.
        assert!(relayed >= 10, "relayed {relayed}");
    }

    #[test]
    fn cross_node_get_relays_through_remote_store() {
        let mut fx = Fixture::new(2);
        let mut plane = NvshmemPlane::new(3);
        let put = plane
            .put(
                &mut fx.ctx(),
                token(),
                Destination::Gpu(GpuRef::new(0, 0)),
                10.0 * MB,
                1,
            )
            .unwrap();
        let get = plane
            .get(
                &mut fx.ctx(),
                token(),
                put.id,
                Destination::Gpu(GpuRef::new(1, 5)),
            )
            .unwrap();
        // Store → remote store (NIC), then remote store → consumer: the
        // extra copies of Fig. 4 (2 legs, possibly 1 if the random remote
        // store happens to be GPU 5 itself).
        assert!(!get.legs.is_empty());
        assert!(get.legs.len() <= 2);
        assert_eq!(get.legs[0].plan.flows.len(), 1, "single NIC only");
    }

    #[test]
    fn access_control_enforced() {
        let mut fx = Fixture::new(1);
        let mut plane = NvshmemPlane::new(3);
        let put = plane
            .put(
                &mut fx.ctx(),
                token(),
                Destination::Gpu(GpuRef::new(0, 0)),
                1.0 * MB,
                1,
            )
            .unwrap();
        let intruder = AccessToken {
            function: FunctionId(9),
            workflow: WorkflowId(99),
        };
        let err = plane
            .get(
                &mut fx.ctx(),
                intruder,
                put.id,
                Destination::Gpu(GpuRef::new(0, 1)),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::AccessDenied { .. }));
    }
}
