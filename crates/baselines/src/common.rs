//! Shared plumbing for the baseline planes.

use grouter_mem::{AllocError, EvictionPolicy, LruPolicy, ObjectMeta};
use grouter_runtime::dataplane::{OpLeg, PlaneCtx};
use grouter_sim::time::SimDuration;
use grouter_store::{DataId, Location};
use grouter_topology::GpuRef;
use grouter_transfer::plan::{
    plan_cross_node, plan_d2h, plan_h2d, plan_host_to_host, plan_intra_node, plan_shm, PlanConfig,
};

/// Serialisation latency of host-centric stores (`bytes / HOST_SERIALIZE_BW`).
pub fn serialize_latency(bytes: f64) -> SimDuration {
    SimDuration::from_secs_f64(bytes / grouter_sim::params::HOST_SERIALIZE_BW)
}

/// Single-path intra-node GPU-to-GPU leg (`None` for the same GPU).
pub fn leg_intra(
    ctx: &PlaneCtx<'_>,
    node: usize,
    src: usize,
    dst: usize,
    bytes: f64,
    cfg: &PlanConfig,
) -> Option<OpLeg> {
    if src == dst {
        return None;
    }
    let plan = plan_intra_node(ctx.topo, ctx.net, None, node, src, dst, bytes, cfg);
    Some(OpLeg::new(plan, node))
}

/// Device-to-host leg with the given planner config.
pub fn leg_d2h(ctx: &PlaneCtx<'_>, gpu: GpuRef, bytes: f64, cfg: &PlanConfig) -> OpLeg {
    OpLeg::new(
        plan_d2h(ctx.topo, ctx.net, gpu.node, gpu.gpu, bytes, cfg),
        gpu.node,
    )
}

/// Host-to-device leg with the given planner config.
pub fn leg_h2d(ctx: &PlaneCtx<'_>, gpu: GpuRef, bytes: f64, cfg: &PlanConfig) -> OpLeg {
    OpLeg::new(
        plan_h2d(ctx.topo, ctx.net, gpu.node, gpu.gpu, bytes, cfg),
        gpu.node,
    )
}

/// Cross-node GPU-to-GPU leg.
pub fn leg_xnode(
    ctx: &PlaneCtx<'_>,
    src: GpuRef,
    dst: GpuRef,
    bytes: f64,
    cfg: &PlanConfig,
) -> OpLeg {
    OpLeg::new(
        plan_cross_node(ctx.topo, ctx.net, src, dst, bytes, cfg),
        src.node,
    )
}

/// Host-to-host network leg.
pub fn leg_hh(ctx: &PlaneCtx<'_>, src_node: usize, dst_node: usize, bytes: f64) -> OpLeg {
    OpLeg::new(
        plan_host_to_host(ctx.topo, ctx.net, src_node, dst_node, bytes),
        src_node,
    )
}

/// Intra-host shared-memory leg.
pub fn leg_shm(ctx: &PlaneCtx<'_>, node: usize, bytes: f64) -> OpLeg {
    OpLeg::new(plan_shm(ctx.topo, ctx.net, node, bytes), node)
}

/// Allocate `bytes` in `gpu`'s pool, LRU-evicting stored objects to host
/// memory on pressure. Returns `(allocation latency, migration legs)`.
pub fn alloc_with_lru_eviction(
    ctx: &mut PlaneCtx<'_>,
    gpu: GpuRef,
    bytes: f64,
    transfer_cfg: &PlanConfig,
) -> (SimDuration, Vec<OpLeg>) {
    match ctx.pool(gpu).try_alloc(bytes) {
        Ok(grant) => (grant.latency, Vec::new()),
        Err(AllocError::NeedsEviction { shortfall }) => {
            let legs = evict_lru(ctx, gpu, shortfall, transfer_cfg);
            let grant = ctx
                .pool(gpu)
                .try_alloc(bytes)
                .expect("eviction freed enough space");
            (grant.latency, legs)
        }
        Err(AllocError::TooLarge) => {
            // Degenerate: the object can never fit; callers treat latency 0 +
            // empty legs as "store on host instead".
            (SimDuration::MAX, Vec::new())
        }
    }
}

/// Migrate LRU victims on `gpu` to host memory until `need` bytes free.
pub fn evict_lru(
    ctx: &mut PlaneCtx<'_>,
    gpu: GpuRef,
    need: f64,
    transfer_cfg: &PlanConfig,
) -> Vec<OpLeg> {
    let entries = ctx.store.entries_at(Location::Gpu(gpu));
    let metas: Vec<ObjectMeta> = entries
        .iter()
        .map(|e| ObjectMeta {
            key: e.id.0,
            bytes: e.bytes,
            last_access: e.last_access,
            next_use: e.next_use,
        })
        .collect();
    let victims = LruPolicy.select_victims(&metas, need);
    let mut legs = Vec::new();
    for v in victims {
        let id = DataId(v);
        let entry = ctx.store.peek(id).expect("victim exists").clone();
        legs.push(leg_d2h(ctx, gpu, entry.bytes, transfer_cfg));
        ctx.store
            .relocate(id, Location::Host(gpu.node))
            .expect("victim exists");
        ctx.pool(gpu).free(entry.bytes);
    }
    legs
}

/// Pool release on garbage collection (shared `on_consumed` body).
pub fn gc_consumed(ctx: &mut PlaneCtx<'_>, id: DataId) {
    let entry = ctx.store.peek(id).cloned();
    if ctx.store.consumed(id) {
        if let Some(entry) = entry {
            if let Location::Gpu(g) = entry.location {
                ctx.pool(g).free(entry.bytes);
            }
        }
    }
}
