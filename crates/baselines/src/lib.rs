//! # grouter-baselines
//!
//! Reimplementations of the comparator data planes the paper evaluates
//! against (§6 "Baselines"), each expressed as a
//! [`grouter_runtime::DataPlane`] over the same simulated cluster:
//!
//! * [`infless::InflessPlane`] — **INFless+**: host-centric data passing.
//!   Every intermediate object is serialised into a host-side shared-memory
//!   store; every gFn hop costs serialise + PCIe down + PCIe up +
//!   deserialise (Fig. 2a).
//! * [`nvshmem::NvshmemPlane`] — **NVSHMEM+**: a GPU-side store that is
//!   blind to function placement: objects land on a *random* GPU of the
//!   producer's node, transfers use a single path, cross-node data is
//!   relayed store-to-store over one NIC (Fig. 4), and eviction is LRU.
//! * [`deepplan::DeepPlanPlane`] — **DeepPlan+**: NVSHMEM+ plus
//!   storage-driven parallel PCIe for gFn–host transfers, without topology
//!   awareness (route GPUs may share switches and lack NVLink).
//! * [`mooncake::MooncakePlane`] — **Mooncake+**: a KV-cache-centric store
//!   for the LLM experiment (§6.4): per-node cache GPU, no placement
//!   awareness, and one NIC per tensor-parallel rank.

pub mod common;
pub mod deepplan;
pub mod infless;
pub mod mooncake;
pub mod nvshmem;

pub use deepplan::{deepplan_plane, DeepPlanPlane};
pub use infless::InflessPlane;
pub use mooncake::MooncakePlane;
pub use nvshmem::NvshmemPlane;
