//! Cluster-scale sweep: the monolithic single-shard core vs the sharded
//! engine on a million-invocation open-loop trace (ISSUE 7).
//!
//! Hand-rolled harness (no criterion): each configuration is one full
//! trace run, far too large to iterate. Every run prints one line
//!
//! ```text
//! SWEEP_JSON {"name":"uniform64/w1", ...}
//! ```
//!
//! scraped by `scripts/bench_smoke.sh` into `BENCH_sweep.json` and gated
//! there: the sharded core at ≥4 shards must hold a committed
//! sim-sec/wall-sec speedup floor over the single-shard core.
//!
//! Configurations:
//!
//! * `mono64` — 64 V100 GPUs as ONE world on ONE timeline, driven by the
//!   plain event loop (`Runtime::run`, no sharding machinery). MAPA scans
//!   all 64 GPUs per placement; every event shares one heap.
//! * `uniform64/wN` — the same 64 GPUs as 8 group-shards under the
//!   conservative engine on N worker threads. Same workload mix, same
//!   total arrival rate, group-local placement and timelines.
//! * `hetero64` / `hetero128` — the heterogeneous presets (alternating
//!   V100/A100 groups), sharded only: a monolithic world cannot mix GPU
//!   classes (`Topology::build` replicates one spec).
//!
//! `GROUTER_SWEEP_INVOCATIONS` overrides the 1M default (CI smoke uses a
//! reduced trace); the committed `BENCH_sweep.json` comes from a full run.

use std::time::Instant;

use grouter::runtime::cluster::{ClusterPort, ClusterSim};
use grouter::runtime::simple_plane::LocalityPlane;
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::topology::presets;
use grouter_workloads::azure::ArrivalPattern;
use grouter_workloads::cluster::{cluster_mix, group_setups, ClusterPreset, OpenLoopArrivals};
use grouter_workloads::models::GpuClass;

const SEED: u64 = 42;
/// Per-group arrival rate; ×8 groups ⇒ 8000 rps cluster-wide, so a
/// million invocations span ≈125 simulated seconds. Chosen to hold the
/// cluster near 60% GPU utilization — deep enough queues that placement
/// and timeline costs dominate, below the saturation point where both
/// cores just grind through backlog.
const RPS_PER_GROUP: f64 = 1000.0;

fn rps_per_group() -> f64 {
    std::env::var("GROUTER_SWEEP_RPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(RPS_PER_GROUP)
}

fn invocations() -> u64 {
    std::env::var("GROUTER_SWEEP_INVOCATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

struct Outcome {
    completed: u64,
    failed: u64,
    responses: u64,
    sim_ns: u64,
    wall_ns: u128,
    epochs: u64,
    messages: u64,
}

fn report(name: &str, workers: usize, groups: usize, gpus: usize, n: u64, o: &Outcome) {
    let sim_s = o.sim_ns as f64 / 1e9;
    let wall_s = o.wall_ns as f64 / 1e9;
    println!(
        "SWEEP_JSON {{\"name\":\"{name}\",\"workers\":{workers},\"groups\":{groups},\
\"gpus\":{gpus},\"invocations\":{n},\"completed\":{},\"failed\":{},\"responses\":{},\
\"sim_ns\":{},\"wall_ns\":{},\"epochs\":{},\"messages\":{},\"sim_per_wall\":{:.2}}}",
        o.completed,
        o.failed,
        o.responses,
        o.sim_ns,
        o.wall_ns,
        o.epochs,
        o.messages,
        sim_s / wall_s.max(1e-9),
    );
}

/// The single-shard core: one world, one timeline, plain `Runtime::run`.
/// The open-loop source feeds the whole cluster-wide rate into one port so
/// the workload matches the sharded runs invocation-for-invocation in
/// distribution (same mix, same total rate, same count).
fn monolithic(nodes: usize, n: u64) -> Outcome {
    let specs = cluster_mix(GpuClass::V100);
    let mut rt = Runtime::new(
        presets::dgx_v100(),
        nodes,
        Box::new(LocalityPlane::new()),
        RuntimeConfig {
            seed: SEED,
            ..RuntimeConfig::default()
        },
    );
    let mut port = ClusterPort::new(0, 1);
    let k = specs.len() as u32;
    for spec in specs {
        rt.cluster_register(&mut port, spec);
    }
    port.source = Some(Box::new(OpenLoopArrivals::new(
        ArrivalPattern::Sporadic,
        rps_per_group() * nodes as f64,
        n,
        DetRng::new(SEED).fork(0xA21).split(0),
        0,
        1,
        k,
    )));
    rt.world_mut().cluster = Some(Box::new(port));
    rt.start_cluster_arrivals();
    let t0 = Instant::now();
    rt.run();
    let wall_ns = t0.elapsed().as_nanos();
    let w = rt.world();
    let port = w.cluster.as_ref().expect("port installed");
    assert!(w.quiescent(), "monolithic run did not drain");
    Outcome {
        completed: w.metrics.completed() as u64,
        failed: w.metrics.failed,
        responses: port.responses,
        sim_ns: rt.now().as_nanos(),
        wall_ns,
        epochs: 0,
        messages: 0,
    }
}

/// One sharded run of `preset` on `workers` threads, `n` invocations
/// spread evenly over the groups at [`RPS_PER_GROUP`] each.
fn sharded(preset: &ClusterPreset, workers: usize, n: u64) -> Outcome {
    let per_group = n / preset.groups.len() as u64;
    let setups = group_setups(
        preset,
        ArrivalPattern::Sporadic,
        rps_per_group(),
        per_group,
        SEED,
        |_| Box::new(LocalityPlane::new()),
    );
    let mut sim = ClusterSim::new(SEED, setups);
    let t0 = Instant::now();
    let stats = sim.run(workers);
    let wall_ns = t0.elapsed().as_nanos();
    let sim_ns = (0..sim.groups())
        .map(|g| sim.now(g).as_nanos())
        .max()
        .unwrap_or(0);
    Outcome {
        completed: sim.completed() as u64,
        failed: sim.failed(),
        responses: sim.responses(),
        sim_ns,
        wall_ns,
        epochs: stats.epochs,
        messages: stats.messages,
    }
}

fn main() {
    let n = invocations();
    // `GROUTER_SWEEP_ONLY=<substring>` runs the matching configurations
    // only (profiling one configuration, quick CI iterations).
    let only = std::env::var("GROUTER_SWEEP_ONLY").ok();
    let want = |name: &str| only.as_deref().is_none_or(|f| name.contains(f));
    eprintln!("sweep: {n} invocations per configuration");

    if want("mono64") {
        let mono = monolithic(8, n);
        report("mono64", 1, 1, 64, n, &mono);
    }

    let uniform = ClusterPreset::uniform_64();
    for workers in [1usize, 2, 4, 8] {
        let name = format!("uniform64/w{workers}");
        if !want(&name) {
            continue;
        }
        let o = sharded(&uniform, workers, n);
        assert_eq!(
            o.completed + o.failed,
            n / 8 * 8,
            "sharded run lost invocations"
        );
        report(&name, workers, 8, 64, n, &o);
    }

    if want("mono128") {
        let mono = monolithic(16, n);
        report("mono128", 1, 1, 128, n, &mono);
    }

    let uniform128 = ClusterPreset::uniform_128();
    for workers in [1usize, 8] {
        let name = format!("uniform128/w{workers}");
        if !want(&name) {
            continue;
        }
        let o = sharded(&uniform128, workers, n);
        report(&name, workers, 16, 128, n, &o);
    }

    if want("hetero64/w8") {
        let hetero64 = ClusterPreset::hetero_64();
        let o = sharded(&hetero64, 8, n);
        report("hetero64/w8", 8, 8, 64, n, &o);
    }

    if want("hetero128/w8") {
        let hetero128 = ClusterPreset::hetero_128();
        let o = sharded(&hetero128, 8, n);
        report("hetero128/w8", 8, 16, 128, n, &o);
    }
}
