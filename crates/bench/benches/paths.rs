//! `bench_paths` — Algorithm 1 selection cost, cached vs uncached.
//!
//! Each case runs the same contention-aware parallel-path selection
//! (§4.3.3) on one of the paper's testbeds — the DGX-V100 hybrid cube mesh
//! or the DGX-A100 NVSwitch — with the matrix either fully idle or under a
//! fixed background load. `paths_uncached/*` is the seed selector
//! (`select_parallel_paths`), which re-runs the loop-free DFS on every
//! call; `paths_cached/*` is the epoch-versioned [`PathSelector`], which
//! enumerates once and then only re-checks residual bandwidth. Selections
//! are released inside the loop so the matrix never saturates and every
//! iteration measures the same state.
//!
//! `scripts/bench_smoke.sh` scrapes the emitted JSON lines into
//! `BENCH_paths.json` and gates the contended-V100 speedup.
//!
//! The last bench is end-to-end: a `GrouterPlane` put/get churn trace
//! through the full runtime, covering the path cache in situ (warm clone
//! per node, ledger reserve/release, rebalance probes).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use grouter::sim::FlowNet;
use grouter::topology::paths::select_parallel_paths;
use grouter::topology::{presets, BwMatrix, PathSelector, Topology};
use grouter_bench::harness::{hop_spec, run_trace, PlaneKind, MB};
use grouter_workloads::azure::ArrivalPattern;

/// Background load applied to the matrix before the selection loop.
#[derive(Clone, Copy, PartialEq)]
enum Load {
    /// No background traffic.
    Idle,
    /// Direct link saturated, detour legs half-loaded: phase 1 finds no
    /// idle path and phase 2 shares the residuals ("bandwidth balancing").
    Shared,
    /// The source's outgoing NVLink bandwidth is fully consumed by
    /// concurrent functions. Algorithm 1's stop condition answers this in
    /// O(1) — but the seed selector still pays the full DFS + sort to find
    /// that out, which is exactly the probe-storm regime (selection
    /// retries, rebalance probes) the cache exists for.
    Saturated,
}

/// One selection case: testbed, background load, and Algorithm 1 inputs.
struct Case {
    name: &'static str,
    v100: bool,
    load: Load,
    max_hops: usize,
    max_paths: usize,
}

const CASES: [Case; 5] = [
    Case {
        name: "v100_idle",
        v100: true,
        load: Load::Idle,
        max_hops: 3,
        max_paths: 4,
    },
    Case {
        name: "v100_shared",
        v100: true,
        load: Load::Shared,
        max_hops: 3,
        max_paths: 4,
    },
    Case {
        name: "v100_contended",
        v100: true,
        load: Load::Saturated,
        max_hops: 3,
        max_paths: 4,
    },
    Case {
        name: "a100_idle",
        v100: false,
        load: Load::Idle,
        max_hops: 1,
        max_paths: 4,
    },
    Case {
        name: "a100_contended",
        v100: false,
        load: Load::Saturated,
        max_hops: 1,
        max_paths: 4,
    },
];

const SRC: usize = 0;
const DST: usize = 1;

fn build_matrix(v100: bool) -> BwMatrix {
    let mut net = FlowNet::new();
    let spec = if v100 {
        presets::dgx_v100()
    } else {
        presets::dgx_a100()
    };
    let topo = Topology::build(spec, 1, &mut net);
    BwMatrix::from_topology(&topo)
}

/// Apply the case's background load to the matrix.
fn contend(bw: &mut BwMatrix, load: Load) {
    match load {
        Load::Idle => {}
        Load::Shared => {
            // Saturate the direct link, half-load the 1-hop detour legs:
            // phase 1 finds no fully idle path and the selector walks deep
            // into the candidate set sharing residuals.
            let direct = bw.capacity(SRC, DST);
            if direct > 0.0 {
                bw.occupy_path(&[SRC, DST], direct);
            }
            for mid in 0..bw.len() {
                if mid == SRC || mid == DST {
                    continue;
                }
                for &(a, b) in &[(SRC, mid), (mid, DST)] {
                    let c = bw.capacity(a, b);
                    if c > 0.0 && bw.residual(a, b) >= 0.5 * c {
                        bw.occupy_path(&[a, b], 0.5 * c);
                    }
                }
            }
        }
        Load::Saturated => {
            // Concurrent functions own every outgoing link of the source.
            for b in 0..bw.len() {
                let r = bw.residual(SRC, b);
                if r > 0.0 {
                    bw.occupy_path(&[SRC, b], r);
                }
            }
        }
    }
}

/// Seed selector: full loop-free DFS re-run on every selection.
fn bench_uncached(c: &mut Criterion, case: &Case) {
    let mut bwm = build_matrix(case.v100);
    contend(&mut bwm, case.load);
    c.bench_function(&format!("paths_uncached/{}", case.name), |b| {
        b.iter(|| {
            let sel = select_parallel_paths(
                &mut bwm,
                black_box(SRC),
                black_box(DST),
                case.max_hops,
                case.max_paths,
            );
            for p in &sel.paths {
                bwm.release_path(&p.gpus, p.rate);
            }
            black_box(sel.total_rate())
        })
    });
}

/// Cached selector: warmed path cache, scratch selection, recycled
/// route buffers — the steady state has no DFS and no allocation.
fn bench_cached(c: &mut Criterion, case: &Case) {
    let mut sel = PathSelector::new(build_matrix(case.v100));
    contend(sel.bwm_mut(), case.load);
    sel.warm(case.max_hops);
    c.bench_function(&format!("paths_cached/{}", case.name), |b| {
        b.iter(|| {
            let rate = sel
                .select(
                    black_box(SRC),
                    black_box(DST),
                    case.max_hops,
                    case.max_paths,
                )
                .total_rate();
            sel.release_last();
            black_box(rate)
        })
    });
}

/// End-to-end: GROUTER's data plane under a short put/get churn trace on
/// one V100 node — every hop reserves and releases NVLink paths through
/// the warmed per-node ledger.
fn bench_plane_churn(c: &mut Criterion) {
    let spec = hop_spec(64.0 * MB, 1);
    c.bench_function("grouter_plane_churn/putget", |b| {
        b.iter(|| {
            let m = run_trace(
                presets::dgx_v100(),
                1,
                PlaneKind::Grouter,
                std::slice::from_ref(&spec),
                ArrivalPattern::Sporadic,
                20.0,
                2,
                black_box(7),
            );
            black_box(m.completed())
        })
    });
}

fn all(c: &mut Criterion) {
    for case in &CASES {
        bench_uncached(c, case);
        bench_cached(c, case);
    }
    bench_plane_churn(c);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = all
);
criterion_main!(benches);
