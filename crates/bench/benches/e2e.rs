//! `bench_e2e` — whole-trace macro benchmark for the simulator core.
//!
//! Unlike `bench_flownet` / `bench_paths`, which gate micro hot paths, this
//! group runs a *complete* multi-workflow trace — arrival, placement, data
//! plane, flow network, stage lifecycle, metrics — end to end on the
//! GROUTER plane, on both evaluation testbeds:
//!
//! * `v100_contended`: a two-node DGX-V100 cluster driven by the full
//!   six-workflow suite at a rate that keeps GPUs queued and the NVLink
//!   fabric contended — the macro regime of ROADMAP item 4.
//! * `a100_steady`: a single DGX-A100 box under a lighter steady trace.
//!
//! Each case also runs on the *boxed-closure* event core (the scheduler's
//! `force_boxed_dispatch` compatibility mode: every event heap-boxed into a
//! `BinaryHeap`, exactly the pre-typed-event engine) so the dispatch-layer
//! speedup is a same-run paired ratio, immune to machine differences.
//!
//! For every case an `E2E_JSON` line reports the per-run work (data
//! operations issued, events fired, simulated nanoseconds) so
//! `scripts/bench_smoke.sh` can turn Criterion's median run time into the
//! two macro metrics the roadmap tracks: **ops/sec** and **simulated
//! seconds per wall second**, gated in `BENCH_e2e.json`.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use grouter::runtime::spec::WorkflowSpec;
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::graph::TopologySpec;
use grouter::topology::presets;
use grouter::{GrouterConfig, GrouterPlane};
use grouter_workloads::apps::{suite, WorkloadParams};
use grouter_workloads::azure::{generate_trace, ArrivalPattern};
use grouter_workloads::models::GpuClass;

const SEED: u64 = 42;

struct Testbed {
    name: &'static str,
    topo: fn() -> TopologySpec,
    nodes: usize,
    gpu: GpuClass,
    rps_per_spec: f64,
    secs: u64,
}

const TESTBEDS: [Testbed; 2] = [
    Testbed {
        name: "v100_contended",
        topo: presets::dgx_v100,
        nodes: 2,
        gpu: GpuClass::V100,
        rps_per_spec: 3.0,
        secs: 4,
    },
    Testbed {
        name: "a100_steady",
        topo: presets::dgx_a100,
        nodes: 1,
        gpu: GpuClass::A100,
        rps_per_spec: 1.0,
        secs: 4,
    },
];

/// Pre-generated arrivals for one testbed (generation stays out of the
/// measured loop).
fn arrivals(bed: &Testbed) -> Vec<(Arc<WorkflowSpec>, grouter::sim::time::SimTime)> {
    let specs = suite(WorkloadParams {
        batch: 4,
        gpu: bed.gpu,
    });
    let mut rng = DetRng::new(SEED);
    let mut out = Vec::new();
    for (k, spec) in specs.iter().enumerate() {
        let mut sub = rng.fork(k as u64);
        for t in generate_trace(
            ArrivalPattern::Sporadic,
            bed.rps_per_spec,
            SimDuration::from_secs(bed.secs),
            &mut sub,
        ) {
            out.push((spec.clone(), t));
        }
    }
    out.sort_by_key(|&(_, t)| t);
    out
}

/// One full trace run; returns the number of completed workflows.
fn trace_run(
    bed: &Testbed,
    trace: &[(Arc<WorkflowSpec>, grouter::sim::time::SimTime)],
    boxed: bool,
) -> u64 {
    let mut rt = Runtime::new(
        (bed.topo)(),
        bed.nodes,
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        RuntimeConfig::default(),
    );
    if boxed {
        rt.force_boxed_dispatch();
    }
    for (spec, t) in trace {
        rt.submit(spec.clone(), *t);
    }
    rt.run();
    assert_eq!(
        rt.metrics().completed() as u64 + rt.metrics().failed,
        rt.metrics().arrivals,
        "trace must drain"
    );
    rt.metrics().completed() as u64
}

fn bench_e2e(c: &mut Criterion) {
    for bed in &TESTBEDS {
        let trace = arrivals(bed);
        // One audit run outside the timed loop reports the per-run work so
        // the smoke script can derive ops/sec and sim-sec/wall-sec.
        {
            let mut rt = Runtime::new(
                (bed.topo)(),
                bed.nodes,
                Box::new(GrouterPlane::new(GrouterConfig::full())),
                RuntimeConfig::default(),
            );
            for (spec, t) in &trace {
                rt.submit(spec.clone(), *t);
            }
            rt.run();
            println!(
                "E2E_JSON {{\"name\":\"{}\",\"arrivals\":{},\"completed\":{},\"ops\":{},\"sim_ns\":{}}}",
                bed.name,
                rt.metrics().arrivals,
                rt.metrics().completed(),
                rt.world().next_op,
                rt.now().as_nanos(),
            );
        }
        c.bench_function(&format!("e2e/{}", bed.name), |b| {
            b.iter(|| black_box(trace_run(bed, &trace, false)))
        });
        c.bench_function(&format!("e2e_boxed/{}", bed.name), |b| {
            b.iter(|| black_box(trace_run(bed, &trace, true)))
        });
    }
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
