//! Disaggregated LLM serving: GROUTER vs Mooncake+ under KV memory
//! pressure (ISSUE 10, the dynamic half of the paper's §6 LLM study).
//!
//! Hand-rolled harness (no criterion): each configuration is one full
//! open-loop serve run at the reference operating point. Every run prints
//! one line
//!
//! ```text
//! LLM_JSON {"name":"grouter", ...}
//! ```
//!
//! scraped by `scripts/bench_smoke.sh` into `BENCH_llm.json` and gated
//! there: GROUTER must beat Mooncake+ on p99 TTFT and mean TBT with its
//! migration count strictly positive — the win has to come through
//! pressure-triggered KV migration, not from an idle pool.
//!
//! `GROUTER_LLM_REQUESTS` overrides the 10k-request default (CI smoke can
//! reduce it); the committed `BENCH_llm.json` comes from a full run.

use std::time::Instant;

use grouter_llm::{run_llm_serve, LlmServeConfig, PlaneKind};

fn requests() -> u64 {
    std::env::var("GROUTER_LLM_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

fn threads() -> usize {
    std::env::var("GROUTER_LLM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

fn run_one(plane: PlaneKind, name: &str, n: u64, threads: usize) {
    let cfg = LlmServeConfig {
        requests: n,
        threads,
        ..LlmServeConfig::reference(plane)
    };
    let wall = Instant::now();
    let report = run_llm_serve(&cfg);
    let wall_ns = wall.elapsed().as_nanos();
    assert_eq!(
        report.completed + report.failed,
        n,
        "{name}: serve run lost requests"
    );
    let m = &report.metrics;
    let us = |x: f64| (x * 1e6 * 1000.0).round() / 1000.0;
    println!(
        "LLM_JSON {{\"name\":\"{name}\",\"requests\":{n},\"threads\":{threads},\
\"completed\":{},\"failed\":{},\"tokens\":{},\"ttft_p50_us\":{:.3},\"ttft_p99_us\":{:.3},\
\"tbt_mean_us\":{:.3},\"tbt_p99_us\":{:.3},\"migrations\":{},\"restores\":{},\
\"stalls\":{},\"remat\":{},\"wall_ns\":{},\"digest\":\"{:016x}\"}}",
        m.completed,
        m.failed,
        m.tokens,
        us(m.ttft.p50()),
        us(m.ttft.p99()),
        us(m.tbt.mean()),
        us(m.tbt.p99()),
        report.migrations,
        report.restores,
        m.restore_stalls,
        m.rematerialized,
        wall_ns,
        report.digest,
    );
}

fn main() {
    let n = requests();
    let threads = threads();
    eprintln!("llm: {n} requests per plane, {threads} worker threads");
    run_one(PlaneKind::Grouter, "grouter", n, threads);
    run_one(PlaneKind::Mooncake, "mooncake", n, threads);
}
