//! Criterion micro-benchmarks for GROUTER's hot paths.
//!
//! The headline check: Algorithm 1 path selection must stay below the
//! paper's reported 10 µs (§4.3.3). The rest bound the per-operation costs
//! of the control plane: flow-rate recomputation, transfer planning,
//! Put/Get metadata handling, eviction victim selection, and the pre-warm
//! scaler.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use grouter::mem::{EvictionPolicy, GrouterPolicy, LruPolicy, ObjectMeta, PrewarmScaler};
use grouter::sim::time::SimTime;
use grouter::sim::{FlowNet, FlowOptions};
use grouter::store::{AccessToken, DataStore, FunctionId, Location, WorkflowId};
use grouter::topology::paths::select_parallel_paths;
use grouter::topology::{presets, BwMatrix, GpuRef, PathLedger, PathSelector, Topology};
use grouter::transfer::chunk::{proportional_split, ChunkPlan};
use grouter::transfer::pipeline::{BatchPipeline, Offered};
use grouter::transfer::plan::{plan_cross_node, plan_d2h, plan_intra_node, PlanConfig};

fn v100() -> (FlowNet, Topology) {
    let mut net = FlowNet::new();
    let topo = Topology::build(presets::dgx_v100(), 2, &mut net);
    (net, topo)
}

/// Algorithm 1 on the asymmetric V100 mesh — the paper claims < 10 µs.
fn bench_path_selection(c: &mut Criterion) {
    let (_, topo) = v100();
    c.bench_function("algorithm1_select_parallel_paths", |b| {
        b.iter(|| {
            let mut bwm = BwMatrix::from_topology(&topo);
            let sel = select_parallel_paths(&mut bwm, black_box(0), black_box(1), 3, 4);
            black_box(sel.total_rate())
        })
    });
}

fn bench_flownet_recompute(c: &mut Criterion) {
    c.bench_function("flownet_recompute_64_flows", |b| {
        b.iter(|| {
            let mut net = FlowNet::new();
            let links: Vec<_> = (0..16)
                .map(|i| net.add_link(format!("l{i}"), 12e9))
                .collect();
            for i in 0..64 {
                let path = vec![links[i % 16], links[(i * 7 + 3) % 16]];
                net.start_flow(SimTime::ZERO, path, 1e9, FlowOptions::default())
                    .expect("flow");
            }
            black_box(net.next_completion())
        })
    });
}

fn bench_transfer_planning(c: &mut Criterion) {
    let (net, topo) = v100();
    let grouter = PlanConfig::grouter();
    c.bench_function("plan_d2h_parallel_pcie", |b| {
        b.iter(|| black_box(plan_d2h(&topo, &net, 0, 0, 256e6, &grouter)))
    });
    c.bench_function("plan_intra_node_parallel_nvlink", |b| {
        // Warmed selector outside the loop: this measures the cached,
        // allocation-free steady state the runtime actually runs in.
        let mut sel = PathSelector::from_topology(&topo);
        sel.warm(grouter.max_hops);
        b.iter(|| {
            let plan = plan_intra_node(&topo, &net, Some(&mut sel), 0, 0, 1, 256e6, &grouter);
            // Undo the plan's reservations so the matrix never saturates.
            for f in &plan.flows {
                if let Some((route, rate)) = &f.nv_reservation {
                    sel.bwm_mut().release_path(route, *rate);
                }
            }
            black_box(plan)
        })
    });
    c.bench_function("plan_cross_node_multi_nic", |b| {
        b.iter(|| {
            black_box(plan_cross_node(
                &topo,
                &net,
                GpuRef::new(0, 0),
                GpuRef::new(1, 3),
                256e6,
                &grouter,
            ))
        })
    });
}

fn bench_store_ops(c: &mut Criterion) {
    c.bench_function("store_put_resolve_consume", |b| {
        b.iter(|| {
            let mut store = DataStore::new(2);
            let token = AccessToken {
                function: FunctionId(1),
                workflow: WorkflowId(1),
            };
            let (id, _) = store.put(SimTime::ZERO, token, Location::Host(0), 1e6, 1);
            let _ = store.resolve(SimTime::ZERO, 1, token, id);
            black_box(store.consumed(id))
        })
    });
}

fn bench_eviction(c: &mut Criterion) {
    let objects: Vec<ObjectMeta> = (0..1000)
        .map(|i| ObjectMeta {
            key: i,
            bytes: 2e6,
            last_access: SimTime(i * 17 % 997),
            next_use: if i % 3 == 0 {
                None
            } else {
                Some(i * 31 % 1009)
            },
        })
        .collect();
    c.bench_function("eviction_lru_1000_objects", |b| {
        b.iter(|| black_box(LruPolicy.select_victims(black_box(&objects), 50e6)))
    });
    c.bench_function("eviction_queue_aware_1000_objects", |b| {
        b.iter(|| black_box(GrouterPolicy.select_victims(black_box(&objects), 50e6)))
    });
}

fn bench_scaler(c: &mut Criterion) {
    c.bench_function("prewarm_scaler_update_and_target", |b| {
        let mut s = PrewarmScaler::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 10_000_000;
            s.on_request(1, SimTime(t));
            s.on_output(1, 50e6);
            s.on_consumed(1);
            black_box(s.target_bytes(SimTime(t)))
        })
    });
}

/// Ledger reserve + rebalance + release: the full Algorithm 1 + direct-path
/// priority cycle (paper claims the whole selection stays < 10 µs).
fn bench_ledger(c: &mut Criterion) {
    let (_, topo) = v100();
    c.bench_function("ledger_reserve_rebalance_release", |b| {
        b.iter(|| {
            let mut ledger = PathLedger::from_topology(&topo);
            let (a, _, _) = ledger.reserve(black_box(0), black_box(1), 3, 3);
            let (bid, _, reb) = ledger.reserve(black_box(0), black_box(3), 3, 1);
            ledger.release(a);
            ledger.release(bid);
            black_box(reb)
        })
    });
}

fn bench_batch_pipeline(c: &mut Criterion) {
    let p = BatchPipeline::with_defaults(12e9);
    let offered: Vec<Offered> = (0..16)
        .map(|i| Offered {
            arrival: SimTime(i as u64 * 200_000),
            bytes: 32e6,
        })
        .collect();
    c.bench_function("batch_pipeline_16_transfers", |b| {
        b.iter(|| black_box(p.simulate(black_box(&offered))))
    });
}

fn bench_chunking(c: &mut Criterion) {
    c.bench_function("chunk_plan_and_proportional_split", |b| {
        b.iter(|| {
            let plan = ChunkPlan::with_defaults(black_box(512e6));
            let shares = proportional_split(512e6, &[48e9, 24e9, 24e9, 12e9]);
            black_box((plan, shares))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_path_selection,
        bench_flownet_recompute,
        bench_transfer_planning,
        bench_store_ops,
        bench_eviction,
        bench_scaler,
        bench_ledger,
        bench_batch_pipeline,
        bench_chunking
);
criterion_main!(benches);
