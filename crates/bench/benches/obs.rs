//! `bench_obs` — overhead of the observability subsystem on the data
//! plane's hottest loop: 1k-flow churn on the incremental allocator.
//!
//! Three configurations of the same churn step:
//!
//! * `obs_untraced`  — no recorder attached (the seed behaviour);
//! * `obs_disabled`  — recorder attached but every component masked off,
//!   i.e. the cost of the disabled-path check the ISSUE bounds at <= 3%;
//! * `obs_enabled`   — full tracing into the bounded flight recorder, the
//!   price of actually watching a run.
//!
//! The gate ratio comes from a paired measurement, not from comparing
//! the Criterion groups: untraced and masked-off churn run in strictly
//! alternating rounds inside one process and the reported overhead is
//! the best-round ratio, minimised over independent passes (see
//! [`paired_overhead`]). Comparing two groups timed tens of seconds
//! apart picks up CPU frequency drift several times larger than the 3%
//! bound; pairing cancels it.
//!
//! `scripts/bench_smoke.sh` scrapes the emitted JSON lines into
//! `BENCH_obs.json` and fails if the paired `obs_disabled` overhead
//! exceeds `obs_untraced` by more than 3% at 1024 flows.

use std::collections::VecDeque;
use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};

use grouter::sim::time::SimTime;
use grouter::sim::{FlowId, FlowNet, FlowOptions, LinkId};
use grouter::topology::{presets, Topology};
use grouter_obs::Recorder;

const CHUNK_BYTES: f64 = 2e6;
const FLOWS: usize = 1024;

fn nodes_for(flows: usize) -> usize {
    (flows / 64).max(1)
}

fn path_pool(topo: &Topology) -> Vec<Vec<LinkId>> {
    let mut pool = Vec::new();
    for node in 0..topo.num_nodes() {
        for gpu in 0..topo.gpus_per_node() {
            pool.push(topo.d2h_path(node, gpu));
            pool.push(topo.h2d_path(node, gpu));
        }
        for &(a, b, _) in topo.nvlink_pairs() {
            if let Some(links) = topo.nvlink_edge(node, a, b) {
                pool.push(links);
            }
        }
    }
    pool
}

fn flow_opts(i: usize) -> FlowOptions {
    FlowOptions {
        floor: if i.is_multiple_of(3) { 1e9 } else { 0.0 },
        cap: f64::INFINITY,
        weight: 1.0,
    }
}

/// A steady-state 1k-flow churn population with a given recorder wiring.
struct ChurnState {
    net: FlowNet,
    pool: Vec<Vec<LinkId>>,
    live: VecDeque<FlowId>,
    next: usize,
}

impl ChurnState {
    fn new(rec: Recorder) -> Self {
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::dgx_v100(), nodes_for(FLOWS), &mut net);
        net.set_recorder(rec);
        let pool = path_pool(&topo);
        let mut live = VecDeque::with_capacity(FLOWS);
        for i in 0..FLOWS {
            let f = net
                .start_flow(
                    SimTime::ZERO,
                    pool[i % pool.len()].clone(),
                    CHUNK_BYTES,
                    flow_opts(i),
                )
                .expect("valid path");
            live.push_back(f);
        }
        ChurnState {
            net,
            pool,
            live,
            next: FLOWS,
        }
    }

    fn step(&mut self) {
        let victim = self.live.pop_front().expect("population is steady");
        self.net
            .cancel_flow(SimTime::ZERO, victim)
            .expect("live flow");
        let f = self
            .net
            .start_flow(
                SimTime::ZERO,
                self.pool[self.next % self.pool.len()].clone(),
                CHUNK_BYTES,
                flow_opts(self.next),
            )
            .expect("valid path");
        self.live.push_back(f);
        self.next += 1;
        black_box(self.net.next_completion());
    }
}

/// The `flownet_churn` step with a given recorder wiring.
fn bench_churn(c: &mut Criterion, label: &str, rec: Recorder) {
    let mut state = ChurnState::new(rec);
    c.bench_function(&format!("{label}/{FLOWS}"), |b| b.iter(|| state.step()));
}

fn bench_obs(c: &mut Criterion) {
    bench_churn(c, "obs_untraced", Recorder::disabled());
    // Attached but masked off: the steady-state cost when tracing is
    // compiled in and switched off at runtime.
    bench_churn(c, "obs_disabled", Recorder::with_mask(65_536, 0));
    bench_churn(c, "obs_enabled", Recorder::enabled(65_536));
}

/// One paired pass: alternate rounds of the two configurations and
/// compare the best observed round on each side. The minimum is the run
/// unperturbed by scheduler stalls or frequency shifts, and interleaving
/// gives both sides equal odds of hitting one.
fn paired_pass() -> f64 {
    const ROUNDS: usize = 41;
    const STEPS: usize = 1024;

    let mut untraced = ChurnState::new(Recorder::disabled());
    let mut disabled = ChurnState::new(Recorder::with_mask(65_536, 0));

    let time_steps = |state: &mut ChurnState| {
        let start = Instant::now();
        for _ in 0..STEPS {
            state.step();
        }
        start.elapsed().as_secs_f64()
    };

    // Warm both populations past allocator start-up effects.
    time_steps(&mut untraced);
    time_steps(&mut disabled);

    let mut best_un = f64::INFINITY;
    let mut best_dis = f64::INFINITY;
    for round in 0..ROUNDS {
        // Alternate which side runs first so ordering bias cancels.
        if round % 2 == 0 {
            best_un = best_un.min(time_steps(&mut untraced));
            best_dis = best_dis.min(time_steps(&mut disabled));
        } else {
            best_dis = best_dis.min(time_steps(&mut disabled));
            best_un = best_un.min(time_steps(&mut untraced));
        }
    }
    best_dis / best_un
}

/// Gated disabled-vs-untraced overhead: the minimum over independent
/// paired passes. A real fixed cost on the disabled path (say, building
/// event args before the mask check) shows up in every pass; timing
/// noise on a shared box only ever inflates a ratio. Taking the best
/// pass therefore keeps the 3% gate sensitive to regressions without
/// flaking on a loaded machine — single-pass ratios here swing ±4%,
/// wider than the bound being enforced.
fn paired_overhead() -> f64 {
    const PASSES: usize = 3;
    (0..PASSES)
        .map(|_| paired_pass())
        .fold(f64::INFINITY, f64::min)
}

criterion_group!(benches, bench_obs);

fn main() {
    criterion::init_from_args();
    benches();
    let overhead = paired_overhead();
    println!("OBS_OVERHEAD_JSON {{\"disabled_vs_untraced\":{overhead:.4}}}");
}
