//! `bench_flownet` — churn microbenchmarks for the flow-level allocator.
//!
//! The workload models serverless inference churn on a DGX-V100 cluster:
//! a steady population of concurrent flows (chunked transfers over
//! realistic d2h / h2d / NVLink paths) where every event replaces one flow
//! and re-reads the next completion estimate. The cluster grows with the
//! flow population (one V100 node per 64 flows) the way a real deployment
//! would, so contention components stay node-local while the global flow
//! table keeps growing — exactly the regime the incremental allocator is
//! built for.
//!
//! Each size runs twice: against the incremental [`FlowNet`] and against
//! the full-recompute [`ReferenceNet`] baseline. `scripts/bench_smoke.sh`
//! scrapes the emitted JSON lines and checks the 1024-flow speedup.

use std::collections::VecDeque;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use grouter::sim::time::SimTime;
use grouter::sim::{FlowNet, FlowOptions, LinkId, ReferenceNet};
use grouter::topology::{presets, Topology};

const CHUNK_BYTES: f64 = 2e6; // GROUTER's 2 MB chunk granularity

/// One V100 node per 64 concurrent flows keeps per-node contention
/// realistic as the population grows.
fn nodes_for(flows: usize) -> usize {
    (flows / 64).max(1)
}

/// A pool of realistic transfer paths: per GPU d2h and h2d (PCIe + DRAM),
/// plus every directed NVLink edge. Round-robin assignment spreads flows
/// over nodes, so churn on one node leaves the others' components alone.
fn path_pool(topo: &Topology) -> Vec<Vec<LinkId>> {
    let mut pool = Vec::new();
    for node in 0..topo.num_nodes() {
        for gpu in 0..topo.gpus_per_node() {
            pool.push(topo.d2h_path(node, gpu));
            pool.push(topo.h2d_path(node, gpu));
        }
        for &(a, b, _) in topo.nvlink_pairs() {
            if let Some(links) = topo.nvlink_edge(node, a, b) {
                pool.push(links);
            }
        }
    }
    pool
}

fn flow_opts(i: usize) -> FlowOptions {
    FlowOptions {
        // A third of the flows carry an SLO floor, as under rate control.
        floor: if i.is_multiple_of(3) { 1e9 } else { 0.0 },
        cap: f64::INFINITY,
        weight: 1.0,
    }
}

/// Churn step on the incremental allocator: retire the oldest flow, admit
/// a replacement, re-read the completion estimate.
fn bench_incremental(c: &mut Criterion, flows: usize) {
    let mut net = FlowNet::new();
    let topo = Topology::build(presets::dgx_v100(), nodes_for(flows), &mut net);
    let pool = path_pool(&topo);
    let mut live = VecDeque::with_capacity(flows);
    for i in 0..flows {
        let f = net
            .start_flow(
                SimTime::ZERO,
                pool[i % pool.len()].clone(),
                CHUNK_BYTES,
                flow_opts(i),
            )
            .expect("valid path");
        live.push_back(f);
    }
    let mut next = flows;
    c.bench_function(&format!("flownet_churn/{flows}"), |b| {
        b.iter(|| {
            let victim = live.pop_front().expect("population is steady");
            net.cancel_flow(SimTime::ZERO, victim).expect("live flow");
            let f = net
                .start_flow(
                    SimTime::ZERO,
                    pool[next % pool.len()].clone(),
                    CHUNK_BYTES,
                    flow_opts(next),
                )
                .expect("valid path");
            live.push_back(f);
            next += 1;
            black_box(net.next_completion())
        })
    });
}

/// The same churn step against the full-recompute reference allocator.
fn bench_reference(c: &mut Criterion, flows: usize) {
    // Build the topology once to learn the link layout, then mirror it
    // into the reference net (LinkIds are assigned identically).
    let mut layout = FlowNet::new();
    let topo = Topology::build(presets::dgx_v100(), nodes_for(flows), &mut layout);
    let mut net = ReferenceNet::new();
    for i in 0..layout.num_links() {
        let l = LinkId(i as u32);
        net.add_link(layout.link_name(l), layout.link_capacity(l));
    }
    let pool = path_pool(&topo);
    let mut live = VecDeque::with_capacity(flows);
    for i in 0..flows {
        let f = net
            .start_flow(
                SimTime::ZERO,
                pool[i % pool.len()].clone(),
                CHUNK_BYTES,
                flow_opts(i),
            )
            .expect("valid path");
        live.push_back(f);
    }
    let mut next = flows;
    c.bench_function(&format!("flownet_ref_churn/{flows}"), |b| {
        b.iter(|| {
            let victim = live.pop_front().expect("population is steady");
            net.cancel_flow(SimTime::ZERO, victim).expect("live flow");
            let f = net
                .start_flow(
                    SimTime::ZERO,
                    pool[next % pool.len()].clone(),
                    CHUNK_BYTES,
                    flow_opts(next),
                )
                .expect("valid path");
            live.push_back(f);
            next += 1;
            black_box(net.next_completion())
        })
    });
}

fn bench_flownet(c: &mut Criterion) {
    for &flows in &[64usize, 256, 1024] {
        bench_incremental(c, flows);
        bench_reference(c, flows);
    }
}

criterion_group!(benches, bench_flownet);
criterion_main!(benches);
