//! One module per paper table/figure. Each `run()` returns the formatted
//! report that the matching `src/bin/` binary prints.

pub mod fig03;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod llm_serve;
pub mod scalability;
pub mod sweeps;
pub mod table1;
pub mod utilization;
