//! **LLM serving** — prefill/decode-disaggregated serving over the GPU
//! store vs the Mooncake+ baseline (DESIGN.md §5.10; the dynamic half of
//! the paper's §6 LLM study, which Fig. 19 measures only statically).
//!
//! Both planes serve the same open-loop 13B/7B chat stream on two 8-GPU
//! H800 groups (4 prefill + 4 decode each). Decode activations grow with
//! the continuous batch, squeezing the KV pool: GROUTER re-hosts cold KV
//! blocks via pressure-triggered migration and restores them proactively;
//! Mooncake+ homes all KV on one cache GPU per node and pays relay
//! fetches plus inline LRU eviction. Reported per load point: TTFT
//! p50/p99, mean TBT, and GROUTER's migration/restore counts (the
//! mechanism counter — the win must come through pressure, not an idle
//! pool).

use crate::harness::{fmt_ms, Table};
use grouter_llm::{run_llm_serve, LlmReport, LlmServeConfig, PlaneKind};

/// Requests per load point: enough arrivals that the decode batches reach
/// steady state and the p99 is sampled from thousands of streams, small
/// enough that the full figure stays in suite-smoke budget.
const REQUESTS: u64 = 2_000;

fn run_point(plane: PlaneKind, rps: f64) -> LlmReport {
    let cfg = LlmServeConfig {
        requests: REQUESTS,
        rps,
        threads: 2,
        ..LlmServeConfig::reference(plane)
    };
    run_llm_serve(&cfg)
}

pub fn run() -> String {
    let mut out = String::from(
        "LLM serving — disaggregated prefill/decode over the GPU store, 2x8 H800\n\
         (13B/7B chat mix, ~2K-token prompts, open loop; TTFT/TBT in ms)\n\n",
    );
    let mut table = Table::new(
        &[
            "rps", "plane", "ttft p50", "ttft p99", "tbt mean", "migr", "restores", "stalls",
        ],
        &[5, 9, 9, 9, 9, 7, 9, 7],
    );
    for rps in [12.0, 20.0, 28.0] {
        for plane in [PlaneKind::Mooncake, PlaneKind::Grouter] {
            let r = run_point(plane, rps);
            let m = &r.metrics;
            table.row(&[
                format!("{rps:.0}"),
                match plane {
                    PlaneKind::Grouter => "GROUTER".to_string(),
                    PlaneKind::Mooncake => "Mooncake+".to_string(),
                },
                fmt_ms(m.ttft.p50() * 1e3),
                fmt_ms(m.ttft.p99() * 1e3),
                fmt_ms(m.tbt.mean() * 1e3),
                r.migrations.to_string(),
                r.restores.to_string(),
                m.restore_stalls.to_string(),
            ]);
        }
    }
    out.push_str(&table.finish());
    out.push_str(
        "\nGates (BENCH_llm.json, scripts/bench_smoke.sh): GROUTER < Mooncake+ on\n\
         p99 TTFT and mean TBT at the 20 rps reference point, GROUTER migrations > 0.\n\
         Mooncake+ shows 0 migrations by design: its evictions happen inline at put\n\
         time on the cache GPU and are visible as restore stalls instead.\n",
    );
    out
}
