//! **Fig. 13** — data-passing latency between two functions vs data volume:
//! (a) intra-node gFn–gFn, (b) host–gFn, (c) inter-node gFn–gFn, on
//! DGX-V100, across all four planes.
//!
//! Paper reductions for GROUTER vs INFless+/NVSHMEM+/DeepPlan+:
//! (a) −95/−75/−75 %, (b) −63/−63/−75 %, (c) −91/−87/−87 %.

use crate::harness::{fmt_ms, gfn_hop_ms, host_gfn_ms, pct_reduction, PlaneKind, Table, MB};
use grouter::topology::{presets, GpuRef};

const SIZES: [f64; 5] = [16.0 * MB, 64.0 * MB, 128.0 * MB, 256.0 * MB, 512.0 * MB];

fn section(out: &mut String, title: &str, paper: &str, probe: impl Fn(PlaneKind, f64, u64) -> f64) {
    out.push_str(title);
    out.push('\n');
    let mut table = Table::new(
        &[
            "size (MB)",
            "INFless+",
            "NVSHMEM+",
            "DeepPlan+",
            "GROUTER",
            "vs best base",
        ],
        &[9, 10, 10, 10, 10, 12],
    );
    let mut last_reduction = String::new();
    for size in SIZES {
        // Average random-placement planes over several seeds.
        let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let ms: Vec<f64> = PlaneKind::MAIN
            .iter()
            .map(|&p| seeds.iter().map(|&sd| probe(p, size, sd)).sum::<f64>() / seeds.len() as f64)
            .collect();
        let best_base = ms[0].min(ms[1]).min(ms[2]);
        last_reduction = pct_reduction(best_base, ms[3]);
        table.row(&[
            format!("{:.0}", size / MB),
            fmt_ms(ms[0]),
            fmt_ms(ms[1]),
            fmt_ms(ms[2]),
            fmt_ms(ms[3]),
            last_reduction.clone(),
        ]);
    }
    out.push_str(&table.finish());
    out.push_str(&format!(
        "paper: {paper}; measured at 512 MB: {last_reduction} vs best baseline\n\n"
    ));
}

pub fn run() -> String {
    let mut out = String::from("Fig. 13 — data-passing latency (ms) vs data volume, DGX-V100\n\n");

    section(
        &mut out,
        "(a) intra-node gFn-gFn (GPU0 -> GPU1, weak NVLink pair)",
        "GROUTER -95%/-75%/-75%",
        |p, size, sd| {
            gfn_hop_ms(
                presets::dgx_v100(),
                1,
                p,
                GpuRef::new(0, 0),
                GpuRef::new(0, 1),
                size,
                sd,
            )
        },
    );

    section(
        &mut out,
        "(b) host-gFn (workflow input into GPU0)",
        "GROUTER -63%/-63%/-75%",
        |p, size, sd| host_gfn_ms(presets::dgx_v100(), p, GpuRef::new(0, 0), size, sd),
    );

    section(
        &mut out,
        "(c) inter-node gFn-gFn (node0/GPU0 -> node1/GPU3)",
        "GROUTER -91%/-87%/-87%",
        |p, size, sd| {
            gfn_hop_ms(
                presets::dgx_v100(),
                2,
                p,
                GpuRef::new(0, 0),
                GpuRef::new(1, 3),
                size,
                sd,
            )
        },
    );
    out
}
