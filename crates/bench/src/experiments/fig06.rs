//! **Fig. 6(a)** — point-to-point bandwidth between every GPU pair of a
//! DGX-V100 server: 48 GB/s (double NVLink), 24 GB/s (single), and
//! PCIe-limited pairs without a direct NVLink.

use grouter::sim::time::SimTime;
use grouter::sim::{FlowNet, FlowOptions};
use grouter::topology::{presets, Topology};

use crate::harness::Table;

/// Achieved bandwidth (GB/s) for a 1 GB transfer `a → b` over the *direct*
/// path — NVLink when the pair is connected, PCIe peer-to-peer otherwise —
/// exactly what a `p2pBandwidthLatencyTest` run measures.
fn p2p_gbps(a: usize, b: usize) -> f64 {
    let mut net = FlowNet::new();
    let topo = Topology::build(presets::dgx_v100(), 1, &mut net);
    let links = topo
        .nvlink_edge(0, a, b)
        .unwrap_or_else(|| topo.pcie_p2p_path(0, a, b));
    let id = net
        .start_flow(SimTime::ZERO, links, 1e9, FlowOptions::default())
        .expect("valid path");
    let done = net.next_completion().expect("progress");
    let _ = net.advance_to(done);
    let _ = id;
    1e9 / done.as_secs_f64() / 1e9
}

pub fn run() -> String {
    let mut out = String::from(
        "Fig. 6(a) — direct point-to-point bandwidth (GB/s) between DGX-V100 GPU pairs\n\n",
    );
    let mut header = vec!["src\\dst".to_string()];
    header.extend((0..8).map(|g| format!("g{g}")));
    let hdr_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&hdr_refs, &[7, 5, 5, 5, 5, 5, 5, 5, 5]);
    let mut classes = (0usize, 0usize, 0usize); // (48, 24, pcie)
    for a in 0..8 {
        let mut row = vec![format!("g{a}")];
        for b in 0..8 {
            if a == b {
                row.push("-".into());
                continue;
            }
            let bw = p2p_gbps(a, b);
            if a < b {
                if bw > 40.0 {
                    classes.0 += 1;
                } else if bw > 20.0 {
                    classes.1 += 1;
                } else {
                    classes.2 += 1;
                }
            }
            row.push(format!("{bw:.0}"));
        }
        table.row(&row);
    }
    out.push_str(&table.finish());
    let total = (classes.0 + classes.1 + classes.2) as f64;
    out.push_str(&format!(
        "\npair classes: {} x 48 GB/s, {} x 24 GB/s ({:.0}%), {} x PCIe-only ({:.0}%)\npaper: 28% of pairs at half bandwidth, 42% without direct NVLink\n",
        classes.0,
        classes.1,
        classes.1 as f64 / total * 100.0,
        classes.2,
        classes.2 as f64 / total * 100.0,
    ));
    out
}
