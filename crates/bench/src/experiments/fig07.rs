//! **Fig. 7** — (a) idle GPU memory fluctuates under an Azure-style trace;
//! (b) shrinking available memory forces evictions to host memory.

use std::sync::Arc;

use crate::harness::{PlaneKind, Table};
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::{SimDuration, SimTime};
use grouter::topology::presets;
use grouter_workloads::apps::{driving, WorkloadParams};
use grouter_workloads::azure::{generate_trace, ArrivalPattern};
use grouter_workloads::models::GpuClass;

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

pub fn run() -> String {
    let mut out =
        String::from("Fig. 7(a) — idle GPU memory under a bursty trace (driving, DGX-V100)\n\n");
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    let spec = driving(params);
    let cfg = RuntimeConfig {
        placement_nodes: vec![0],
        sample_memory: true,
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::dgx_v100(), 1, PlaneKind::Grouter.build(1), cfg);
    rt.schedule_memory_samples(SimDuration::from_millis(250), SimTime(15_000_000_000));
    let mut rng = DetRng::new(21);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        20.0,
        SimDuration::from_secs(15),
        &mut rng,
    ) {
        rt.submit(spec.clone(), t);
    }
    rt.run();
    // Aggregate idle memory across all 8 GPUs over time.
    let series = &rt.world().mem_series;
    let mut table = Table::new(&["t (s)", "idle GPU mem (GiB, node total)"], &[8, 30]);
    let n = series[0].len();
    for k in (0..n).step_by((n / 15).max(1)) {
        let t = series[0].points()[k].0;
        let total: f64 = series.iter().map(|s| s.points()[k].1).sum();
        table.row(&[
            format!("{:.2}", t.as_secs_f64()),
            format!("{:.1}", total / GIB),
        ]);
    }
    out.push_str(&table.finish());
    let min: f64 = (0..n)
        .map(|k| series.iter().map(|s| s.points()[k].1).sum::<f64>())
        .fold(f64::INFINITY, f64::min);
    let max: f64 = (0..n)
        .map(|k| series.iter().map(|s| s.points()[k].1).sum::<f64>())
        .fold(0.0, f64::max);
    out.push_str(&format!(
        "\nidle memory swings between {:.1} and {:.1} GiB — availability changes unpredictably (paper Fig. 7a)\n",
        min / GIB,
        max / GIB
    ));

    out.push_str("\nFig. 7(b) — forced evictions as available memory shrinks\n\n");
    let mut table = Table::new(
        &["available mem", "evictions", "restores", "p99 (ms)"],
        &[14, 10, 9, 9],
    );
    for avail_frac in [0.5, 0.2, 0.1, 0.05] {
        let (ev, rs, p99) = pressure_run(spec.clone(), avail_frac);
        table.row(&[
            format!("{:.0}%", avail_frac * 100.0),
            ev.to_string(),
            rs.to_string(),
            format!("{p99:.0}"),
        ]);
    }
    out.push_str(&table.finish());
    out
}

/// Run with `avail` fraction of GPU memory free for storage; count
/// migrations by watching objects located on the host.
fn pressure_run(spec: Arc<grouter::runtime::spec::WorkflowSpec>, avail: f64) -> (u64, u64, f64) {
    let cfg = RuntimeConfig {
        placement_nodes: vec![0],
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::dgx_v100(), 1, PlaneKind::Grouter.build(1), cfg);
    let cap = rt.world().topo.gpu_mem_bytes();
    for idx in 0..8 {
        rt.world_mut().pools[idx].set_runtime_used(cap * (1.0 - avail));
    }
    let mut rng = DetRng::new(23);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        25.0,
        SimDuration::from_secs(10),
        &mut rng,
    ) {
        rt.submit(spec.clone(), t);
    }
    rt.run();
    let stats = rt.world().plane.as_ref().expect("plane").stats();
    let p99 = rt.metrics().latency_ms(None).p99();
    (stats.migrations, stats.restores, p99)
}
