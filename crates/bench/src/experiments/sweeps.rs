//! Design-constant ablations (DESIGN.md §4): sweeps over the paper's
//! default parameters — batch size (5 chunks), chunk size (2 MB), parallel
//! path fan-out (4), and NVLink detour length (3 hops) — showing each
//! default sits at or near the knee of its trade-off curve.

use crate::harness::{fmt_ms, gfn_hop_ms, PlaneKind, Table, MB};
use grouter::sim::time::{SimDuration, SimTime};
use grouter::topology::{presets, GpuRef};
use grouter::transfer::pipeline::{BatchPipeline, Offered};
use grouter::GrouterConfig;

pub fn run() -> String {
    let mut out = String::from("Design-constant sweeps\n\n");

    // ---- batch size: fairness vs overhead (§4.3.2) ----
    out.push_str(
        "(a) chunks per batch — elephant (400 MB) + late mouse (2 MB) on one 12 GB/s PCIe link\n",
    );
    let mut table = Table::new(
        &["batch", "elephant (ms)", "mouse wait (ms)", "launches"],
        &[7, 14, 16, 9],
    );
    let offered = [
        Offered {
            arrival: SimTime::ZERO,
            bytes: 400.0 * 1024.0 * 1024.0,
        },
        Offered {
            arrival: SimTime(1_000_000),
            bytes: 2.0 * 1024.0 * 1024.0,
        },
    ];
    for batch in [1usize, 2, 5, 10, 25, 100, 100_000] {
        let p = BatchPipeline {
            link_bw: 12e9,
            chunk_bytes: 2.0 * 1024.0 * 1024.0,
            chunks_per_batch: batch,
            batch_overhead: SimDuration::from_micros(30),
        };
        let elephant = p.latency_of(&offered, 0).unwrap().as_millis_f64();
        let mouse = p.latency_of(&offered, 1).unwrap().as_millis_f64();
        let launches = 200usize.div_ceil(batch) + 1;
        let label = if batch == 100_000 {
            "whole".to_string()
        } else {
            batch.to_string()
        };
        table.row(&[label, fmt_ms(elephant), fmt_ms(mouse), launches.to_string()]);
    }
    out.push_str(&table.finish());
    out.push_str(
        "paper default 5: near-minimal mouse wait at 1/5 the launch overhead of batch=1\n\n",
    );

    // ---- chunk size ----
    out.push_str("(b) chunk size — same scenario, batch of 5\n");
    let mut table = Table::new(
        &["chunk (MB)", "elephant (ms)", "mouse wait (ms)"],
        &[10, 14, 16],
    );
    for chunk_mb in [0.5f64, 1.0, 2.0, 8.0, 32.0] {
        let p = BatchPipeline {
            link_bw: 12e9,
            chunk_bytes: chunk_mb * 1024.0 * 1024.0,
            chunks_per_batch: 5,
            batch_overhead: SimDuration::from_micros(30),
        };
        table.row(&[
            format!("{chunk_mb}"),
            fmt_ms(p.latency_of(&offered, 0).unwrap().as_millis_f64()),
            fmt_ms(p.latency_of(&offered, 1).unwrap().as_millis_f64()),
        ]);
    }
    out.push_str(&table.finish());
    out.push_str("paper default 2 MB: small enough for fast preemption, large enough to amortise launches\n\n");

    // ---- parallel path fan-out ----
    out.push_str("(c) max parallel NVLink paths — 512 MB hop on the weak (0,1) V100 pair\n");
    let mut table = Table::new(&["max paths", "hop latency (ms)"], &[10, 17]);
    for paths in [1usize, 2, 3, 4, 6] {
        let cfg = GrouterConfig {
            max_paths: paths,
            ..GrouterConfig::full()
        };
        let ms = gfn_hop_ms(
            presets::dgx_v100(),
            1,
            PlaneKind::GrouterCfg(cfg),
            GpuRef::new(0, 0),
            GpuRef::new(0, 1),
            512.0 * MB,
            7,
        );
        table.row(&[paths.to_string(), fmt_ms(ms)]);
    }
    out.push_str(&table.finish());
    out.push_str(
        "returns diminish past 4 paths: the endpoints' aggregate link bandwidth saturates\n\n",
    );

    // ---- detour length ----
    out.push_str("(d) max NVLink detour hops — same hop\n");
    let mut table = Table::new(&["max hops", "hop latency (ms)"], &[9, 17]);
    for hops in [1usize, 2, 3, 4] {
        let cfg = GrouterConfig {
            max_hops: hops,
            ..GrouterConfig::full()
        };
        let ms = gfn_hop_ms(
            presets::dgx_v100(),
            1,
            PlaneKind::GrouterCfg(cfg),
            GpuRef::new(0, 0),
            GpuRef::new(0, 1),
            512.0 * MB,
            7,
        );
        table.row(&[hops.to_string(), fmt_ms(ms)]);
    }
    out.push_str(&table.finish());
    out.push_str(
        "paper uses up to 3 hops (Fig. 9b); longer detours stop helping on an 8-GPU mesh\n",
    );
    out
}
