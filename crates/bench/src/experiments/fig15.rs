//! **Fig. 15** — maximum sustainable throughput, intra-node and cross-node.
//!
//! Paper: intra-node GROUTER beats INFless+/NVSHMEM+/DeepPlan+ by
//! 2.1×/1.74×/1.37×; cross-node by 2.73×/1.55×/1.39×.

use crate::harness::{max_throughput_rps, with_calibrated_slo, PlaneKind, Table};
use grouter::topology::presets;
use grouter_workloads::apps::{driving, traffic, video, WorkloadParams};
use grouter_workloads::models::GpuClass;

pub fn run() -> String {
    let mut out =
        String::from("Fig. 15 — maximum throughput (req/s) within SLO (1.5x solo latency)\n\n");
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    let specs = [traffic(params), driving(params), video(params)];
    for (nodes, title, paper) in [
        (
            1usize,
            "(a) functions co-located within one node",
            "2.1x / 1.74x / 1.37x",
        ),
        (
            2usize,
            "(b) functions distributed across two nodes",
            "2.73x / 1.55x / 1.39x",
        ),
    ] {
        out.push_str(title);
        out.push('\n');
        let mut table = Table::new(
            &[
                "workflow",
                "INFless+",
                "NVSHMEM+",
                "DeepPlan+",
                "GROUTER",
                "vs INFless+",
            ],
            &[10, 10, 10, 10, 10, 11],
        );
        let mut ratio_sum = [0.0f64; 3];
        for spec in &specs {
            // SLO per plane: 1.5x that plane's own solo latency — the knee
            // where a system stops keeping up with its unloaded behaviour.
            let mut row = vec![spec.name.clone()];
            let mut rps = Vec::new();
            for &plane in &PlaneKind::MAIN {
                let spec = with_calibrated_slo(presets::dgx_v100(), nodes, plane, spec, 1.5, 9);
                let r = max_throughput_rps(presets::dgx_v100(), nodes, plane, &spec, spec.slo, 9);
                rps.push(r);
                row.push(format!("{r:.1}"));
            }
            row.push(format!("{:.2}x", rps[3] / rps[0].max(0.1)));
            for k in 0..3 {
                ratio_sum[k] += rps[3] / rps[k].max(0.1);
            }
            table.row(&row);
        }
        out.push_str(&table.finish());
        out.push_str(&format!(
            "mean speedup: {:.2}x / {:.2}x / {:.2}x vs INFless+/NVSHMEM+/DeepPlan+ (paper: {paper})\n\n",
            ratio_sum[0] / specs.len() as f64,
            ratio_sum[1] / specs.len() as f64,
            ratio_sum[2] / specs.len() as f64,
        ));
    }
    out
}
