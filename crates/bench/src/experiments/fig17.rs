//! **Fig. 17** — fine-grained bandwidth harvesting gives performance
//! isolation between co-located workflows.
//!
//! (a) High contention: latency-critical *driving* co-runs with the
//! transfer-intensive *video* workflow. With SLO-aware partitioning
//! (GROUTER) the driving workflow keeps its bandwidth guarantee; with
//! DeepPlan-style sharing (GROUTER−BH) it suffers (paper: −32 % latency and
//! better SLO compliance with partitioning).
//! (b) Low contention: *driving* + *image* — both variants perform alike,
//! i.e. the rate controller adds no overhead.

use std::sync::Arc;

use crate::harness::{fmt_ms, with_calibrated_slo, PlaneKind, Table};
use grouter::runtime::spec::WorkflowSpec;
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::presets;
use grouter::GrouterConfig;
use grouter_workloads::apps::{driving, image, video, WorkloadParams};
use grouter_workloads::azure::{generate_trace, ArrivalPattern};
use grouter_workloads::models::GpuClass;

/// Run driving + `other` under bursty traces (averaged over seeds — burst
/// alignment is high-variance); report driving's mean P99 and SLO
/// compliance.
fn corun(cfg: GrouterConfig, other: &Arc<WorkflowSpec>, d: &Arc<WorkflowSpec>) -> (f64, f64) {
    let seeds = [55u64, 56, 57];
    let mut p99 = 0.0;
    let mut slo = 0.0;
    for &seed in &seeds {
        let mut rt = Runtime::new(
            presets::dgx_v100(),
            1,
            PlaneKind::GrouterCfg(cfg).build(3),
            RuntimeConfig::default(),
        );
        let mut rng = DetRng::new(seed);
        let mut sub = rng.fork(0);
        for t in generate_trace(
            ArrivalPattern::Bursty,
            8.0,
            SimDuration::from_secs(12),
            &mut sub,
        ) {
            rt.submit(d.clone(), t);
        }
        let mut sub = rng.fork(1);
        for t in generate_trace(
            ArrivalPattern::Bursty,
            8.0,
            SimDuration::from_secs(12),
            &mut sub,
        ) {
            rt.submit(other.clone(), t);
        }
        rt.run();
        let m = rt.metrics();
        p99 += m.latency_ms(Some("driving")).p99();
        slo += m.slo_compliance(Some("driving"), d.slo) * 100.0;
    }
    (p99 / seeds.len() as f64, slo / seeds.len() as f64)
}

pub fn run() -> String {
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    // SLO = 1.5× independent execution time (GPUlet-style, §6.3).
    let d = with_calibrated_slo(
        presets::dgx_v100(),
        1,
        PlaneKind::Grouter,
        &driving(params),
        1.5,
        9,
    );
    let v = video(params);
    let i = image(params);

    let mut out = String::from(
        "Fig. 17 — bandwidth partitioning and performance isolation (DGX-V100)\n\n(a) high contention: driving + video\n",
    );
    let mut table = Table::new(
        &["variant", "driving p99 (ms)", "SLO compliance"],
        &[14, 17, 15],
    );
    let (p99_bh, slo_bh) = corun(GrouterConfig::full(), &v, &d);
    let (p99_nobh, slo_nobh) = corun(GrouterConfig::full().no_bh(), &v, &d);
    table.row(&["GROUTER".into(), fmt_ms(p99_bh), format!("{slo_bh:.0}%")]);
    table.row(&[
        "GROUTER-BH".into(),
        fmt_ms(p99_nobh),
        format!("{slo_nobh:.0}%"),
    ]);
    out.push_str(&table.finish());
    out.push_str(&format!(
        "partitioning reduces driving p99 by {:.0}% (paper: 32%)\n\n(b) low contention: driving + image\n",
        (1.0 - p99_bh / p99_nobh) * 100.0
    ));
    let mut table = Table::new(
        &["variant", "driving p99 (ms)", "SLO compliance"],
        &[14, 17, 15],
    );
    let (p99_bh, slo_bh) = corun(GrouterConfig::full(), &i, &d);
    let (p99_nobh, slo_nobh) = corun(GrouterConfig::full().no_bh(), &i, &d);
    table.row(&["GROUTER".into(), fmt_ms(p99_bh), format!("{slo_bh:.0}%")]);
    table.row(&[
        "GROUTER-BH".into(),
        fmt_ms(p99_nobh),
        format!("{slo_nobh:.0}%"),
    ]);
    out.push_str(&table.finish());
    out.push_str("paper: both variants perform identically under low contention\n");
    out
}
