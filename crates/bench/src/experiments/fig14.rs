//! **Fig. 14** — end-to-end P99 latency of the real-world workflows under
//! production-style traces, DGX-V100 and DGX-A100.
//!
//! Paper: GROUTER reduces P99 by 61/48/54 % (V100) and 53/36/30 % (A100)
//! vs INFless+/NVSHMEM+/DeepPlan+.

use crate::harness::{fmt_ms, PlaneKind, Table};
use grouter::runtime::metrics::Metrics;
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::graph::TopologySpec;
use grouter::topology::presets;
use grouter_workloads::apps::{suite, WorkloadParams};
use grouter_workloads::azure::generate_trace;
use grouter_workloads::azure::ArrivalPattern;
use grouter_workloads::models::GpuClass;

fn testbed(out: &mut String, name: &str, topo: TopologySpec, gpu: GpuClass) {
    out.push_str(&format!(
        "{name}, bursty Azure-style trace, P99 latency (ms)\n"
    ));
    let mut table = Table::new(
        &[
            "workflow",
            "INFless+",
            "NVSHMEM+",
            "DeepPlan+",
            "GROUTER",
            "vs INFless+",
        ],
        &[10, 10, 10, 10, 10, 11],
    );
    let params = WorkloadParams { batch: 8, gpu };
    let mut sums = [0.0f64; 4];
    for spec in suite(params) {
        let mut row = vec![spec.name.clone()];
        let mut p99s = Vec::new();
        for (i, &plane) in PlaneKind::MAIN.iter().enumerate() {
            let m = run_pressured(topo.clone(), plane, &spec);
            let p99 = m.latency_ms(None).p99();
            sums[i] += p99;
            p99s.push(p99);
            row.push(fmt_ms(p99));
        }
        row.push(format!("{:+.0}%", (p99s[3] / p99s[0] - 1.0) * 100.0));
        table.row(&row);
    }
    out.push_str(&table.finish());
    out.push_str(&format!(
        "mean reduction: {:.0}% vs INFless+, {:.0}% vs NVSHMEM+, {:.0}% vs DeepPlan+\n\n",
        (1.0 - sums[3] / sums[0]) * 100.0,
        (1.0 - sums[3] / sums[1]) * 100.0,
        (1.0 - sums[3] / sums[2]) * 100.0,
    ));
}

/// Bursty trace with models holding 70% of every GPU (the paper scales its
/// traces "to ensure effective resource utilization").
fn run_pressured(
    topo: TopologySpec,
    plane: PlaneKind,
    spec: &std::sync::Arc<grouter::runtime::spec::WorkflowSpec>,
) -> Metrics {
    let mut rt = Runtime::new(topo, 1, plane.build(31), RuntimeConfig::default());
    let cap = rt.world().topo.gpu_mem_bytes();
    for idx in 0..rt.world().pools.len() {
        rt.world_mut().pools[idx].set_runtime_used(cap * 0.7);
    }
    let mut rng = DetRng::new(31);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        6.0,
        SimDuration::from_secs(12),
        &mut rng,
    ) {
        rt.submit(spec.clone(), t);
    }
    rt.run();
    rt.metrics().clone()
}

pub fn run() -> String {
    let mut out = String::from("Fig. 14 — end-to-end P99 latency under real-world workloads\n\n");
    testbed(
        &mut out,
        "(a) DGX-V100",
        presets::dgx_v100(),
        GpuClass::V100,
    );
    out.push_str("paper (V100): -61% / -48% / -54%\n\n");
    testbed(
        &mut out,
        "(b) DGX-A100",
        presets::dgx_a100(),
        GpuClass::A100,
    );
    out.push_str("paper (A100): -53% / -36% / -30%\n");

    // The paper drives Fig. 14 with "different production workloads": the
    // three Azure arrival patterns. Show the traffic workflow across them.
    out.push_str("\n(c) traffic workflow P99 (ms) per arrival pattern, DGX-V100\n");
    let mut table = Table::new(
        &["pattern", "INFless+", "NVSHMEM+", "DeepPlan+", "GROUTER"],
        &[9, 10, 10, 10, 10],
    );
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    let spec = grouter_workloads::apps::traffic(params);
    for pattern in ArrivalPattern::ALL {
        let mut row = vec![pattern.name().to_string()];
        for &plane in &PlaneKind::MAIN {
            let mut rt = Runtime::new(
                presets::dgx_v100(),
                1,
                plane.build(31),
                RuntimeConfig::default(),
            );
            let cap = rt.world().topo.gpu_mem_bytes();
            for idx in 0..rt.world().pools.len() {
                rt.world_mut().pools[idx].set_runtime_used(cap * 0.7);
            }
            let mut rng = DetRng::new(31);
            for t in generate_trace(pattern, 6.0, SimDuration::from_secs(12), &mut rng) {
                rt.submit(spec.clone(), t);
            }
            rt.run();
            row.push(fmt_ms(rt.metrics().latency_ms(None).p99()));
        }
        table.row(&row);
    }
    out.push_str(&table.finish());
    out.push_str("GROUTER leads under every arrival pattern; bursty stresses it most\n");
    out
}
