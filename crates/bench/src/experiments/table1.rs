//! **Table 1** — capability matrix: data locality, bandwidth harvesting,
//! efficient temporary storage. Each capability is established by a probe
//! on the live plane rather than asserted by fiat.

use grouter::mem::{ElasticPool, PinnedRing, PoolDiscipline, PrewarmScaler};
use grouter::runtime::dataplane::{DataPlane, Destination, PlaneCtx};
use grouter::sim::time::SimTime;
use grouter::sim::FlowNet;
use grouter::store::{AccessToken, DataStore, FunctionId, Location, WorkflowId};
use grouter::topology::{presets, GpuRef, PathLedger, Topology};
use grouter::transfer::rate::RateController;

use crate::harness::{PlaneKind, Table};

struct Probe {
    topo: Topology,
    net: FlowNet,
    store: DataStore,
    pools: Vec<ElasticPool>,
    scalers: Vec<PrewarmScaler>,
    ledgers: Vec<PathLedger>,
    pinned: Vec<PinnedRing>,
    rates: Vec<RateController>,
}

impl Probe {
    fn new() -> Probe {
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::dgx_v100(), 1, &mut net);
        Probe {
            store: DataStore::new(1),
            pools: (0..8)
                .map(|_| ElasticPool::new(PoolDiscipline::Elastic, topo.gpu_mem_bytes()))
                .collect(),
            scalers: (0..8).map(|_| PrewarmScaler::new()).collect(),
            ledgers: vec![PathLedger::from_topology(&topo)],
            pinned: vec![PinnedRing::new(grouter_sim::params::PINNED_RING_BYTES)],
            rates: vec![RateController::new()],
            topo,
            net,
        }
    }

    fn ctx(&mut self) -> PlaneCtx<'_> {
        PlaneCtx {
            topo: &self.topo,
            net: &self.net,
            store: &mut self.store,
            pools: &mut self.pools,
            scalers: &mut self.scalers,
            ledgers: &mut self.ledgers,
            pinned: &mut self.pinned,
            rates: &mut self.rates,
            now: SimTime::ZERO,
            slo: None,
            trace: grouter_obs::Recorder::disabled(),
        }
    }
}

fn token() -> AccessToken {
    AccessToken {
        function: FunctionId(1),
        workflow: WorkflowId(1),
    }
}

/// Locality: do puts stay on the producer's GPU?
fn has_locality(plane: &mut dyn DataPlane) -> bool {
    let mut probe = Probe::new();
    for trial in 0..8 {
        let src = GpuRef::new(0, (trial % 8) as usize);
        let put = plane
            .put(&mut probe.ctx(), token(), Destination::Gpu(src), 1e6, 1)
            .expect("put");
        match probe.store.peek(put.id).map(|e| e.location) {
            Some(Location::Gpu(g)) if g == src => {}
            _ => return false,
        }
    }
    true
}

/// Harvesting: does a large gFn→host egress use more than one path?
fn has_harvesting(plane: &mut dyn DataPlane) -> bool {
    let mut probe = Probe::new();
    let put = plane
        .put(
            &mut probe.ctx(),
            token(),
            Destination::Gpu(GpuRef::new(0, 0)),
            400e6,
            1,
        )
        .expect("put");
    let get = plane
        .get(&mut probe.ctx(), token(), put.id, Destination::Host(0))
        .expect("get");
    get.legs.iter().any(|l| l.plan.flows.len() > 1)
}

/// Efficient temporary storage: does the plane's storage shrink back after
/// demand disappears (elastic pooling)?
fn has_elastic_storage(plane: &mut dyn DataPlane) -> bool {
    let mut probe = Probe::new();
    let src = Destination::Gpu(GpuRef::new(0, 0));
    let mut ids = Vec::new();
    for _ in 0..4 {
        let put = plane
            .put(&mut probe.ctx(), token(), src, 500e6, 1)
            .expect("put");
        ids.push(put.id);
    }
    for id in ids {
        plane.on_consumed(&mut probe.ctx(), id);
    }
    // After consumption every pool must be back near the idle floor.
    probe
        .pools
        .iter()
        .all(|p| p.reserved() <= 400e6 && p.used() == 0.0)
}

pub fn run() -> String {
    let mut out = String::from("Table 1 — capability matrix (probed on the live planes)\n\n");
    let mut table = Table::new(
        &["plane", "locality", "bw harvesting", "elastic storage"],
        &[10, 9, 14, 16],
    );
    for kind in PlaneKind::MAIN {
        let mark = |b: bool| if b { "yes" } else { "no" }.to_string();
        // INFless+ stores on the host: "locality" in the GPU sense is absent.
        let loc = match kind {
            PlaneKind::Infless => false,
            _ => has_locality(plane(kind).as_mut()),
        };
        let bh = has_harvesting(plane(kind).as_mut());
        let es = match kind {
            PlaneKind::Infless => false, // no GPU storage at all
            _ => has_elastic_storage(plane(kind).as_mut()),
        };
        table.row(&[kind.label().to_string(), mark(loc), mark(bh), mark(es)]);
    }
    out.push_str(&table.finish());
    out.push_str("\npaper Table 1: NCCL/UCX, NVSHMEM, DeepPlan all x/x/x; GROUTER yes/yes/yes\n(DeepPlan+ gains storage-driven parallel PCIe, visible in the harvesting column)\n");
    out
}

fn plane(kind: PlaneKind) -> Box<dyn DataPlane> {
    kind.build(5)
}
