//! **Fig. 20** — applicability and overheads.
//!
//! (a) gFn–gFn data passing on a 4×A10 server without NVLink (paper:
//! GROUTER −51 % — locality removes one of two PCIe P2P copies);
//! (b) CPU/control-plane overhead (lookup traffic) vs INFless+;
//! (c) GPU memory overhead of the storage disciplines (elastic vs static
//! vs NVSHMEM-symmetric).

use crate::harness::{fmt_ms, gfn_hop_ms, run_trace, PlaneKind, Table, MB};
use grouter::mem::PoolDiscipline;
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::{presets, GpuRef};
use grouter_workloads::apps::{driving, WorkloadParams};
use grouter_workloads::azure::{generate_trace, ArrivalPattern};
use grouter_workloads::models::GpuClass;

pub fn run() -> String {
    let mut out = String::from("Fig. 20 — applicability and system overhead\n\n(a) gFn-gFn data passing on 4xA10 (no NVLink), GPU0 -> GPU1\n");
    let mut table = Table::new(
        &[
            "size (MB)",
            "INFless+",
            "NVSHMEM+",
            "DeepPlan+",
            "GROUTER",
            "vs best base",
        ],
        &[9, 10, 10, 10, 10, 12],
    );
    for size in [64.0 * MB, 128.0 * MB, 256.0 * MB, 512.0 * MB] {
        let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let ms: Vec<f64> = PlaneKind::MAIN
            .iter()
            .map(|&p| {
                seeds
                    .iter()
                    .map(|&sd| {
                        gfn_hop_ms(
                            presets::a10x4(),
                            1,
                            p,
                            GpuRef::new(0, 0),
                            GpuRef::new(0, 1),
                            size,
                            sd,
                        )
                    })
                    .sum::<f64>()
                    / seeds.len() as f64
            })
            .collect();
        let best = ms[0].min(ms[1]).min(ms[2]);
        table.row(&[
            format!("{:.0}", size / MB),
            fmt_ms(ms[0]),
            fmt_ms(ms[1]),
            fmt_ms(ms[2]),
            fmt_ms(ms[3]),
            format!("{:+.0}%", (ms[3] / best - 1.0) * 100.0),
        ]);
    }
    out.push_str(&table.finish());
    out.push_str("paper: -51% (one PCIe P2P copy instead of two store relays)\n\n");

    out.push_str("(b) control-plane overhead: mapping-table traffic per request\n");
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    let mut table = Table::new(
        &[
            "plane",
            "local lookups/req",
            "global lookups/req",
            "pin events/req",
        ],
        &[10, 18, 18, 15],
    );
    for plane in [PlaneKind::Infless, PlaneKind::Grouter] {
        let spec = driving(params);
        let m = run_trace(
            presets::dgx_v100(),
            1,
            plane,
            &[spec],
            ArrivalPattern::Sporadic,
            5.0,
            10,
            3,
        );
        // lookup stats live in the world; re-run capturing the world.
        let mut rt = Runtime::new(
            presets::dgx_v100(),
            1,
            plane.build(3),
            RuntimeConfig::default(),
        );
        let mut rng = DetRng::new(3);
        let spec = driving(params);
        for t in generate_trace(
            ArrivalPattern::Sporadic,
            5.0,
            SimDuration::from_secs(10),
            &mut rng,
        ) {
            rt.submit(spec.clone(), t);
        }
        rt.run();
        let (local, global) = rt.world().store.lookup_stats();
        // INFless+ pins a staging buffer per host transfer; GROUTER reuses
        // the shared ring (§4.3.2), so its pin-event count stays at the
        // one-time ring allocations.
        let pins: u64 = match plane {
            PlaneKind::Infless => {
                // Modelled as control latency, not ring events: count host
                // legs = 2 gFn-host transfers per gFn stage (put + get).
                let gfn_hops: usize = m.records().iter().map(|r| r.op_durations.len()).sum();
                gfn_hops as u64
            }
            _ => rt.world().pinned.iter().map(|r| r.pin_events()).sum(),
        };
        let n = m.completed().max(1) as f64;
        table.row(&[
            plane.label().to_string(),
            format!("{:.1}", local as f64 / n),
            format!("{:.1}", global as f64 / n),
            format!("{:.1}", pins as f64 / n),
        ]);
    }
    out.push_str(&table.finish());
    out.push_str("paper: GROUTER's CPU usage is on par with INFless+; the shared pinned ring\nremoves per-transfer pinning (§4.3.2)\n\n");

    out.push_str(
        "(c) GPU memory overhead: peak storage reservation vs peak demand (driving, bursty)\n",
    );
    let mut table = Table::new(
        &[
            "discipline",
            "peak reserved (MB)",
            "peak used (MB)",
            "overhead",
        ],
        &[22, 18, 15, 9],
    );
    for (label, discipline) in [
        ("GROUTER elastic", PoolDiscipline::Elastic),
        ("static pool", PoolDiscipline::Static { bytes: 4e9 }),
        (
            "NVSHMEM symmetric",
            PoolDiscipline::Symmetric { bytes: 4e9 },
        ),
    ] {
        let cfg = RuntimeConfig {
            pool_discipline: discipline,
            ..Default::default()
        };
        let mut rt = Runtime::new(presets::dgx_v100(), 1, PlaneKind::Grouter.build(3), cfg);
        let mut rng = DetRng::new(77);
        let spec = driving(params);
        for t in generate_trace(
            ArrivalPattern::Bursty,
            15.0,
            SimDuration::from_secs(10),
            &mut rng,
        ) {
            rt.submit(spec.clone(), t);
        }
        rt.run();
        // Symmetric heaps charge every GPU in the job the same reservation.
        let gpus = rt.world().pools.len() as f64;
        let used: f64 = rt.world().pools.iter().map(|p| p.peak_used()).sum();
        let reserved: f64 = match discipline {
            // Symmetric heaps charge every GPU the same reservation.
            PoolDiscipline::Symmetric { bytes } => bytes * gpus,
            _ => rt.world().pools.iter().map(|p| p.peak_reserved()).sum(),
        };
        table.row(&[
            label.to_string(),
            format!("{:.0}", reserved / 1e6),
            format!("{:.0}", used / 1e6),
            format!("{:.1}x", reserved / used.max(1.0)),
        ]);
    }
    out.push_str(&table.finish());
    out.push_str("paper: static pooling uses ~4x the actual demand; symmetric allocation is worst;\nGROUTER scales the pool with demand\n");
    out
}
