//! Link-level view of bandwidth harvesting (the mechanism behind Fig. 5a):
//! watch the four PCIe switch→host uplinks of a DGX-V100 node while a
//! gFn–host-heavy workload runs. GROUTER spreads staging across all four;
//! the single-path baseline hammers one uplink and leaves the rest idle.

use std::sync::Arc;

use crate::harness::{PlaneKind, Table};
use grouter::runtime::spec::{StageSpec, WorkflowSpec};
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::{SimDuration, SimTime};
use grouter::topology::presets;
use grouter::GrouterConfig;
use grouter_workloads::azure::{generate_trace, ArrivalPattern};

const MB: f64 = 1e6;

/// One GPU stage with a large host-bound output → every request is an
/// egress d2h transfer.
fn egress_heavy() -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("egress", 1.0 * MB);
    wf.push(StageSpec::gpu(
        "render",
        vec![],
        SimDuration::from_millis(6),
        256.0 * MB,
        1e9,
    ));
    Arc::new(wf)
}

fn uplink_utilisation(plane: PlaneKind) -> (Vec<f64>, f64) {
    use grouter::runtime::dataplane::Destination;
    use grouter::runtime::placement::PlacementPolicy;
    use grouter::topology::GpuRef;

    let pin = PlacementPolicy::Pinned(vec![Destination::Gpu(GpuRef::new(0, 0))]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0],
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::dgx_v100(), 1, plane.build(5), cfg);
    let uplinks = rt.world().topo.uplink_links(0);
    rt.schedule_link_samples(
        uplinks,
        SimDuration::from_millis(5),
        SimTime(10_000_000_000),
    );
    let mut rng = DetRng::new(8);
    let spec = egress_heavy();
    for t in generate_trace(
        ArrivalPattern::Bursty,
        20.0,
        SimDuration::from_secs(10),
        &mut rng,
    ) {
        rt.submit(spec.clone(), t);
    }
    rt.run();
    let util = rt
        .world()
        .link_series
        .iter()
        .map(|(_, s)| s.time_weighted_mean().unwrap_or(0.0) * 100.0)
        .collect();
    (util, rt.metrics().latency_ms(None).mean())
}

pub fn run() -> String {
    let mut out = String::from(
        "PCIe uplink utilisation while one GPU streams 256 MB outputs to host\n(bursty 20 req/s, DGX-V100 node; mean % of each switch uplink)\n\n",
    );
    let mut table = Table::new(
        &[
            "plane",
            "uplink0",
            "uplink1",
            "uplink2",
            "uplink3",
            "mean e2e (ms)",
        ],
        &[22, 8, 8, 8, 8, 14],
    );
    for (label, plane) in [
        (
            "single PCIe (no BH)",
            PlaneKind::GrouterCfg(GrouterConfig::full().no_bh()),
        ),
        ("GROUTER (harvesting)", PlaneKind::Grouter),
    ] {
        let (util, e2e) = uplink_utilisation(plane);
        let mut row = vec![label.to_string()];
        row.extend(util.iter().map(|u| format!("{u:.0}%")));
        row.push(format!("{e2e:.1}"));
        table.row(&row);
    }
    out.push_str(&table.finish());
    out.push_str("\nsame bytes, four uplinks instead of one: each transfer finishes ~4x sooner,\nwhich is exactly Fig. 5a's \"2-4x higher aggregate bandwidth\" mechanism\n");
    out
}
