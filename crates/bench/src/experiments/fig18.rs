//! **Fig. 18** — elasticity of GPU storage under memory limits.
//!
//! (a) end-to-end latency with only 10 % of GPU memory available;
//! (b) end-to-end latency across availability ratios;
//! (c) average gFn–gFn data-passing latency.
//!
//! Paper: GROUTER cuts tail latency by 46/27/7 % vs INFless+/LRU/RQ at
//! 10 %, still wins at 1 %, and cuts data-passing delays by 83/72/49 %.

use std::sync::Arc;

use crate::harness::{fmt_ms, PlaneKind, Table};
use grouter::runtime::metrics::{Metrics, PassCategory};
use grouter::runtime::spec::{StageSpec, WorkflowSpec};
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::presets;
use grouter::GrouterConfig;
use grouter_workloads::azure::{generate_trace, ArrivalPattern};

const MB: f64 = 1e6;

/// The four systems of Fig. 18.
fn variants() -> Vec<(&'static str, PlaneKind)> {
    vec![
        ("INFless+", PlaneKind::Infless),
        ("LRU", PlaneKind::Nvshmem),
        (
            "RQ",
            PlaneKind::GrouterCfg(GrouterConfig::full().no_restore()),
        ),
        ("GROUTER", PlaneKind::Grouter),
    ]
}

/// Producer/consumer chain that accumulates outputs in GPU storage.
fn chain() -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("chain", 2.0 * MB);
    let a = wf.push(StageSpec::gpu(
        "produce",
        vec![],
        SimDuration::from_millis(4),
        180.0 * MB,
        1e9,
    ));
    wf.push(StageSpec::gpu(
        "consume",
        vec![a],
        SimDuration::from_millis(16),
        1.0 * MB,
        1e9,
    ));
    Arc::new(wf)
}

fn run_at(plane: PlaneKind, avail: f64) -> Metrics {
    use grouter::runtime::dataplane::Destination;
    use grouter::runtime::placement::PlacementPolicy;
    use grouter::topology::GpuRef;

    let pin = PlacementPolicy::Pinned(vec![
        Destination::Gpu(GpuRef::new(0, 0)),
        Destination::Gpu(GpuRef::new(0, 3)),
    ]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0],
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::dgx_v100(), 1, plane.build(3), cfg);
    let cap = rt.world().topo.gpu_mem_bytes();
    for idx in 0..8 {
        rt.world_mut().pools[idx].set_runtime_used(cap * (1.0 - avail));
    }
    let mut rng = DetRng::new(99);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        22.0,
        SimDuration::from_secs(12),
        &mut rng,
    ) {
        rt.submit(chain(), t);
    }
    rt.run();
    rt.metrics().clone()
}

pub fn run() -> String {
    let mut out = String::from(
        "Fig. 18 — elastic GPU storage under memory limits (bursty producer/consumer chain)\n\n(a) 10% available GPU memory\n",
    );
    let mut table = Table::new(
        &["system", "p50 (ms)", "p99 (ms)", "avg gFn-gFn pass (ms)"],
        &[10, 10, 10, 22],
    );
    let mut p99_at_10 = Vec::new();
    for (label, plane) in variants() {
        let m = run_at(plane, 0.10);
        let lat = m.latency_ms(None);
        let pass = m.op_latency_ms(PassCategory::GpuGpu, None).mean();
        p99_at_10.push(lat.p99());
        table.row(&[
            label.to_string(),
            fmt_ms(lat.p50()),
            fmt_ms(lat.p99()),
            fmt_ms(pass),
        ]);
    }
    out.push_str(&table.finish());
    // The paper plots (a) as a latency CDF; print the distribution tails.
    out.push_str("\nlatency CDF at 10% available memory (ms at P25/P50/P75/P90/P99):\n");
    let mut cdf_table = Table::new(
        &["system", "p25", "p50", "p75", "p90", "p99"],
        &[10, 9, 9, 9, 9, 9],
    );
    for (label, plane) in variants() {
        let m = run_at(plane, 0.10);
        let lat = m.latency_ms(None);
        cdf_table.row(&[
            label.to_string(),
            fmt_ms(lat.quantile(0.25)),
            fmt_ms(lat.quantile(0.50)),
            fmt_ms(lat.quantile(0.75)),
            fmt_ms(lat.quantile(0.90)),
            fmt_ms(lat.quantile(0.99)),
        ]);
    }
    out.push_str(&cdf_table.finish());
    out.push_str(&format!(
        "GROUTER p99 vs INFless+/LRU/RQ: {:+.0}% / {:+.0}% / {:+.0}%  (paper: -46/-27/-7%)\n\n",
        (p99_at_10[3] / p99_at_10[0] - 1.0) * 100.0,
        (p99_at_10[3] / p99_at_10[1] - 1.0) * 100.0,
        (p99_at_10[3] / p99_at_10[2] - 1.0) * 100.0,
    ));

    out.push_str("(b) end-to-end p99 (ms) across availability ratios\n");
    let mut table = Table::new(
        &["avail", "INFless+", "LRU", "RQ", "GROUTER"],
        &[7, 10, 10, 10, 10],
    );
    for avail in [0.01, 0.05, 0.10, 0.25, 0.50] {
        let mut row = vec![format!("{:.0}%", avail * 100.0)];
        for (_, plane) in variants() {
            let m = run_at(plane, avail);
            row.push(fmt_ms(m.latency_ms(None).p99()));
        }
        table.row(&row);
    }
    out.push_str(&table.finish());
    out.push_str("paper: GROUTER still ahead at 1% available memory (-24/-14/-9% e2e)\n\n");

    out.push_str("(c) average gFn-gFn data-passing latency at 10% (see table (a), last column)\n");
    out.push_str("paper: -83% / -72% / -49% vs INFless+/LRU/RQ\n");
    out
}
