//! **Fig. 16** — ablation: disable GROUTER's optimizations one by one and
//! measure average data-passing latency under a bursty workload.
//!
//! Paper: removing everything costs 1.57–1.82× (DGX-V100) and 1.30–1.61×
//! (DGX-A100).

use crate::harness::{fmt_ms, PlaneKind, Table};
use grouter::topology::graph::TopologySpec;
use grouter::topology::presets;
use grouter::GrouterConfig;
use grouter_workloads::apps::{suite, WorkloadParams};
use grouter_workloads::azure::ArrivalPattern;
use grouter_workloads::models::GpuClass;

fn ladder() -> Vec<(&'static str, GrouterConfig)> {
    vec![
        ("GROUTER", GrouterConfig::full()),
        ("-ES", GrouterConfig::full().no_es()),
        ("-ES-TA", GrouterConfig::full().no_es().no_ta()),
        ("-ES-TA-BH", GrouterConfig::full().no_es().no_ta().no_bh()),
        (
            "-ES-TA-BH-UF",
            GrouterConfig::full().no_es().no_ta().no_bh().no_uf(),
        ),
    ]
}

fn testbed(out: &mut String, name: &str, topo: TopologySpec, gpu: GpuClass, paper: &str) {
    out.push_str(&format!("{name}\n"));
    let mut table = Table::new(
        &["config", "avg data passing (ms)", "vs GROUTER"],
        &[14, 21, 11],
    );
    let params = WorkloadParams { batch: 8, gpu };
    // Memory pressure so elastic storage matters: models occupy 70%.
    let mut full = 0.0;
    for (label, cfg) in ladder() {
        let specs = suite(params);
        let m = run_with_pressure(topo.clone(), cfg, &specs);
        if label == "GROUTER" {
            full = m;
        }
        table.row(&[label.to_string(), fmt_ms(m), format!("{:.2}x", m / full)]);
    }
    out.push_str(&table.finish());
    out.push_str(&format!("paper: fully ablated = {paper}\n\n"));
}

fn run_with_pressure(
    topo: TopologySpec,
    cfg: GrouterConfig,
    specs: &[std::sync::Arc<grouter::runtime::spec::WorkflowSpec>],
) -> f64 {
    use grouter::runtime::world::RuntimeConfig;
    use grouter::runtime::Runtime;
    use grouter::sim::rng::DetRng;
    use grouter::sim::time::SimDuration;
    use grouter_workloads::azure::generate_trace;

    let mut rt = Runtime::new(
        topo,
        1,
        PlaneKind::GrouterCfg(cfg).build(3),
        RuntimeConfig::default(),
    );
    let cap = rt.world().topo.gpu_mem_bytes();
    for idx in 0..rt.world().pools.len() {
        rt.world_mut().pools[idx].set_runtime_used(cap * 0.85);
    }
    let mut rng = DetRng::new(41);
    for (k, spec) in specs.iter().enumerate() {
        let mut sub = rng.fork(k as u64);
        for t in generate_trace(
            ArrivalPattern::Bursty,
            3.0,
            SimDuration::from_secs(10),
            &mut sub,
        ) {
            rt.submit(spec.clone(), t);
        }
    }
    rt.run();
    rt.metrics().passing_ms(None).mean()
}

pub fn run() -> String {
    let mut out = String::from(
        "Fig. 16 — ablation: average data-passing latency as optimizations are removed\n(bursty trace over the full workflow suite, 85% GPU memory held by models)\n\n",
    );
    testbed(
        &mut out,
        "(a) DGX-V100",
        presets::dgx_v100(),
        GpuClass::V100,
        "1.57-1.82x",
    );
    testbed(
        &mut out,
        "(b) DGX-A100",
        presets::dgx_a100(),
        GpuClass::A100,
        "1.30-1.61x",
    );
    out
}
