//! **Fig. 5(b)** — parallel PCIe transfers help in isolation but interfere
//! without bandwidth partitioning.
//!
//! Driving and Video run alone and together on one DGX-V100 node using the
//! DeepPlan-style shared parallel PCIe (NVSHMEM+ w/ DeepPlan in the paper).
//! Co-running inflates driving's gFn–host latency severely (paper: 3.65×).

use crate::harness::{fmt_ms, PlaneKind, Table};
use grouter::runtime::metrics::PassCategory;
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::presets;
use grouter::GrouterConfig;
use grouter_workloads::apps::{driving, video, WorkloadParams};
use grouter_workloads::azure::{generate_trace, ArrivalPattern};
use grouter_workloads::models::GpuClass;

fn gfn_host_mean(plane: PlaneKind, with_video: bool, single_path: bool) -> (f64, f64) {
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    // The video workflow is transfer-intensive: large chunks at batch 16,
    // "multiple functions load video chunks simultaneously" (§3.2.1).
    let video_params = WorkloadParams {
        batch: 32,
        gpu: GpuClass::V100,
    };
    let _ = single_path;
    let mut rt = Runtime::new(
        presets::dgx_v100(),
        1,
        plane.build(3),
        RuntimeConfig::default(),
    );
    let mut rng = DetRng::new(17);
    let d = driving(params);
    let mut sub = rng.fork(0);
    for t in generate_trace(
        ArrivalPattern::Bursty,
        8.0,
        SimDuration::from_secs(10),
        &mut sub,
    ) {
        rt.submit(d.clone(), t);
    }
    if with_video {
        let v = video(video_params);
        let mut sub = rng.fork(1);
        for t in generate_trace(
            ArrivalPattern::Bursty,
            20.0,
            SimDuration::from_secs(10),
            &mut sub,
        ) {
            rt.submit(v.clone(), t);
        }
    }
    rt.run();
    let m = rt.metrics();
    let driving_gh: Vec<f64> = m
        .records()
        .iter()
        .filter(|r| m.workflow_name(r.workflow) == "driving")
        .map(|r| r.passing_of(PassCategory::GpuHost).as_millis_f64())
        .collect();
    let video_gh: Vec<f64> = m
        .records()
        .iter()
        .filter(|r| m.workflow_name(r.workflow) == "video")
        .map(|r| r.passing_of(PassCategory::GpuHost).as_millis_f64())
        .collect();
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    (mean(&driving_gh), mean(&video_gh))
}

pub fn run() -> String {
    let mut out =
        String::from("Fig. 5(b) — gFn-host latency: running alone vs co-located (DGX-V100)\n\n");
    let mut table = Table::new(
        &["config", "driving gFn-host", "video gFn-host"],
        &[30, 17, 15],
    );
    // Single-path baseline (NVSHMEM+) alone.
    let (d_single, _) = gfn_host_mean(PlaneKind::Nvshmem, false, true);
    table.row(&[
        "single PCIe link, alone".into(),
        fmt_ms(d_single),
        "-".into(),
    ]);
    // Parallel PCIe without topology awareness or partitioning — the
    // paper's "NVSHMEM+ w/ DeepPlan" prototype — alone.
    let naive = PlaneKind::GrouterCfg(GrouterConfig::full().no_ta());
    let (d_alone, _) = gfn_host_mean(naive, false, false);
    table.row(&[
        "NVSHMEM+ w/ DeepPlan, alone".into(),
        fmt_ms(d_alone),
        "-".into(),
    ]);
    // Topology-aware parallel PCIe (GROUTER) alone: route GPUs on distinct
    // switches, so the full 2-4x materialises.
    let (d_grouter, _) = gfn_host_mean(PlaneKind::Grouter, false, false);
    table.row(&[
        "parallel PCIe (GROUTER), alone".into(),
        fmt_ms(d_grouter),
        "-".into(),
    ]);
    // Parallel PCIe co-run with the transfer-intensive video workflow.
    let (d_corun, v_corun) = gfn_host_mean(naive, true, false);
    table.row(&[
        "NVSHMEM+ w/ DeepPlan, driving + video".into(),
        fmt_ms(d_corun),
        fmt_ms(v_corun),
    ]);
    out.push_str(&table.finish());
    out.push_str(&format!(
        "\nparallel PCIe speedup (alone):   {:.2}x naive, {:.2}x topology-aware  (paper: ~2-4x)\ninterference blow-up (co-run):   {:.2}x  (paper: 3.65x)\n",
        d_single / d_alone,
        d_single / d_grouter,
        d_corun / d_alone,
    ));
    out
}
