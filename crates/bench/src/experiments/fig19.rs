//! **Fig. 19** — emerging LLM applications: Mixture-of-Agents KV-cache
//! passing between 8×H800 nodes; receiver time-to-first-token.
//!
//! Paper: at 4K input GROUTER cuts TTFT by 66 % vs INFless+ and 57 % vs
//! Mooncake+; across models/TP settings by 36 %/28 %; at TP=8 Mooncake also
//! uses multiple NICs and the remaining gap is locality.

use std::sync::Arc;

use crate::harness::{fmt_ms, PlaneKind, Table};
use grouter::runtime::dataplane::Destination;
use grouter::runtime::metrics::PassCategory;
use grouter::runtime::placement::PlacementPolicy;
use grouter::runtime::spec::{StageSpec, WorkflowSpec};
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::time::SimTime;
use grouter::topology::{presets, GpuRef};
use grouter_workloads::apps::moa;
use grouter_workloads::llm::LlmModel;
use grouter_workloads::models::GpuClass;

fn kv_workflow(model: LlmModel, tokens: u32, tp: u32) -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("moa-hop", 1e6);
    let sender = wf.push(StageSpec::gpu(
        "sender",
        vec![],
        model.prefill_latency(tokens, tp),
        model.kv_bytes(tokens),
        20e9,
    ));
    wf.push(StageSpec::gpu(
        "receiver",
        vec![sender],
        model.first_token_latency(tp),
        1e6,
        20e9,
    ));
    Arc::new(wf)
}

fn ttft_ms(plane: PlaneKind, model: LlmModel, tokens: u32, tp: u32) -> f64 {
    let pin = PlacementPolicy::Pinned(vec![
        Destination::Gpu(GpuRef::new(0, 1)),
        Destination::Gpu(GpuRef::new(1, 2)),
    ]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0, 1],
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::h800x8(), 2, plane.build(3), cfg);
    rt.submit(kv_workflow(model, tokens, tp), SimTime::ZERO);
    rt.run();
    let rec = &rt.metrics().records()[0];
    rec.passing_of(PassCategory::GpuGpu).as_millis_f64()
        + rec.passing_of(PassCategory::GpuHost).as_millis_f64()
        + model.first_token_latency(tp).as_millis_f64()
}

pub fn run() -> String {
    let mut out = String::from(
        "Fig. 19 — MoA KV-cache passing across 8xH800 nodes: receiver TTFT (ms)\n\n(a) vs input length (7B, TP=1)\n",
    );
    let mut table = Table::new(
        &["tokens", "INFless+", "Mooncake+", "GROUTER", "vs both"],
        &[7, 10, 10, 10, 16],
    );
    let mut at4k = (0.0, 0.0, 0.0);
    for tokens in [1024u32, 2048, 4096, 8192] {
        let inf = ttft_ms(PlaneKind::Infless, LlmModel::Llama7B, tokens, 1);
        let moon = ttft_ms(PlaneKind::Mooncake(1), LlmModel::Llama7B, tokens, 1);
        let ours = ttft_ms(PlaneKind::Grouter, LlmModel::Llama7B, tokens, 1);
        if tokens == 4096 {
            at4k = (inf, moon, ours);
        }
        table.row(&[
            tokens.to_string(),
            fmt_ms(inf),
            fmt_ms(moon),
            fmt_ms(ours),
            format!(
                "{:+.0}% / {:+.0}%",
                (ours / inf - 1.0) * 100.0,
                (ours / moon - 1.0) * 100.0
            ),
        ]);
    }
    out.push_str(&table.finish());
    out.push_str(&format!(
        "at 4K: {:+.0}% vs INFless+, {:+.0}% vs Mooncake+ (paper: -66% / -57%)\n\n",
        (at4k.2 / at4k.0 - 1.0) * 100.0,
        (at4k.2 / at4k.1 - 1.0) * 100.0
    ));

    out.push_str("(b) vs model and tensor parallelism (4K tokens)\n");
    let mut table = Table::new(
        &[
            "model",
            "TP",
            "INFless+",
            "Mooncake+",
            "GROUTER",
            "vs Mooncake+",
        ],
        &[6, 3, 10, 10, 10, 12],
    );
    for model in LlmModel::ALL {
        for tp in [1u32, 2, 4, 8] {
            let inf = ttft_ms(PlaneKind::Infless, model, 4096, tp);
            let moon = ttft_ms(PlaneKind::Mooncake(tp), model, 4096, tp);
            let ours = ttft_ms(PlaneKind::Grouter, model, 4096, tp);
            table.row(&[
                model.name().to_string(),
                tp.to_string(),
                fmt_ms(inf),
                fmt_ms(moon),
                fmt_ms(ours),
                format!("{:+.0}%", (ours / moon - 1.0) * 100.0),
            ]);
        }
    }
    out.push_str(&table.finish());
    out.push_str("paper: -36%/-28% on average; the gap vs Mooncake+ narrows as TP grows\n");

    // Beyond the paper's hop-level figure: the full layered MoA workflow
    // end-to-end ("different stages are deployed on separate 8xH800 GPU
    // nodes"). Each layer's agents fan into the next; every edge carries a
    // 2K-token 7B KV cache.
    out.push_str(
        "\n(c) full 3-layer x 3-agent MoA workflow, agents spread over 2 nodes, e2e latency (ms)\n",
    );
    let mut table = Table::new(
        &["plane", "mean", "p99", "gFn-gFn pass (ms)"],
        &[10, 9, 9, 18],
    );
    let spec = moa(
        grouter_workloads::apps::WorkloadParams {
            batch: 1,
            gpu: GpuClass::H800,
        },
        3,
        3,
        LlmModel::Llama7B.kv_bytes(2048),
    );
    for plane in [
        PlaneKind::Infless,
        PlaneKind::Mooncake(1),
        PlaneKind::Grouter,
    ] {
        use grouter::runtime::placement::PlacementPolicy;
        let cfg = RuntimeConfig {
            placement: PlacementPolicy::RoundRobin,
            placement_nodes: vec![0, 1],
            ..Default::default()
        };
        let mut rt = Runtime::new(presets::h800x8(), 2, plane.build(3), cfg);
        for i in 0..8u64 {
            rt.submit(spec.clone(), SimTime(i * 500_000_000));
        }
        rt.run();
        let m = rt.metrics();
        let lat = m.latency_ms(None);
        table.row(&[
            plane.label().to_string(),
            fmt_ms(lat.mean()),
            fmt_ms(lat.p99()),
            fmt_ms(
                m.records()
                    .iter()
                    .map(|r| r.passing_of(PassCategory::GpuGpu).as_millis_f64())
                    .sum::<f64>()
                    / m.completed().max(1) as f64,
            ),
        ]);
    }
    out.push_str(&table.finish());
    out.push_str("the 12 inter-agent KV edges amplify every per-hop saving\n");
    out
}
