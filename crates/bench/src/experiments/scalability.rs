//! Cluster-scale behaviour (paper §1: "we also demonstrate the scalability
//! and effectiveness of GROUTER in LLM inference applications and large
//! clusters").
//!
//! Two probes:
//! * weak scaling — grow the cluster and the offered load together; the
//!   hierarchical control plane (local tables + per-node ledgers) should
//!   keep per-request latency flat;
//! * cross-node span — place a workflow across 1…4 nodes; GROUTER's
//!   multi-NIC transfers keep the penalty for spanning nodes bounded.

use crate::harness::{fmt_ms, PlaneKind, Table};
use grouter::topology::presets;
use grouter_workloads::apps::{traffic, WorkloadParams};
use grouter_workloads::azure::ArrivalPattern;
use grouter_workloads::models::GpuClass;

pub fn run() -> String {
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    let spec = traffic(params);

    let mut out = String::from(
        "Scalability — weak scaling of the traffic workflow on DGX-V100 clusters\n(load grows with the cluster: 6 req/s per node, bursty)\n\n",
    );
    let mut table = Table::new(
        &[
            "nodes",
            "GPUs",
            "requests",
            "p50 (ms)",
            "p99 (ms)",
            "global lookups/req",
        ],
        &[6, 5, 9, 9, 9, 19],
    );
    for nodes in [1usize, 2, 4, 8] {
        use grouter::runtime::world::RuntimeConfig;
        use grouter::runtime::Runtime;
        use grouter::sim::rng::DetRng;
        use grouter::sim::time::SimDuration;
        use grouter_workloads::azure::generate_trace;

        let mut rt = Runtime::new(
            presets::dgx_v100(),
            nodes,
            PlaneKind::Grouter.build(9),
            RuntimeConfig::default(),
        );
        let mut rng = DetRng::new(9);
        for t in generate_trace(
            ArrivalPattern::Bursty,
            6.0 * nodes as f64,
            SimDuration::from_secs(10),
            &mut rng,
        ) {
            rt.submit(spec.clone(), t);
        }
        rt.run();
        let m = rt.metrics();
        let lat = m.latency_ms(None);
        let (_, global) = rt.world().store.lookup_stats();
        table.row(&[
            nodes.to_string(),
            (nodes * 8).to_string(),
            m.completed().to_string(),
            fmt_ms(lat.p50()),
            fmt_ms(lat.p99()),
            format!("{:.2}", global as f64 / m.completed().max(1) as f64),
        ]);
    }
    out.push_str(&table.finish());
    out.push_str("\nper-request latency stays flat as the cluster grows: placement keeps workflows\nnode-local and the hierarchical control plane avoids global lookups (§4.2.2)\n\n");

    out.push_str(
        "Cross-node span — the same workflow forced across N nodes (round-robin placement)\n",
    );
    let mut table = Table::new(&["span (nodes)", "p99 (ms)", "vs 1 node"], &[12, 10, 10]);
    let mut base = 0.0;
    for span in [1usize, 2, 4] {
        use grouter::runtime::placement::PlacementPolicy;
        use grouter::runtime::world::RuntimeConfig;
        use grouter::runtime::Runtime;
        use grouter::sim::rng::DetRng;
        use grouter::sim::time::SimDuration;
        use grouter_workloads::azure::generate_trace;

        let cfg = RuntimeConfig {
            placement: PlacementPolicy::RoundRobin,
            placement_nodes: (0..span).collect(),
            ..Default::default()
        };
        let mut rt = Runtime::new(presets::dgx_v100(), 4, PlaneKind::Grouter.build(9), cfg);
        let mut rng = DetRng::new(11);
        for t in generate_trace(
            ArrivalPattern::Sporadic,
            4.0,
            SimDuration::from_secs(10),
            &mut rng,
        ) {
            rt.submit(spec.clone(), t);
        }
        rt.run();
        let p99 = rt.metrics().latency_ms(None).p99();
        if span == 1 {
            base = p99;
        }
        table.row(&[span.to_string(), fmt_ms(p99), format!("{:.2}x", p99 / base)]);
    }
    out.push_str(&table.finish());
    out.push_str("\nmulti-NIC GDR keeps the cross-node penalty bounded even when every hop\ncrosses the network\n");
    out
}
