//! **Fig. 3** — latency breakdown of host-centric data passing.
//!
//! (a) Six workflows on INFless+ (DGX-V100): data passing dominates
//! end-to-end latency (paper: 92 % overall — 63 % gFn–gFn + 29 % gFn–host).
//! (b) The Traffic workflow across batch sizes.

use crate::harness::{fmt_ms, run_trace, PlaneKind, Table};
use grouter::topology::presets;
use grouter_workloads::apps::{suite, traffic, WorkloadParams};
use grouter_workloads::azure::ArrivalPattern;
use grouter_workloads::models::GpuClass;

pub fn run() -> String {
    let mut out = String::from(
        "Fig. 3 — host-centric (INFless+) latency breakdown on DGX-V100\n\n(a) per workflow, batch 8, sporadic trace\n",
    );
    let mut table = Table::new(
        &[
            "workflow", "compute", "gFn-gFn", "gFn-host", "cFn-cFn", "passing%",
        ],
        &[10, 9, 9, 9, 9, 9],
    );
    let params = WorkloadParams {
        batch: 8,
        gpu: GpuClass::V100,
    };
    let mut total_pass = 0.0;
    let mut total_all = 0.0;
    let mut total_gg = 0.0;
    let mut total_gh = 0.0;
    for spec in suite(params) {
        let m = run_trace(
            presets::dgx_v100(),
            1,
            PlaneKind::Infless,
            std::slice::from_ref(&spec),
            ArrivalPattern::Sporadic,
            2.0,
            10,
            11,
        );
        let (comp, gg, gh, hh) = m.breakdown_ms(None);
        let pass = gg + gh + hh;
        total_pass += pass;
        total_all += comp + pass;
        total_gg += gg;
        total_gh += gh;
        table.row(&[
            spec.name.clone(),
            fmt_ms(comp),
            fmt_ms(gg),
            fmt_ms(gh),
            fmt_ms(hh),
            format!("{:.0}%", pass / (comp + pass) * 100.0),
        ]);
    }
    out.push_str(&table.finish());
    out.push_str(&format!(
        "\noverall: data passing = {:.0}% of latency ({:.0}% gFn-gFn + {:.0}% gFn-host); paper: 92% (63% + 29%)\n",
        total_pass / total_all * 100.0,
        total_gg / total_all * 100.0,
        total_gh / total_all * 100.0,
    ));

    out.push_str("\n(b) Traffic workflow vs batch size\n");
    let mut table = Table::new(
        &["batch", "compute", "gFn-gFn", "gFn-host", "e2e mean"],
        &[6, 9, 9, 9, 9],
    );
    for batch in [1u32, 4, 8, 16, 32] {
        let spec = traffic(WorkloadParams {
            batch,
            gpu: GpuClass::V100,
        });
        let m = run_trace(
            presets::dgx_v100(),
            1,
            PlaneKind::Infless,
            &[spec],
            ArrivalPattern::Sporadic,
            1.0,
            10,
            13,
        );
        let (comp, gg, gh, _) = m.breakdown_ms(None);
        table.row(&[
            batch.to_string(),
            fmt_ms(comp),
            fmt_ms(gg),
            fmt_ms(gh),
            fmt_ms(m.latency_ms(None).mean()),
        ]);
    }
    out.push_str(&table.finish());
    out
}
