//! Shared experiment plumbing: plane construction, trace runs, hop-latency
//! probes, throughput search, and table formatting.

use std::fmt::Write as _;
use std::sync::Arc;

use grouter::runtime::dataplane::{DataPlane, Destination};
use grouter::runtime::metrics::{Metrics, PassCategory};
use grouter::runtime::placement::PlacementPolicy;
use grouter::runtime::spec::{StageSpec, WorkflowSpec};
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::{SimDuration, SimTime};
use grouter::topology::graph::TopologySpec;
use grouter::topology::GpuRef;
use grouter::{GrouterConfig, GrouterPlane};
use grouter_baselines::{deepplan_plane, InflessPlane, MooncakePlane, NvshmemPlane};
use grouter_workloads::azure::{generate_trace, ArrivalPattern};

pub const MB: f64 = 1e6;

/// Which data plane an experiment run uses.
#[derive(Clone, Copy, Debug)]
pub enum PlaneKind {
    Infless,
    Nvshmem,
    Deepplan,
    Grouter,
    GrouterCfg(GrouterConfig),
    Mooncake(u32),
}

impl PlaneKind {
    /// The four planes most figures compare.
    pub const MAIN: [PlaneKind; 4] = [
        PlaneKind::Infless,
        PlaneKind::Nvshmem,
        PlaneKind::Deepplan,
        PlaneKind::Grouter,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            PlaneKind::Infless => "INFless+",
            PlaneKind::Nvshmem => "NVSHMEM+",
            PlaneKind::Deepplan => "DeepPlan+",
            PlaneKind::Grouter => "GROUTER",
            PlaneKind::GrouterCfg(_) => "GROUTER*",
            PlaneKind::Mooncake(_) => "Mooncake+",
        }
    }

    pub fn build(&self, seed: u64) -> Box<dyn DataPlane> {
        match self {
            PlaneKind::Infless => Box::new(InflessPlane::new()),
            PlaneKind::Nvshmem => Box::new(NvshmemPlane::new(seed)),
            PlaneKind::Deepplan => deepplan_plane(seed),
            PlaneKind::Grouter => Box::new(GrouterPlane::new(GrouterConfig::full())),
            PlaneKind::GrouterCfg(cfg) => Box::new(GrouterPlane::new(*cfg)),
            PlaneKind::Mooncake(tp) => Box::new(MooncakePlane::new(*tp)),
        }
    }
}

/// Run `spec` under a trace and return the metrics.
#[allow(clippy::too_many_arguments)]
pub fn run_trace(
    topo: TopologySpec,
    nodes: usize,
    plane: PlaneKind,
    specs: &[Arc<WorkflowSpec>],
    pattern: ArrivalPattern,
    rps_per_spec: f64,
    secs: u64,
    seed: u64,
) -> Metrics {
    let mut rt = Runtime::new(topo, nodes, plane.build(seed), RuntimeConfig::default());
    let mut rng = DetRng::new(seed);
    for (k, spec) in specs.iter().enumerate() {
        let mut sub = rng.fork(k as u64);
        let trace = generate_trace(
            pattern,
            rps_per_spec,
            SimDuration::from_secs(secs),
            &mut sub,
        );
        for t in trace {
            rt.submit(spec.clone(), t);
        }
    }
    rt.run();
    rt.metrics().clone()
}

/// Build a two-stage hop workflow: `producer` emits `bytes`, `consumer`
/// receives. Input/output payloads are negligible so the hop dominates.
pub fn hop_spec(bytes: f64, compute_ms: u64) -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("hop", 1e3);
    let a = wf.push(StageSpec::gpu(
        "src",
        vec![],
        SimDuration::from_millis(compute_ms),
        bytes,
        1e9,
    ));
    wf.push(StageSpec::gpu(
        "dst",
        vec![a],
        SimDuration::from_millis(compute_ms),
        1e3,
        1e9,
    ));
    Arc::new(wf)
}

/// Data-passing latency (ms) of a single gFn→gFn hop of `bytes` between two
/// pinned GPUs: the time from the upstream `Put` to the downstream data
/// arrival (Fig. 13's metric).
pub fn gfn_hop_ms(
    topo: TopologySpec,
    nodes: usize,
    plane: PlaneKind,
    src: GpuRef,
    dst: GpuRef,
    bytes: f64,
    seed: u64,
) -> f64 {
    let pin = PlacementPolicy::Pinned(vec![Destination::Gpu(src), Destination::Gpu(dst)]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: (0..nodes).collect(),
        ..Default::default()
    };
    let mut rt = Runtime::new(topo, nodes, plane.build(seed), cfg);
    rt.submit(hop_spec(bytes, 1), SimTime::ZERO);
    rt.run();
    rt.metrics().records()[0]
        .passing_of(PassCategory::GpuGpu)
        .as_millis_f64()
}

/// Data-passing latency (ms) between host memory and a GPU function: a
/// single gFn whose input of `bytes` arrives via host memory (Fig. 13b).
pub fn host_gfn_ms(
    topo: TopologySpec,
    plane: PlaneKind,
    gpu: GpuRef,
    bytes: f64,
    seed: u64,
) -> f64 {
    let mut wf = WorkflowSpec::new("hosthop", bytes);
    wf.push(StageSpec::gpu(
        "sink",
        vec![],
        SimDuration::from_millis(1),
        1e3,
        1e9,
    ));
    let pin = PlacementPolicy::Pinned(vec![Destination::Gpu(gpu)]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![gpu.node],
        ..Default::default()
    };
    let mut rt = Runtime::new(topo, gpu.node + 1, plane.build(seed), cfg);
    rt.submit(Arc::new(wf), SimTime::ZERO);
    rt.run();
    rt.metrics().records()[0]
        .passing_of(PassCategory::GpuHost)
        .as_millis_f64()
}

/// Calibrate a workflow's SLO as `factor ×` its mean solo latency on
/// `plane` (paper §4.3.2 / §6.3), returning a spec with the SLO set.
pub fn with_calibrated_slo(
    topo: TopologySpec,
    nodes: usize,
    plane: PlaneKind,
    spec: &Arc<WorkflowSpec>,
    factor: f64,
    seed: u64,
) -> Arc<WorkflowSpec> {
    let mut rt = Runtime::new(topo, nodes, plane.build(seed), RuntimeConfig::default());
    for i in 0..10u64 {
        rt.submit(spec.clone(), SimTime(i * 2_000_000_000));
    }
    rt.run();
    let mean_ms = rt.metrics().latency_ms(None).mean();
    let slo = SimDuration::from_secs_f64(mean_ms / 1e3 * factor);
    let mut out = (**spec).clone();
    out.slo = slo;
    Arc::new(out)
}

/// Maximum sustainable throughput (requests/s): the highest Poisson arrival
/// rate at which P99 latency stays within `slo`, found by doubling + binary
/// search (Fig. 15's metric).
pub fn max_throughput_rps(
    topo: TopologySpec,
    nodes: usize,
    plane: PlaneKind,
    spec: &Arc<WorkflowSpec>,
    slo: SimDuration,
    seed: u64,
) -> f64 {
    let sustainable = |rps: f64| -> bool {
        let m = run_trace(
            topo.clone(),
            nodes,
            plane,
            std::slice::from_ref(spec),
            ArrivalPattern::Sporadic,
            rps,
            15,
            seed,
        );
        if m.completed() == 0 {
            return false;
        }
        m.latency_ms(None).p99() <= slo.as_millis_f64()
    };
    let mut lo = 0.0;
    let mut hi = 2.0;
    while sustainable(hi) && hi < 4096.0 {
        lo = hi;
        hi *= 2.0;
    }
    for _ in 0..7 {
        let mid = 0.5 * (lo + hi);
        if sustainable(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Simple fixed-width table formatter.
pub struct Table {
    out: String,
    widths: Vec<usize>,
}

impl Table {
    pub fn new(headers: &[&str], widths: &[usize]) -> Table {
        assert_eq!(headers.len(), widths.len());
        let mut t = Table {
            out: String::new(),
            widths: widths.to_vec(),
        };
        let cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
        t.row_cells(&cells);
        t
    }

    pub fn row(&mut self, cells: &[String]) {
        self.row_cells(cells);
    }

    fn row_cells(&mut self, cells: &[String]) {
        for (i, c) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(12);
            let _ = write!(self.out, "{c:>w$}  ");
        }
        self.out.push('\n');
    }

    pub fn finish(self) -> String {
        self.out
    }
}

/// `x` as a percentage-reduction string vs `base`.
pub fn pct_reduction(base: f64, x: f64) -> String {
    if base <= 0.0 {
        return "-".to_string();
    }
    format!("{:+.0}%", (x / base - 1.0) * 100.0)
}

/// Format a float with sensible precision for tables.
pub fn fmt_ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}
