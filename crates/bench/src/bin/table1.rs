//! Regenerates the paper's table1 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::table1::run());
}
