//! Regenerates the paper's Fig. 20 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig20::run());
}
