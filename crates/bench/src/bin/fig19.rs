//! Regenerates the paper's Fig. 19 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig19::run());
}
