//! Regenerates the paper's Fig. 13 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig13::run());
}
