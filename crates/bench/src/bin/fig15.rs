//! Regenerates the paper's Fig. 15 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig15::run());
}
