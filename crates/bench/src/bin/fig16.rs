//! Regenerates the paper's Fig. 16 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig16::run());
}
