//! Runs the full experiment suite (every table and figure of the paper's
//! evaluation) and prints each report, separated by rulers.
use grouter_bench::experiments as e;

fn main() {
    let runs: Vec<(&str, fn() -> String)> = vec![
        ("Fig. 3", e::fig03::run),
        ("Table 1", e::table1::run),
        ("Fig. 5", e::fig05::run),
        ("Fig. 6", e::fig06::run),
        ("Fig. 7", e::fig07::run),
        ("Fig. 13", e::fig13::run),
        ("Fig. 14", e::fig14::run),
        ("Fig. 15", e::fig15::run),
        ("Fig. 16", e::fig16::run),
        ("Fig. 17", e::fig17::run),
        ("Fig. 18", e::fig18::run),
        ("Fig. 19", e::fig19::run),
        ("Fig. 20", e::fig20::run),
        ("Scalability (§1 claim)", e::scalability::run),
        ("Design-constant sweeps", e::sweeps::run),
        ("Uplink utilisation (Fig. 5a mechanism)", e::utilization::run),
    ];
    for (name, run) in runs {
        println!("{}", "=".repeat(78));
        println!("{name}");
        println!("{}", "=".repeat(78));
        println!("{}", run());
    }
}
