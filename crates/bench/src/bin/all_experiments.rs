//! Runs the full experiment suite (every table and figure of the paper's
//! evaluation) and prints each report, separated by rulers.
//!
//! Every experiment is a pure `fn() -> String` over its own deterministic
//! simulator state, so the figure bins run on scoped worker threads. Each
//! worker claims the next unclaimed bin off a shared counter, buffers its
//! report, and the main thread emits the reports in the fixed suite order —
//! the output is byte-identical to a serial run (`--serial` forces one).
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use grouter_bench::experiments as e;

/// One figure/table bin: display name plus its report generator.
type Run = (&'static str, fn() -> String);

fn main() {
    let serial = std::env::args().any(|a| a == "--serial");
    let runs: Vec<Run> = vec![
        ("Fig. 3", e::fig03::run),
        ("Table 1", e::table1::run),
        ("Fig. 5", e::fig05::run),
        ("Fig. 6", e::fig06::run),
        ("Fig. 7", e::fig07::run),
        ("Fig. 13", e::fig13::run),
        ("Fig. 14", e::fig14::run),
        ("Fig. 15", e::fig15::run),
        ("Fig. 16", e::fig16::run),
        ("Fig. 17", e::fig17::run),
        ("Fig. 18", e::fig18::run),
        ("Fig. 19", e::fig19::run),
        ("Fig. 20", e::fig20::run),
        ("LLM serving (§6 dynamic)", e::llm_serve::run),
        ("Scalability (§1 claim)", e::scalability::run),
        ("Design-constant sweeps", e::sweeps::run),
        (
            "Uplink utilisation (Fig. 5a mechanism)",
            e::utilization::run,
        ),
    ];
    let reports = if serial {
        runs.iter().map(|&(_, run)| run()).collect()
    } else {
        run_parallel(&runs)
    };
    for ((name, _), report) in runs.iter().zip(reports) {
        println!("{}", "=".repeat(78));
        println!("{name}");
        println!("{}", "=".repeat(78));
        println!("{report}");
    }
}

/// Run every bin across `min(bins, parallelism)` scoped threads. Work is
/// claimed dynamically (the bins' costs are wildly uneven), results land in
/// a slot table indexed by bin, so completion order never affects output
/// order.
fn run_parallel(runs: &[Run]) -> Vec<String> {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(runs.len())
        .max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<String>>> = runs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(_, run)) = runs.get(i) else { break };
                *slots[i].lock().expect("poisoned slot") = Some(run());
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("poisoned slot")
                .expect("all bins ran")
        })
        .collect()
}
