//! Extra experiment beyond the paper's figures (see the module docs).
fn main() {
    print!("{}", grouter_bench::experiments::scalability::run());
}
