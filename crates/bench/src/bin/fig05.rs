//! Regenerates the paper's Fig. 05 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig05::run());
}
