//! PCIe uplink utilisation under bandwidth harvesting (Fig. 5a mechanism).
fn main() {
    print!("{}", grouter_bench::experiments::utilization::run());
}
