//! Regenerates the LLM-serving comparison (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::llm_serve::run());
}
