//! Regenerates the paper's Fig. 06 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig06::run());
}
