//! Regenerates the paper's Fig. 14 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig14::run());
}
