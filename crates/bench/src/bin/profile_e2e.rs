//! Allocation profile of one contended e2e trace run (developer tool).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::presets;
use grouter::{GrouterConfig, GrouterPlane};
use grouter_workloads::apps::{suite, WorkloadParams};
use grouter_workloads::azure::{generate_trace, ArrivalPattern};
use grouter_workloads::models::GpuClass;

struct Counting;
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(l.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}

#[global_allocator]
static A: Counting = Counting;

fn main() {
    let specs = suite(WorkloadParams {
        batch: 4,
        gpu: GpuClass::V100,
    });
    let mut rng = DetRng::new(42);
    let mut trace = Vec::new();
    for (k, spec) in specs.iter().enumerate() {
        let mut sub = rng.fork(k as u64);
        for t in generate_trace(
            ArrivalPattern::Sporadic,
            3.0,
            SimDuration::from_secs(4),
            &mut sub,
        ) {
            trace.push((spec.clone(), t));
        }
    }
    trace.sort_by_key(|&(_, t)| t);

    let rounds: u32 = std::env::var("PROFILE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let boxed = std::env::var("PROFILE_BOXED").is_ok_and(|v| v == "1");
    // Warm one run, then measure the rest.
    for round in 0..rounds {
        let mut rt = Runtime::new(
            presets::dgx_v100(),
            2,
            Box::new(GrouterPlane::new(GrouterConfig::full())),
            RuntimeConfig::default(),
        );
        if boxed {
            rt.force_boxed_dispatch();
        }
        for (spec, t) in &trace {
            rt.submit(spec.clone(), *t);
        }
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let b0 = BYTES.load(Ordering::Relaxed);
        let t0 = std::time::Instant::now();
        rt.run();
        let dt = t0.elapsed();
        let a1 = ALLOCS.load(Ordering::Relaxed);
        let b1 = BYTES.load(Ordering::Relaxed);
        println!(
            "round {round}: run() allocs={} bytes={} wall={:?} ops={} ns/op={:.0}",
            a1 - a0,
            b1 - b0,
            dt,
            rt.world().next_op,
            dt.as_nanos() as f64 / rt.world().next_op as f64,
        );
    }
}
