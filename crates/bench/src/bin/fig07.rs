//! Regenerates the paper's Fig. 07 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig07::run());
}
