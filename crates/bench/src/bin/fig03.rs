//! Regenerates the paper's Fig. 03 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig03::run());
}
