//! Regenerates the paper's Fig. 17 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig17::run());
}
