//! Regenerates the paper's Fig. 18 (see the experiment module docs).
fn main() {
    print!("{}", grouter_bench::experiments::fig18::run());
}
