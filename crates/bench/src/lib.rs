//! # grouter-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§6), each exposing `run() -> String` that regenerates the
//! table's rows / figure's series on the simulated cluster. Thin binaries in
//! `src/bin/` print them; `all_experiments` runs the whole suite.
//!
//! The goal is shape fidelity, not absolute numbers (the substrate is a
//! simulator — `DESIGN.md` §2): who wins, by roughly what factor, and where
//! crossovers fall.

pub mod experiments;
pub mod harness;

pub use harness::*;

#[cfg(test)]
mod smoke_tests {
    //! Cheap end-to-end smoke tests: the fast experiments must run and
    //! contain their headline results (full regeneration happens via the
    //! binaries; see EXPERIMENTS.md).

    #[test]
    fn table1_matrix_is_correct() {
        let out = crate::experiments::table1::run();
        assert!(out.contains("GROUTER"));
        // GROUTER: yes/yes/yes; DeepPlan+: no/yes/no.
        let grouter_line = out.lines().find(|l| l.contains("GROUTER")).expect("row");
        assert_eq!(grouter_line.matches("yes").count(), 3, "{grouter_line}");
        let deepplan_line = out.lines().find(|l| l.contains("DeepPlan+")).expect("row");
        assert_eq!(deepplan_line.matches("yes").count(), 1, "{deepplan_line}");
    }

    #[test]
    fn fig06_reports_paper_statistics() {
        let out = crate::experiments::fig06::run();
        assert!(out.contains("8 x 48 GB/s"), "{out}");
        assert!(out.contains("12 x PCIe-only"), "{out}");
    }

    #[test]
    fn sweeps_cover_all_four_constants() {
        let out = crate::experiments::sweeps::run();
        for marker in [
            "chunks per batch",
            "chunk size",
            "max parallel",
            "detour hops",
        ] {
            assert!(out.contains(marker), "missing section '{marker}'");
        }
    }
}
