//! Property tests that churn the audited data plane through randomized
//! event sequences. The assertions live inside the crates themselves: with
//! the `audit` feature unified on, any invariant violation (link
//! over-subscription, slab/heap incoherence, fairness drift from the
//! reference allocator, stale cache epochs, broken pool accounting) panics
//! the case and proptest shrinks the offending sequence.

use proptest::prelude::*;

use grouter_mem::{ElasticPool, PoolDiscipline, PrewarmScaler};
use grouter_sim::time::SimDuration;
use grouter_sim::{FlowId, FlowNet, FlowOptions, SimTime};
use grouter_topology::{presets, PathSelector, Topology};

/// One scripted FlowNet action: (op selector, small index, magnitude).
type Op = (u8, u8, u64);

fn drive_flownet(ops: &[Op]) {
    let mut net = FlowNet::new();
    let links: Vec<_> = (0..4)
        .map(|i| net.add_link(format!("l{i}"), 10e9))
        .collect();
    let mut live: Vec<FlowId> = Vec::new();
    let mut now = SimTime::ZERO;
    for &(op, sel, amt) in ops {
        match op % 4 {
            0 => {
                // Two-hop path over adjacent links: guarantees link sharing
                // so the fairness oracle sees contended components.
                let a = sel as usize % links.len();
                let path = vec![links[a], links[(a + 1) % links.len()]];
                let opts = FlowOptions {
                    floor: (amt % 7) as f64 * 1e8,
                    cap: f64::INFINITY,
                    weight: (sel % 3) as f64 + 1.0,
                };
                let id = net
                    .start_flow(now, path, (amt as f64).max(1.0) * 1e5, opts)
                    .expect("links exist");
                live.push(id);
            }
            1 => {
                if !live.is_empty() {
                    let id = live.swap_remove(sel as usize % live.len());
                    let _ = net.cancel_flow(now, id);
                }
            }
            2 => {
                now += SimDuration::from_micros(amt);
                let done = net.advance_to(now);
                live.retain(|f| !done.contains(f));
            }
            _ => {
                if let Some(due) = net.next_completion() {
                    now = now.max(due);
                    let done = net.advance_to(now);
                    live.retain(|f| !done.contains(f));
                }
            }
        }
    }
    // Drain: every remaining flow must still complete cleanly.
    while let Some(due) = net.next_completion() {
        now = now.max(due);
        net.advance_to(now);
    }
}

fn drive_selector(pairs: &[(u8, u8)], degrade_at: usize) {
    let mut scratch = FlowNet::new();
    let topo = Topology::build(presets::dgx_v100(), 1, &mut scratch);
    let mut selector = PathSelector::from_topology(&topo);
    let gpus = topo.num_gpus();
    for (i, &(s, d)) in pairs.iter().enumerate() {
        if i == degrade_at {
            selector.degrade_link(s as usize % gpus, d as usize % gpus, 0.0);
        }
        let src = s as usize % gpus;
        let dst = d as usize % gpus;
        if src == dst {
            continue;
        }
        selector.select(src, dst, 3, 4);
        selector.release_last();
    }
}

fn drive_pool(ops: &[Op]) {
    let mut pool = ElasticPool::new(PoolDiscipline::Elastic, 16e9);
    let mut scaler = PrewarmScaler::new();
    let mut grants: Vec<f64> = Vec::new();
    let mut now = SimTime::ZERO;
    for &(op, sel, amt) in ops {
        now += SimDuration::from_micros(amt + 1);
        let bytes = (amt as f64 + 1.0) * 1e6;
        match op % 5 {
            0 => {
                if pool.try_alloc(bytes).is_ok() {
                    grants.push(bytes);
                    scaler.on_request(sel as u64 % 3, now);
                    scaler.on_output(sel as u64 % 3, bytes);
                }
            }
            1 => {
                if !grants.is_empty() {
                    let b = grants.swap_remove(sel as usize % grants.len());
                    pool.free(b);
                    scaler.on_consumed(sel as u64 % 3);
                }
            }
            2 => pool.reclaim_toward(scaler.target_bytes(now)),
            3 => {
                pool.prewarm_toward(scaler.target_bytes(now));
            }
            _ => {
                pool.set_runtime_used(bytes.min(pool.capacity() / 2.0));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn audited_flownet_survives_random_churn(
        ops in proptest::collection::vec((0u8..4, any::<u8>(), 1u64..500), 1..80)
    ) {
        drive_flownet(&ops);
    }

    #[test]
    fn audited_selector_survives_random_queries(
        pairs in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..40),
        degrade_at in 0usize..40,
    ) {
        drive_selector(&pairs, degrade_at);
    }

    #[test]
    fn audited_pool_survives_random_traffic(
        ops in proptest::collection::vec((0u8..5, any::<u8>(), 0u64..2_000), 1..80)
    ) {
        drive_pool(&ops);
    }
}
