//! Coverage gate for the invariant auditor (ISSUE 3 acceptance): drive each
//! audited subsystem through a realistic slice of work and assert that every
//! checker actually ran at least once. A checker that silently stops firing
//! is worse than no checker — it reads as "invariant holds" when nothing was
//! looked at.
//!
//! Hit counters are process-wide, so one test exercises all five crates in
//! sequence and asserts the full roster at the end.

use std::sync::Arc;

use grouter::{GrouterConfig, GrouterPlane};
use grouter_audit as audit;
use grouter_mem::{ElasticPool, PoolDiscipline, PrewarmScaler};
use grouter_runtime::spec::{StageSpec, WorkflowSpec};
use grouter_runtime::world::RuntimeConfig;
use grouter_runtime::Runtime;
use grouter_sim::fault::{FaultEvent, FaultKind, FaultPlan};
use grouter_sim::time::SimDuration;
use grouter_sim::{FlowNet, FlowOptions, SimTime};
use grouter_store::{AccessToken, DataStore, FunctionId, Location, WorkflowId};
use grouter_topology::{presets, GpuRef, PathSelector, Topology};
use grouter_transfer::plan::{plan_d2h, PlanConfig};
use grouter_transfer::TransferEngine;

/// Every checker the data plane registers, by crate:
/// sim (5), topology (2), transfer (1), store (1), mem (3), runtime (1),
/// obs (1), llm (2).
const CHECKERS: [&str; 16] = [
    "flownet.link_caps",
    "flownet.slab",
    "flownet.heap",
    "flownet.fairness",
    "engine.timeline",
    "pathcache.epoch",
    "pathcache.rederive",
    "transfer.pending",
    "store.tables",
    "pool.accounting",
    "pool.quarantine",
    "scaler.floor",
    "recovery.no_orphans",
    "obs.spans_balanced",
    "llm.kv_blocks",
    "llm.stream_order",
];

#[test]
fn every_checker_fires_at_least_once() {
    // --- FlowNet + TransferEngine: a planned multi-path transfer plus a
    // best-effort flow contending on the same D2H chain, driven to
    // completion so the heap/slab checkers see churn in both directions.
    let mut net = FlowNet::new();
    let topo = Topology::build(presets::dgx_v100(), 1, &mut net);
    let mut engine = TransferEngine::new();
    let plan = plan_d2h(&topo, &net, 0, 0, 120e6, &PlanConfig::grouter());
    engine
        .begin(&mut net, SimTime::ZERO, plan, 0)
        .expect("planned transfer starts");
    net.start_flow(
        SimTime::ZERO,
        topo.d2h_path(0, 0),
        60e6,
        FlowOptions::default(),
    )
    .expect("contending flow starts");
    while engine.in_flight() > 0 {
        let due = net.next_completion().expect("transfer still in flight");
        let done = net.advance_to(due);
        engine.on_flows_complete(&done);
    }
    let rest = net.next_completion().expect("best-effort flow still live");
    net.advance_to(rest);

    // --- Path cache: enough selections to re-fire the throttled rederive
    // sampler (period 32), plus a degrade to bump the matrix epoch.
    let mut selector = PathSelector::from_topology(&topo);
    for _ in 0..33 {
        selector.select(0, 3, 3, 4);
        selector.release_last();
    }
    selector.degrade_link(0, 3, 0.0);
    selector.select(0, 3, 3, 4);
    selector.release_last();

    // --- Store tables: insert + remove through the public Put/consumed API.
    let mut store = DataStore::new(2);
    let token = AccessToken {
        function: FunctionId(1),
        workflow: WorkflowId(1),
    };
    let (id, _) = store.put(
        SimTime::ZERO,
        token,
        Location::Gpu(GpuRef::new(0, 0)),
        1e6,
        1,
    );
    assert!(store.consumed(id));

    // --- Elastic pool + pre-warm scaler.
    let mut pool = ElasticPool::new(PoolDiscipline::Elastic, 16e9);
    pool.try_alloc(1e9).expect("fits in an idle pool");
    pool.free(1e9);
    pool.reclaim_toward(0.0);
    let mut scaler = PrewarmScaler::new();
    let t = SimTime::ZERO + SimDuration::from_millis(5);
    scaler.on_request(1, t);
    scaler.on_output(1, 1e6);
    let target = scaler.target_bytes(t);
    pool.prewarm_toward(target);
    scaler.on_consumed(1);
    // A quarantine/rejoin cycle drives the emptiness identity while the
    // pool is actually quarantined (it is vacuous on a healthy pool).
    pool.quarantine();
    pool.release_quarantine();

    // --- Recovery engine: kill a GPU under a live two-stage workflow so the
    // no-orphans sweep runs against real cancelled ops and reset stages.
    let mut wf = WorkflowSpec::new("coverage", 4e6);
    let a = wf.push(StageSpec::gpu(
        "a",
        vec![],
        SimDuration::from_millis(5),
        32e6,
        1e9,
    ));
    wf.push(StageSpec::gpu(
        "b",
        vec![a],
        SimDuration::from_millis(5),
        4e6,
        1e9,
    ));
    let wf = Arc::new(wf);
    let mut rt = Runtime::new(
        presets::dgx_v100(),
        1,
        Box::new(GrouterPlane::new(GrouterConfig::full())),
        RuntimeConfig::default(),
    );
    for i in 0..8u64 {
        rt.submit(wf.clone(), SimTime::ZERO + SimDuration::from_millis(i));
    }
    rt.install_fault_plan(&FaultPlan::scripted(vec![FaultEvent {
        at: SimTime::ZERO + SimDuration::from_millis(6),
        kind: FaultKind::GpuFail { gpu: 0 },
    }]));
    rt.run();
    let m = rt.metrics();
    assert_eq!(
        m.completed() as u64 + m.failed,
        m.arrivals,
        "every arrival must terminate as a completion or a typed failure"
    );

    // --- LLM serving: a reduced-scale disaggregated run pushes KV blocks
    // through prefill handoff, decode append/seal and completion, firing the
    // block-map checker (sampled every 8 audits) and the per-token stream
    // monotonicity checker.
    let llm_cfg = grouter_llm::LlmServeConfig {
        groups: 1,
        requests: 60,
        rps: 40.0,
        ..grouter_llm::LlmServeConfig::reference(grouter_llm::PlaneKind::Grouter)
    };
    let llm = grouter_llm::run_llm_serve(&llm_cfg);
    assert_eq!(llm.completed + llm.failed, llm_cfg.requests);

    // --- Observability: a balanced begin/end pair drained through the
    // flight recorder fires the span-accounting checker.
    let rec = grouter_obs::Recorder::enabled(64);
    let span = rec.begin(
        grouter_obs::Comp::Runtime,
        "coverage",
        grouter_obs::Ids::NONE,
        vec![],
    );
    rec.set_now(1_000);
    rec.end(span, vec![]);
    rec.drain();

    for name in CHECKERS {
        assert!(
            audit::hits(name) >= 1,
            "checker {name} never ran; hit counters: {:?}",
            audit::all_hits()
        );
    }
}
