//! Runtime invariant auditor for the GROUTER data plane.
//!
//! The data-plane crates (`sim`, `topology`, `transfer`, `store`, `mem`)
//! embed invariant checkers behind their `audit` cargo feature; each checker
//! funnels through [`check`], which counts the hit in a process-wide
//! registry and panics with a labelled message on violation. Tests assert
//! coverage ("did every checker actually run?") through [`hits`] /
//! [`all_hits`], and expensive checks self-throttle with the deterministic
//! sampler [`every`] — no wall clock, no randomness, so audited runs stay
//! reproducible.
//!
//! This crate itself has zero dependencies and no feature gates: the
//! gating lives in the crates that call it (`audit = ["dep:grouter-audit"]`),
//! so a release build without `--features audit` compiles none of the
//! checker code and links nothing from here.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

fn registry() -> &'static Mutex<BTreeMap<&'static str, u64>> {
    static HITS: OnceLock<Mutex<BTreeMap<&'static str, u64>>> = OnceLock::new();
    HITS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn tick_registry() -> &'static Mutex<BTreeMap<&'static str, u64>> {
    static TICKS: OnceLock<Mutex<BTreeMap<&'static str, u64>>> = OnceLock::new();
    TICKS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock<'a>(
    m: &'a Mutex<BTreeMap<&'static str, u64>>,
) -> std::sync::MutexGuard<'a, BTreeMap<&'static str, u64>> {
    // A poisoned registry only ever means another test already panicked;
    // the counters themselves are still coherent.
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Record that `checker` ran once (without evaluating anything).
pub fn record_hit(checker: &'static str) {
    *lock(registry()).entry(checker).or_insert(0) += 1;
}

/// How many times `checker` has run in this process.
pub fn hits(checker: &str) -> u64 {
    lock(registry()).get(checker).copied().unwrap_or(0)
}

/// Snapshot of every checker's hit count.
pub fn all_hits() -> BTreeMap<String, u64> {
    lock(registry())
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect()
}

/// Deterministic sampler for expensive checks: returns `true` on the first
/// call and every `period`-th call thereafter (per `counter` key).
pub fn every(counter: &'static str, period: u64) -> bool {
    let mut g = lock(tick_registry());
    let t = g.entry(counter).or_insert(0);
    let fire = t.is_multiple_of(period.max(1));
    *t += 1;
    fire
}

/// Run a checker: count the hit, and panic with a labelled audit violation
/// if `ok` is false. The message closure only runs on failure.
pub fn check(checker: &'static str, ok: bool, msg: impl FnOnce() -> String) {
    record_hit(checker);
    if !ok {
        panic!("audit violation [{checker}]: {}", msg());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_accumulate() {
        check("unit.ok", true, || unreachable!());
        check("unit.ok", true, || unreachable!());
        assert_eq!(hits("unit.ok"), 2);
        assert!(all_hits().contains_key("unit.ok"));
    }

    #[test]
    fn sampler_fires_first_and_periodically() {
        let fired: Vec<bool> = (0..9).map(|_| every("unit.sample", 4)).collect();
        assert_eq!(
            fired,
            vec![true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    #[should_panic(expected = "audit violation [unit.bad]")]
    fn violation_panics_with_label() {
        check("unit.bad", false, || "boom".to_string());
    }
}
