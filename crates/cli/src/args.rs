//! Command-line argument handling for `grouter-cli`.

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Args {
    pub file: String,
    pub plane: String,
    pub topology: String,
    pub nodes: usize,
    pub pattern: String,
    pub rps: f64,
    pub seconds: u64,
    pub seed: u64,
    pub compare: bool,
    pub csv: Option<String>,
    /// Write a Chrome trace_event JSON of the run here.
    pub trace_out: Option<String>,
    /// Flight-recorder capacity in events.
    pub trace_buffer: usize,
}

/// The usage string printed on `--help` or bad invocations.
pub fn usage() -> String {
    "usage: grouter-cli <workflow.wf> [--plane grouter|infless|nvshmem|deepplan] \
     [--topology v100|a100|a10|h800] [--nodes N] \
     [--pattern bursty|sporadic|periodic] [--rps R] [--seconds S] [--seed N] \
     [--compare] [--csv <file>] [--trace-out <file>] [--trace-buffer <events>]"
        .to_string()
}

/// Parse `argv` (without the program name).
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        plane: "grouter".into(),
        topology: "v100".into(),
        nodes: 1,
        pattern: "bursty".into(),
        rps: 5.0,
        seconds: 10,
        seed: 42,
        compare: false,
        csv: None,
        trace_out: None,
        trace_buffer: 65_536,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--plane" => args.plane = take("--plane")?,
            "--topology" => args.topology = take("--topology")?,
            "--nodes" => {
                args.nodes = take("--nodes")?
                    .parse()
                    .map_err(|_| "--nodes must be an integer".to_string())?
            }
            "--pattern" => args.pattern = take("--pattern")?,
            "--rps" => {
                args.rps = take("--rps")?
                    .parse()
                    .map_err(|_| "--rps must be a number".to_string())?
            }
            "--seconds" => {
                args.seconds = take("--seconds")?
                    .parse()
                    .map_err(|_| "--seconds must be an integer".to_string())?
            }
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?
            }
            "--compare" => args.compare = true,
            "--csv" => args.csv = Some(take("--csv")?),
            "--trace-out" => args.trace_out = Some(take("--trace-out")?),
            "--trace-buffer" => {
                args.trace_buffer = take("--trace-buffer")?
                    .parse()
                    .map_err(|_| "--trace-buffer must be an integer".to_string())?
            }
            "--help" | "-h" => return Err(usage()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => {
                if !args.file.is_empty() {
                    return Err("only one workflow file is accepted".to_string());
                }
                args.file = path.to_string();
            }
        }
    }
    if args.file.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        let argv: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        parse_args(&argv)
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["wf.wf"]).expect("valid");
        assert_eq!(a.file, "wf.wf");
        assert_eq!(a.plane, "grouter");
        assert_eq!(a.topology, "v100");
        assert_eq!(a.nodes, 1);
        assert!(!a.compare);
        assert!(a.csv.is_none());
        assert!(a.trace_out.is_none());
        assert_eq!(a.trace_buffer, 65_536);
    }

    #[test]
    fn all_flags_parse() {
        let a = parse(&[
            "wf.wf",
            "--plane",
            "infless",
            "--topology",
            "a100",
            "--nodes",
            "2",
            "--pattern",
            "sporadic",
            "--rps",
            "12.5",
            "--seconds",
            "30",
            "--seed",
            "7",
            "--compare",
            "--csv",
            "out.csv",
            "--trace-out",
            "run.trace.json",
            "--trace-buffer",
            "1024",
        ])
        .expect("valid");
        assert_eq!(a.plane, "infless");
        assert_eq!(a.topology, "a100");
        assert_eq!(a.nodes, 2);
        assert_eq!(a.pattern, "sporadic");
        assert_eq!(a.rps, 12.5);
        assert_eq!(a.seconds, 30);
        assert_eq!(a.seed, 7);
        assert!(a.compare);
        assert_eq!(a.csv.as_deref(), Some("out.csv"));
        assert_eq!(a.trace_out.as_deref(), Some("run.trace.json"));
        assert_eq!(a.trace_buffer, 1024);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&[]).is_err(), "missing file");
        assert!(parse(&["a.wf", "--nodes", "x"]).is_err(), "bad integer");
        assert!(parse(&["a.wf", "--rps"]).is_err(), "missing value");
        assert!(parse(&["a.wf", "--bogus"]).is_err(), "unknown flag");
        assert!(parse(&["a.wf", "b.wf"]).is_err(), "two files");
        assert!(
            parse(&["a.wf", "--trace-buffer", "x"]).is_err(),
            "bad trace buffer"
        );
    }
}
