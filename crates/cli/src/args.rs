//! Command-line argument handling for `grouter-cli`.

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Args {
    pub file: String,
    pub plane: String,
    pub topology: String,
    pub nodes: usize,
    pub pattern: String,
    pub rps: f64,
    pub seconds: u64,
    pub seed: u64,
    pub compare: bool,
    pub csv: Option<String>,
    /// Write a Chrome trace_event JSON of the run here.
    pub trace_out: Option<String>,
    /// Flight-recorder capacity in events.
    pub trace_buffer: usize,
}

/// Parsed `serve` subcommand: a service-mode cluster run (heartbeat-view
/// router admitting an open-loop stream over the sharded fabric).
#[derive(Clone, Debug)]
pub struct ServeArgs {
    pub preset: String,
    /// Truncate the preset to this many groups (0 = all).
    pub groups: usize,
    pub pattern: String,
    pub rps: f64,
    /// Total invocations in the trace.
    pub total: u64,
    pub seed: u64,
    /// Shard worker threads (outputs are identical for any value).
    pub threads: usize,
    /// Heartbeat interval in milliseconds.
    pub hb_ms: u64,
    /// Inject the randomized control-plane fault plan.
    pub faults: bool,
    pub csv: Option<String>,
}

/// Parsed `llm` subcommand: a disaggregated LLM serving run (prefill/decode
/// split over the GPU store, TTFT/TBT report).
#[derive(Clone, Debug)]
pub struct LlmArgs {
    /// `grouter`, `mooncake`, or `both` (side-by-side comparison).
    pub plane: String,
    /// Serving groups (one H800 node each).
    pub groups: usize,
    /// Total requests injected by the open-loop source.
    pub requests: u64,
    pub rps: f64,
    pub pattern: String,
    pub seed: u64,
    pub threads: usize,
    /// Decode GPUs per group (the rest of the node runs prefill).
    pub decode_gpus: usize,
    pub csv: Option<String>,
}

/// Either the classic single-runtime run, the service-mode cluster, or the
/// disaggregated LLM serving experiment.
#[derive(Clone, Debug)]
pub enum Command {
    Run(Args),
    Serve(ServeArgs),
    Llm(LlmArgs),
}

/// The usage string printed on `--help` or bad invocations.
pub fn usage() -> String {
    "usage: grouter-cli <workflow.wf> [--plane grouter|infless|nvshmem|deepplan] \
     [--topology v100|a100|a10|h800] [--nodes N] \
     [--pattern bursty|sporadic|periodic] [--rps R] [--seconds S] [--seed N] \
     [--compare] [--csv <file>] [--trace-out <file>] [--trace-buffer <events>]\n\
     \n\
     grouter-cli serve [--preset uniform64|uniform128|hetero64|hetero128] \
     [--groups N] [--pattern bursty|sporadic|periodic] [--rps R] [--total N] \
     [--seed N] [--threads T] [--hb-ms M] [--faults] [--csv <file>]\n\
     \n\
     grouter-cli llm [--plane grouter|mooncake|both] [--groups N] \
     [--requests N] [--rps R] [--pattern bursty|sporadic|periodic] [--seed N] \
     [--threads T] [--decode-gpus N] [--csv <file>]"
        .to_string()
}

/// Parse `argv` into a [`Command`]; `serve` selects service mode, `llm` the
/// disaggregated LLM serving experiment.
pub fn parse_command(argv: &[String]) -> Result<Command, String> {
    if argv.first().map(String::as_str) == Some("serve") {
        return parse_serve_args(&argv[1..]).map(Command::Serve);
    }
    if argv.first().map(String::as_str) == Some("llm") {
        return parse_llm_args(&argv[1..]).map(Command::Llm);
    }
    parse_args(argv).map(Command::Run)
}

/// Parse the `llm` subcommand's flags (after the literal `llm`).
pub fn parse_llm_args(argv: &[String]) -> Result<LlmArgs, String> {
    let mut args = LlmArgs {
        plane: "both".into(),
        groups: 2,
        requests: 10_000,
        rps: 20.0,
        pattern: "sporadic".into(),
        seed: 7,
        threads: 1,
        decode_gpus: 4,
        csv: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--plane" => args.plane = take("--plane")?,
            "--groups" => {
                args.groups = take("--groups")?
                    .parse()
                    .map_err(|_| "--groups must be an integer".to_string())?
            }
            "--requests" => {
                args.requests = take("--requests")?
                    .parse()
                    .map_err(|_| "--requests must be an integer".to_string())?
            }
            "--rps" => {
                args.rps = take("--rps")?
                    .parse()
                    .map_err(|_| "--rps must be a number".to_string())?
            }
            "--pattern" => args.pattern = take("--pattern")?,
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?
            }
            "--threads" => {
                args.threads = take("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?
            }
            "--decode-gpus" => {
                args.decode_gpus = take("--decode-gpus")?
                    .parse()
                    .map_err(|_| "--decode-gpus must be an integer".to_string())?
            }
            "--csv" => args.csv = Some(take("--csv")?),
            "--help" | "-h" => return Err(usage()),
            flag => return Err(format!("unknown llm flag {flag}")),
        }
    }
    if args.threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    if args.groups == 0 {
        return Err("--groups must be at least 1".to_string());
    }
    if args.decode_gpus == 0 || args.decode_gpus > 7 {
        return Err("--decode-gpus must be in 1..=7 (one node is 8 GPUs)".to_string());
    }
    match args.plane.as_str() {
        "grouter" | "mooncake" | "both" => {}
        other => return Err(format!("unknown llm plane '{other}'")),
    }
    Ok(args)
}

/// Parse the `serve` subcommand's flags (after the literal `serve`).
pub fn parse_serve_args(argv: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        preset: "uniform64".into(),
        groups: 0,
        pattern: "sporadic".into(),
        rps: 400.0,
        total: 10_000,
        seed: 42,
        threads: 1,
        hb_ms: 50,
        faults: false,
        csv: None,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--preset" => args.preset = take("--preset")?,
            "--groups" => {
                args.groups = take("--groups")?
                    .parse()
                    .map_err(|_| "--groups must be an integer".to_string())?
            }
            "--pattern" => args.pattern = take("--pattern")?,
            "--rps" => {
                args.rps = take("--rps")?
                    .parse()
                    .map_err(|_| "--rps must be a number".to_string())?
            }
            "--total" => {
                args.total = take("--total")?
                    .parse()
                    .map_err(|_| "--total must be an integer".to_string())?
            }
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?
            }
            "--threads" => {
                args.threads = take("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?
            }
            "--hb-ms" => {
                args.hb_ms = take("--hb-ms")?
                    .parse()
                    .map_err(|_| "--hb-ms must be an integer".to_string())?
            }
            "--faults" => args.faults = true,
            "--csv" => args.csv = Some(take("--csv")?),
            "--help" | "-h" => return Err(usage()),
            flag => return Err(format!("unknown serve flag {flag}")),
        }
    }
    if args.threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    if args.hb_ms == 0 {
        return Err("--hb-ms must be at least 1".to_string());
    }
    Ok(args)
}

/// Parse `argv` (without the program name).
pub fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        plane: "grouter".into(),
        topology: "v100".into(),
        nodes: 1,
        pattern: "bursty".into(),
        rps: 5.0,
        seconds: 10,
        seed: 42,
        compare: false,
        csv: None,
        trace_out: None,
        trace_buffer: 65_536,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--plane" => args.plane = take("--plane")?,
            "--topology" => args.topology = take("--topology")?,
            "--nodes" => {
                args.nodes = take("--nodes")?
                    .parse()
                    .map_err(|_| "--nodes must be an integer".to_string())?
            }
            "--pattern" => args.pattern = take("--pattern")?,
            "--rps" => {
                args.rps = take("--rps")?
                    .parse()
                    .map_err(|_| "--rps must be a number".to_string())?
            }
            "--seconds" => {
                args.seconds = take("--seconds")?
                    .parse()
                    .map_err(|_| "--seconds must be an integer".to_string())?
            }
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|_| "--seed must be an integer".to_string())?
            }
            "--compare" => args.compare = true,
            "--csv" => args.csv = Some(take("--csv")?),
            "--trace-out" => args.trace_out = Some(take("--trace-out")?),
            "--trace-buffer" => {
                args.trace_buffer = take("--trace-buffer")?
                    .parse()
                    .map_err(|_| "--trace-buffer must be an integer".to_string())?
            }
            "--help" | "-h" => return Err(usage()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => {
                if !args.file.is_empty() {
                    return Err("only one workflow file is accepted".to_string());
                }
                args.file = path.to_string();
            }
        }
    }
    if args.file.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, String> {
        let argv: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        parse_args(&argv)
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["wf.wf"]).expect("valid");
        assert_eq!(a.file, "wf.wf");
        assert_eq!(a.plane, "grouter");
        assert_eq!(a.topology, "v100");
        assert_eq!(a.nodes, 1);
        assert!(!a.compare);
        assert!(a.csv.is_none());
        assert!(a.trace_out.is_none());
        assert_eq!(a.trace_buffer, 65_536);
    }

    #[test]
    fn all_flags_parse() {
        let a = parse(&[
            "wf.wf",
            "--plane",
            "infless",
            "--topology",
            "a100",
            "--nodes",
            "2",
            "--pattern",
            "sporadic",
            "--rps",
            "12.5",
            "--seconds",
            "30",
            "--seed",
            "7",
            "--compare",
            "--csv",
            "out.csv",
            "--trace-out",
            "run.trace.json",
            "--trace-buffer",
            "1024",
        ])
        .expect("valid");
        assert_eq!(a.plane, "infless");
        assert_eq!(a.topology, "a100");
        assert_eq!(a.nodes, 2);
        assert_eq!(a.pattern, "sporadic");
        assert_eq!(a.rps, 12.5);
        assert_eq!(a.seconds, 30);
        assert_eq!(a.seed, 7);
        assert!(a.compare);
        assert_eq!(a.csv.as_deref(), Some("out.csv"));
        assert_eq!(a.trace_out.as_deref(), Some("run.trace.json"));
        assert_eq!(a.trace_buffer, 1024);
    }

    #[test]
    fn serve_defaults_and_flags_parse() {
        let c = parse_command(&["serve".to_string()]).expect("bare serve is valid");
        let Command::Serve(a) = c else {
            panic!("serve must select service mode");
        };
        assert_eq!(a.preset, "uniform64");
        assert_eq!(a.groups, 0);
        assert_eq!(a.threads, 1);
        assert_eq!(a.hb_ms, 50);
        assert!(!a.faults);
        let argv: Vec<String> = [
            "serve",
            "--preset",
            "hetero64",
            "--groups",
            "4",
            "--pattern",
            "bursty",
            "--rps",
            "900",
            "--total",
            "50000",
            "--seed",
            "9",
            "--threads",
            "8",
            "--hb-ms",
            "25",
            "--faults",
            "--csv",
            "m.csv",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let Command::Serve(a) = parse_command(&argv).expect("valid") else {
            panic!("serve must select service mode");
        };
        assert_eq!(a.preset, "hetero64");
        assert_eq!(a.groups, 4);
        assert_eq!(a.pattern, "bursty");
        assert_eq!(a.rps, 900.0);
        assert_eq!(a.total, 50_000);
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, 8);
        assert_eq!(a.hb_ms, 25);
        assert!(a.faults);
        assert_eq!(a.csv.as_deref(), Some("m.csv"));
    }

    #[test]
    fn serve_errors_are_reported() {
        let parse = |words: &[&str]| {
            let argv: Vec<String> = words.iter().map(|s| s.to_string()).collect();
            parse_command(&argv)
        };
        assert!(parse(&["serve", "--threads", "0"]).is_err(), "zero threads");
        assert!(parse(&["serve", "--hb-ms", "0"]).is_err(), "zero interval");
        assert!(parse(&["serve", "--bogus"]).is_err(), "unknown flag");
        assert!(parse(&["serve", "--rps"]).is_err(), "missing value");
        assert!(
            parse(&["serve", "extra.wf"]).is_err(),
            "serve takes no file"
        );
        let c = parse(&["plain.wf"]).expect("non-serve argv still parses");
        assert!(matches!(c, Command::Run(_)));
    }

    #[test]
    fn llm_defaults_and_flags_parse() {
        let c = parse_command(&["llm".to_string()]).expect("bare llm is valid");
        let Command::Llm(a) = c else {
            panic!("llm must select serving mode");
        };
        assert_eq!(a.plane, "both");
        assert_eq!(a.groups, 2);
        assert_eq!(a.requests, 10_000);
        assert_eq!(a.rps, 20.0);
        assert_eq!(a.pattern, "sporadic");
        assert_eq!(a.seed, 7);
        assert_eq!(a.threads, 1);
        assert_eq!(a.decode_gpus, 4);
        assert!(a.csv.is_none());
        let argv: Vec<String> = [
            "llm",
            "--plane",
            "mooncake",
            "--groups",
            "4",
            "--requests",
            "500",
            "--rps",
            "32.5",
            "--pattern",
            "steady",
            "--seed",
            "11",
            "--threads",
            "8",
            "--decode-gpus",
            "6",
            "--csv",
            "llm.csv",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let Command::Llm(a) = parse_command(&argv).expect("valid") else {
            panic!("llm must select serving mode");
        };
        assert_eq!(a.plane, "mooncake");
        assert_eq!(a.groups, 4);
        assert_eq!(a.requests, 500);
        assert_eq!(a.rps, 32.5);
        assert_eq!(a.pattern, "steady");
        assert_eq!(a.seed, 11);
        assert_eq!(a.threads, 8);
        assert_eq!(a.decode_gpus, 6);
        assert_eq!(a.csv.as_deref(), Some("llm.csv"));
    }

    #[test]
    fn llm_errors_are_reported() {
        let parse = |words: &[&str]| {
            let argv: Vec<String> = words.iter().map(|s| s.to_string()).collect();
            parse_command(&argv)
        };
        assert!(parse(&["llm", "--threads", "0"]).is_err(), "zero threads");
        assert!(parse(&["llm", "--groups", "0"]).is_err(), "zero groups");
        assert!(
            parse(&["llm", "--decode-gpus", "0"]).is_err(),
            "no decode GPUs"
        );
        assert!(
            parse(&["llm", "--decode-gpus", "8"]).is_err(),
            "no prefill GPUs left"
        );
        assert!(
            parse(&["llm", "--plane", "bogus"]).is_err(),
            "unknown plane"
        );
        assert!(parse(&["llm", "--bogus"]).is_err(), "unknown flag");
        assert!(parse(&["llm", "--rps"]).is_err(), "missing value");
        assert!(parse(&["llm", "extra.wf"]).is_err(), "llm takes no file");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&[]).is_err(), "missing file");
        assert!(parse(&["a.wf", "--nodes", "x"]).is_err(), "bad integer");
        assert!(parse(&["a.wf", "--rps"]).is_err(), "missing value");
        assert!(parse(&["a.wf", "--bogus"]).is_err(), "unknown flag");
        assert!(parse(&["a.wf", "b.wf"]).is_err(), "two files");
        assert!(
            parse(&["a.wf", "--trace-buffer", "x"]).is_err(),
            "bad trace buffer"
        );
    }
}
