//! The `.wf` workflow definition format.
//!
//! Line-oriented; `#` starts a comment. Directives:
//!
//! * `workflow <name>` — required, first non-comment line;
//! * `input <size>` — request payload registered in host memory;
//! * `slo <duration>` — optional latency objective (enables `Rate_least`);
//! * `stage <name> <cpu|gpu> compute=<duration> out=<size>
//!   [mem=<size>] [deps=<a,b,…>] [cond=<group>:<weight>]` — one per stage,
//!   dependencies referenced by stage name and defined earlier.
//!
//! Sizes accept `B`, `KB`, `MB`, `GB` (decimal); durations accept `us`,
//! `ms`, `s`.

use std::collections::HashMap;

use grouter_runtime::spec::{StageSpec, WorkflowSpec};
use grouter_sim::time::SimDuration;

/// A parse failure with its 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a size like `48MB`, `1.5GB`, `300KB`, `512B` into bytes.
pub fn parse_size(s: &str) -> Result<f64, String> {
    let lower = s.trim().to_ascii_uppercase();
    let (digits, factor) = if let Some(v) = lower.strip_suffix("GB") {
        (v, 1e9)
    } else if let Some(v) = lower.strip_suffix("MB") {
        (v, 1e6)
    } else if let Some(v) = lower.strip_suffix("KB") {
        (v, 1e3)
    } else if let Some(v) = lower.strip_suffix('B') {
        (v, 1.0)
    } else {
        return Err(format!("size '{s}' needs a B/KB/MB/GB suffix"));
    };
    let value: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad number in size '{s}'"))?;
    if value < 0.0 {
        return Err(format!("size '{s}' is negative"));
    }
    Ok(value * factor)
}

/// Parse a duration like `22ms`, `150us`, `1.5s`.
pub fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let lower = s.trim().to_ascii_lowercase();
    let (digits, nanos_per_unit) = if let Some(v) = lower.strip_suffix("us") {
        (v, 1e3)
    } else if let Some(v) = lower.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = lower.strip_suffix('s') {
        (v, 1e9)
    } else {
        return Err(format!("duration '{s}' needs a us/ms/s suffix"));
    };
    let value: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad number in duration '{s}'"))?;
    if value < 0.0 {
        return Err(format!("duration '{s}' is negative"));
    }
    Ok(SimDuration::from_secs_f64(value * nanos_per_unit / 1e9))
}

/// Parse a full `.wf` document into a validated [`WorkflowSpec`].
pub fn parse_workflow(text: &str) -> Result<WorkflowSpec, ParseError> {
    let mut name: Option<String> = None;
    let mut input_bytes = 1e6;
    let mut slo = SimDuration::ZERO;
    let mut stage_index: HashMap<String, usize> = HashMap::new();
    let mut stages: Vec<StageSpec> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line");
        match keyword {
            "workflow" => {
                let n = words
                    .next()
                    .ok_or_else(|| err(lineno, "workflow needs a name"))?;
                if name.is_some() {
                    return Err(err(lineno, "duplicate 'workflow' directive"));
                }
                name = Some(n.to_string());
            }
            "input" => {
                let v = words
                    .next()
                    .ok_or_else(|| err(lineno, "input needs a size"))?;
                input_bytes = parse_size(v).map_err(|m| err(lineno, m))?;
            }
            "slo" => {
                let v = words
                    .next()
                    .ok_or_else(|| err(lineno, "slo needs a duration"))?;
                slo = parse_duration(v).map_err(|m| err(lineno, m))?;
            }
            "stage" => {
                let stage_name = words
                    .next()
                    .ok_or_else(|| err(lineno, "stage needs a name"))?
                    .to_string();
                if stage_index.contains_key(&stage_name) {
                    return Err(err(lineno, format!("duplicate stage '{stage_name}'")));
                }
                let kind = words
                    .next()
                    .ok_or_else(|| err(lineno, "stage needs a kind (cpu|gpu)"))?;
                let is_gpu = match kind {
                    "gpu" => true,
                    "cpu" => false,
                    other => return Err(err(lineno, format!("unknown stage kind '{other}'"))),
                };
                let mut compute: Option<SimDuration> = None;
                let mut out_bytes: Option<f64> = None;
                let mut mem_bytes = 1e9;
                let mut deps: Vec<usize> = Vec::new();
                let mut cond: Option<(u32, f64)> = None;
                for kv in words {
                    let (key, value) = kv
                        .split_once('=')
                        .ok_or_else(|| err(lineno, format!("expected key=value, got '{kv}'")))?;
                    match key {
                        "compute" => {
                            compute = Some(parse_duration(value).map_err(|m| err(lineno, m))?)
                        }
                        "out" => out_bytes = Some(parse_size(value).map_err(|m| err(lineno, m))?),
                        "mem" => mem_bytes = parse_size(value).map_err(|m| err(lineno, m))?,
                        "deps" => {
                            for dep in value.split(',') {
                                let idx = stage_index.get(dep).ok_or_else(|| {
                                    err(lineno, format!("unknown dependency '{dep}'"))
                                })?;
                                deps.push(*idx);
                            }
                        }
                        "cond" => {
                            let (group, weight) = value
                                .split_once(':')
                                .ok_or_else(|| err(lineno, "cond expects <group>:<weight>"))?;
                            let g: u32 = group
                                .parse()
                                .map_err(|_| err(lineno, "cond group must be an integer"))?;
                            let w: f64 = weight
                                .parse()
                                .map_err(|_| err(lineno, "cond weight must be a number"))?;
                            cond = Some((g, w));
                        }
                        other => {
                            return Err(err(lineno, format!("unknown stage attribute '{other}'")))
                        }
                    }
                }
                let compute =
                    compute.ok_or_else(|| err(lineno, "stage needs compute=<duration>"))?;
                let out_bytes = out_bytes.ok_or_else(|| err(lineno, "stage needs out=<size>"))?;
                let mut stage = if is_gpu {
                    StageSpec::gpu(stage_name.clone(), deps, compute, out_bytes, mem_bytes)
                } else {
                    StageSpec::cpu(stage_name.clone(), deps, compute, out_bytes)
                };
                if let Some((g, w)) = cond {
                    stage = stage.with_cond(g, w);
                }
                stage_index.insert(stage_name, stages.len());
                stages.push(stage);
            }
            other => return Err(err(lineno, format!("unknown directive '{other}'"))),
        }
    }

    let name = name.ok_or_else(|| err(1, "missing 'workflow <name>' directive"))?;
    let mut wf = WorkflowSpec::new(name, input_bytes);
    wf.slo = slo;
    for stage in stages {
        wf.push(stage);
    }
    wf.validate()
        .map_err(|m| err(0, format!("invalid workflow: {m}")))?;
    Ok(wf)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a three-stage pipeline
workflow traffic-lite
input 4MB
slo 150ms
stage decode   cpu compute=5ms  out=48MB
stage detect   gpu compute=22ms out=24MB mem=1.9GB deps=decode
stage classify gpu compute=9ms  out=1MB  mem=0.8GB deps=detect
"#;

    #[test]
    fn parses_the_sample() {
        let wf = parse_workflow(SAMPLE).expect("valid");
        assert_eq!(wf.name, "traffic-lite");
        assert_eq!(wf.input_bytes, 4e6);
        assert_eq!(wf.slo, SimDuration::from_millis(150));
        assert_eq!(wf.stages.len(), 3);
        assert!(!wf.stages[0].is_gpu());
        assert!(wf.stages[1].is_gpu());
        assert_eq!(wf.stages[1].deps, vec![0]);
        assert_eq!(wf.stages[1].output_bytes, 24e6);
        assert_eq!(wf.stages[2].deps, vec![1]);
        assert_eq!(wf.critical_path_compute(), SimDuration::from_millis(36));
    }

    #[test]
    fn sizes_and_durations_parse() {
        assert_eq!(parse_size("512B").unwrap(), 512.0);
        assert_eq!(parse_size("300KB").unwrap(), 300e3);
        assert_eq!(parse_size("1.5GB").unwrap(), 1.5e9);
        assert_eq!(parse_size("  2mb ").unwrap(), 2e6);
        assert!(parse_size("12").is_err());
        assert!(parse_size("-1MB").is_err());
        assert_eq!(
            parse_duration("150us").unwrap(),
            SimDuration::from_micros(150)
        );
        assert_eq!(
            parse_duration("1.5s").unwrap(),
            SimDuration::from_millis(1500)
        );
        assert!(parse_duration("5").is_err());
    }

    #[test]
    fn multi_deps_and_cond() {
        let text = r#"
workflow fan
input 1MB
stage a gpu compute=1ms out=1MB
stage b1 gpu compute=1ms out=1MB deps=a cond=0:0.7
stage b2 gpu compute=1ms out=1MB deps=a cond=0:0.3
stage join gpu compute=1ms out=1MB deps=b1,b2
"#;
        let wf = parse_workflow(text).expect("valid");
        assert_eq!(wf.stages[1].cond_group, Some((0, 0.7)));
        assert_eq!(wf.stages[3].deps, vec![1, 2]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "workflow x\nstage a gpu compute=1ms\n";
        let e = parse_workflow(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("out="));

        let unknown_dep = "workflow x\nstage a gpu compute=1ms out=1MB deps=ghost\n";
        let e = parse_workflow(unknown_dep).unwrap_err();
        assert!(e.message.contains("ghost"));

        let dup = "workflow x\nstage a cpu compute=1ms out=1B\nstage a cpu compute=1ms out=1B\n";
        let e = parse_workflow(dup).unwrap_err();
        assert_eq!(e.line, 3);

        let no_name = "input 1MB\n";
        assert!(parse_workflow(no_name).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# top comment\nworkflow c # trailing\ninput 1MB\nstage s cpu compute=1ms out=1B # tail\n";
        let wf = parse_workflow(text).expect("valid");
        assert_eq!(wf.name, "c");
        assert_eq!(wf.stages.len(), 1);
    }

    #[test]
    fn forward_deps_rejected_via_validation() {
        // deps must reference earlier stages by construction (unknown name),
        // so the only way to cycle is impossible; validate() still guards.
        let text = "workflow x\nstage a cpu compute=1ms out=1B deps=a\n";
        assert!(parse_workflow(text).is_err());
    }
}
