//! # grouter-cli
//!
//! Text-format workflow definitions and the argument handling behind the
//! `grouter-cli` binary, so downstream users can simulate their own
//! inference pipelines without writing Rust:
//!
//! ```text
//! # my_pipeline.wf
//! workflow traffic-lite
//! input 4MB
//! slo 150ms
//! stage decode  cpu compute=5ms  out=48MB
//! stage detect  gpu compute=22ms out=24MB mem=1.9GB deps=decode
//! stage classify gpu compute=9ms out=1MB  mem=0.8GB deps=detect
//! ```
//!
//! ```text
//! grouter-cli my_pipeline.wf --plane grouter --topology v100 --rps 10 --seconds 10
//! ```

pub mod args;
pub mod parse;

pub use parse::{parse_workflow, ParseError};
