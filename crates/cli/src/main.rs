//! `grouter-cli` — simulate a `.wf` workflow on any testbed / data plane.
//!
//! ```text
//! grouter-cli <workflow.wf> [--plane grouter|infless|nvshmem|deepplan]
//!             [--topology v100|a100|a10|h800] [--nodes N]
//!             [--pattern bursty|sporadic|periodic] [--rps R]
//!             [--seconds S] [--seed N]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use grouter::runtime::dataplane::DataPlane;
use grouter::runtime::world::RuntimeConfig;
use grouter::runtime::Runtime;
use grouter::sim::rng::DetRng;
use grouter::sim::time::SimDuration;
use grouter::topology::graph::TopologySpec;
use grouter::topology::presets;
use grouter::{GrouterConfig, GrouterPlane};
use grouter_baselines::{deepplan_plane, InflessPlane, NvshmemPlane};
use grouter_cli::args::{parse_command, Command, LlmArgs, ServeArgs};
use grouter_cli::parse_workflow;
use grouter_ctl::{ServiceConfig, ServiceSim};
use grouter_sim::fault::CtlFaultConfig;
use grouter_workloads::azure::{generate_trace, ArrivalPattern};
use grouter_workloads::cluster::ClusterPreset;

fn topology_of(name: &str) -> Result<TopologySpec, String> {
    Ok(match name {
        "v100" => presets::dgx_v100(),
        "a100" => presets::dgx_a100(),
        "a10" => presets::a10x4(),
        "h800" => presets::h800x8(),
        other => return Err(format!("unknown topology '{other}'")),
    })
}

fn plane_of(name: &str, seed: u64) -> Result<Box<dyn DataPlane>, String> {
    Ok(match name {
        "grouter" => Box::new(GrouterPlane::new(GrouterConfig::full())),
        "infless" => Box::new(InflessPlane::new()),
        "nvshmem" => Box::new(NvshmemPlane::new(seed)),
        "deepplan" => deepplan_plane(seed),
        other => return Err(format!("unknown plane '{other}'")),
    })
}

fn pattern_of(name: &str) -> Result<ArrivalPattern, String> {
    Ok(match name {
        "bursty" => ArrivalPattern::Bursty,
        "sporadic" => ArrivalPattern::Sporadic,
        "periodic" => ArrivalPattern::Periodic,
        other => return Err(format!("unknown pattern '{other}'")),
    })
}

fn preset_of(name: &str) -> Result<ClusterPreset, String> {
    Ok(match name {
        "uniform64" => ClusterPreset::uniform_64(),
        "uniform128" => ClusterPreset::uniform_128(),
        "hetero64" => ClusterPreset::hetero_64(),
        "hetero128" => ClusterPreset::hetero_128(),
        other => return Err(format!("unknown preset '{other}'")),
    })
}

/// FNV-1a over the bytes — a dependency-free digest for comparing
/// service-mode outputs across thread counts / hosts.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The `serve` subcommand: a service-mode cluster run with the
/// heartbeat-view router at the gateway.
fn cmd_serve(args: &ServeArgs) -> Result<(), String> {
    let mut preset = preset_of(&args.preset)?;
    if args.groups > 0 && args.groups < preset.groups.len() {
        preset.groups.truncate(args.groups);
    }
    let cfg = ServiceConfig {
        pattern: pattern_of(&args.pattern)?,
        rps: args.rps,
        total: args.total,
        seed: args.seed,
        hb_interval: SimDuration::from_millis(args.hb_ms),
        ctl_faults: args.faults.then(CtlFaultConfig::default),
    };
    println!(
        "serve: {} preset, {} groups, {} pattern at {} req/s, {} invocations, \
         hb {}ms, seed {}, {} threads, faults {}",
        args.preset,
        preset.groups.len(),
        args.pattern,
        args.rps,
        args.total,
        args.hb_ms,
        args.seed,
        args.threads,
        if args.faults { "on" } else { "off" }
    );
    let mut svc = ServiceSim::build(&preset, &cfg);
    svc.run(args.threads);
    let lat = svc.latency_ms();
    let (hb_sent, hb_recv, hb_drop) = svc.cluster().heartbeat_stats();
    println!(
        "requests: {} submitted, {} completed, {} failed",
        svc.arrivals(),
        svc.completed(),
        svc.failed()
    );
    println!(
        "latency (ms): mean {:.1}  p50 {:.1}  p99 {:.1}  max {:.1}",
        lat.mean(),
        lat.p50(),
        lat.p99(),
        lat.max()
    );
    println!("heartbeats: {hb_sent} sent, {hb_recv} delivered, {hb_drop} dropped");
    let csv = svc.merged_csv();
    let admission = svc.admission_log();
    let recovery = svc.merged_recovery_log();
    // Thread-count independence is checkable from the digests alone.
    println!(
        "digests: csv={:016x} admission={:016x} recovery={:016x}",
        fnv64(csv.as_bytes()),
        fnv64(admission.as_bytes()),
        fnv64(recovery.as_bytes())
    );
    if let Some(path) = &args.csv {
        std::fs::write(path, &csv).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("merged per-request records written to {path}");
    }
    Ok(())
}

/// One LLM serving run on one plane; returns the report for comparison.
fn llm_run_one(
    args: &LlmArgs,
    plane: grouter_llm::PlaneKind,
) -> Result<grouter_llm::LlmReport, String> {
    let cfg = grouter_llm::LlmServeConfig {
        groups: args.groups,
        seed: args.seed,
        requests: args.requests,
        rps: args.rps,
        pattern: pattern_of(&args.pattern)?,
        decode_gpus: args.decode_gpus,
        prefill_gpus: 8 - args.decode_gpus,
        threads: args.threads,
        ..grouter_llm::LlmServeConfig::reference(plane)
    };
    let report = grouter_llm::run_llm_serve(&cfg);
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>12.1} {:>12.1} {:>11.2} {:>10} {:>9} {:>8}",
        match plane {
            grouter_llm::PlaneKind::Grouter => "grouter",
            grouter_llm::PlaneKind::Mooncake => "mooncake+",
        },
        report.completed,
        report.failed,
        report.metrics.rematerialized,
        report.metrics.ttft.p50() * 1e3,
        report.metrics.ttft.p99() * 1e3,
        report.metrics.tbt.mean() * 1e3,
        report.migrations,
        report.restores,
        report.metrics.restore_stalls,
    );
    Ok(report)
}

/// The `llm` subcommand: disaggregated prefill/decode serving over the GPU
/// store, GROUTER vs the Mooncake+ baseline.
fn cmd_llm(args: &LlmArgs) -> Result<(), String> {
    println!(
        "llm: {} groups x h800 ({} prefill + {} decode GPUs), {} pattern at {} req/s, \
         {} requests, seed {}, {} threads",
        args.groups,
        8 - args.decode_gpus,
        args.decode_gpus,
        args.pattern,
        args.rps,
        args.requests,
        args.seed,
        args.threads
    );
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>12} {:>12} {:>11} {:>10} {:>9} {:>8}",
        "plane",
        "completed",
        "failed",
        "remat",
        "ttft p50(ms)",
        "ttft p99(ms)",
        "tbt mean(ms)",
        "migrations",
        "restores",
        "stalls"
    );
    let planes: &[grouter_llm::PlaneKind] = match args.plane.as_str() {
        "grouter" => &[grouter_llm::PlaneKind::Grouter],
        "mooncake" => &[grouter_llm::PlaneKind::Mooncake],
        _ => &[
            grouter_llm::PlaneKind::Grouter,
            grouter_llm::PlaneKind::Mooncake,
        ],
    };
    let mut csv = String::new();
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for &plane in planes {
        let report = llm_run_one(args, plane)?;
        csv.push_str(&report.csv);
        digest ^= report.digest;
    }
    // Thread-count independence is checkable from the digest alone.
    println!("digests: csv={digest:016x}");
    if let Some(path) = &args.csv {
        std::fs::write(path, &csv).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_command(&argv) {
        Ok(Command::Run(a)) => a,
        Ok(Command::Serve(a)) => {
            return match cmd_serve(&a) {
                Ok(()) => ExitCode::SUCCESS,
                Err(m) => {
                    eprintln!("{m}");
                    ExitCode::FAILURE
                }
            };
        }
        Ok(Command::Llm(a)) => {
            return match cmd_llm(&a) {
                Ok(()) => ExitCode::SUCCESS,
                Err(m) => {
                    eprintln!("{m}");
                    ExitCode::FAILURE
                }
            };
        }
        Err(m) => {
            eprintln!("{m}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let spec = match parse_workflow(&text) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("{}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let run_one = |plane_name: &str| -> Result<Runtime, String> {
        let topo = topology_of(&args.topology)?;
        let plane = plane_of(plane_name, args.seed)?;
        let pattern = pattern_of(&args.pattern)?;
        let config = RuntimeConfig {
            trace: args.trace_out.is_some(),
            trace_buffer: args.trace_buffer,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(topo, args.nodes, plane, config);
        let mut rng = DetRng::new(args.seed);
        for t in generate_trace(
            pattern,
            args.rps,
            SimDuration::from_secs(args.seconds),
            &mut rng,
        ) {
            rt.submit(spec.clone(), t);
        }
        rt.run();
        Ok(rt)
    };
    let run = || -> Result<(), String> {
        println!(
            "workflow '{}' on {} x {}, {} pattern at {} req/s for {}s",
            spec.name, args.nodes, args.topology, args.pattern, args.rps, args.seconds
        );
        if args.compare {
            println!(
                "{:<12} {:>10} {:>10} {:>10} {:>16}",
                "plane", "mean (ms)", "p50 (ms)", "p99 (ms)", "data pass (ms)"
            );
            for plane_name in ["infless", "nvshmem", "deepplan", "grouter"] {
                let m = run_one(plane_name)?.metrics().clone();
                let lat = m.latency_ms(None);
                let (_, gg, gh, hh) = m.breakdown_ms(None);
                println!(
                    "{:<12} {:>10.1} {:>10.1} {:>10.1} {:>16.1}",
                    plane_name,
                    lat.mean(),
                    lat.p50(),
                    lat.p99(),
                    gg + gh + hh
                );
            }
            return Ok(());
        }
        let rt = run_one(&args.plane)?;
        let m = rt.metrics().clone();
        let lat = m.latency_ms(None);
        let (comp, gg, gh, hh) = m.breakdown_ms(None);
        println!("plane: {}", args.plane);
        println!(
            "requests: {} submitted, {} completed",
            m.arrivals,
            m.completed()
        );
        println!(
            "latency (ms): mean {:.1}  p50 {:.1}  p99 {:.1}  max {:.1}",
            lat.mean(),
            lat.p50(),
            lat.p99(),
            lat.max()
        );
        println!(
            "mean breakdown (ms): compute {comp:.1}  gFn-gFn {gg:.1}  gFn-host {gh:.1}  cFn-cFn {hh:.1}"
        );
        if spec.slo > SimDuration::ZERO {
            println!(
                "SLO {:.0} ms: {:.0}% of requests met it",
                spec.slo.as_millis_f64(),
                m.slo_compliance(None, spec.slo) * 100.0
            );
        }
        if let Some(path) = &args.csv {
            std::fs::write(path, m.to_csv()).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("per-request records written to {path}");
        }
        if let Some(path) = &args.trace_out {
            let trace = rt.recorder().snapshot();
            std::fs::write(path, trace.chrome_json())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!(
                "trace written to {path} ({} events, {} dropped)",
                trace.events.len(),
                trace.dropped
            );
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(m) => {
            eprintln!("{m}");
            ExitCode::FAILURE
        }
    }
}
