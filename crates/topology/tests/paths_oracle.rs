//! Oracle property tests: the cached, allocation-free Algorithm 1
//! ([`grouter_topology::PathSelector`]) must agree **exactly** with the seed
//! DFS selector ([`grouter_topology::select_parallel_paths`]) when both are
//! driven by the same reserve/release/degrade/restore/mask sequence over
//! mirrored bandwidth matrices — including flapping links (degrade →
//! restore round trips) and whole-GPU mask/unmask churn.
//!
//! Equality is exact (`NvPath: PartialEq` on routes and `f64` rates): both
//! sides perform the identical occupy/release arithmetic in the identical
//! order, and path enumeration depends only on capacities — which are
//! constant within a topology epoch — so cached candidate order must equal
//! a fresh DFS's order bit-for-bit.

use grouter_sim::FlowNet;
use grouter_topology::{presets, select_parallel_paths, BwMatrix, NvPath, PathSelector, Topology};
use proptest::prelude::*;

/// One scripted control-path event. Release indices resolve against the
/// live-reservation list modulo its length, so any script is meaningful.
#[derive(Clone, Debug)]
enum Op {
    Reserve {
        src: usize,
        dst: usize,
        max_hops: usize,
        max_paths: usize,
    },
    Release(usize),
    /// Degrade (or restore) a directed link's hardware capacity.
    Degrade {
        a: usize,
        b: usize,
        cap: f64,
    },
    /// Restore a directed link to its hardware baseline capacity.
    Restore {
        a: usize,
        b: usize,
    },
    /// Mask a failed GPU out of the matrix (whole-GPU loss).
    MaskNode(usize),
    /// Readmit a recovered GPU.
    UnmaskNode(usize),
}

const N_GPUS: usize = 8; // both presets below expose 8 GPUs per node

fn arb_op() -> impl Strategy<Value = Op> {
    // The first strategy is repeated to weight reserves over the others
    // (the vendored `prop_oneof!` has no weight syntax).
    let reserve = || {
        (0..N_GPUS, 0..N_GPUS, 1usize..4, 1usize..9).prop_map(|(src, dst, max_hops, max_paths)| {
            Op::Reserve {
                src,
                dst,
                max_hops,
                max_paths,
            }
        })
    };
    prop_oneof![
        reserve(),
        reserve(),
        reserve(),
        (0usize..64).prop_map(Op::Release),
        (0usize..64).prop_map(Op::Release),
        (0..N_GPUS, 0..N_GPUS, 0.0f64..50e9).prop_map(|(a, b, cap)| Op::Degrade {
            a,
            b,
            // Exercise full link failure too.
            cap: if cap < 1e9 { 0.0 } else { cap },
        }),
        (0..N_GPUS, 0..N_GPUS).prop_map(|(a, b)| Op::Restore { a, b }),
        (0..N_GPUS).prop_map(Op::MaskNode),
        (0..N_GPUS).prop_map(Op::UnmaskNode),
    ]
}

fn arb_scenario() -> impl Strategy<Value = (bool, Vec<Op>)> {
    // `true` → DGX-V100 hybrid cube mesh, `false` → DGX-A100 NVSwitch.
    (any::<bool>(), proptest::collection::vec(arb_op(), 1..48))
}

fn build_matrix(v100: bool) -> BwMatrix {
    let mut net = FlowNet::new();
    let spec = if v100 {
        presets::dgx_v100()
    } else {
        presets::dgx_a100()
    };
    let topo = Topology::build(spec, 1, &mut net);
    BwMatrix::from_topology(&topo)
}

struct Harness {
    cached: PathSelector,
    seed: BwMatrix,
    /// Reserved path sets, identical on both sides by construction.
    live: Vec<Vec<NvPath>>,
}

impl Harness {
    fn new(v100: bool) -> Harness {
        Harness {
            cached: PathSelector::new(build_matrix(v100)),
            seed: build_matrix(v100),
            live: Vec::new(),
        }
    }

    fn apply(&mut self, op: &Op) -> Result<(), String> {
        match *op {
            Op::Reserve {
                src,
                dst,
                max_hops,
                max_paths,
            } => {
                let got = self
                    .cached
                    .select(src, dst, max_hops, max_paths)
                    .paths
                    .clone();
                let expect =
                    select_parallel_paths(&mut self.seed, src, dst, max_hops, max_paths).paths;
                if got != expect {
                    return Err(format!(
                        "selection diverged for {src}->{dst} (hops {max_hops}, fanout \
                         {max_paths}): cached {got:?} vs seed {expect:?}"
                    ));
                }
                self.live.push(got);
            }
            Op::Release(i) => {
                if self.live.is_empty() {
                    return Ok(());
                }
                let idx = i % self.live.len();
                let paths = self.live.remove(idx);
                for p in &paths {
                    self.cached.bwm_mut().release_path(&p.gpus, p.rate);
                    self.seed.release_path(&p.gpus, p.rate);
                }
                self.cached.recycle(paths);
            }
            Op::Degrade { a, b, cap } => {
                if a == b {
                    return Ok(());
                }
                self.cached.degrade_link(a, b, cap);
                self.seed.degrade_link(a, b, cap);
            }
            Op::Restore { a, b } => {
                if a == b {
                    return Ok(());
                }
                self.cached.restore_link(a, b);
                self.seed.restore_link(a, b);
            }
            Op::MaskNode(g) => {
                self.cached.mask_node(g);
                self.seed.mask_node(g);
            }
            Op::UnmaskNode(g) => {
                self.cached.unmask_node(g);
                self.seed.unmask_node(g);
            }
        }
        Ok(())
    }

    /// Both matrices must stay bit-identical after every event.
    fn check(&self) -> Result<(), String> {
        let (c, s) = (self.cached.bwm(), &self.seed);
        if c.epoch() != s.epoch() {
            return Err(format!("epoch diverged: {} vs {}", c.epoch(), s.epoch()));
        }
        for a in 0..N_GPUS {
            for b in 0..N_GPUS {
                if c.capacity(a, b).to_bits() != s.capacity(a, b).to_bits() {
                    return Err(format!(
                        "capacity({a},{b}) diverged: {} vs {}",
                        c.capacity(a, b),
                        s.capacity(a, b)
                    ));
                }
                if c.residual(a, b).to_bits() != s.residual(a, b).to_bits() {
                    return Err(format!(
                        "residual({a},{b}) diverged: {} vs {}",
                        c.residual(a, b),
                        s.residual(a, b)
                    ));
                }
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Cached selector ≡ seed DFS selector on randomized
    /// reserve/release/degrade sequences over both testbed presets.
    #[test]
    fn cached_selector_matches_seed_dfs((v100, ops) in arb_scenario()) {
        let mut h = Harness::new(v100);
        for op in &ops {
            h.apply(op).map_err(|e| format!("applying {op:?}: {e}"))?;
            h.check().map_err(|e| format!("after {op:?}: {e}"))?;
        }
        // Releasing everything restores both matrices to their (possibly
        // degraded) baselines.
        for paths in std::mem::take(&mut h.live) {
            for p in &paths {
                h.cached.bwm_mut().release_path(&p.gpus, p.rate);
                h.seed.release_path(&p.gpus, p.rate);
            }
        }
        h.check().map_err(|e| format!("after drain: {e}"))?;
    }

    /// Determinism: the cached selector is bit-identical across two runs of
    /// the same scenario (no cache-population-order or buffer-reuse
    /// leakage).
    #[test]
    fn cached_selector_is_deterministic((v100, ops) in arb_scenario()) {
        let run = |ops: &[Op]| -> Vec<u64> {
            let mut sel = PathSelector::new(build_matrix(v100));
            let mut live: Vec<Vec<NvPath>> = Vec::new();
            let mut trace = Vec::new();
            for op in ops {
                match *op {
                    Op::Reserve { src, dst, max_hops, max_paths } => {
                        sel.select(src, dst, max_hops, max_paths);
                        let paths = sel.take_last_selection();
                        for p in &paths {
                            trace.push(p.gpus.len() as u64);
                            trace.extend(p.gpus.iter().map(|&g| g as u64));
                            trace.push(p.rate.to_bits());
                        }
                        live.push(paths);
                    }
                    Op::Release(i) => {
                        if live.is_empty() {
                            continue;
                        }
                        let idx = i % live.len();
                        let paths = live.remove(idx);
                        for p in &paths {
                            sel.bwm_mut().release_path(&p.gpus, p.rate);
                        }
                        sel.recycle(paths);
                    }
                    Op::Degrade { a, b, cap } => {
                        if a != b {
                            sel.degrade_link(a, b, cap);
                        }
                        trace.push(sel.bwm().epoch());
                    }
                    Op::Restore { a, b } => {
                        if a != b {
                            sel.restore_link(a, b);
                        }
                        trace.push(sel.bwm().epoch());
                    }
                    Op::MaskNode(g) => {
                        sel.mask_node(g);
                        trace.push(sel.bwm().epoch());
                    }
                    Op::UnmaskNode(g) => {
                        sel.unmask_node(g);
                        trace.push(sel.bwm().epoch());
                    }
                }
            }
            trace
        };
        let a = run(&ops);
        let b = run(&ops);
        prop_assert_eq!(a, b, "cached selector not deterministic");
    }
}
