//! The paper's testbeds as [`TopologySpec`]s.
//!
//! | preset | paper use | GPUs | NVLink | PCIe | NICs |
//! |---|---|---|---|---|---|
//! | [`dgx_v100`] | Testbed 1 (most figures) | 8×V100-16GB | asymmetric mesh, 24/48 GB/s | gen3, pairs share switches | 4×100 Gbps |
//! | [`dgx_a100`] | Testbed 2 (Figs. 14–16) | 8×A100-40GB | NVSwitch 300 GB/s ports | gen4 | 8×200 Gbps |
//! | [`a10x4`] | Fig. 20a | 4×A10-24GB | none | gen4, one switch per GPU | 2×100 Gbps |
//! | [`h800x8`] | §6.4 LLM experiment | 8×H800-80GB | NVSwitch 200 GB/s ports | gen5 | 8×200 Gbps |

use crate::graph::{TopologyKind, TopologySpec};
use grouter_sim::params;

/// DGX-V100 hybrid cube mesh (paper Fig. 6a).
///
/// GPUs form two quads `{0..3}` and `{4..7}`. Quad edges carry a single
/// NVLink (24 GB/s); quad diagonals and the cross-quad links carry two
/// (48 GB/s). Each GPU ends up with exactly six links; 8 of the 28 pairs run
/// at half speed and 12 have no direct NVLink — matching the 28 % / 42 %
/// statistics the paper reports.
pub fn dgx_v100() -> TopologySpec {
    let s = params::NVLINK_V100_SINGLE;
    let d = params::NVLINK_V100_DOUBLE;
    let nvlink_pairs = vec![
        // quad 1 edges (single)
        (0, 1, s),
        (0, 2, s),
        (1, 3, s),
        (2, 3, s),
        // quad 2 edges (single)
        (4, 5, s),
        (4, 6, s),
        (5, 7, s),
        (6, 7, s),
        // quad diagonals (double)
        (0, 3, d),
        (1, 2, d),
        (4, 7, d),
        (5, 6, d),
        // cross-quad links (double)
        (0, 4, d),
        (1, 5, d),
        (2, 6, d),
        (3, 7, d),
    ];
    TopologySpec {
        kind: TopologyKind::DgxV100,
        gpus_per_node: 8,
        nvlink_pairs,
        nvswitch_port_bw: None,
        pcie_bw: params::PCIE_GEN3_X16,
        // GPU pairs share PCIe switches, as on DGX-1.
        switch_of: vec![0, 0, 1, 1, 2, 2, 3, 3],
        // One 100 Gbps NIC per PCIe switch (p3.16xlarge: 4×100 Gbps).
        nics: vec![
            (0, params::NIC_100G),
            (1, params::NIC_100G),
            (2, params::NIC_100G),
            (3, params::NIC_100G),
        ],
        nic_of_gpu: vec![0, 0, 1, 1, 2, 2, 3, 3],
        gpu_mem_bytes: params::V100_MEM_BYTES,
        dram_bw: params::HOST_DRAM_BW,
        shm_bw: params::HOST_SHM_BW,
    }
}

/// DGX-A100: 8 GPUs behind an NVSwitch (every pair at port speed), PCIe
/// gen4, and — per the paper's testbed description — 8×200 Gbps NICs, one
/// per GPU.
pub fn dgx_a100() -> TopologySpec {
    TopologySpec {
        kind: TopologyKind::DgxA100,
        gpus_per_node: 8,
        nvlink_pairs: Vec::new(),
        nvswitch_port_bw: Some(params::NVLINK_A100_PORT),
        pcie_bw: params::PCIE_GEN4_X16,
        switch_of: vec![0, 0, 1, 1, 2, 2, 3, 3],
        nics: vec![
            (0, params::NIC_200G),
            (0, params::NIC_200G),
            (1, params::NIC_200G),
            (1, params::NIC_200G),
            (2, params::NIC_200G),
            (2, params::NIC_200G),
            (3, params::NIC_200G),
            (3, params::NIC_200G),
        ],
        nic_of_gpu: vec![0, 1, 2, 3, 4, 5, 6, 7],
        gpu_mem_bytes: params::A100_MEM_BYTES,
        dram_bw: params::HOST_DRAM_BW,
        shm_bw: params::HOST_SHM_BW,
    }
}

/// 4×A10 server without any NVLink (paper Fig. 20a). Each GPU sits on its
/// own PCIe switch, so peer-to-peer copies cross the host bridge and parallel
/// PCIe staging never shares uplinks.
pub fn a10x4() -> TopologySpec {
    TopologySpec {
        kind: TopologyKind::A10x4,
        gpus_per_node: 4,
        nvlink_pairs: Vec::new(),
        nvswitch_port_bw: None,
        pcie_bw: params::PCIE_GEN4_X16,
        switch_of: vec![0, 1, 2, 3],
        nics: vec![(0, params::NIC_100G), (2, params::NIC_100G)],
        nic_of_gpu: vec![0, 0, 1, 1],
        gpu_mem_bytes: params::A10_MEM_BYTES,
        dram_bw: params::HOST_DRAM_BW,
        shm_bw: params::HOST_SHM_BW,
    }
}

/// 8×H800 node for the LLM/MoA experiment (§6.4): NVSwitch with 200 GB/s
/// ports, PCIe gen5, 200 Gbps NICs.
pub fn h800x8() -> TopologySpec {
    TopologySpec {
        kind: TopologyKind::H800x8,
        gpus_per_node: 8,
        nvlink_pairs: Vec::new(),
        nvswitch_port_bw: Some(params::NVLINK_H800_PORT),
        pcie_bw: params::PCIE_GEN5_X16,
        switch_of: vec![0, 0, 1, 1, 2, 2, 3, 3],
        nics: vec![
            (0, params::NIC_200G),
            (0, params::NIC_200G),
            (1, params::NIC_200G),
            (1, params::NIC_200G),
            (2, params::NIC_200G),
            (2, params::NIC_200G),
            (3, params::NIC_200G),
            (3, params::NIC_200G),
        ],
        nic_of_gpu: vec![0, 1, 2, 3, 4, 5, 6, 7],
        gpu_mem_bytes: params::H800_MEM_BYTES,
        dram_bw: params::HOST_DRAM_BW,
        shm_bw: params::HOST_SHM_BW,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;
    use grouter_sim::FlowNet;

    #[test]
    fn all_presets_build() {
        for spec in [dgx_v100(), dgx_a100(), a10x4(), h800x8()] {
            let mut net = FlowNet::new();
            let t = Topology::build(spec.clone(), 2, &mut net);
            assert_eq!(t.gpus_per_node(), spec.gpus_per_node);
            assert!(net.num_links() > 0);
        }
    }

    #[test]
    fn nic_counts_match_testbeds() {
        assert_eq!(dgx_v100().nics.len(), 4);
        assert_eq!(dgx_a100().nics.len(), 8);
        assert_eq!(h800x8().nics.len(), 8);
    }

    #[test]
    fn memory_capacities_match_hardware() {
        assert_eq!(dgx_v100().gpu_mem_bytes, 16.0 * 1024.0 * 1024.0 * 1024.0);
        assert_eq!(a10x4().gpu_mem_bytes, 24.0 * 1024.0 * 1024.0 * 1024.0);
    }
}
