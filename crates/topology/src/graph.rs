//! Cluster interconnect graph.
//!
//! A [`Topology`] realises a cluster of identical GPU servers as links inside
//! a [`FlowNet`]. Every physical resource that can be contended gets its own
//! directed link:
//!
//! * **NVLink** — per-direction links between directly connected GPU pairs
//!   (DGX-V100 hybrid cube mesh) or per-GPU egress/ingress switch ports
//!   (NVSwitch machines, where any pair communicates at port speed but
//!   fan-in still saturates the receiver's port).
//! * **PCIe** — each GPU has an ×16 segment to its PCIe switch (used both for
//!   host staging and for GPUDirect RDMA through a co-located NIC), and each
//!   switch has one ×16 uplink to the host. GPUs sharing a switch share that
//!   uplink — the constraint behind topology-aware route-GPU selection
//!   (§4.3.1).
//! * **NIC** — per-NIC tx/rx links; each NIC hangs off one PCIe switch.
//! * **Host memory** — DRAM read/write links plus an intra-host shared-memory
//!   link for cFn–cFn exchanges.

use grouter_sim::{FlowNet, LinkId};

/// Globally identifies a GPU: `(server node, local index)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GpuRef {
    pub node: usize,
    pub gpu: usize,
}

impl GpuRef {
    pub fn new(node: usize, gpu: usize) -> Self {
        GpuRef { node, gpu }
    }
}

impl std::fmt::Display for GpuRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}g{}", self.node, self.gpu)
    }
}

/// Which testbed this topology models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TopologyKind {
    /// p3.16xlarge: 8×V100, asymmetric NVLink mesh, 4 PCIe switches, 4 NICs.
    DgxV100,
    /// p4d.24xlarge: 8×A100 behind NVSwitch, 8 NICs.
    DgxA100,
    /// 4×A10 without NVLink (Fig. 20a).
    A10x4,
    /// 8×H800 behind NVSwitch, 200 GB/s ports (LLM experiment, §6.4).
    H800x8,
}

/// Declarative description of one server model; `Topology::build` turns it
/// into links. Public so tests and exotic experiments can craft custom boxes.
#[derive(Clone, Debug)]
pub struct TopologySpec {
    pub kind: TopologyKind,
    pub gpus_per_node: usize,
    /// Undirected NVLink pairs `(a, b, bytes/s)`; empty on NVSwitch machines.
    pub nvlink_pairs: Vec<(usize, usize, f64)>,
    /// Per-GPU NVSwitch port bandwidth; `None` for point-to-point NVLink.
    pub nvswitch_port_bw: Option<f64>,
    /// PCIe ×16 segment/uplink bandwidth.
    pub pcie_bw: f64,
    /// `switch_of[g]` = index of the PCIe switch GPU `g` hangs off.
    pub switch_of: Vec<usize>,
    /// Per-NIC `(attached switch, bytes/s)`.
    pub nics: Vec<(usize, f64)>,
    /// `nic_of_gpu[g]` = index of the NIC nearest to GPU `g`.
    pub nic_of_gpu: Vec<usize>,
    /// GPU memory capacity in bytes.
    pub gpu_mem_bytes: f64,
    /// Host DRAM bandwidth.
    pub dram_bw: f64,
    /// Intra-host shared-memory bandwidth (cFn–cFn).
    pub shm_bw: f64,
}

impl TopologySpec {
    fn num_switches(&self) -> usize {
        self.switch_of.iter().copied().max().map_or(0, |m| m + 1)
    }

    fn validate(&self) {
        let g = self.gpus_per_node;
        assert!(g > 0, "a node needs at least one GPU");
        assert_eq!(self.switch_of.len(), g, "switch_of must cover every GPU");
        assert_eq!(self.nic_of_gpu.len(), g, "nic_of_gpu must cover every GPU");
        for &(a, b, bw) in &self.nvlink_pairs {
            assert!(a < g && b < g && a != b, "bad NVLink pair ({a},{b})");
            assert!(bw > 0.0, "NVLink bandwidth must be positive");
        }
        for &(sw, bw) in &self.nics {
            assert!(sw < self.num_switches(), "NIC attached to unknown switch");
            assert!(bw > 0.0, "NIC bandwidth must be positive");
        }
        for &n in &self.nic_of_gpu {
            assert!(n < self.nics.len(), "nic_of_gpu references unknown NIC");
        }
    }
}

/// Per-node link tables.
struct NodeLinks {
    /// Directed NVLink edge `a → b`, flattened `a * g + b`.
    nvlink: Vec<Option<LinkId>>,
    /// Bandwidth of that edge (0.0 = not connected).
    nvlink_bw: Vec<f64>,
    /// NVSwitch per-GPU ports (empty when `nvswitch_port_bw` is `None`).
    switch_egress: Vec<LinkId>,
    switch_ingress: Vec<LinkId>,
    /// GPU ↔ PCIe-switch segments.
    pcie_up: Vec<LinkId>,
    pcie_down: Vec<LinkId>,
    /// PCIe-switch ↔ host uplinks.
    uplink_up: Vec<LinkId>,
    uplink_down: Vec<LinkId>,
    /// Host DRAM.
    dram_w: LinkId,
    dram_r: LinkId,
    /// Intra-host shared memory.
    shm: LinkId,
    /// NIC tx/rx.
    nic_tx: Vec<LinkId>,
    nic_rx: Vec<LinkId>,
}

/// A built cluster topology: `num_nodes` identical servers.
///
/// The NVLink graph is immutable once built (faults mask *bandwidth*, in the
/// ledger's matrix — never edges), so every pure graph query the planners
/// repeat per transfer is precomputed here once: neighbor lists in both
/// expansion orders, all-pairs shortest routes, and the edge-disjoint feeder
/// routes of Fig. 5a. Planning then reads tables instead of re-running BFS.
pub struct Topology {
    spec: TopologySpec,
    num_nodes: usize,
    nodes: Vec<NodeLinks>,
    /// Per-GPU NVLink neighbors, ascending index (BFS order of
    /// [`Topology::nvlink_shortest_route`]).
    neighbors: Vec<Vec<usize>>,
    /// Per-GPU neighbors in descending-bandwidth, index-tie-broken order —
    /// the expansion order of the feeder-route search.
    neighbors_by_bw: Vec<Vec<usize>>,
    /// All-pairs shortest NVLink routes, flattened `a * g + b`.
    routes: Vec<Option<Vec<usize>>>,
    /// Topology-aware feeder routes per GPU (one per reachable foreign PCIe
    /// switch, edge-disjoint, in discovery order, no path limit applied).
    feeder_routes: Vec<Vec<Vec<usize>>>,
    /// Naive (index-order) feeder routes per GPU — the DeepPlan+ mode.
    naive_feeder_routes: Vec<Vec<Vec<usize>>>,
}

impl Topology {
    /// Build `num_nodes` copies of `spec` inside `net`.
    pub fn build(spec: TopologySpec, num_nodes: usize, net: &mut FlowNet) -> Topology {
        spec.validate();
        assert!(num_nodes > 0, "cluster needs at least one node");
        let g = spec.gpus_per_node;
        let mut nodes = Vec::with_capacity(num_nodes);
        for n in 0..num_nodes {
            let mut nvlink = vec![None; g * g];
            let mut nvlink_bw = vec![0.0; g * g];
            for &(a, b, bw) in &spec.nvlink_pairs {
                let fwd = net.add_link(format!("n{n}:nvl{a}->{b}"), bw);
                let rev = net.add_link(format!("n{n}:nvl{b}->{a}"), bw);
                nvlink[a * g + b] = Some(fwd);
                nvlink[b * g + a] = Some(rev);
                nvlink_bw[a * g + b] = bw;
                nvlink_bw[b * g + a] = bw;
            }
            let (switch_egress, switch_ingress) = match spec.nvswitch_port_bw {
                Some(port) => (
                    (0..g)
                        .map(|i| net.add_link(format!("n{n}:nvsw-eg{i}"), port))
                        .collect(),
                    (0..g)
                        .map(|i| net.add_link(format!("n{n}:nvsw-in{i}"), port))
                        .collect(),
                ),
                None => (Vec::new(), Vec::new()),
            };
            let pcie_up = (0..g)
                .map(|i| net.add_link(format!("n{n}:pcie-up{i}"), spec.pcie_bw))
                .collect();
            let pcie_down = (0..g)
                .map(|i| net.add_link(format!("n{n}:pcie-dn{i}"), spec.pcie_bw))
                .collect();
            let s = spec.num_switches();
            let uplink_up = (0..s)
                .map(|i| net.add_link(format!("n{n}:sw-up{i}"), spec.pcie_bw))
                .collect();
            let uplink_down = (0..s)
                .map(|i| net.add_link(format!("n{n}:sw-dn{i}"), spec.pcie_bw))
                .collect();
            let dram_w = net.add_link(format!("n{n}:dram-w"), spec.dram_bw);
            let dram_r = net.add_link(format!("n{n}:dram-r"), spec.dram_bw);
            let shm = net.add_link(format!("n{n}:shm"), spec.shm_bw);
            let nic_tx = spec
                .nics
                .iter()
                .enumerate()
                .map(|(i, &(_, bw))| net.add_link(format!("n{n}:nic-tx{i}"), bw))
                .collect();
            let nic_rx = spec
                .nics
                .iter()
                .enumerate()
                .map(|(i, &(_, bw))| net.add_link(format!("n{n}:nic-rx{i}"), bw))
                .collect();
            nodes.push(NodeLinks {
                nvlink,
                nvlink_bw,
                switch_egress,
                switch_ingress,
                pcie_up,
                pcie_down,
                uplink_up,
                uplink_down,
                dram_w,
                dram_r,
                shm,
                nic_tx,
                nic_rx,
            });
        }
        let mut topo = Topology {
            spec,
            num_nodes,
            nodes,
            neighbors: Vec::new(),
            neighbors_by_bw: Vec::new(),
            routes: Vec::new(),
            feeder_routes: Vec::new(),
            naive_feeder_routes: Vec::new(),
        };
        topo.neighbors = (0..g).map(|a| topo.compute_neighbors(a)).collect();
        topo.neighbors_by_bw = (0..g)
            .map(|a| {
                let mut n = topo.neighbors[a].clone();
                n.sort_by(|&x, &y| {
                    topo.nvlink_bw(a, y)
                        .total_cmp(&topo.nvlink_bw(a, x))
                        .then(x.cmp(&y))
                });
                n
            })
            .collect();
        topo.routes = (0..g)
            .flat_map(|a| (0..g).map(move |b| (a, b)))
            .map(|(a, b)| topo.compute_shortest_route(a, b))
            .collect();
        topo.feeder_routes = (0..g).map(|a| topo.compute_feeder_routes(a)).collect();
        topo.naive_feeder_routes = (0..g)
            .map(|a| (0..g).filter(|&b| b != a).map(|b| vec![a, b]).collect())
            .collect();
        topo
    }

    pub fn kind(&self) -> TopologyKind {
        self.spec.kind
    }

    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    pub fn gpus_per_node(&self) -> usize {
        self.spec.gpus_per_node
    }

    pub fn num_gpus(&self) -> usize {
        self.num_nodes * self.spec.gpus_per_node
    }

    /// Flat cluster-wide index of `(node, gpu)` — the canonical ordering for
    /// per-GPU vectors (load, failure flags, occupancy snapshots).
    pub fn flat_index(&self, node: usize, gpu: usize) -> usize {
        debug_assert!(node < self.num_nodes && gpu < self.spec.gpus_per_node);
        node * self.spec.gpus_per_node + gpu
    }

    /// Inverse of [`Topology::flat_index`].
    pub fn unflatten(&self, idx: usize) -> GpuRef {
        GpuRef::new(idx / self.spec.gpus_per_node, idx % self.spec.gpus_per_node)
    }

    pub fn gpu_mem_bytes(&self) -> f64 {
        self.spec.gpu_mem_bytes
    }

    pub fn num_nics(&self) -> usize {
        self.spec.nics.len()
    }

    /// `true` when GPUs talk through an NVSwitch (all-to-all at port speed).
    pub fn has_nvswitch(&self) -> bool {
        self.spec.nvswitch_port_bw.is_some()
    }

    /// `true` when the machine has any GPU-to-GPU NVLink connectivity.
    pub fn has_nvlink(&self) -> bool {
        self.has_nvswitch() || !self.spec.nvlink_pairs.is_empty()
    }

    /// PCIe switch index for a GPU.
    pub fn switch_of(&self, gpu: usize) -> usize {
        self.spec.switch_of[gpu]
    }

    /// NIC nearest to a GPU (attached to a switch reachable without crossing
    /// the host bridge).
    pub fn nic_of_gpu(&self, gpu: usize) -> usize {
        self.spec.nic_of_gpu[gpu]
    }

    /// Switch a NIC is attached to.
    pub fn switch_of_nic(&self, nic: usize) -> usize {
        self.spec.nics[nic].0
    }

    /// A GPU co-located with `nic` (same PCIe switch), preferring the lowest
    /// index; used to pick the forwarding GPU for parallel NIC transfers.
    pub fn gpu_near_nic(&self, nic: usize) -> usize {
        let sw = self.spec.nics[nic].0;
        (0..self.spec.gpus_per_node)
            .find(|&g| self.spec.switch_of[g] == sw)
            .unwrap_or(0)
    }

    /// NVLink bandwidth between two GPUs on `node` (0.0 when not directly
    /// connected). On NVSwitch machines every distinct pair connects at port
    /// speed.
    pub fn nvlink_bw(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        if let Some(port) = self.spec.nvswitch_port_bw {
            return port;
        }
        self.nodes[0].nvlink_bw[a * self.spec.gpus_per_node + b]
    }

    /// Directed single-hop NVLink path `a → b` on `node`, if connected.
    pub fn nvlink_edge(&self, node: usize, a: usize, b: usize) -> Option<Vec<LinkId>> {
        if a == b {
            return None;
        }
        let links = &self.nodes[node];
        if self.has_nvswitch() {
            return Some(vec![links.switch_egress[a], links.switch_ingress[b]]);
        }
        links.nvlink[a * self.spec.gpus_per_node + b].map(|l| vec![l])
    }

    /// GPUs directly NVLink-connected to `a`, ascending index (empty on
    /// PCIe-only machines; everyone else on NVSwitch machines).
    pub fn nvlink_neighbors(&self, a: usize) -> &[usize] {
        &self.neighbors[a]
    }

    /// NVLink neighbors of `a` in descending link-bandwidth order (ties by
    /// ascending index) — the expansion order route searches prefer.
    pub fn nvlink_neighbors_by_bw(&self, a: usize) -> &[usize] {
        &self.neighbors_by_bw[a]
    }

    fn compute_neighbors(&self, a: usize) -> Vec<usize> {
        let g = self.spec.gpus_per_node;
        if self.has_nvswitch() {
            return (0..g).filter(|&b| b != a).collect();
        }
        (0..g).filter(|&b| self.nvlink_bw(a, b) > 0.0).collect()
    }

    /// Device-to-host path: GPU segment → switch uplink → DRAM write.
    pub fn d2h_path(&self, node: usize, gpu: usize) -> Vec<LinkId> {
        let links = &self.nodes[node];
        let sw = self.spec.switch_of[gpu];
        vec![links.pcie_up[gpu], links.uplink_up[sw], links.dram_w]
    }

    /// Host-to-device path: DRAM read → switch downlink → GPU segment.
    pub fn h2d_path(&self, node: usize, gpu: usize) -> Vec<LinkId> {
        let links = &self.nodes[node];
        let sw = self.spec.switch_of[gpu];
        vec![links.dram_r, links.uplink_down[sw], links.pcie_down[gpu]]
    }

    /// PCIe peer-to-peer path `a → b` (the only gFn–gFn route on machines
    /// without NVLink). Same-switch pairs stay inside the switch; otherwise
    /// the transfer crosses the host bridge via both uplinks.
    pub fn pcie_p2p_path(&self, node: usize, a: usize, b: usize) -> Vec<LinkId> {
        assert_ne!(a, b, "p2p path requires distinct GPUs");
        let links = &self.nodes[node];
        let (sa, sb) = (self.spec.switch_of[a], self.spec.switch_of[b]);
        let mut path = vec![links.pcie_up[a]];
        if sa != sb {
            path.push(links.uplink_up[sa]);
            path.push(links.uplink_down[sb]);
        }
        path.push(links.pcie_down[b]);
        path
    }

    /// Sender half of a GPUDirect RDMA path: GPU `gpu` pushes through its
    /// PCIe segment into `nic`. Switch-local NICs are reached peer-to-peer
    /// under the switch; a NIC on another switch costs both host-bridge
    /// uplinks (the congestion GROUTER's NIC-route selection avoids).
    pub fn gdr_tx_path(&self, node: usize, gpu: usize, nic: usize) -> Vec<LinkId> {
        let links = &self.nodes[node];
        let (sg, sn) = (self.spec.switch_of[gpu], self.spec.nics[nic].0);
        let mut p = vec![links.pcie_up[gpu]];
        if sg != sn {
            p.push(links.uplink_up[sg]);
            p.push(links.uplink_down[sn]);
        }
        p.push(links.nic_tx[nic]);
        p
    }

    /// Receiver half of a GPUDirect RDMA path: `nic` writes into GPU `gpu`.
    pub fn gdr_rx_path(&self, node: usize, gpu: usize, nic: usize) -> Vec<LinkId> {
        let links = &self.nodes[node];
        let (sg, sn) = (self.spec.switch_of[gpu], self.spec.nics[nic].0);
        let mut p = vec![links.nic_rx[nic]];
        if sg != sn {
            p.push(links.uplink_up[sn]);
            p.push(links.uplink_down[sg]);
        }
        p.push(links.pcie_down[gpu]);
        p
    }

    /// Shortest NVLink route `a → b` on one node as a GPU sequence
    /// (precomputed BFS, deterministic ascending neighbor order), or `None`
    /// when `b` is unreachable over NVLink. Used to reach NIC-adjacent
    /// forwarding GPUs (Fig. 9a).
    pub fn nvlink_shortest_route(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        self.nvlink_route(a, b).map(|r| r.to_vec())
    }

    /// Borrowed form of [`Topology::nvlink_shortest_route`] for hot planning
    /// paths: the route slice lives in the topology's all-pairs table.
    pub fn nvlink_route(&self, a: usize, b: usize) -> Option<&[usize]> {
        self.routes[a * self.spec.gpus_per_node + b].as_deref()
    }

    fn compute_shortest_route(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if a == b {
            return Some(vec![a]);
        }
        let g = self.spec.gpus_per_node;
        let mut prev = vec![usize::MAX; g];
        let mut queue = std::collections::VecDeque::from([a]);
        prev[a] = a;
        while let Some(cur) = queue.pop_front() {
            for &next in &self.neighbors[cur] {
                if prev[next] == usize::MAX {
                    prev[next] = cur;
                    if next == b {
                        let mut route = vec![b];
                        let mut at = b;
                        while at != a {
                            at = prev[at];
                            route.push(at);
                        }
                        route.reverse();
                        return Some(route);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Edge-disjoint feeder routes from `gpu` toward foreign PCIe switches
    /// (topology-aware route-GPU selection, Fig. 5a): one route per
    /// reachable foreign switch, in switch discovery order, with no path
    /// limit applied. Callers truncate to their `max_paths` budget — valid
    /// because the search's used-edge set grows monotonically, so a limited
    /// run's result is exactly a prefix of this table.
    pub fn pcie_feeder_route_table(&self, gpu: usize) -> &[Vec<usize>] {
        &self.feeder_routes[gpu]
    }

    /// Index-order feeder pairs `[gpu, peer]` for the naive (DeepPlan+)
    /// staging mode, which ignores switch sharing and NVLink reachability.
    pub fn naive_feeder_route_table(&self, gpu: usize) -> &[Vec<usize>] {
        &self.naive_feeder_routes[gpu]
    }

    fn compute_feeder_routes(&self, gpu: usize) -> Vec<Vec<usize>> {
        let my_switch = self.switch_of(gpu);
        let mut switches: Vec<usize> = (0..self.spec.gpus_per_node)
            .map(|g| self.switch_of(g))
            .filter(|&s| s != my_switch)
            .collect();
        switches.sort_unstable();
        switches.dedup();
        let mut used = std::collections::HashSet::new();
        let mut routes = Vec::new();
        for sw in switches {
            let found = self.route_avoiding(gpu, |g| self.switch_of(g) == sw, &used);
            if let Some(route) = found {
                for hop in route.windows(2) {
                    used.insert((hop[0], hop[1]));
                }
                routes.push(route);
            }
        }
        routes
    }

    /// BFS from `src` over NVLink edges not in `used`, to the nearest GPU
    /// satisfying `target`. Neighbours expand in descending link-bandwidth
    /// order (index-tie-broken) so wide links are preferred at equal depth.
    fn route_avoiding(
        &self,
        src: usize,
        target: impl Fn(usize) -> bool,
        used: &std::collections::HashSet<(usize, usize)>,
    ) -> Option<Vec<usize>> {
        let g = self.spec.gpus_per_node;
        let mut prev = vec![usize::MAX; g];
        prev[src] = src;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(cur) = queue.pop_front() {
            for &next in &self.neighbors_by_bw[cur] {
                if prev[next] != usize::MAX || used.contains(&(cur, next)) {
                    continue;
                }
                prev[next] = cur;
                if target(next) {
                    let mut route = vec![next];
                    let mut at = next;
                    while at != src {
                        at = prev[at];
                        route.push(at);
                    }
                    route.reverse();
                    return Some(route);
                }
                queue.push_back(next);
            }
        }
        None
    }

    /// Full cross-node GDR path `src → dst` over the given NICs (the fabric
    /// between NICs is assumed non-blocking, as on AWS EFA placements).
    pub fn gdr_path(
        &self,
        src: GpuRef,
        src_nic: usize,
        dst: GpuRef,
        dst_nic: usize,
    ) -> Vec<LinkId> {
        assert_ne!(src.node, dst.node, "GDR path is cross-node");
        let mut p = self.gdr_tx_path(src.node, src.gpu, src_nic);
        p.extend(self.gdr_rx_path(dst.node, dst.gpu, dst_nic));
        p
    }

    /// Host-to-host network path (host-centric cross-node data passing):
    /// DRAM read → NIC tx → NIC rx → DRAM write.
    pub fn host_net_path(&self, src_node: usize, dst_node: usize, nic: usize) -> Vec<LinkId> {
        assert_ne!(src_node, dst_node, "host network path is cross-node");
        vec![
            self.nodes[src_node].dram_r,
            self.nodes[src_node].nic_tx[nic],
            self.nodes[dst_node].nic_rx[nic],
            self.nodes[dst_node].dram_w,
        ]
    }

    /// Intra-host shared-memory path (cFn–cFn).
    pub fn shm_path(&self, node: usize) -> Vec<LinkId> {
        vec![self.nodes[node].shm]
    }

    /// The undirected NVLink pair list `(a, b, bw)` (empty for NVSwitch).
    pub fn nvlink_pairs(&self) -> &[(usize, usize, f64)] {
        &self.spec.nvlink_pairs
    }

    /// The PCIe switch→host uplinks of `node` (one per switch) — the
    /// contended resources parallel PCIe staging spreads over (Fig. 5a).
    pub fn uplink_links(&self, node: usize) -> Vec<LinkId> {
        self.nodes[node].uplink_up.clone()
    }

    /// The per-GPU device→switch PCIe segments of `node`.
    pub fn pcie_up_links(&self, node: usize) -> Vec<LinkId> {
        self.nodes[node].pcie_up.clone()
    }

    /// The NIC transmit links of `node`.
    pub fn nic_tx_links(&self, node: usize) -> Vec<LinkId> {
        self.nodes[node].nic_tx.clone()
    }

    /// Both directions of one NIC: `(tx, rx)`. Fault injection throttles the
    /// pair together — a dead NIC neither sends nor receives.
    pub fn nic_links(&self, node: usize, nic: usize) -> (LinkId, LinkId) {
        let links = &self.nodes[node];
        (links.nic_tx[nic], links.nic_rx[nic])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use grouter_sim::params;

    #[test]
    fn v100_nvlink_statistics_match_paper() {
        // Paper Fig. 6a: 28 % of pairs at half bandwidth, 42 % with no NVLink.
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 1, &mut net);
        let g = t.gpus_per_node();
        let mut none = 0;
        let mut single = 0;
        let mut double = 0;
        let mut total = 0;
        for a in 0..g {
            for b in (a + 1)..g {
                total += 1;
                let bw = t.nvlink_bw(a, b);
                if bw == 0.0 {
                    none += 1;
                } else if bw == params::NVLINK_V100_SINGLE {
                    single += 1;
                } else if bw == params::NVLINK_V100_DOUBLE {
                    double += 1;
                } else {
                    panic!("unexpected bandwidth {bw}");
                }
            }
        }
        assert_eq!(total, 28);
        assert_eq!(single, 8); // 28.6 % ≈ paper's 28 %
        assert_eq!(none, 12); // 42.9 % ≈ paper's 42 %
        assert_eq!(double, 8);
    }

    #[test]
    fn v100_each_gpu_has_six_links() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 1, &mut net);
        for a in 0..8 {
            let total: f64 = (0..8).map(|b| t.nvlink_bw(a, b)).sum();
            // 6 links × 24 GB/s each.
            assert_eq!(total, 6.0 * params::NVLINK_V100_SINGLE, "gpu {a}");
        }
    }

    #[test]
    fn nvswitch_connects_all_pairs() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_a100(), 1, &mut net);
        assert!(t.has_nvswitch());
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert_eq!(t.nvlink_bw(a, b), params::NVLINK_A100_PORT);
                    assert_eq!(t.nvlink_edge(0, a, b).unwrap().len(), 2);
                }
            }
        }
    }

    #[test]
    fn a10_has_no_nvlink() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::a10x4(), 1, &mut net);
        assert!(!t.has_nvlink());
        assert!(t.nvlink_neighbors(0).is_empty());
        assert_eq!(t.nvlink_edge(0, 0, 1), None);
    }

    #[test]
    fn shared_switch_pairs_share_uplink() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 1, &mut net);
        // GPUs 0 and 1 share a switch: their d2h paths share the uplink link.
        let p0 = t.d2h_path(0, 0);
        let p1 = t.d2h_path(0, 1);
        assert_eq!(p0[1], p1[1], "same uplink expected");
        // GPUs 0 and 2 do not.
        let p2 = t.d2h_path(0, 2);
        assert_ne!(p0[1], p2[1]);
    }

    #[test]
    fn pcie_p2p_same_switch_is_short() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::a10x4(), 1, &mut net);
        // a10x4 gives each GPU its own switch → always 4 hops.
        assert_eq!(t.pcie_p2p_path(0, 0, 1).len(), 4);
        let mut net2 = FlowNet::new();
        let t2 = Topology::build(presets::dgx_v100(), 1, &mut net2);
        // 0 and 1 share a switch → 2 hops.
        assert_eq!(t2.pcie_p2p_path(0, 0, 1).len(), 2);
        assert_eq!(t2.pcie_p2p_path(0, 0, 2).len(), 4);
    }

    #[test]
    fn gdr_uses_local_pcie_segment() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 2, &mut net);
        let nic = t.nic_of_gpu(0);
        let p = t.gdr_path(GpuRef::new(0, 0), nic, GpuRef::new(1, 0), nic);
        assert_eq!(p.len(), 4); // pcie_up, nic_tx, nic_rx, pcie_dn
                                // The d2h path shares the GPU segment → contention is modelled.
        assert_eq!(p[0], t.d2h_path(0, 0)[0]);
    }

    #[test]
    fn gdr_via_remote_nic_crosses_host_bridge() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 2, &mut net);
        // NIC 3 hangs off switch 3; GPU 0 is on switch 0 → 2 extra hops.
        let local = t.gdr_tx_path(0, 0, 0);
        let remote = t.gdr_tx_path(0, 0, 3);
        assert_eq!(local.len(), 2);
        assert_eq!(remote.len(), 4);
    }

    #[test]
    fn nvlink_shortest_route_finds_detours() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 1, &mut net);
        // Adjacent pair: direct.
        assert_eq!(t.nvlink_shortest_route(0, 3), Some(vec![0, 3]));
        // Non-adjacent pair (1,4): two hops.
        let route = t.nvlink_shortest_route(1, 4).unwrap();
        assert_eq!(route.len(), 3);
        assert_eq!(route[0], 1);
        assert_eq!(route[2], 4);
        assert!(t.nvlink_bw(route[0], route[1]) > 0.0);
        assert!(t.nvlink_bw(route[1], route[2]) > 0.0);
        // Self route.
        assert_eq!(t.nvlink_shortest_route(2, 2), Some(vec![2]));
        // PCIe-only machine: unreachable.
        let mut net2 = FlowNet::new();
        let t2 = Topology::build(presets::a10x4(), 1, &mut net2);
        assert_eq!(t2.nvlink_shortest_route(0, 1), None);
    }

    #[test]
    fn multi_node_builds_disjoint_links() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 2, &mut net);
        assert_eq!(t.num_gpus(), 16);
        let a = t.d2h_path(0, 0);
        let b = t.d2h_path(1, 0);
        assert!(
            a.iter().all(|l| !b.contains(l)),
            "nodes must not share links"
        );
    }

    #[test]
    fn nic_affinity_is_local() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 1, &mut net);
        for g in 0..8 {
            let nic = t.nic_of_gpu(g);
            assert_eq!(t.switch_of(g), t.switch_of_nic(nic), "gpu {g}");
        }
        for nic in 0..t.num_nics() {
            let g = t.gpu_near_nic(nic);
            assert_eq!(t.switch_of(g), t.switch_of_nic(nic));
        }
    }

    #[test]
    fn neighbors_are_symmetric_on_v100() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 1, &mut net);
        for a in 0..8 {
            for &b in t.nvlink_neighbors(a) {
                assert!(t.nvlink_neighbors(b).contains(&a));
                assert_eq!(t.nvlink_bw(a, b), t.nvlink_bw(b, a));
            }
        }
    }
}

#[cfg(test)]
mod accessor_tests {
    use super::*;
    use crate::presets;

    #[test]
    fn link_group_accessors_have_expected_sizes() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 2, &mut net);
        for node in 0..2 {
            assert_eq!(t.uplink_links(node).len(), 4, "one uplink per switch");
            assert_eq!(t.pcie_up_links(node).len(), 8, "one segment per GPU");
            assert_eq!(t.nic_tx_links(node).len(), 4);
            for nic in 0..4 {
                let (tx, rx) = t.nic_links(node, nic);
                assert_eq!(tx, t.nic_tx_links(node)[nic]);
                assert_ne!(tx, rx, "tx/rx are distinct simplex links");
                // rx is the receive side host_net_path wires in.
                if node == 1 {
                    assert_eq!(t.host_net_path(0, 1, nic)[2], rx);
                }
            }
        }
        // Groups are disjoint across nodes and within a node.
        let mut all: Vec<LinkId> = Vec::new();
        for node in 0..2 {
            all.extend(t.uplink_links(node));
            all.extend(t.pcie_up_links(node));
            all.extend(t.nic_tx_links(node));
        }
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "link groups overlap");
    }

    #[test]
    fn h800_gdr_paths_are_local() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::h800x8(), 2, &mut net);
        // Every GPU has a same-switch NIC on H800 boxes → 2-hop GDR halves.
        for g in 0..8 {
            let nic = t.nic_of_gpu(g);
            assert_eq!(t.gdr_tx_path(0, g, nic).len(), 2, "gpu {g}");
            assert_eq!(t.gdr_rx_path(1, g, nic).len(), 2, "gpu {g}");
        }
    }

    #[test]
    fn a100_nvswitch_edges_share_ports_per_gpu() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_a100(), 1, &mut net);
        // All edges out of GPU 0 use the same egress port link.
        let e1 = t.nvlink_edge(0, 0, 1).unwrap();
        let e2 = t.nvlink_edge(0, 0, 7).unwrap();
        assert_eq!(e1[0], e2[0], "shared egress port");
        assert_ne!(e1[1], e2[1], "distinct ingress ports");
    }
}
