//! # grouter-topology
//!
//! Models of the GPU server/cluster interconnects the paper evaluates on,
//! plus the graph algorithms GROUTER's transfer scheduler relies on:
//!
//! * [`graph`] — the [`graph::Topology`] type: nodes × GPUs with NVLink,
//!   PCIe (switches + host uplinks), NIC and host-memory links, all realised
//!   as [`grouter_sim::FlowNet`] links so concurrent transfers contend
//!   realistically.
//! * [`presets`] — the paper's testbeds: DGX-V100 (asymmetric hybrid cube
//!   mesh, Fig. 6), DGX-A100 (NVSwitch), 4×A10 (no NVLink, Fig. 20a) and
//!   8×H800 (LLM experiment, §6.4).
//! * [`paths`] — simple-path enumeration over the NVLink graph and
//!   **Algorithm 1** (contention-aware parallel path selection).
//! * [`bwmatrix`] — the global bandwidth-usage matrix `BW(g, b)` that
//!   Algorithm 1 reads and updates (§4.3.3).

pub mod bwmatrix;
pub mod cache;
pub mod graph;
pub mod ledger;
pub mod paths;
pub mod presets;

pub use bwmatrix::BwMatrix;
pub use cache::{CacheStats, CachedPaths, PathCache, PathSelector};
pub use graph::{GpuRef, Topology, TopologyKind};
pub use ledger::{PathLedger, Rebalance, ResId};
pub use paths::{
    check_endpoints, enumerate_paths, select_parallel_paths, try_enumerate_paths, BadEndpoints,
    NvPath, PathSelection,
};
