//! Reservation ledger with **direct-path priority rebalancing** (§4.3.3).
//!
//! Algorithm 1 alone picks paths for one transfer in isolation. The full
//! scheduler also enforces the paper's priority rule: *"GROUTER prioritizes
//! direct NVLink paths between GPUs. If these paths are already occupied by
//! other functions (as part of indirect routes), GROUTER reassigns those
//! functions to alternative routes."*
//!
//! [`PathLedger`] owns the node's bandwidth matrix plus the set of live
//! reservations, so it can *move* an existing reservation's indirect path
//! off a direct edge when a new transfer between that edge's endpoints
//! arrives. Each move is reported as a [`Rebalance`] so the executor can
//! re-path the in-flight flow ([`grouter_sim::FlowNet::reroute_flow`]).

use std::collections::BTreeMap;

use crate::bwmatrix::BwMatrix;
use crate::cache::{CacheStats, PathSelector};
use crate::graph::Topology;
use crate::paths::{check_endpoints, NvPath, PathSelection};

/// Identifies one live reservation in a [`PathLedger`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ResId(pub u64);

/// An existing reservation's path moved to make room for a direct path.
#[derive(Clone, Debug, PartialEq)]
pub struct Rebalance {
    pub reservation: ResId,
    /// The GPU route vacated.
    pub old: Vec<usize>,
    /// The replacement route (same endpoints, same reserved rate).
    pub new: Vec<usize>,
    /// The reserved rate that moved with the path.
    pub rate: f64,
}

/// Bandwidth matrix + live reservations for one node.
///
/// # Examples
///
/// ```
/// use grouter_sim::FlowNet;
/// use grouter_topology::{presets, PathLedger, Topology};
///
/// let mut net = FlowNet::new();
/// let topo = Topology::build(presets::dgx_v100(), 1, &mut net);
/// let mut ledger = PathLedger::from_topology(&topo);
///
/// // Weak pair (0,1): Algorithm 1 aggregates parallel NVLink paths.
/// let (id, selection, _rebalances) = ledger.reserve(0, 1, 3, 4);
/// assert!(selection.paths.len() >= 2);
/// assert!(selection.total_rate() >= 48e9);
/// ledger.release(id);
/// assert!(ledger.bwm().is_idle(0, 1));
/// ```
#[derive(Clone, Debug)]
pub struct PathLedger {
    selector: PathSelector,
    reservations: BTreeMap<u64, Vec<NvPath>>,
    next: u64,
}

impl PathLedger {
    pub fn from_topology(topo: &Topology) -> PathLedger {
        PathLedger {
            selector: PathSelector::from_topology(topo),
            reservations: BTreeMap::new(),
            next: 0,
        }
    }

    /// Read access to the underlying matrix.
    pub fn bwm(&self) -> &BwMatrix {
        self.selector.bwm()
    }

    /// Raw matrix access for callers that manage reservations themselves
    /// (the planner-level API used by tests and non-ledger planes). Paths
    /// occupied this way are invisible to rebalancing. Capacity changes made
    /// here still invalidate the path cache via the topology epoch.
    pub fn bwm_mut(&mut self) -> &mut BwMatrix {
        self.selector.bwm_mut()
    }

    /// The cached selector serving this ledger's Algorithm 1 calls.
    pub fn selector(&self) -> &PathSelector {
        &self.selector
    }

    /// Mutable selector access (benches drive it directly).
    pub fn selector_mut(&mut self) -> &mut PathSelector {
        &mut self.selector
    }

    /// Attach an observability recorder to the underlying selector (see
    /// [`PathSelector::set_recorder`]).
    pub fn set_recorder(&mut self, rec: grouter_obs::Recorder) {
        self.selector.set_recorder(rec);
    }

    /// Path-cache statistics (hits / misses / epoch invalidations).
    pub fn cache_stats(&self) -> CacheStats {
        self.selector.cache().stats()
    }

    /// Pre-enumerate every GPU pair at `max_hops` so the first transfer of
    /// each pair is already a cache hit (done once at world build; clones of
    /// this ledger share the warm cache).
    pub fn warm(&mut self, max_hops: usize) {
        self.selector.warm(max_hops);
    }

    /// Degrade the directed NVLink `a → b` to `new_cap` bytes/s. Live
    /// reservations keep their booked rates (the matrix clamps); cached
    /// path sets are invalidated through the topology epoch.
    pub fn degrade_link(&mut self, a: usize, b: usize, new_cap: f64) {
        self.selector.degrade_link(a, b, new_cap);
    }

    /// Restore the directed NVLink `a → b` to its hardware baseline
    /// capacity (see [`BwMatrix::restore_link`]). Cached path sets are
    /// invalidated through the topology epoch.
    pub fn restore_link(&mut self, a: usize, b: usize) {
        self.selector.restore_link(a, b);
    }

    /// Mask a failed GPU out of this node's matrix: every edge touching it
    /// drops to zero capacity and cached path sets are invalidated. Live
    /// reservations crossing the GPU keep their ids (release stays
    /// idempotent) but their bandwidth is forfeited.
    pub fn mask_node(&mut self, g: usize) {
        self.selector.mask_node(g);
    }

    /// Readmit a recovered GPU (see [`BwMatrix::unmask_node`]).
    pub fn unmask_node(&mut self, g: usize) {
        self.selector.unmask_node(g);
    }

    /// Number of live reservations.
    pub fn active(&self) -> usize {
        self.reservations.len()
    }

    /// Reserve parallel paths `src → dst`, first evicting *indirect* users
    /// of the direct edge onto alternative routes when possible. Returns
    /// the reservation id, the selection (rates already reserved), and the
    /// rebalances the caller must apply to in-flight traffic.
    pub fn reserve(
        &mut self,
        src: usize,
        dst: usize,
        max_hops: usize,
        max_paths: usize,
    ) -> (ResId, PathSelection, Vec<Rebalance>) {
        let rebalances = self.rebalance_direct(src, dst, max_hops);
        self.selector.select(src, dst, max_hops, max_paths);
        // Move the scratch into the reservation store (no per-path copy);
        // the caller's view is the one clone. Buffers come back through
        // `release` → `recycle`.
        let paths = self.selector.take_last_selection();
        let sel = PathSelection {
            paths: paths.clone(),
        };
        let id = self.next;
        self.next += 1;
        self.reservations.insert(id, paths);
        (ResId(id), sel, rebalances)
    }

    /// Release a reservation, restoring its bandwidth. Returns `false` for
    /// unknown/already-released ids (idempotent).
    pub fn release(&mut self, id: ResId) -> bool {
        match self.reservations.remove(&id.0) {
            Some(paths) => {
                for p in &paths {
                    self.selector.bwm_mut().release_path(&p.gpus, p.rate);
                }
                self.selector.recycle(paths);
                true
            }
            None => false,
        }
    }

    /// Free the direct edge `src → dst` of reservations that cross it as
    /// part of an *indirect* route (different endpoints), re-routing each
    /// onto an alternative path that can carry its reserved rate.
    fn rebalance_direct(&mut self, src: usize, dst: usize, max_hops: usize) -> Vec<Rebalance> {
        // Degenerate endpoints cannot name a direct edge; selection will
        // degrade to an empty set, so there is nothing to make room for.
        if check_endpoints(self.bwm().len(), src, dst).is_err() {
            return Vec::new();
        }
        if self.bwm().capacity(src, dst) <= 0.0 || self.bwm().is_idle(src, dst) {
            return Vec::new();
        }
        // Collect indirect users of the edge (deterministic order).
        let mut candidates: Vec<(u64, usize)> = Vec::new();
        for (&rid, paths) in &self.reservations {
            for (pi, p) in paths.iter().enumerate() {
                let (Some(&first), Some(&last)) = (p.gpus.first(), p.gpus.last()) else {
                    continue; // reserve() never records an empty route
                };
                let endpoints = (first, last);
                let uses_edge = p.gpus.windows(2).any(|h| h[0] == src && h[1] == dst);
                if uses_edge && endpoints != (src, dst) {
                    candidates.push((rid, pi));
                }
            }
        }
        let mut out = Vec::new();
        for (rid, pi) in candidates {
            if self.bwm().is_idle(src, dst) {
                break;
            }
            let old = self.reservations[&rid][pi].clone();
            let (Some(&s), Some(&d)) = (old.gpus.first(), old.gpus.last()) else {
                continue; // empty routes were filtered out above
            };
            // Temporarily release the old path, then look for an
            // alternative with enough residual that avoids the edge. The
            // candidate set comes from the path cache — no DFS here.
            self.selector.bwm_mut().release_path(&old.gpus, old.rate);
            let alternative = self
                .selector
                .find_alternative(s, d, max_hops, (src, dst), old.rate);
            match alternative {
                Some(new_route) => {
                    self.selector.bwm_mut().occupy_path(&new_route, old.rate);
                    // `rid` was enumerated from the live reservation map and
                    // nothing in this loop removes entries, so the lookup
                    // cannot miss; tolerate it anyway rather than crash.
                    if let Some(paths) = self.reservations.get_mut(&rid) {
                        paths[pi] = NvPath {
                            gpus: new_route.clone(),
                            rate: old.rate,
                        };
                        out.push(Rebalance {
                            reservation: ResId(rid),
                            old: old.gpus,
                            new: new_route,
                            rate: old.rate,
                        });
                    }
                }
                None => {
                    // No viable alternative: put the old path back.
                    self.selector.bwm_mut().occupy_path(&old.gpus, old.rate);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use grouter_sim::{params, FlowNet};

    fn ledger() -> PathLedger {
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::dgx_v100(), 1, &mut net);
        PathLedger::from_topology(&topo)
    }

    #[test]
    fn reserve_and_release_roundtrip() {
        let mut l = ledger();
        let (id, sel, reb) = l.reserve(0, 1, 3, 4);
        assert!(!sel.is_empty());
        assert!(reb.is_empty(), "nothing to rebalance on an idle node");
        assert_eq!(l.active(), 1);
        assert!(l.release(id));
        assert_eq!(l.active(), 0);
        assert!(l.bwm().is_idle(0, 1));
        // Idempotent.
        assert!(!l.release(id));
    }

    #[test]
    fn direct_path_evicts_indirect_user() {
        let mut l = ledger();
        // Transfer A: 0 → 1 over three paths. Its parallel selection uses
        // indirect routes that cross other direct edges (e.g. 0→3 then
        // 3→1), while leaving the 0→4 links free as rebalance headroom.
        let (a, sel_a, _) = l.reserve(0, 1, 3, 3);
        let crosses_03 = sel_a
            .paths
            .iter()
            .any(|p| p.gpus.windows(2).any(|h| h[0] == 0 && h[1] == 3));
        assert!(
            crosses_03,
            "expected an indirect path over edge (0,3): {sel_a:?}"
        );
        assert!(!l.bwm().is_idle(0, 3));

        // Transfer B arrives for exactly that pair: the indirect user must
        // be reassigned so B can claim the full direct edge.
        let (b, sel_b, rebalances) = l.reserve(0, 3, 3, 1);
        assert!(
            !rebalances.is_empty(),
            "expected a rebalance to free the direct edge"
        );
        for rb in &rebalances {
            assert_eq!(rb.reservation, a);
            assert_eq!(rb.old[0], 0);
            assert_eq!(*rb.old.last().unwrap(), 1);
            assert_eq!(rb.new[0], 0, "endpoints preserved");
            assert_eq!(*rb.new.last().unwrap(), 1);
            assert!(!rb.new.windows(2).any(|h| h[0] == 0 && h[1] == 3));
        }
        // B got the full direct bandwidth.
        assert_eq!(sel_b.paths[0].gpus, vec![0, 3]);
        assert!(
            (sel_b.paths[0].rate - params::NVLINK_V100_DOUBLE).abs() < 1.0,
            "direct rate {}",
            sel_b.paths[0].rate
        );
        // Releasing everything restores a fully idle matrix.
        l.release(a);
        l.release(b);
        for x in 0..8 {
            for y in 0..8 {
                if l.bwm().capacity(x, y) > 0.0 {
                    assert!(l.bwm().is_idle(x, y), "({x},{y}) leaked");
                }
            }
        }
    }

    #[test]
    fn no_rebalance_when_direct_user_owns_the_edge() {
        let mut l = ledger();
        // A reserves the direct edge 0→3 itself (endpoints match).
        let (_a, _, _) = l.reserve(0, 3, 1, 1);
        // B wants the same pair: the occupant is a *direct* user, so no
        // reassignment happens; B shares what's left (phase 2).
        let (_b, _sel, rebalances) = l.reserve(0, 3, 1, 1);
        assert!(rebalances.is_empty());
    }

    #[test]
    fn rebalance_skipped_when_no_alternative_fits() {
        let mut l = ledger();
        // Saturate everything around GPU 0 with reservations.
        let mut ids = Vec::new();
        for dst in [1usize, 2, 3, 4] {
            let (id, _, _) = l.reserve(0, dst, 3, 8);
            ids.push(id);
        }
        // Now GPU 0's outgoing bandwidth is exhausted; a new reservation on
        // (0,3) cannot evict anyone into thin air — the ledger must not
        // corrupt the matrix trying.
        let before_out = l.bwm().out_bw(0);
        let (_c, _, _) = l.reserve(0, 3, 3, 2);
        assert!(l.bwm().out_bw(0) <= before_out + 1.0);
        for (x, y) in [(0, 1), (0, 2), (0, 3), (0, 4)] {
            assert!(l.bwm().residual(x, y) >= 0.0, "({x},{y}) negative");
        }
    }

    #[test]
    fn degenerate_endpoints_yield_empty_selection() {
        let mut l = ledger();
        // Self-loop and out-of-range endpoints degrade to an empty
        // selection (host-path fallback) instead of aborting the run.
        let (id, sel, reb) = l.reserve(5, 5, 3, 4);
        assert!(sel.is_empty());
        assert!(reb.is_empty());
        l.release(id);
        let (_, sel, _) = l.reserve(0, 99, 3, 4);
        assert!(sel.is_empty());
        let (_, sel, _) = l.reserve(99, 0, 3, 4);
        assert!(sel.is_empty());
    }

    #[test]
    fn degrade_roundtrip_returns_links_to_baseline() {
        let mut l = ledger();
        let (id, sel, _) = l.reserve(0, 1, 3, 4);
        assert!(!sel.is_empty());
        let epoch0 = l.bwm().epoch();
        // Degrade a link several live paths cross, mid-reservation.
        l.degrade_link(0, 3, 10e9);
        assert_eq!(l.bwm().epoch(), epoch0 + 1, "one bump per degradation");
        assert_eq!(l.bwm().capacity(0, 3), 10e9);
        // Releasing returns every link exactly to its (possibly degraded)
        // baseline — no residual leak in either direction.
        l.release(id);
        for x in 0..8 {
            for y in 0..8 {
                let cap = l.bwm().capacity(x, y);
                if cap > 0.0 {
                    assert!(
                        (l.bwm().residual(x, y) - cap).abs() < 1e-6,
                        "({x},{y}) residual {} != cap {cap}",
                        l.bwm().residual(x, y)
                    );
                }
            }
        }
    }

    #[test]
    fn cache_hits_accumulate_and_epoch_invalidates() {
        let mut l = ledger();
        l.warm(3);
        let warm_misses = l.cache_stats().misses;
        let (a, _, _) = l.reserve(0, 1, 3, 4);
        assert_eq!(
            l.cache_stats().misses,
            warm_misses,
            "warm cache: reserve must not re-enumerate"
        );
        assert!(l.cache_stats().hits > 0);
        l.release(a);
        // A degradation event invalidates the cache exactly once; the next
        // lookup re-enumerates under the new capacities.
        l.degrade_link(0, 3, 1e9);
        let inv0 = l.cache_stats().invalidations;
        let (_b, _, _) = l.reserve(0, 1, 3, 4);
        assert_eq!(l.cache_stats().invalidations, inv0 + 1);
        assert!(l.cache_stats().misses > warm_misses);
    }

    #[test]
    fn reservations_are_deterministic() {
        let run = || {
            let mut l = ledger();
            let (_, s1, _) = l.reserve(0, 1, 3, 4);
            let (_, s2, r2) = l.reserve(0, 3, 3, 2);
            (s1.paths, s2.paths, r2)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }
}
