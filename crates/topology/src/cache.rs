//! Topology-epoch-versioned path cache + allocation-free Algorithm 1.
//!
//! The seed implementation re-ran the full loop-free DFS enumeration on
//! every `select_parallel_paths` call — the control-path analog of a
//! full-recompute rate allocator. Path *sets*, however, depend only on the
//! hardware capacity matrix, which changes only on link degradation events;
//! reservations merely change residuals. [`PathCache`] therefore enumerates
//! the loop-free path set per `(src, dst, max_hops)` once per topology
//! epoch ([`BwMatrix::epoch`]) and stores it flat (one node vector + an
//! offset table — no per-path allocation on the read side). A degradation
//! bumps the epoch; the cache notices lazily on the next lookup and
//! re-enumerates only what is asked for again.
//!
//! [`PathSelector`] bundles a [`BwMatrix`] with a cache, a reusable
//! [`PathSelection`] scratch and a pool of recycled route buffers, so the
//! steady-state selection path — the per-transfer cost the paper keeps
//! "below 10 µs" (§4.3.3) — performs no heap allocation at all: contention
//! checks run directly against the live residuals over cached candidate
//! slices.

use std::collections::BTreeMap;

use crate::bwmatrix::BwMatrix;
use crate::graph::Topology;
use crate::paths::{select_from_candidates, try_enumerate_paths, NvPath, PathSelection};

/// Flat storage for one `(src, dst, max_hops)` path set: path `i` is
/// `nodes[offsets[i]..offsets[i + 1]]`, in the same shortest-first order
/// [`crate::paths::enumerate_paths`] produces.
#[derive(Clone, Debug, Default)]
pub struct CachedPaths {
    nodes: Vec<usize>,
    offsets: Vec<usize>,
}

impl CachedPaths {
    fn build(paths: &[Vec<usize>]) -> CachedPaths {
        let mut nodes = Vec::with_capacity(paths.iter().map(Vec::len).sum());
        let mut offsets = Vec::with_capacity(paths.len() + 1);
        offsets.push(0);
        for p in paths {
            nodes.extend_from_slice(p);
            offsets.push(nodes.len());
        }
        CachedPaths { nodes, offsets }
    }

    /// Number of cached paths.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th path as a GPU sequence.
    pub fn path(&self, i: usize) -> &[usize] {
        &self.nodes[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterate the paths shortest-first.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> + Clone {
        (0..self.len()).map(|i| self.path(i))
    }
}

/// Cache statistics (tests and the `bench_paths` report read these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Epoch changes observed (each drops every cached entry at once).
    pub invalidations: u64,
}

/// Epoch-versioned path-set cache over one node's [`BwMatrix`].
#[derive(Clone, Debug, Default)]
pub struct PathCache {
    /// The matrix epoch the entries were enumerated at.
    epoch: u64,
    entries: BTreeMap<(usize, usize, usize), CachedPaths>,
    stats: CacheStats,
}

impl PathCache {
    pub fn new() -> PathCache {
        PathCache::default()
    }

    /// Drop every entry if `bw` has moved to a new topology epoch.
    fn sync(&mut self, bw: &BwMatrix) {
        if self.epoch != bw.epoch() {
            if !self.entries.is_empty() {
                self.stats.invalidations += 1;
            }
            self.entries.clear();
            self.epoch = bw.epoch();
        }
    }

    /// The loop-free path set `src → dst` within `max_hops`, enumerated on
    /// first use per topology epoch. Degenerate endpoints cache an empty
    /// set (the typed-error path of [`try_enumerate_paths`]).
    pub fn paths(
        &mut self,
        bw: &BwMatrix,
        src: usize,
        dst: usize,
        max_hops: usize,
    ) -> &CachedPaths {
        self.sync(bw);
        // Clamp the key space for out-of-range endpoints: they all map to
        // the same empty entry instead of growing the map unboundedly.
        let n = bw.len();
        let key = if src < n && dst < n {
            (src, dst, max_hops)
        } else {
            (n, n, 0)
        };
        #[cfg(feature = "audit")]
        grouter_audit::check("pathcache.epoch", self.epoch == bw.epoch(), || {
            format!(
                "cache serves epoch {} entries against matrix epoch {}",
                self.epoch,
                bw.epoch()
            )
        });
        match self.entries.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => {
                self.stats.hits += 1;
                e.into_mut()
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                self.stats.misses += 1;
                let enumerated = try_enumerate_paths(bw, src, dst, max_hops).unwrap_or_default();
                e.insert(CachedPaths::build(&enumerated))
            }
        }
    }

    /// Pre-enumerate every ordered GPU pair at `max_hops` (preset build
    /// time), so the first transfer of each pair already hits.
    pub fn warm(&mut self, bw: &BwMatrix, max_hops: usize) {
        for src in 0..bw.len() {
            for dst in 0..bw.len() {
                if src != dst {
                    self.paths(bw, src, dst, max_hops);
                }
            }
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached `(src, dst, max_hops)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A [`BwMatrix`] plus the cached, allocation-free Algorithm 1 state: the
/// path cache, a reusable [`PathSelection`] scratch, and a pool of recycled
/// route buffers. One selector per node; [`crate::PathLedger`] owns one.
#[derive(Clone, Debug)]
pub struct PathSelector {
    bwm: BwMatrix,
    cache: PathCache,
    scratch: PathSelection,
    spare: Vec<Vec<usize>>,
    /// Observability handle ([`PathSelector::set_recorder`]); disabled by
    /// default so steady-state selection pays one atomic load.
    rec: grouter_obs::Recorder,
}

impl PathSelector {
    pub fn new(bwm: BwMatrix) -> PathSelector {
        PathSelector {
            bwm,
            cache: PathCache::new(),
            scratch: PathSelection::default(),
            spare: Vec::new(),
            rec: grouter_obs::Recorder::disabled(),
        }
    }

    /// Attach an observability recorder: each [`PathSelector::select`] then
    /// emits a `topo.path_select` instant (cache hit/miss, pick count) and
    /// one `topo.path_pick` per chosen path with its reserved capacity.
    pub fn set_recorder(&mut self, rec: grouter_obs::Recorder) {
        self.rec = rec;
    }

    pub fn from_topology(topo: &Topology) -> PathSelector {
        PathSelector::new(BwMatrix::from_topology(topo))
    }

    pub fn bwm(&self) -> &BwMatrix {
        &self.bwm
    }

    /// Raw matrix access (reservations managed by the caller). Capacity
    /// changes made here still invalidate the cache via the matrix epoch.
    pub fn bwm_mut(&mut self) -> &mut BwMatrix {
        &mut self.bwm
    }

    pub fn cache(&self) -> &PathCache {
        &self.cache
    }

    /// Pre-enumerate all pairs at `max_hops` (see [`PathCache::warm`]).
    pub fn warm(&mut self, max_hops: usize) {
        self.cache.warm(&self.bwm, max_hops);
    }

    /// Degrade the directed edge `a → b` to `new_cap` bytes/s; cached path
    /// sets are invalidated via the epoch bump.
    pub fn degrade_link(&mut self, a: usize, b: usize, new_cap: f64) {
        self.bwm.degrade_link(a, b, new_cap);
    }

    /// Restore the directed edge `a → b` to its hardware baseline; cached
    /// path sets are invalidated via the epoch bump.
    pub fn restore_link(&mut self, a: usize, b: usize) {
        self.bwm.restore_link(a, b);
    }

    /// Mask a failed GPU out of path enumeration (see
    /// [`BwMatrix::mask_node`]); cached path sets are invalidated via the
    /// epoch bump.
    pub fn mask_node(&mut self, g: usize) {
        self.bwm.mask_node(g);
    }

    /// Readmit a recovered GPU (see [`BwMatrix::unmask_node`]).
    pub fn unmask_node(&mut self, g: usize) {
        self.bwm.unmask_node(g);
    }

    /// **Algorithm 1** over the cached path set: behaves exactly like
    /// [`crate::paths::select_parallel_paths`] (rates are reserved in the
    /// matrix; the caller releases them), but enumerates nothing and
    /// allocates nothing in steady state. The returned selection borrows
    /// the selector's scratch; clone paths out (or use
    /// [`PathSelector::recycle`] to return buffers) as needed.
    pub fn select(
        &mut self,
        src: usize,
        dst: usize,
        max_hops: usize,
        max_paths: usize,
    ) -> &PathSelection {
        self.cache.sync(&self.bwm);
        let stats_before = if self.rec.on(grouter_obs::Comp::Topo) {
            Some(self.cache.stats())
        } else {
            None
        };
        let candidates = self.cache.paths(&self.bwm, src, dst, max_hops);
        // Cached candidate sets must stay re-derivable: a fresh enumeration
        // over the same matrix epoch yields the identical path list (sets
        // depend on the capacity matrix, not on reservation residuals).
        #[cfg(feature = "audit")]
        if grouter_audit::every("pathcache.rederive", 32) {
            let fresh = try_enumerate_paths(&self.bwm, src, dst, max_hops).unwrap_or_default();
            let same = fresh.len() == candidates.len()
                && fresh
                    .iter()
                    .enumerate()
                    .all(|(i, p)| candidates.path(i) == &p[..]);
            grouter_audit::check("pathcache.rederive", same, || {
                format!(
                    "cached {src}->{dst} path set (len {}) diverged from fresh enumeration (len {})",
                    candidates.len(),
                    fresh.len()
                )
            });
        }
        select_from_candidates(
            &mut self.bwm,
            src,
            dst,
            max_paths,
            candidates.iter(),
            &mut self.scratch,
            &mut self.spare,
        );
        if let Some(before) = stats_before {
            let after = self.cache.stats();
            let hit = after.hits > before.hits;
            self.rec.count(
                grouter_obs::Comp::Topo,
                if hit { "cache_hit" } else { "cache_miss" },
                1,
            );
            let total: f64 = self.scratch.paths.iter().map(|p| p.rate).sum();
            self.rec.instant(
                grouter_obs::Comp::Topo,
                "path_select",
                grouter_obs::Ids::NONE,
                vec![
                    ("src", src.into()),
                    ("dst", dst.into()),
                    ("cache_hit", hit.into()),
                    ("paths", self.scratch.paths.len().into()),
                    ("rate_total", total.into()),
                ],
            );
            for (idx, p) in self.scratch.paths.iter().enumerate() {
                self.rec.instant(
                    grouter_obs::Comp::Topo,
                    "path_pick",
                    grouter_obs::Ids::NONE,
                    vec![
                        ("src", src.into()),
                        ("dst", dst.into()),
                        ("idx", idx.into()),
                        ("hops", p.gpus.len().saturating_sub(1).into()),
                        ("rate", p.rate.into()),
                    ],
                );
            }
        }
        &self.scratch
    }

    /// The most recent [`PathSelector::select`] result.
    pub fn last_selection(&self) -> &PathSelection {
        &self.scratch
    }

    /// Undo the reservations of the most recent `select` (benches and the
    /// oracle tests use this to restore the idle matrix between probes).
    pub fn release_last(&mut self) {
        for p in &self.scratch.paths {
            self.bwm.release_path(&p.gpus, p.rate);
        }
    }

    /// Return route buffers (e.g. released reservations) to the spare pool
    /// so future selections reuse them instead of allocating.
    pub fn recycle(&mut self, paths: Vec<NvPath>) {
        self.spare.extend(paths.into_iter().map(|p| p.gpus));
    }

    /// Take ownership of the most recent `select` result. The scratch is
    /// left empty; the moved route buffers eventually come back through
    /// [`PathSelector::recycle`] (e.g. on ledger release), keeping the
    /// steady state allocation-free.
    pub fn take_last_selection(&mut self) -> Vec<NvPath> {
        std::mem::take(&mut self.scratch.paths)
    }

    /// First cached path `s → d` within `max_hops` that avoids the directed
    /// edge `avoid` and has at least `rate` residual — the rebalance
    /// fallback of the ledger (§4.3.3 direct-path priority), served from
    /// the cache instead of a fresh DFS. The returned buffer comes from the
    /// spare pool; hand it back via [`PathSelector::recycle`] eventually.
    pub fn find_alternative(
        &mut self,
        s: usize,
        d: usize,
        max_hops: usize,
        avoid: (usize, usize),
        rate: f64,
    ) -> Option<Vec<usize>> {
        self.cache.sync(&self.bwm);
        let bwm = &self.bwm;
        let found = self
            .cache
            .paths(bwm, s, d, max_hops)
            .iter()
            .filter(|p| !p.windows(2).any(|h| h[0] == avoid.0 && h[1] == avoid.1))
            .find(|p| bwm.path_residual(p) >= rate)?;
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(found);
        Some(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::select_parallel_paths;
    use crate::presets;
    use grouter_sim::FlowNet;

    fn v100() -> BwMatrix {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 1, &mut net);
        BwMatrix::from_topology(&t)
    }

    #[test]
    fn cached_selection_matches_fresh_dfs_idle_and_contended() {
        let mut fresh = v100();
        let mut sel = PathSelector::new(v100());
        for (src, dst) in [(0usize, 1usize), (1, 4), (0, 3), (2, 7)] {
            let expect = select_parallel_paths(&mut fresh, src, dst, 3, 8);
            let got = sel.select(src, dst, 3, 8);
            assert_eq!(got.paths, expect.paths, "({src},{dst}) diverged");
        }
        // Both matrices now carry the same contention; keep comparing.
        let expect = select_parallel_paths(&mut fresh, 3, 0, 3, 8);
        let got = sel.select(3, 0, 3, 8);
        assert_eq!(got.paths, expect.paths, "contended case diverged");
    }

    #[test]
    fn warm_cache_serves_hits_only() {
        let mut sel = PathSelector::new(v100());
        sel.warm(3);
        let misses = sel.cache().stats().misses;
        assert_eq!(sel.cache().len(), 8 * 7);
        sel.select(0, 1, 3, 8);
        sel.release_last();
        sel.select(4, 2, 3, 8);
        sel.release_last();
        let s = sel.cache().stats();
        assert_eq!(s.misses, misses, "warm cache must not re-enumerate");
        assert!(s.hits >= 2);
    }

    #[test]
    fn degradation_invalidates_once_and_reenumerates() {
        let mut sel = PathSelector::new(v100());
        sel.warm(3);
        let before = sel.cache().stats();
        // Kill the 0→3 link entirely: paths through it must disappear.
        sel.degrade_link(0, 3, 0.0);
        let got = sel.select(0, 3, 3, 8).paths.clone();
        sel.release_last();
        assert!(got.iter().all(|p| p.gpus != vec![0, 3]));
        let after = sel.cache().stats();
        assert_eq!(after.invalidations, before.invalidations + 1);
        assert!(after.misses > before.misses);
        // Equivalent fresh DFS on an equally degraded matrix agrees.
        let mut fresh = v100();
        fresh.degrade_link(0, 3, 0.0);
        let expect = select_parallel_paths(&mut fresh, 0, 3, 3, 8);
        assert_eq!(got, expect.paths);
    }

    #[test]
    fn degrade_restore_roundtrip_invalidates_cache_both_ways() {
        let mut sel = PathSelector::new(v100());
        sel.warm(3);
        let base = sel.select(0, 3, 3, 8).paths.clone();
        sel.release_last();
        // Degrade: the direct 0→3 edge disappears from the selection.
        sel.degrade_link(0, 3, 0.0);
        let degraded = sel.select(0, 3, 3, 8).paths.clone();
        sel.release_last();
        assert!(degraded.iter().all(|p| p.gpus != vec![0, 3]));
        let inv_after_degrade = sel.cache().stats().invalidations;
        // Restore: the epoch bumps again, the cache re-derives, and the
        // selection returns exactly to the healthy baseline. Before
        // restore_link existed, a "restore" via degrade_link required the
        // caller to remember the hardware capacity; the round trip is now
        // closed in the matrix itself.
        sel.restore_link(0, 3);
        let restored = sel.select(0, 3, 3, 8).paths.clone();
        sel.release_last();
        assert_eq!(
            sel.cache().stats().invalidations,
            inv_after_degrade + 1,
            "restore must invalidate cached path sets"
        );
        assert_eq!(restored, base, "restored selection ≡ healthy selection");
    }

    #[test]
    fn masked_node_disappears_from_selection_and_returns() {
        let mut sel = PathSelector::new(v100());
        let base = sel.select(0, 1, 3, 8).paths.clone();
        sel.release_last();
        sel.mask_node(3);
        let masked = sel.select(0, 1, 3, 8).paths.clone();
        sel.release_last();
        assert!(
            masked.iter().all(|p| !p.gpus.contains(&3)),
            "masked GPU must not appear on any selected route"
        );
        assert!(sel.select(0, 3, 3, 8).is_empty(), "no path into a dead GPU");
        sel.unmask_node(3);
        let back = sel.select(0, 1, 3, 8).paths.clone();
        sel.release_last();
        assert_eq!(back, base);
    }

    #[test]
    fn take_and_recycle_keep_selection_correct() {
        let mut sel = PathSelector::new(v100());
        let first = sel.select(0, 1, 3, 8).paths.clone();
        let taken = sel.take_last_selection();
        assert_eq!(taken, first);
        assert!(sel.last_selection().is_empty());
        for p in &taken {
            sel.bwm_mut().release_path(&p.gpus, p.rate);
        }
        sel.recycle(taken);
        // Second run over recycled buffers gives the identical result.
        let second = sel.select(0, 1, 3, 8).paths.clone();
        assert_eq!(second, first);
    }

    #[test]
    fn degenerate_endpoints_cache_one_empty_entry() {
        let mut sel = PathSelector::new(v100());
        assert!(sel.select(9, 0, 3, 8).is_empty());
        assert!(sel.select(0, 9, 3, 8).is_empty());
        assert!(sel.select(5, 5, 3, 8).is_empty());
        // All degenerate keys collapse to a single cache entry.
        assert!(sel.cache().len() <= 2);
    }
}
