//! NVLink path enumeration and **Algorithm 1**: contention-aware parallel
//! path selection (§4.3.3).
//!
//! For a weakly connected GPU pair, GROUTER aggregates point-to-point
//! bandwidth by routing chunks over several NVLink paths in parallel — e.g.
//! `GPU4→GPU1` plus `GPU4→GPU6→GPU7→GPU1` in Fig. 9(b). The selection
//! algorithm prefers completely idle paths (no contention with concurrent
//! functions); once the source's outgoing or the destination's incoming
//! bandwidth saturates it stops; if spare endpoint bandwidth remains it
//! shares partially busy paths ("bandwidth balancing").

use crate::bwmatrix::BwMatrix;

/// One multi-hop NVLink route: a GPU sequence from source to destination.
#[derive(Clone, Debug, PartialEq)]
pub struct NvPath {
    /// GPUs visited, source first, destination last (≥ 2 entries).
    pub gpus: Vec<usize>,
    /// Bandwidth reserved on this path (bytes/s).
    pub rate: f64,
}

impl NvPath {
    /// Number of NVLink hops.
    pub fn hops(&self) -> usize {
        self.gpus.len() - 1
    }
}

/// Result of Algorithm 1 for one transfer.
#[derive(Clone, Debug, Default)]
pub struct PathSelection {
    /// Selected paths with their reserved rates, in selection order (direct
    /// paths first).
    pub paths: Vec<NvPath>,
}

impl PathSelection {
    /// Aggregate reserved bandwidth across all selected paths.
    pub fn total_rate(&self) -> f64 {
        self.paths.iter().map(|p| p.rate).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// A transfer endpoint pair Algorithm 1 cannot route: out-of-range GPU
/// indices or a self-loop. Produced by [`try_enumerate_paths`]; the
/// non-`try` entry points degrade to an empty path set / empty selection so
/// a misplaced workflow spec falls back to the host path instead of
/// aborting the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BadEndpoints {
    pub src: usize,
    pub dst: usize,
    /// GPUs on the node.
    pub n: usize,
}

impl std::fmt::Display for BadEndpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "degenerate NVLink endpoints: src {} dst {} on {} GPUs",
            self.src, self.dst, self.n
        )
    }
}

impl std::error::Error for BadEndpoints {}

/// Validate a `(src, dst)` endpoint pair against an `n`-GPU node.
pub fn check_endpoints(n: usize, src: usize, dst: usize) -> Result<(), BadEndpoints> {
    if src < n && dst < n && src != dst {
        Ok(())
    } else {
        Err(BadEndpoints { src, dst, n })
    }
}

/// Enumerate all loop-free paths `src → dst` of at most `max_hops` hops over
/// edges with positive hardware capacity, ordered shortest-first (ties broken
/// by larger hardware bottleneck, then lexicographically). This is the
/// `next_shortest_path` oracle of Algorithm 1; with ≤ 8 GPUs per server the
/// enumeration is tiny and is what lets real GROUTER keep selection below
/// 10 µs.
///
/// Degenerate endpoints yield an empty path set (see [`try_enumerate_paths`]
/// for the typed error).
pub fn enumerate_paths(bw: &BwMatrix, src: usize, dst: usize, max_hops: usize) -> Vec<Vec<usize>> {
    try_enumerate_paths(bw, src, dst, max_hops).unwrap_or_default()
}

/// [`enumerate_paths`] with a typed error for degenerate endpoints.
pub fn try_enumerate_paths(
    bw: &BwMatrix,
    src: usize,
    dst: usize,
    max_hops: usize,
) -> Result<Vec<Vec<usize>>, BadEndpoints> {
    let n = bw.len();
    check_endpoints(n, src, dst)?;
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut stack = vec![src];
    let mut visited = vec![false; n];
    visited[src] = true;
    dfs(bw, dst, max_hops, &mut stack, &mut visited, &mut out);
    out.sort_by(|a, b| {
        let ka = (a.len(), std::cmp::Reverse(OrdF64(min_capacity(bw, a))));
        let kb = (b.len(), std::cmp::Reverse(OrdF64(min_capacity(bw, b))));
        ka.cmp(&kb).then_with(|| a.cmp(b))
    });
    Ok(out)
}

fn dfs(
    bw: &BwMatrix,
    dst: usize,
    max_hops: usize,
    stack: &mut Vec<usize>,
    visited: &mut [bool],
    out: &mut Vec<Vec<usize>>,
) {
    let Some(&cur) = stack.last() else {
        return; // callers seed the stack with the source GPU
    };
    if cur == dst {
        out.push(stack.clone());
        return;
    }
    if stack.len() > max_hops {
        return;
    }
    for next in 0..bw.len() {
        if !visited[next] && bw.capacity(cur, next) > 0.0 {
            visited[next] = true;
            stack.push(next);
            dfs(bw, dst, max_hops, stack, visited, out);
            stack.pop();
            visited[next] = false;
        }
    }
}

fn min_capacity(bw: &BwMatrix, path: &[usize]) -> f64 {
    path.windows(2)
        .map(|h| bw.capacity(h[0], h[1]))
        .fold(f64::INFINITY, f64::min)
}

/// Total-order wrapper for non-NaN floats used in sort keys.
#[derive(PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// **Algorithm 1** — contention-aware parallel path selection.
///
/// Reserves bandwidth in `bw` for every returned path (the caller releases it
/// via [`BwMatrix::release_path`] when the transfer finishes).
///
/// * Phase 1 walks paths shortest-first and takes every path whose edges are
///   all *idle*, reserving the path's bottleneck bandwidth `b_min`, until the
///   source's outgoing or destination's incoming bandwidth is exhausted.
/// * Phase 2 ("bandwidth balancing", lines 8–14) runs only if both endpoints
///   still have spare bandwidth: partially busy paths are shared by
///   reserving whatever residual bottleneck they retain.
///
/// `max_paths` bounds fan-out (chunk pipelining cost grows per path);
/// `max_hops` bounds detour length (the paper's example uses 3 hops).
pub fn select_parallel_paths(
    bw: &mut BwMatrix,
    src: usize,
    dst: usize,
    max_hops: usize,
    max_paths: usize,
) -> PathSelection {
    let mut selection = PathSelection::default();
    if max_paths == 0 {
        return selection;
    }
    let candidates = enumerate_paths(bw, src, dst, max_hops);
    let mut spare = Vec::new();
    select_from_candidates(
        bw,
        src,
        dst,
        max_paths,
        candidates.iter().map(|p| p.as_slice()),
        &mut selection,
        &mut spare,
    );
    selection
}

/// The selection core of Algorithm 1, shared by [`select_parallel_paths`]
/// (fresh DFS candidates) and the cached selector
/// ([`crate::cache::PathSelector`]). Writes the result into `out` (cleared
/// first); selected routes reuse buffers popped from `spare` so steady-state
/// selection allocates nothing.
pub(crate) fn select_from_candidates<'a, I>(
    bw: &mut BwMatrix,
    src: usize,
    dst: usize,
    max_paths: usize,
    candidates: I,
    out: &mut PathSelection,
    spare: &mut Vec<Vec<usize>>,
) where
    I: Iterator<Item = &'a [usize]> + Clone,
{
    const EPS: f64 = 1.0; // bytes/s — below this an edge counts as saturated
    spare.extend(out.paths.drain(..).map(|p| p.gpus));
    if max_paths == 0 {
        return;
    }
    let take = |out: &mut PathSelection, spare: &mut Vec<Vec<usize>>, path: &[usize], rate| {
        let mut gpus = spare.pop().unwrap_or_default();
        gpus.clear();
        gpus.extend_from_slice(path);
        out.paths.push(NvPath { gpus, rate });
    };

    // Phase 1: fully idle paths.
    for path in candidates.clone() {
        if out.paths.len() >= max_paths {
            return;
        }
        if bw.out_bw(src) <= EPS || bw.in_bw(dst) <= EPS {
            return;
        }
        let all_idle = path.windows(2).all(|h| bw.is_idle(h[0], h[1]));
        if !all_idle {
            continue;
        }
        let rate = bw.path_residual(path);
        if rate <= EPS {
            continue;
        }
        bw.occupy_path(path, rate);
        take(out, spare, path, rate);
    }

    // Phase 2: share partially busy paths while the endpoints allow.
    for path in candidates {
        if out.paths.len() >= max_paths {
            break;
        }
        if bw.out_bw(src) <= EPS || bw.in_bw(dst) <= EPS {
            break;
        }
        // Skip paths already selected in phase 1.
        if out.paths.iter().any(|p| p.gpus.as_slice() == path) {
            continue;
        }
        let rate = bw.path_residual(path);
        if rate <= EPS {
            continue;
        }
        bw.occupy_path(path, rate);
        take(out, spare, path, rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Topology;
    use crate::presets;
    use grouter_sim::{params, FlowNet};

    fn v100() -> BwMatrix {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 1, &mut net);
        BwMatrix::from_topology(&t)
    }

    #[test]
    fn enumerate_prefers_direct_then_wider() {
        let bw = v100();
        let paths = enumerate_paths(&bw, 0, 3, 3);
        // Direct 0→3 (48 GB/s) first.
        assert_eq!(paths[0], vec![0, 3]);
        // All paths are simple and start/end correctly.
        for p in &paths {
            assert_eq!(*p.first().unwrap(), 0);
            assert_eq!(*p.last().unwrap(), 3);
            let mut seen = std::collections::HashSet::new();
            assert!(p.iter().all(|g| seen.insert(*g)), "loop in {p:?}");
        }
    }

    #[test]
    fn enumerate_respects_max_hops() {
        let bw = v100();
        for p in enumerate_paths(&bw, 0, 7, 2) {
            assert!(p.len() <= 3);
        }
        // 0 and 7 are not adjacent: no 1-hop path exists.
        assert!(enumerate_paths(&bw, 0, 7, 1).is_empty());
    }

    #[test]
    fn unconnected_pair_uses_multi_hop() {
        let bw = v100();
        // GPU1 and GPU4 have no direct NVLink (Fig. 6).
        assert_eq!(bw.capacity(1, 4), 0.0);
        let paths = enumerate_paths(&bw, 1, 4, 2);
        assert!(!paths.is_empty());
        assert!(paths.iter().all(|p| p.len() >= 3));
    }

    #[test]
    fn selection_aggregates_disjoint_idle_paths() {
        let mut bw = v100();
        // Weak pair 0→1: direct is a single 24 GB/s link; parallel paths
        // must push the aggregate beyond the direct capacity (Fig. 9b).
        let sel = select_parallel_paths(&mut bw, 0, 1, 3, 8);
        assert!(sel.paths.len() >= 2, "expected parallel paths, got {sel:?}");
        assert_eq!(sel.paths[0].gpus, vec![0, 1], "direct path first");
        assert!(
            sel.total_rate() >= 2.0 * params::NVLINK_V100_SINGLE,
            "aggregate {} too small",
            sel.total_rate()
        );
        // Reservations actually landed in the matrix.
        assert!(!bw.is_idle(0, 1));
    }

    #[test]
    fn selection_stops_at_endpoint_saturation() {
        let mut bw = v100();
        let sel = select_parallel_paths(&mut bw, 0, 1, 3, 64);
        let total = sel.total_rate();
        // Can never exceed either endpoint's aggregate link bandwidth.
        assert!(total <= 6.0 * params::NVLINK_V100_SINGLE + 1.0);
        // Selected paths reserve exactly what the matrix lost.
        let spent_out: f64 = 6.0 * params::NVLINK_V100_SINGLE - bw.out_bw(0);
        let direct_and_first_hop: f64 = sel.paths.iter().map(|p| p.rate).sum();
        assert!((spent_out - direct_and_first_hop).abs() < 1.0);
    }

    #[test]
    fn busy_paths_shared_only_when_endpoints_unsaturated() {
        let mut bw = v100();
        // Saturate the direct 0→1 link with "another function".
        bw.occupy_path(&[0, 1], params::NVLINK_V100_SINGLE);
        let sel = select_parallel_paths(&mut bw, 0, 1, 3, 8);
        // The direct path must not be selected (no residual).
        assert!(sel.paths.iter().all(|p| p.gpus != vec![0, 1]));
        assert!(sel.total_rate() > 0.0);
    }

    #[test]
    fn partially_busy_path_shared_in_phase_two() {
        let mut bw = v100();
        // Leave 10 GB/s residual on the direct edge.
        bw.occupy_path(&[0, 1], params::NVLINK_V100_SINGLE - 10e9);
        let sel = select_parallel_paths(&mut bw, 0, 1, 2, 8);
        let direct = sel.paths.iter().find(|p| p.gpus == vec![0, 1]);
        let d = direct.expect("direct path should be shared in phase 2");
        assert!((d.rate - 10e9).abs() < 1.0);
    }

    #[test]
    fn nvswitch_pair_selects_direct_port_path() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_a100(), 1, &mut net);
        let mut bw = BwMatrix::from_topology(&t);
        let sel = select_parallel_paths(&mut bw, 0, 5, 3, 4);
        assert_eq!(sel.paths[0].gpus, vec![0, 5]);
        assert_eq!(sel.paths[0].rate, params::NVLINK_A100_PORT);
    }

    #[test]
    fn no_paths_on_pcie_only_machines() {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::a10x4(), 1, &mut net);
        let mut bw = BwMatrix::from_topology(&t);
        let sel = select_parallel_paths(&mut bw, 0, 1, 3, 4);
        assert!(sel.is_empty());
    }

    #[test]
    fn max_paths_bounds_fanout() {
        let mut bw = v100();
        let sel = select_parallel_paths(&mut bw, 0, 1, 3, 2);
        assert!(sel.paths.len() <= 2);
    }

    #[test]
    fn degenerate_endpoints_degrade_to_empty_not_panic() {
        let mut bw = v100();
        // Self-loop and out-of-range endpoints: a misplaced workflow spec
        // must fall back to an empty path set, not abort the process.
        assert!(enumerate_paths(&bw, 3, 3, 3).is_empty());
        assert!(enumerate_paths(&bw, 0, 42, 3).is_empty());
        assert!(enumerate_paths(&bw, 42, 0, 3).is_empty());
        assert_eq!(
            try_enumerate_paths(&bw, 3, 3, 3).unwrap_err(),
            BadEndpoints {
                src: 3,
                dst: 3,
                n: 8
            }
        );
        assert!(check_endpoints(8, 0, 7).is_ok());
        let sel = select_parallel_paths(&mut bw, 7, 7, 3, 4);
        assert!(sel.is_empty());
        // The matrix is untouched by the failed selection.
        assert_eq!(bw.out_bw(7), 6.0 * params::NVLINK_V100_SINGLE);
    }

    #[test]
    fn release_restores_idle_state() {
        let mut bw = v100();
        let sel = select_parallel_paths(&mut bw, 0, 1, 3, 8);
        for p in &sel.paths {
            bw.release_path(&p.gpus, p.rate);
        }
        assert!(bw.is_idle(0, 1));
        assert_eq!(bw.out_bw(0), 6.0 * params::NVLINK_V100_SINGLE);
    }
}
