//! The global bandwidth-usage matrix `BW(g, b)` of §4.3.3.
//!
//! GROUTER "maintains a bandwidth usage matrix … continuously monitors and
//! updates global bandwidth usage in real-time on this matrix, which is used
//! to guide path selection". [`BwMatrix`] tracks, per directed GPU pair of
//! one node, how much NVLink bandwidth is still unreserved. Algorithm 1
//! occupies a path by subtracting the path's bottleneck bandwidth
//! `b_min(path)` from every edge on it, and releases it when the transfer
//! completes.

use crate::graph::Topology;

/// Residual directed NVLink bandwidth between the GPUs of one node.
#[derive(Clone, Debug)]
pub struct BwMatrix {
    n: usize,
    /// Hardware capacity of the directed edge `a → b` (0 = unconnected).
    topo: Vec<f64>,
    /// Unreserved capacity of the directed edge `a → b`.
    residual: Vec<f64>,
}

impl BwMatrix {
    /// Snapshot the NVLink capacities of `topo` (identical for every node).
    pub fn from_topology(topo: &Topology) -> BwMatrix {
        let n = topo.gpus_per_node();
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    m[a * n + b] = topo.nvlink_bw(a, b);
                }
            }
        }
        BwMatrix {
            n,
            topo: m.clone(),
            residual: m,
        }
    }

    /// Number of GPUs.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Hardware capacity of `a → b`.
    pub fn capacity(&self, a: usize, b: usize) -> f64 {
        self.topo[a * self.n + b]
    }

    /// Unreserved capacity of `a → b`.
    pub fn residual(&self, a: usize, b: usize) -> f64 {
        self.residual[a * self.n + b]
    }

    /// `true` when the edge exists and no reservation touches it.
    pub fn is_idle(&self, a: usize, b: usize) -> bool {
        let c = self.capacity(a, b);
        c > 0.0 && (self.residual(a, b) - c).abs() < 1e-6
    }

    /// Total unreserved bandwidth leaving `g` (`BW_out` in Algorithm 1).
    pub fn out_bw(&self, g: usize) -> f64 {
        (0..self.n).map(|b| self.residual(g, b)).sum()
    }

    /// Total unreserved bandwidth entering `g` (`BW_in` in Algorithm 1).
    pub fn in_bw(&self, g: usize) -> f64 {
        (0..self.n).map(|a| self.residual(a, g)).sum()
    }

    /// Reserve `amount` bytes/s on every edge of `path` (a GPU sequence).
    /// Residuals clamp at zero: over-reservation is a scheduler bug upstream,
    /// but the matrix must never go negative.
    pub fn occupy_path(&mut self, path: &[usize], amount: f64) {
        for hop in path.windows(2) {
            let idx = hop[0] * self.n + hop[1];
            self.residual[idx] = (self.residual[idx] - amount).max(0.0);
        }
    }

    /// Release a previous reservation. Residuals clamp at the hardware
    /// capacity.
    pub fn release_path(&mut self, path: &[usize], amount: f64) {
        for hop in path.windows(2) {
            let idx = hop[0] * self.n + hop[1];
            self.residual[idx] = (self.residual[idx] + amount).min(self.topo[idx]);
        }
    }

    /// Bottleneck residual bandwidth along `path`, or 0 if any edge is
    /// missing/saturated.
    pub fn path_residual(&self, path: &[usize]) -> f64 {
        if path.len() < 2 {
            return 0.0;
        }
        path.windows(2)
            .map(|hop| self.residual(hop[0], hop[1]))
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use grouter_sim::{params, FlowNet};

    fn v100_matrix() -> BwMatrix {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 1, &mut net);
        BwMatrix::from_topology(&t)
    }

    #[test]
    fn capacities_mirror_topology() {
        let m = v100_matrix();
        assert_eq!(m.capacity(0, 3), params::NVLINK_V100_DOUBLE);
        assert_eq!(m.capacity(0, 1), params::NVLINK_V100_SINGLE);
        assert_eq!(m.capacity(0, 5), 0.0);
        assert_eq!(m.capacity(0, 0), 0.0);
    }

    #[test]
    fn occupy_and_release_roundtrip() {
        let mut m = v100_matrix();
        let path = [0usize, 3, 7];
        let full = m.path_residual(&path);
        assert_eq!(full, params::NVLINK_V100_DOUBLE);
        m.occupy_path(&path, 10e9);
        assert_eq!(m.residual(0, 3), params::NVLINK_V100_DOUBLE - 10e9);
        assert!(!m.is_idle(0, 3));
        // Reverse direction untouched.
        assert!(m.is_idle(3, 0));
        m.release_path(&path, 10e9);
        assert!(m.is_idle(0, 3));
        assert!(m.is_idle(3, 7));
    }

    #[test]
    fn residuals_clamp() {
        let mut m = v100_matrix();
        m.occupy_path(&[0, 1], 1e18);
        assert_eq!(m.residual(0, 1), 0.0);
        m.release_path(&[0, 1], 1e18);
        assert_eq!(m.residual(0, 1), params::NVLINK_V100_SINGLE);
    }

    #[test]
    fn out_and_in_bandwidth_sums() {
        let m = v100_matrix();
        // GPU 0 has six link-equivalents: 24+24+48+48.
        assert_eq!(m.out_bw(0), 6.0 * params::NVLINK_V100_SINGLE);
        assert_eq!(m.in_bw(0), 6.0 * params::NVLINK_V100_SINGLE);
    }

    #[test]
    fn path_residual_is_bottleneck() {
        let mut m = v100_matrix();
        // 0→3 is 48, 3→1 is 24 → bottleneck 24.
        assert_eq!(m.path_residual(&[0, 3, 1]), params::NVLINK_V100_SINGLE);
        m.occupy_path(&[0, 3], 40e9);
        assert_eq!(m.path_residual(&[0, 3, 1]), 8e9);
        // Single-vertex "path" carries nothing.
        assert_eq!(m.path_residual(&[0]), 0.0);
    }
}
