//! The global bandwidth-usage matrix `BW(g, b)` of §4.3.3.
//!
//! GROUTER "maintains a bandwidth usage matrix … continuously monitors and
//! updates global bandwidth usage in real-time on this matrix, which is used
//! to guide path selection". [`BwMatrix`] tracks, per directed GPU pair of
//! one node, how much NVLink bandwidth is still unreserved. Algorithm 1
//! occupies a path by subtracting the path's bottleneck bandwidth
//! `b_min(path)` from every edge on it, and releases it when the transfer
//! completes.

use crate::graph::Topology;

/// Residual directed NVLink bandwidth between the GPUs of one node.
#[derive(Clone, Debug)]
pub struct BwMatrix {
    n: usize,
    /// Hardware capacity of the directed edge `a → b` (0 = unconnected).
    topo: Vec<f64>,
    /// Unreserved capacity of the directed edge `a → b`.
    residual: Vec<f64>,
    /// Topology epoch: bumped whenever a hardware *capacity* changes (link
    /// degradation). Reservations never bump it — path sets depend only on
    /// capacities, so caches keyed on the epoch stay valid across arbitrary
    /// occupy/release churn.
    epoch: u64,
}

impl BwMatrix {
    /// Snapshot the NVLink capacities of `topo` (identical for every node).
    pub fn from_topology(topo: &Topology) -> BwMatrix {
        let n = topo.gpus_per_node();
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    m[a * n + b] = topo.nvlink_bw(a, b);
                }
            }
        }
        BwMatrix {
            n,
            topo: m.clone(),
            residual: m,
            epoch: 0,
        }
    }

    /// Current topology epoch (see the field docs). Path caches compare
    /// against this to decide whether their enumerations are still valid.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Degrade (or restore) the hardware capacity of the directed edge
    /// `a → b` to `new_cap` bytes/s, preserving the amount currently
    /// reserved on the edge. Bumps the topology epoch exactly once per call
    /// that actually changes the capacity, invalidating cached path sets.
    pub fn degrade_link(&mut self, a: usize, b: usize, new_cap: f64) {
        let idx = a * self.n + b;
        let new_cap = new_cap.max(0.0);
        if self.topo[idx] == new_cap {
            return;
        }
        let reserved = self.topo[idx] - self.residual[idx];
        self.topo[idx] = new_cap;
        self.residual[idx] = (new_cap - reserved).clamp(0.0, new_cap);
        self.epoch += 1;
    }

    /// Number of GPUs.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Hardware capacity of `a → b`.
    pub fn capacity(&self, a: usize, b: usize) -> f64 {
        self.topo[a * self.n + b]
    }

    /// Unreserved capacity of `a → b`.
    pub fn residual(&self, a: usize, b: usize) -> f64 {
        self.residual[a * self.n + b]
    }

    /// `true` when the edge exists and no reservation touches it.
    pub fn is_idle(&self, a: usize, b: usize) -> bool {
        let c = self.capacity(a, b);
        c > 0.0 && (self.residual(a, b) - c).abs() < 1e-6
    }

    /// Total unreserved bandwidth leaving `g` (`BW_out` in Algorithm 1).
    pub fn out_bw(&self, g: usize) -> f64 {
        (0..self.n).map(|b| self.residual(g, b)).sum()
    }

    /// Total unreserved bandwidth entering `g` (`BW_in` in Algorithm 1).
    pub fn in_bw(&self, g: usize) -> f64 {
        (0..self.n).map(|a| self.residual(a, g)).sum()
    }

    /// Reserve `amount` bytes/s on every edge of `path` (a GPU sequence).
    /// Residuals clamp at zero: over-reservation is a scheduler bug upstream,
    /// but the matrix must never go negative.
    pub fn occupy_path(&mut self, path: &[usize], amount: f64) {
        for hop in path.windows(2) {
            let idx = hop[0] * self.n + hop[1];
            self.residual[idx] = (self.residual[idx] - amount).max(0.0);
        }
    }

    /// Release a previous reservation. Residuals clamp at the hardware
    /// capacity.
    pub fn release_path(&mut self, path: &[usize], amount: f64) {
        for hop in path.windows(2) {
            let idx = hop[0] * self.n + hop[1];
            self.residual[idx] = (self.residual[idx] + amount).min(self.topo[idx]);
        }
    }

    /// Bottleneck residual bandwidth along `path`, or 0 if any edge is
    /// missing/saturated.
    pub fn path_residual(&self, path: &[usize]) -> f64 {
        if path.len() < 2 {
            return 0.0;
        }
        path.windows(2)
            .map(|hop| self.residual(hop[0], hop[1]))
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use grouter_sim::{params, FlowNet};

    fn v100_matrix() -> BwMatrix {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 1, &mut net);
        BwMatrix::from_topology(&t)
    }

    #[test]
    fn capacities_mirror_topology() {
        let m = v100_matrix();
        assert_eq!(m.capacity(0, 3), params::NVLINK_V100_DOUBLE);
        assert_eq!(m.capacity(0, 1), params::NVLINK_V100_SINGLE);
        assert_eq!(m.capacity(0, 5), 0.0);
        assert_eq!(m.capacity(0, 0), 0.0);
    }

    #[test]
    fn occupy_and_release_roundtrip() {
        let mut m = v100_matrix();
        let path = [0usize, 3, 7];
        let full = m.path_residual(&path);
        assert_eq!(full, params::NVLINK_V100_DOUBLE);
        m.occupy_path(&path, 10e9);
        assert_eq!(m.residual(0, 3), params::NVLINK_V100_DOUBLE - 10e9);
        assert!(!m.is_idle(0, 3));
        // Reverse direction untouched.
        assert!(m.is_idle(3, 0));
        m.release_path(&path, 10e9);
        assert!(m.is_idle(0, 3));
        assert!(m.is_idle(3, 7));
    }

    #[test]
    fn residuals_clamp() {
        let mut m = v100_matrix();
        m.occupy_path(&[0, 1], 1e18);
        assert_eq!(m.residual(0, 1), 0.0);
        m.release_path(&[0, 1], 1e18);
        assert_eq!(m.residual(0, 1), params::NVLINK_V100_SINGLE);
    }

    #[test]
    fn out_and_in_bandwidth_sums() {
        let m = v100_matrix();
        // GPU 0 has six link-equivalents: 24+24+48+48.
        assert_eq!(m.out_bw(0), 6.0 * params::NVLINK_V100_SINGLE);
        assert_eq!(m.in_bw(0), 6.0 * params::NVLINK_V100_SINGLE);
    }

    #[test]
    fn degrade_bumps_epoch_once_and_preserves_reservations() {
        let mut m = v100_matrix();
        assert_eq!(m.epoch(), 0);
        m.occupy_path(&[0, 3], 10e9);
        m.degrade_link(0, 3, 30e9);
        assert_eq!(m.epoch(), 1, "one bump per degradation event");
        assert_eq!(m.capacity(0, 3), 30e9);
        // The 10 GB/s reservation survives: residual = 30 - 10.
        assert_eq!(m.residual(0, 3), 20e9);
        // No-op degradation (same capacity) does not bump the epoch.
        m.degrade_link(0, 3, 30e9);
        assert_eq!(m.epoch(), 1);
        // Release returns the edge exactly to the degraded baseline.
        m.release_path(&[0, 3], 10e9);
        assert_eq!(m.residual(0, 3), 30e9);
        assert!(m.is_idle(0, 3));
    }

    #[test]
    fn degrade_below_reserved_clamps_and_roundtrips() {
        let mut m = v100_matrix();
        m.occupy_path(&[0, 3], 40e9);
        m.degrade_link(0, 3, 20e9);
        assert_eq!(m.residual(0, 3), 0.0, "reserved exceeds new capacity");
        m.release_path(&[0, 3], 40e9);
        assert_eq!(m.residual(0, 3), 20e9, "release clamps at new capacity");
        // Degrading to zero removes the edge from path enumeration.
        m.degrade_link(0, 3, 0.0);
        assert_eq!(m.capacity(0, 3), 0.0);
        assert_eq!(m.epoch(), 2);
    }

    #[test]
    fn reservations_do_not_bump_epoch() {
        let mut m = v100_matrix();
        m.occupy_path(&[0, 3, 7], 5e9);
        m.release_path(&[0, 3, 7], 5e9);
        assert_eq!(m.epoch(), 0);
    }

    #[test]
    fn path_residual_is_bottleneck() {
        let mut m = v100_matrix();
        // 0→3 is 48, 3→1 is 24 → bottleneck 24.
        assert_eq!(m.path_residual(&[0, 3, 1]), params::NVLINK_V100_SINGLE);
        m.occupy_path(&[0, 3], 40e9);
        assert_eq!(m.path_residual(&[0, 3, 1]), 8e9);
        // Single-vertex "path" carries nothing.
        assert_eq!(m.path_residual(&[0]), 0.0);
    }
}
