//! The global bandwidth-usage matrix `BW(g, b)` of §4.3.3.
//!
//! GROUTER "maintains a bandwidth usage matrix … continuously monitors and
//! updates global bandwidth usage in real-time on this matrix, which is used
//! to guide path selection". [`BwMatrix`] tracks, per directed GPU pair of
//! one node, how much NVLink bandwidth is still unreserved. Algorithm 1
//! occupies a path by subtracting the path's bottleneck bandwidth
//! `b_min(path)` from every edge on it, and releases it when the transfer
//! completes.

use crate::graph::Topology;

/// Residual directed NVLink bandwidth between the GPUs of one node.
#[derive(Clone, Debug)]
pub struct BwMatrix {
    n: usize,
    /// Effective capacity of the directed edge `a → b` (0 = unconnected or
    /// masked). This is what path enumeration and reservations see.
    topo: Vec<f64>,
    /// Unreserved capacity of the directed edge `a → b`.
    residual: Vec<f64>,
    /// Original hardware capacity snapshot taken at construction — the
    /// target of [`BwMatrix::restore_link`].
    base: Vec<f64>,
    /// Logical (un-masked) capacity: tracks degradations but ignores node
    /// masks, so unmasking a GPU re-exposes a previously degraded value
    /// rather than silently healing the link.
    healthy: Vec<f64>,
    /// Per-GPU failure mask: a masked GPU contributes no edges.
    masked: Vec<bool>,
    /// Topology epoch: bumped whenever an effective *capacity* changes (link
    /// degradation/restoration or node masking). Reservations never bump it —
    /// path sets depend only on capacities, so caches keyed on the epoch stay
    /// valid across arbitrary occupy/release churn.
    epoch: u64,
}

impl BwMatrix {
    /// Snapshot the NVLink capacities of `topo` (identical for every node).
    pub fn from_topology(topo: &Topology) -> BwMatrix {
        let n = topo.gpus_per_node();
        let mut m = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    m[a * n + b] = topo.nvlink_bw(a, b);
                }
            }
        }
        BwMatrix {
            n,
            topo: m.clone(),
            residual: m.clone(),
            base: m.clone(),
            healthy: m,
            masked: vec![false; n],
            epoch: 0,
        }
    }

    /// Current topology epoch (see the field docs). Path caches compare
    /// against this to decide whether their enumerations are still valid.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Set the effective capacity of edge `idx`, preserving the amount
    /// currently reserved on it. Returns whether anything changed; does NOT
    /// bump the epoch (callers decide the bump granularity).
    fn set_effective(&mut self, idx: usize, new_cap: f64) -> bool {
        if self.topo[idx] == new_cap {
            return false;
        }
        let reserved = self.topo[idx] - self.residual[idx];
        self.topo[idx] = new_cap;
        self.residual[idx] = (new_cap - reserved).clamp(0.0, new_cap);
        true
    }

    /// Degrade (or restore) the capacity of the directed edge `a → b` to
    /// `new_cap` bytes/s, preserving the amount currently reserved on the
    /// edge. Bumps the topology epoch exactly once per call that actually
    /// changes the effective capacity, invalidating cached path sets. While
    /// either endpoint is masked the new value is recorded but the effective
    /// capacity stays 0 until the node is unmasked.
    pub fn degrade_link(&mut self, a: usize, b: usize, new_cap: f64) {
        let idx = a * self.n + b;
        let new_cap = new_cap.max(0.0);
        self.healthy[idx] = new_cap;
        let effective = if self.masked[a] || self.masked[b] {
            0.0
        } else {
            new_cap
        };
        if self.set_effective(idx, effective) {
            self.epoch += 1;
        }
    }

    /// Restore the directed edge `a → b` to its original hardware capacity
    /// (the construction-time snapshot), undoing any prior degradation.
    /// Same epoch semantics as [`BwMatrix::degrade_link`]; a restore under an
    /// active node mask takes effect when the node is unmasked.
    pub fn restore_link(&mut self, a: usize, b: usize) {
        let base = self.base[a * self.n + b];
        self.degrade_link(a, b, base);
    }

    /// Mask a failed GPU: every directed edge touching `g` drops to zero
    /// effective capacity, removing it from path enumeration. Bumps the
    /// epoch once if any edge changed. Reservations crossing the masked
    /// edges are forfeited (the failure path cancels them separately);
    /// releases clamp harmlessly against the zero capacity.
    pub fn mask_node(&mut self, g: usize) {
        if self.masked[g] {
            return;
        }
        self.masked[g] = true;
        let mut changed = false;
        for other in 0..self.n {
            changed |= self.set_effective(g * self.n + other, 0.0);
            changed |= self.set_effective(other * self.n + g, 0.0);
        }
        if changed {
            self.epoch += 1;
        }
    }

    /// Unmask a recovered GPU: edges to every *other unmasked* GPU return to
    /// their logical (possibly degraded) capacity, fully unreserved. Bumps
    /// the epoch once if any edge changed.
    pub fn unmask_node(&mut self, g: usize) {
        if !self.masked[g] {
            return;
        }
        self.masked[g] = false;
        let mut changed = false;
        for other in 0..self.n {
            if self.masked[other] {
                continue;
            }
            let out = g * self.n + other;
            let inn = other * self.n + g;
            let (out_cap, in_cap) = (self.healthy[out], self.healthy[inn]);
            changed |= self.set_effective(out, out_cap);
            changed |= self.set_effective(inn, in_cap);
        }
        if changed {
            self.epoch += 1;
        }
    }

    /// Whether GPU `g` is currently masked as failed.
    pub fn is_masked(&self, g: usize) -> bool {
        self.masked[g]
    }

    /// Number of GPUs.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Hardware capacity of `a → b`.
    pub fn capacity(&self, a: usize, b: usize) -> f64 {
        self.topo[a * self.n + b]
    }

    /// Unreserved capacity of `a → b`.
    pub fn residual(&self, a: usize, b: usize) -> f64 {
        self.residual[a * self.n + b]
    }

    /// `true` when the edge exists and no reservation touches it.
    pub fn is_idle(&self, a: usize, b: usize) -> bool {
        let c = self.capacity(a, b);
        c > 0.0 && (self.residual(a, b) - c).abs() < 1e-6
    }

    /// Total unreserved bandwidth leaving `g` (`BW_out` in Algorithm 1).
    pub fn out_bw(&self, g: usize) -> f64 {
        (0..self.n).map(|b| self.residual(g, b)).sum()
    }

    /// Total unreserved bandwidth entering `g` (`BW_in` in Algorithm 1).
    pub fn in_bw(&self, g: usize) -> f64 {
        (0..self.n).map(|a| self.residual(a, g)).sum()
    }

    /// Reserve `amount` bytes/s on every edge of `path` (a GPU sequence).
    /// Residuals clamp at zero: over-reservation is a scheduler bug upstream,
    /// but the matrix must never go negative.
    pub fn occupy_path(&mut self, path: &[usize], amount: f64) {
        for hop in path.windows(2) {
            let idx = hop[0] * self.n + hop[1];
            self.residual[idx] = (self.residual[idx] - amount).max(0.0);
        }
    }

    /// Release a previous reservation. Residuals clamp at the hardware
    /// capacity.
    pub fn release_path(&mut self, path: &[usize], amount: f64) {
        for hop in path.windows(2) {
            let idx = hop[0] * self.n + hop[1];
            self.residual[idx] = (self.residual[idx] + amount).min(self.topo[idx]);
        }
    }

    /// Bottleneck residual bandwidth along `path`, or 0 if any edge is
    /// missing/saturated.
    pub fn path_residual(&self, path: &[usize]) -> f64 {
        if path.len() < 2 {
            return 0.0;
        }
        path.windows(2)
            .map(|hop| self.residual(hop[0], hop[1]))
            .fold(f64::INFINITY, f64::min)
            .max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use grouter_sim::{params, FlowNet};

    fn v100_matrix() -> BwMatrix {
        let mut net = FlowNet::new();
        let t = Topology::build(presets::dgx_v100(), 1, &mut net);
        BwMatrix::from_topology(&t)
    }

    #[test]
    fn capacities_mirror_topology() {
        let m = v100_matrix();
        assert_eq!(m.capacity(0, 3), params::NVLINK_V100_DOUBLE);
        assert_eq!(m.capacity(0, 1), params::NVLINK_V100_SINGLE);
        assert_eq!(m.capacity(0, 5), 0.0);
        assert_eq!(m.capacity(0, 0), 0.0);
    }

    #[test]
    fn occupy_and_release_roundtrip() {
        let mut m = v100_matrix();
        let path = [0usize, 3, 7];
        let full = m.path_residual(&path);
        assert_eq!(full, params::NVLINK_V100_DOUBLE);
        m.occupy_path(&path, 10e9);
        assert_eq!(m.residual(0, 3), params::NVLINK_V100_DOUBLE - 10e9);
        assert!(!m.is_idle(0, 3));
        // Reverse direction untouched.
        assert!(m.is_idle(3, 0));
        m.release_path(&path, 10e9);
        assert!(m.is_idle(0, 3));
        assert!(m.is_idle(3, 7));
    }

    #[test]
    fn residuals_clamp() {
        let mut m = v100_matrix();
        m.occupy_path(&[0, 1], 1e18);
        assert_eq!(m.residual(0, 1), 0.0);
        m.release_path(&[0, 1], 1e18);
        assert_eq!(m.residual(0, 1), params::NVLINK_V100_SINGLE);
    }

    #[test]
    fn out_and_in_bandwidth_sums() {
        let m = v100_matrix();
        // GPU 0 has six link-equivalents: 24+24+48+48.
        assert_eq!(m.out_bw(0), 6.0 * params::NVLINK_V100_SINGLE);
        assert_eq!(m.in_bw(0), 6.0 * params::NVLINK_V100_SINGLE);
    }

    #[test]
    fn degrade_bumps_epoch_once_and_preserves_reservations() {
        let mut m = v100_matrix();
        assert_eq!(m.epoch(), 0);
        m.occupy_path(&[0, 3], 10e9);
        m.degrade_link(0, 3, 30e9);
        assert_eq!(m.epoch(), 1, "one bump per degradation event");
        assert_eq!(m.capacity(0, 3), 30e9);
        // The 10 GB/s reservation survives: residual = 30 - 10.
        assert_eq!(m.residual(0, 3), 20e9);
        // No-op degradation (same capacity) does not bump the epoch.
        m.degrade_link(0, 3, 30e9);
        assert_eq!(m.epoch(), 1);
        // Release returns the edge exactly to the degraded baseline.
        m.release_path(&[0, 3], 10e9);
        assert_eq!(m.residual(0, 3), 30e9);
        assert!(m.is_idle(0, 3));
    }

    #[test]
    fn degrade_below_reserved_clamps_and_roundtrips() {
        let mut m = v100_matrix();
        m.occupy_path(&[0, 3], 40e9);
        m.degrade_link(0, 3, 20e9);
        assert_eq!(m.residual(0, 3), 0.0, "reserved exceeds new capacity");
        m.release_path(&[0, 3], 40e9);
        assert_eq!(m.residual(0, 3), 20e9, "release clamps at new capacity");
        // Degrading to zero removes the edge from path enumeration.
        m.degrade_link(0, 3, 0.0);
        assert_eq!(m.capacity(0, 3), 0.0);
        assert_eq!(m.epoch(), 2);
    }

    #[test]
    fn reservations_do_not_bump_epoch() {
        let mut m = v100_matrix();
        m.occupy_path(&[0, 3, 7], 5e9);
        m.release_path(&[0, 3, 7], 5e9);
        assert_eq!(m.epoch(), 0);
    }

    #[test]
    fn restore_returns_to_hardware_baseline_and_bumps_epoch() {
        let mut m = v100_matrix();
        m.degrade_link(0, 3, 10e9);
        assert_eq!(m.epoch(), 1);
        m.restore_link(0, 3);
        assert_eq!(m.capacity(0, 3), params::NVLINK_V100_DOUBLE);
        assert_eq!(m.residual(0, 3), params::NVLINK_V100_DOUBLE);
        assert_eq!(m.epoch(), 2, "restore is a capacity change: epoch bumps");
        // Restoring an already-healthy link is a no-op.
        m.restore_link(0, 3);
        assert_eq!(m.epoch(), 2);
    }

    #[test]
    fn restore_preserves_reservations() {
        let mut m = v100_matrix();
        m.occupy_path(&[0, 3], 10e9);
        m.degrade_link(0, 3, 20e9);
        m.restore_link(0, 3);
        assert_eq!(m.residual(0, 3), params::NVLINK_V100_DOUBLE - 10e9);
    }

    #[test]
    fn mask_node_zeroes_adjacent_edges_once() {
        let mut m = v100_matrix();
        m.mask_node(3);
        assert!(m.is_masked(3));
        assert_eq!(m.epoch(), 1, "one bump per mask event");
        assert_eq!(m.capacity(0, 3), 0.0);
        assert_eq!(m.capacity(3, 0), 0.0);
        assert_eq!(m.out_bw(3), 0.0);
        assert_eq!(m.in_bw(3), 0.0);
        // Unrelated edges untouched.
        assert_eq!(m.capacity(0, 1), params::NVLINK_V100_SINGLE);
        // Re-masking is a no-op.
        m.mask_node(3);
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn unmask_restores_logical_capacity_not_baseline() {
        let mut m = v100_matrix();
        m.degrade_link(0, 3, 10e9);
        m.mask_node(3);
        assert_eq!(m.capacity(0, 3), 0.0);
        m.unmask_node(3);
        assert!(!m.is_masked(3));
        assert_eq!(
            m.capacity(0, 3),
            10e9,
            "mask/unmask must not silently heal a degraded link"
        );
        m.restore_link(0, 3);
        assert_eq!(m.capacity(0, 3), params::NVLINK_V100_DOUBLE);
    }

    #[test]
    fn overlapping_masks_resolve_in_any_order() {
        let mut m = v100_matrix();
        m.mask_node(0);
        m.mask_node(3);
        m.unmask_node(0);
        // 0→3 stays down: GPU 3 is still masked.
        assert_eq!(m.capacity(0, 3), 0.0);
        assert_eq!(m.capacity(0, 1), params::NVLINK_V100_SINGLE);
        m.unmask_node(3);
        assert_eq!(m.capacity(0, 3), params::NVLINK_V100_DOUBLE);
        assert_eq!(m.capacity(3, 0), params::NVLINK_V100_DOUBLE);
    }

    #[test]
    fn degrade_under_mask_applies_on_unmask() {
        let mut m = v100_matrix();
        m.mask_node(3);
        let e = m.epoch();
        m.degrade_link(0, 3, 10e9);
        assert_eq!(m.epoch(), e, "no effective change while masked");
        m.unmask_node(3);
        assert_eq!(m.capacity(0, 3), 10e9);
    }

    #[test]
    fn path_residual_is_bottleneck() {
        let mut m = v100_matrix();
        // 0→3 is 48, 3→1 is 24 → bottleneck 24.
        assert_eq!(m.path_residual(&[0, 3, 1]), params::NVLINK_V100_SINGLE);
        m.occupy_path(&[0, 3], 40e9);
        assert_eq!(m.path_residual(&[0, 3, 1]), 8e9);
        // Single-vertex "path" carries nothing.
        assert_eq!(m.path_residual(&[0]), 0.0);
    }
}
