//! End-to-end executor tests with the reference locality plane.

use std::sync::Arc;

use grouter_runtime::dataplane::Destination;
use grouter_runtime::metrics::PassCategory;
use grouter_runtime::placement::PlacementPolicy;
use grouter_runtime::simple_plane::LocalityPlane;
use grouter_runtime::spec::{StageSpec, WorkflowSpec};
use grouter_runtime::world::RuntimeConfig;
use grouter_runtime::Runtime;
use grouter_sim::time::{SimDuration, SimTime};
use grouter_topology::presets;
use grouter_topology::GpuRef;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

const MB: f64 = 1e6;

fn linear_workflow() -> Arc<WorkflowSpec> {
    let mut wf = WorkflowSpec::new("linear", 4.0 * MB);
    let a = wf.push(StageSpec::cpu("decode", vec![], ms(5), 8.0 * MB));
    let b = wf.push(StageSpec::gpu("detect", vec![a], ms(20), 12.0 * MB, 1e9));
    wf.push(StageSpec::gpu("classify", vec![b], ms(10), 1.0 * MB, 1e9));
    Arc::new(wf)
}

fn runtime_with(policy: PlacementPolicy) -> Runtime {
    let cfg = RuntimeConfig {
        placement: policy,
        placement_nodes: vec![0],
        ..Default::default()
    };
    Runtime::new(presets::dgx_v100(), 1, Box::new(LocalityPlane::new()), cfg)
}

#[test]
fn linear_workflow_completes() {
    let mut rt = runtime_with(PlacementPolicy::Mapa);
    rt.submit(linear_workflow(), SimTime::ZERO);
    rt.run();
    let m = rt.metrics();
    assert_eq!(m.completed(), 1);
    let rec = &m.records()[0];
    // Latency ≥ compute floor (35 ms) and includes data passing.
    assert!(rec.latency() >= ms(35), "latency {}", rec.latency());
    assert_eq!(rec.compute, ms(35));
    assert!(rec.passing_total() > SimDuration::ZERO);
    // The cFn→gFn handoff and egress produce gFn–host traffic.
    assert!(rec.passing_of(PassCategory::GpuHost) > SimDuration::ZERO);
    // No instances or flows left behind.
    assert!(rt.world().quiescent());
}

#[test]
fn latency_is_deterministic_across_runs() {
    let run = || {
        let mut rt = runtime_with(PlacementPolicy::Mapa);
        for i in 0..5 {
            rt.submit(linear_workflow(), SimTime(i * 10_000_000));
        }
        rt.run();
        rt.metrics()
            .records()
            .iter()
            .map(|r| r.latency().as_nanos())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn fan_out_fan_in_completes() {
    let mut wf = WorkflowSpec::new("diamond", 4.0 * MB);
    let a = wf.push(StageSpec::gpu("split", vec![], ms(5), 8.0 * MB, 1e9));
    let b = wf.push(StageSpec::gpu("left", vec![a], ms(10), 2.0 * MB, 1e9));
    let c = wf.push(StageSpec::gpu("right", vec![a], ms(15), 2.0 * MB, 1e9));
    wf.push(StageSpec::gpu("merge", vec![b, c], ms(5), 1.0 * MB, 1e9));
    let mut rt = runtime_with(PlacementPolicy::Mapa);
    rt.submit(Arc::new(wf), SimTime::ZERO);
    rt.run();
    let m = rt.metrics();
    assert_eq!(m.completed(), 1);
    // Compute floor: every executed stage's time accrues.
    assert_eq!(m.records()[0].compute, ms(35));
    assert!(rt.world().quiescent());
}

#[test]
fn conditional_branch_runs_exactly_one_alternative() {
    let mut wf = WorkflowSpec::new("cond", 4.0 * MB);
    let a = wf.push(StageSpec::gpu("detect", vec![], ms(10), 4.0 * MB, 1e9));
    let b1 = wf.push(StageSpec::gpu("person", vec![a], ms(20), 1.0 * MB, 1e9).with_cond(0, 0.5));
    let b2 = wf.push(StageSpec::gpu("car", vec![a], ms(30), 1.0 * MB, 1e9).with_cond(0, 0.5));
    let _ = (b1, b2);
    let spec = Arc::new(wf);
    let mut rt = runtime_with(PlacementPolicy::Mapa);
    for i in 0..20 {
        rt.submit(spec.clone(), SimTime(i * 200_000_000));
    }
    rt.run();
    let m = rt.metrics();
    assert_eq!(m.completed(), 20);
    for rec in m.records() {
        // Exactly one branch ran: compute is 10+20 or 10+30 ms.
        assert!(
            rec.compute == ms(30) || rec.compute == ms(40),
            "compute {:?}",
            rec.compute
        );
    }
    // With weight 0.5/0.5 and 20 samples, both branches appear.
    let fast = m.records().iter().filter(|r| r.compute == ms(30)).count();
    assert!(fast > 0 && fast < 20, "branch sampling degenerate: {fast}");
}

#[test]
fn gpu_is_time_multiplexed() {
    // Two instances pinned to the same GPU must serialise their compute.
    let mut wf = WorkflowSpec::new("pinned", 1.0 * MB);
    wf.push(StageSpec::gpu("only", vec![], ms(50), 1.0 * MB, 1e9));
    let spec = Arc::new(wf);
    let pin = PlacementPolicy::Pinned(vec![Destination::Gpu(GpuRef::new(0, 0))]);
    let mut rt = runtime_with(pin);
    rt.submit(spec.clone(), SimTime::ZERO);
    rt.submit(spec, SimTime::ZERO);
    rt.run();
    let m = rt.metrics();
    assert_eq!(m.completed(), 2);
    let mut latencies: Vec<f64> = m
        .records()
        .iter()
        .map(|r| r.latency().as_millis_f64())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Second request waits ~50 ms for the first.
    assert!(
        latencies[1] - latencies[0] > 45.0,
        "latencies {latencies:?}"
    );
}

#[test]
fn separate_gpus_run_in_parallel() {
    let mut wf = WorkflowSpec::new("solo", 1.0 * MB);
    wf.push(StageSpec::gpu("only", vec![], ms(50), 1.0 * MB, 1e9));
    let spec = Arc::new(wf);
    let mut rt = runtime_with(PlacementPolicy::RoundRobin);
    rt.submit(spec.clone(), SimTime::ZERO);
    rt.submit(spec, SimTime::ZERO);
    rt.run();
    let m = rt.metrics();
    let latencies: Vec<f64> = m
        .records()
        .iter()
        .map(|r| r.latency().as_millis_f64())
        .collect();
    // Both finish in about one compute time (plus data passing).
    for l in &latencies {
        assert!(*l < 80.0, "latencies {latencies:?}");
    }
}

#[test]
fn zero_copy_when_producer_and_consumer_share_gpu() {
    let g = Destination::Gpu(GpuRef::new(0, 2));
    let mut wf = WorkflowSpec::new("samegpu", 1.0 * MB);
    let a = wf.push(StageSpec::gpu("a", vec![], ms(5), 64.0 * MB, 1e9));
    wf.push(StageSpec::gpu("b", vec![a], ms(5), 1.0 * MB, 1e9));
    let mut rt = runtime_with(PlacementPolicy::Pinned(vec![g, g]));
    rt.submit(Arc::new(wf), SimTime::ZERO);
    rt.run();
    let rec = &rt.metrics().records()[0];
    // The 64 MB a→b hop is zero-copy: gFn–gFn passing is only control-plane
    // microseconds, far below the ~5 ms a PCIe trip would take.
    let gg = rec.passing_of(PassCategory::GpuGpu);
    assert!(gg < SimDuration::from_millis(1), "gFn-gFn time {gg}");
}

#[test]
fn cross_node_workflow_completes() {
    let mut wf = WorkflowSpec::new("xnode", 1.0 * MB);
    let a = wf.push(StageSpec::gpu("a", vec![], ms(5), 100.0 * MB, 1e9));
    wf.push(StageSpec::gpu("b", vec![a], ms(5), 1.0 * MB, 1e9));
    let pin = PlacementPolicy::Pinned(vec![
        Destination::Gpu(GpuRef::new(0, 0)),
        Destination::Gpu(GpuRef::new(1, 0)),
    ]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0, 1],
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::dgx_v100(), 2, Box::new(LocalityPlane::new()), cfg);
    rt.submit(Arc::new(wf), SimTime::ZERO);
    rt.run();
    let m = rt.metrics();
    assert_eq!(m.completed(), 1);
    let rec = &m.records()[0];
    // 100 MB over a single 100 Gbps NIC ≈ 8 ms minimum.
    let gg = rec.passing_of(PassCategory::GpuGpu);
    assert!(gg >= SimDuration::from_millis(8), "cross-node time {gg}");
    assert!(rt.world().quiescent());
}

#[test]
fn cold_start_penalty_applies_once() {
    let mut wf = WorkflowSpec::new("cold", 1.0 * MB);
    wf.push(StageSpec::gpu("a", vec![], ms(10), 1.0 * MB, 1e9));
    let spec = Arc::new(wf);
    let pin = PlacementPolicy::Pinned(vec![Destination::Gpu(GpuRef::new(0, 0))]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0],
        prewarm: false,
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::dgx_v100(), 1, Box::new(LocalityPlane::new()), cfg);
    rt.submit(spec.clone(), SimTime::ZERO);
    rt.submit(spec, SimTime(5_000_000_000));
    rt.run();
    let m = rt.metrics();
    let first = m.records()[0].latency();
    let second = m.records()[1].latency();
    assert!(
        first - second >= SimDuration::from_millis(1900),
        "cold start missing: first {first}, second {second}"
    );
}

#[test]
fn memory_sampling_produces_series() {
    let cfg = RuntimeConfig {
        placement: PlacementPolicy::Mapa,
        placement_nodes: vec![0],
        sample_memory: true,
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::dgx_v100(), 1, Box::new(LocalityPlane::new()), cfg);
    rt.schedule_memory_samples(SimDuration::from_millis(10), SimTime(100_000_000));
    rt.submit(linear_workflow(), SimTime::ZERO);
    rt.run();
    let series = &rt.world().mem_series;
    assert!(series.iter().any(|s| s.len() > 5));
    // Idle memory never exceeds capacity.
    for s in series {
        for &(_, v) in s.points() {
            assert!(v <= 16.0 * 1024.0 * 1024.0 * 1024.0);
            assert!(v >= 0.0);
        }
    }
}

#[test]
fn arrivals_counted_even_before_completion() {
    let mut rt = runtime_with(PlacementPolicy::Mapa);
    rt.submit(linear_workflow(), SimTime::ZERO);
    assert_eq!(rt.metrics().arrivals, 1);
    assert_eq!(rt.metrics().completed(), 0);
    rt.run();
    assert_eq!(rt.metrics().completed(), 1);
}

#[test]
fn multiple_conditional_groups_sample_independently() {
    // Two independent condition groups: exactly one alternative per group
    // runs each request.
    let mut wf = WorkflowSpec::new("twocond", 1.0 * MB);
    let a = wf.push(StageSpec::gpu("a", vec![], ms(2), 1.0 * MB, 1e9));
    wf.push(StageSpec::gpu("b1", vec![a], ms(10), 1.0 * MB, 1e9).with_cond(0, 0.5));
    wf.push(StageSpec::gpu("b2", vec![a], ms(20), 1.0 * MB, 1e9).with_cond(0, 0.5));
    wf.push(StageSpec::gpu("c1", vec![a], ms(1), 1.0 * MB, 1e9).with_cond(1, 0.5));
    wf.push(StageSpec::gpu("c2", vec![a], ms(3), 1.0 * MB, 1e9).with_cond(1, 0.5));
    let spec = Arc::new(wf);
    let mut rt = runtime_with(PlacementPolicy::Mapa);
    for i in 0..16 {
        rt.submit(spec.clone(), SimTime(i * 300_000_000));
    }
    rt.run();
    for rec in rt.metrics().records() {
        // compute = 2 + (10|20) + (1|3)
        let c = rec.compute.as_millis_f64();
        assert!(
            [13.0, 15.0, 23.0, 25.0]
                .iter()
                .any(|v| (c - v).abs() < 1e-6),
            "unexpected compute {c}"
        );
    }
}

#[test]
fn skipped_branches_cascade_through_chains() {
    // a → (b1|b2) where b1 → c1 (only c1 depends on b1): when b2 wins, c1
    // must cascade-skip, and the workflow still terminates via b2.
    let mut wf = WorkflowSpec::new("cascade", 1.0 * MB);
    let a = wf.push(StageSpec::gpu("a", vec![], ms(2), 1.0 * MB, 1e9));
    let b1 = wf.push(StageSpec::gpu("b1", vec![a], ms(4), 1.0 * MB, 1e9).with_cond(0, 0.5));
    wf.push(StageSpec::gpu("b2", vec![a], ms(6), 1.0 * MB, 1e9).with_cond(0, 0.5));
    wf.push(StageSpec::gpu("c1", vec![b1], ms(8), 1.0 * MB, 1e9));
    let spec = Arc::new(wf);
    let mut rt = runtime_with(PlacementPolicy::Mapa);
    for i in 0..12 {
        rt.submit(spec.clone(), SimTime(i * 400_000_000));
    }
    rt.run();
    let m = rt.metrics();
    assert_eq!(m.completed(), 12);
    for rec in m.records() {
        let c = rec.compute.as_millis_f64();
        // b1 path: 2+4+8 = 14; b2 path: 2+6 = 8 (c1 skipped).
        assert!(
            (c - 14.0).abs() < 1e-6 || (c - 8.0).abs() < 1e-6,
            "unexpected compute {c}"
        );
    }
    assert!(rt.world().quiescent());
}

#[test]
fn run_until_can_resume_mid_workflow() {
    let mut rt = runtime_with(PlacementPolicy::Mapa);
    rt.submit(linear_workflow(), SimTime::ZERO);
    // Stop mid-flight, then resume.
    rt.run_until(SimTime(10_000_000));
    assert_eq!(rt.metrics().completed(), 0);
    assert!(!rt.world().quiescent());
    rt.run();
    assert_eq!(rt.metrics().completed(), 1);
    assert!(rt.world().quiescent());
}

#[test]
fn link_sampling_records_series() {
    let cfg = RuntimeConfig {
        placement: PlacementPolicy::Mapa,
        placement_nodes: vec![0],
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::dgx_v100(), 1, Box::new(LocalityPlane::new()), cfg);
    let uplinks = rt.world().topo.uplink_links(0);
    // Sample fast enough to catch millisecond-scale PCIe transfers.
    rt.schedule_link_samples(uplinks, SimDuration::from_micros(50), SimTime(100_000_000));
    rt.submit(linear_workflow(), SimTime::ZERO);
    rt.run();
    assert_eq!(rt.world().link_series.len(), 4);
    for (_, series) in &rt.world().link_series {
        assert!(series.len() > 100);
        for &(_, v) in series.points() {
            assert!((0.0..=1.0 + 1e-9).contains(&v), "utilisation fraction {v}");
        }
    }
    // At least one uplink saw traffic (the 48 MB decode output ingest).
    assert!(rt
        .world()
        .link_series
        .iter()
        .any(|(_, s)| s.max_value().unwrap_or(0.0) > 0.0));
}

#[test]
fn pinned_placement_on_host_only_stages() {
    // A pure-CPU workflow never touches GPUs or pools.
    let mut wf = WorkflowSpec::new("cpuonly", 1.0 * MB);
    let a = wf.push(StageSpec::cpu("extract", vec![], ms(3), 2.0 * MB));
    wf.push(StageSpec::cpu("aggregate", vec![a], ms(2), 1.0 * MB));
    let pin = PlacementPolicy::Pinned(vec![Destination::Host(0), Destination::Host(0)]);
    let cfg = RuntimeConfig {
        placement: pin,
        placement_nodes: vec![0],
        ..Default::default()
    };
    let mut rt = Runtime::new(presets::dgx_v100(), 1, Box::new(LocalityPlane::new()), cfg);
    rt.submit(Arc::new(wf), SimTime::ZERO);
    rt.run();
    let rec = &rt.metrics().records()[0];
    assert_eq!(rec.compute, ms(5));
    assert_eq!(rec.passing_of(PassCategory::GpuGpu), SimDuration::ZERO);
    assert_eq!(rec.passing_of(PassCategory::GpuHost), SimDuration::ZERO);
    for pool in &rt.world().pools {
        assert_eq!(pool.used(), 0.0);
    }
}
