//! The data-plane interface.
//!
//! Every data plane — GROUTER and all baselines — implements [`DataPlane`]:
//! a policy that decides *where* a `Put` stores its bytes and *which paths*
//! a `Get` uses, expressed as [`DataOp`]s (sequences of transfer legs) that
//! the executor runs on the simulated cluster. This mirrors the paper's
//! architecture: the storage/transfer layer is a service below the
//! serverless platform, swapped out per experiment.

use grouter_mem::{ElasticPool, PinnedRing, PrewarmScaler};
use grouter_sim::time::{SimDuration, SimTime};
use grouter_sim::FlowNet;
use grouter_store::{AccessToken, DataId, DataStore, StoreError};
use grouter_topology::ledger::{PathLedger, Rebalance, ResId};
use grouter_topology::{GpuRef, Topology};
use grouter_transfer::plan::TransferPlan;
use grouter_transfer::rate::{RateController, SloSpec};

pub use grouter_store::patterns::Destination;

/// Whether a leg runs over the plane's preferred path class or a degraded
/// fallback. The executor surfaces degraded legs in the recovery log so a
/// plane that silently downgrades to PCIe under NVLink loss is observable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LegHealth {
    /// The plane's first-choice path class.
    Nominal,
    /// A fallback (e.g. single-path PCIe because every NVLink route to the
    /// destination is masked out).
    Degraded,
}

/// One transfer leg of a data operation.
#[derive(Clone, Debug)]
pub struct OpLeg {
    pub plan: TransferPlan,
    /// Node whose bandwidth matrix holds the plan's NVLink reservations.
    pub nv_node: usize,
    /// Nominal vs degraded-fallback path class (see [`LegHealth`]).
    pub health: LegHealth,
    /// Registered SLO-transfer token to release on completion, if any.
    pub rate_token: Option<(usize, u64)>,
    /// Ledger reservation `(node, id)` to release when the leg completes
    /// (GROUTER's Algorithm 1 reservations).
    pub ledger_release: Option<(usize, ResId)>,
    /// Pinned-ring bytes `(node, bytes)` to return when the leg completes.
    pub pinned_release: Option<(usize, f64)>,
    /// Rebalances of *other* functions' paths to apply when this leg
    /// starts: `(node, move)` — the executor re-paths the in-flight flow.
    pub reroutes: Vec<(usize, Rebalance)>,
}

impl OpLeg {
    pub fn new(plan: TransferPlan, nv_node: usize) -> OpLeg {
        OpLeg {
            plan,
            nv_node,
            health: LegHealth::Nominal,
            rate_token: None,
            ledger_release: None,
            pinned_release: None,
            reroutes: Vec::new(),
        }
    }
}

/// A data operation: control-plane latency plus zero or more transfer legs
/// executed strictly in order (relays need two legs).
#[derive(Clone, Debug, Default)]
pub struct DataOp {
    pub control_latency: SimDuration,
    pub legs: Vec<OpLeg>,
}

impl DataOp {
    /// An operation that finishes after only control-plane latency.
    pub fn control_only(latency: SimDuration) -> DataOp {
        DataOp {
            control_latency: latency,
            legs: Vec::new(),
        }
    }

    /// Total bytes moved across all legs.
    pub fn bytes_moved(&self) -> f64 {
        self.legs.iter().map(|l| l.plan.total_bytes).sum()
    }
}

/// Result of a `Put`: the new object id plus the work to perform.
#[derive(Clone, Debug)]
pub struct PutOp {
    pub id: DataId,
    pub op: DataOp,
}

/// Mutable view of the cluster state a plane may consult and update.
///
/// Indexing: `pools`/`scalers` are flat `node * gpus_per_node + gpu`;
/// `ledgers`/`rates` are per node.
pub struct PlaneCtx<'a> {
    pub topo: &'a Topology,
    pub net: &'a FlowNet,
    pub store: &'a mut DataStore,
    pub pools: &'a mut [ElasticPool],
    pub scalers: &'a mut [PrewarmScaler],
    pub ledgers: &'a mut [PathLedger],
    /// Per-node circular pinned staging buffers (§4.3.2).
    pub pinned: &'a mut [PinnedRing],
    pub rates: &'a mut [RateController],
    pub now: SimTime,
    /// SLO of the workflow the current operation belongs to (`None` for
    /// background work or uncalibrated workflows). Feeds the `Rate_least`
    /// guarantees of §4.3.2.
    pub slo: Option<SloSpec>,
    /// Trace recorder for plane-level decisions (route-GPU picks, rate
    /// clamps). Cheap shared handle; `Recorder::disabled()` for hand-built
    /// contexts.
    pub trace: grouter_obs::Recorder,
}

impl<'a> PlaneCtx<'a> {
    /// Flat pool index for a GPU.
    pub fn pool_index(&self, gpu: GpuRef) -> usize {
        gpu.node * self.topo.gpus_per_node() + gpu.gpu
    }

    pub fn pool(&mut self, gpu: GpuRef) -> &mut ElasticPool {
        let idx = self.pool_index(gpu);
        &mut self.pools[idx]
    }

    pub fn scaler(&mut self, gpu: GpuRef) -> &mut PrewarmScaler {
        let idx = self.pool_index(gpu);
        &mut self.scalers[idx]
    }
}

/// Operation counters a plane may expose for overhead reports
/// (Figs. 7b, 18, 20).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlaneStats {
    /// Objects migrated from GPU storage to host memory.
    pub migrations: u64,
    /// Objects proactively restored from host memory to GPU storage.
    pub restores: u64,
    /// Legs planned on a degraded fallback path class (no nominal route
    /// survived masking) — the typed counterpart of a silent downgrade.
    pub degraded_legs: u64,
}

/// A pluggable data plane.
/// `Send` because a whole [`crate::world::World`] (which owns its plane)
/// may be moved to a shard worker thread by the sharded cluster engine.
pub trait DataPlane: Send {
    /// Short name for reports ("GROUTER", "INFless+", …).
    fn name(&self) -> &'static str;

    /// Store `bytes` produced by `token.function` running at `source`.
    /// `consumers` is how many downstream `Get`s will read the object.
    fn put(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        source: Destination,
        bytes: f64,
        consumers: u32,
    ) -> Result<PutOp, StoreError>;

    /// Fetch object `id` for a consumer at `dest`.
    fn get(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        id: DataId,
        dest: Destination,
    ) -> Result<DataOp, StoreError>;

    /// One consumer of `id` finished reading it (prompt GC hook). Returns
    /// background operations (e.g. proactive restorations now that memory
    /// freed up).
    fn on_consumed(&mut self, ctx: &mut PlaneCtx<'_>, id: DataId) -> Vec<DataOp>;

    /// Runtime GPU memory changed on `gpu` (a function started or stopped).
    /// Returns background migration operations needed to relieve pressure.
    fn on_memory_change(&mut self, ctx: &mut PlaneCtx<'_>, gpu: GpuRef) -> Vec<DataOp>;

    /// A request arrived for a workflow whose stages run at the given
    /// destinations (pre-warming hook for the elastic store).
    fn on_request(&mut self, _ctx: &mut PlaneCtx<'_>, _stages: &[Destination]) {}

    /// Migration/restoration counters (zero for planes that don't track).
    fn stats(&self) -> PlaneStats {
        PlaneStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_only_op_has_no_bytes() {
        let op = DataOp::control_only(SimDuration::from_micros(2));
        assert_eq!(op.bytes_moved(), 0.0);
        assert!(op.legs.is_empty());
    }
}
