//! Function placement.
//!
//! GROUTER's platform places functions with a MAPA-style policy (§5):
//! maximise the GPU-interconnect bandwidth between communicating functions
//! while spreading load. Baselines and microbenchmarks use round-robin or
//! pinned placements.

use grouter_sim::rng::DetRng;
use grouter_topology::Topology;

use crate::dataplane::Destination;
use crate::spec::WorkflowSpec;
use grouter_topology::GpuRef;

/// Placement policies.
#[derive(Clone, Debug)]
pub enum PlacementPolicy {
    /// MAPA-style: for each GPU stage pick the GPU maximising
    /// `Σ NVLink-bw to already-placed upstream stages − load penalty`.
    Mapa,
    /// Cycle GPU stages over the cluster's GPUs in order.
    RoundRobin,
    /// Fixed placement per stage (microbenchmarks); must cover every stage.
    Pinned(Vec<Destination>),
}

/// Pinned-consumer placement for streaming workloads: pick the decode GPU
/// that will *own* a request's KV cache for its whole token stream. The KV
/// object is pinned to that GPU's pool (only pressure-triggered migration
/// re-hosts it), so the right choice is the eligible GPU currently holding
/// the least live KV bytes — load balance by resident state, not queue
/// depth. Ties break to the lowest flat index so placement is deterministic.
///
/// `kv_bytes[i]` is live KV resident on flat GPU `i`; `eligible` lists the
/// flat indices of decode instances (callers exclude failed GPUs).
pub fn pin_decode(kv_bytes: &[f64], eligible: &[usize]) -> usize {
    assert!(!eligible.is_empty(), "no eligible decode GPUs");
    let mut best = eligible[0];
    for &g in eligible {
        assert!(g < kv_bytes.len(), "decode GPU {g} out of range");
        if kv_bytes[g] < kv_bytes[best] || (kv_bytes[g] == kv_bytes[best] && g < best) {
            best = g;
        }
    }
    best
}

/// Tracks per-GPU queue depth so placement can balance load.
#[derive(Debug)]
pub struct Placer {
    policy: PlacementPolicy,
    /// Outstanding stage count per flat GPU index.
    load: Vec<u32>,
    /// GPUs currently failed (flat index); placement avoids them while the
    /// recovery engine has them marked down.
    failed: Vec<bool>,
    rr_next: usize,
    /// Round-robin cursor for root CPU stages (spreads ingress across
    /// nodes instead of funnelling every request through node 0).
    cpu_rr: usize,
    /// Nodes eligible for placement (experiments restrict to one node or
    /// spread across several).
    nodes: Vec<usize>,
}

impl Placer {
    pub fn new(policy: PlacementPolicy, topo: &Topology, nodes: Vec<usize>) -> Placer {
        assert!(!nodes.is_empty(), "placement domain must be non-empty");
        for &n in &nodes {
            assert!(n < topo.num_nodes(), "placement node {n} out of range");
        }
        Placer {
            policy,
            load: vec![0; topo.num_gpus()],
            failed: vec![false; topo.num_gpus()],
            rr_next: 0,
            cpu_rr: 0,
            nodes,
        }
    }

    /// Place all stages of one workflow instance. CPU stages land on the
    /// node hosting the majority of their upstream GPU stages (or the first
    /// domain node).
    pub fn place(
        &mut self,
        topo: &Topology,
        spec: &WorkflowSpec,
        rng: &mut DetRng,
    ) -> Vec<Destination> {
        let mut out: Vec<Destination> = Vec::with_capacity(spec.stages.len());
        match &self.policy {
            PlacementPolicy::Pinned(fixed) => {
                assert_eq!(
                    fixed.len(),
                    spec.stages.len(),
                    "pinned placement must cover every stage"
                );
                out.extend(fixed.iter().copied());
            }
            PlacementPolicy::RoundRobin => {
                for stage in &spec.stages {
                    if stage.is_gpu() {
                        let (node, gpu) = self.next_rr(topo);
                        out.push(Destination::Gpu(GpuRef::new(node, gpu)));
                    } else {
                        out.push(Destination::Host(self.nodes[0]));
                    }
                }
            }
            PlacementPolicy::Mapa => {
                for (i, stage) in spec.stages.iter().enumerate() {
                    if stage.is_gpu() {
                        let gpu = self.mapa_pick(topo, &spec.stages[i].deps, &out, rng);
                        out.push(Destination::Gpu(gpu));
                    } else {
                        // CPU stages follow their producers' node; root CPU
                        // stages rotate across the domain so ingress traffic
                        // doesn't funnel through one node.
                        let node = spec.stages[i]
                            .deps
                            .iter()
                            .map(|&d| match out[d] {
                                Destination::Gpu(g) => g.node,
                                Destination::Host(n) => n,
                            })
                            .next()
                            .unwrap_or_else(|| {
                                let n = self.nodes[self.cpu_rr % self.nodes.len()];
                                self.cpu_rr += 1;
                                n
                            });
                        out.push(Destination::Host(node));
                    }
                }
            }
        }
        for dest in &out {
            if let Destination::Gpu(g) = dest {
                self.load[g.node * topo.gpus_per_node() + g.gpu] += 1;
            }
        }
        out
    }

    /// A stage finished: decrement its GPU's load counter.
    pub fn release(&mut self, topo: &Topology, dest: Destination) {
        if let Destination::Gpu(g) = dest {
            let idx = g.node * topo.gpus_per_node() + g.gpu;
            self.load[idx] = self.load[idx].saturating_sub(1);
        }
    }

    /// Re-add a stage to its GPU's load counter (recovery re-placement).
    pub fn bump(&mut self, topo: &Topology, dest: Destination) {
        if let Destination::Gpu(g) = dest {
            self.load[g.node * topo.gpus_per_node() + g.gpu] += 1;
        }
    }

    /// Mark a GPU (flat index) down or back up for placement.
    pub fn set_failed(&mut self, idx: usize, failed: bool) {
        self.failed[idx] = failed;
    }

    /// Outstanding stage count per flat GPU index — the load vector
    /// heartbeats publish and [`mapa_scan`] consumes.
    pub fn load(&self) -> &[u32] {
        &self.load
    }

    /// Per-GPU failure flags (flat index).
    pub fn failed_mask(&self) -> &[bool] {
        &self.failed
    }

    /// Nodes eligible for placement.
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Least-loaded healthy GPU in the domain, preferring `prefer_node`
    /// (re-placement of a stage stranded on a failed GPU: staying on the
    /// producer's node keeps the data passing intra-node). `None` when every
    /// domain GPU is down.
    pub fn pick_healthy(&self, topo: &Topology, prefer_node: Option<usize>) -> Option<GpuRef> {
        let g = topo.gpus_per_node();
        let mut best: Option<(bool, u32, usize, usize)> = None;
        for &node in &self.nodes {
            for gpu in 0..g {
                let idx = node * g + gpu;
                if self.failed[idx] {
                    continue;
                }
                let key = (Some(node) != prefer_node, self.load[idx], node, gpu);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        best.map(|(_, _, node, gpu)| GpuRef::new(node, gpu))
    }

    fn next_rr(&mut self, topo: &Topology) -> (usize, usize) {
        let g = topo.gpus_per_node();
        let total = self.nodes.len() * g;
        for _ in 0..total {
            let slot = self.rr_next % total;
            self.rr_next += 1;
            if !self.failed[self.nodes[slot / g] * g + slot % g] {
                return (self.nodes[slot / g], slot % g);
            }
        }
        // Every domain GPU is down: fall back to the plain rotation (the
        // arrival path converts the doomed placement into a typed failure).
        let slot = self.rr_next % total;
        self.rr_next += 1;
        (self.nodes[slot / g], slot % g)
    }

    /// MAPA-style scoring: connectivity to placed upstream stages minus a
    /// load penalty; ties broken by lower load, then index (deterministic).
    fn mapa_pick(
        &self,
        topo: &Topology,
        deps: &[usize],
        placed: &[Destination],
        _rng: &mut DetRng,
    ) -> GpuRef {
        mapa_scan(topo, &self.nodes, &self.load, &self.failed, deps, placed)
    }
}

/// The MAPA scoring scan, as a pure function of the scheduler's *view* of
/// per-GPU state: `load` and `failed` are indexed by flat GPU index
/// ([`Topology::flat_index`]). The omniscient [`Placer`] calls this with its
/// live counters; the service-mode router (`grouter-ctl`) calls it with
/// heartbeat-reconstructed ones — the placement-oracle test proves the two
/// coincide when the view is exact.
pub fn mapa_scan(
    topo: &Topology,
    nodes: &[usize],
    load: &[u32],
    failed: &[bool],
    deps: &[usize],
    placed: &[Destination],
) -> GpuRef {
    let g = topo.gpus_per_node();
    let mut best: Option<(f64, u32, usize, usize)> = None; // (-score, load, node, gpu)
    for &node in nodes {
        for gpu in 0..g {
            let idx = node * g + gpu;
            if failed[idx] {
                continue;
            }
            let load = load[idx];
            let mut conn = 0.0;
            for &d in deps {
                match placed[d] {
                    Destination::Gpu(up) if up.node == node => {
                        conn += if up.gpu == gpu {
                            // Same GPU: zero-copy beats any link, but
                            // serialises compute; value it like a top
                            // link rather than infinity.
                            2.0 * topo.nvlink_bw(0, 1).max(1e9)
                        } else {
                            topo.nvlink_bw(up.gpu, gpu)
                        };
                    }
                    // Node affinity: staying on the producer's node
                    // avoids a NIC hop entirely (hierarchical control
                    // plane, §5 — "minimizing inter-node transfers").
                    Destination::Gpu(_) | Destination::Host(_) if placed[d].node_of() == node => {
                        conn += 40e9;
                    }
                    _ => {}
                }
            }
            // One queued stage costs one "link" of score.
            let score = conn - load as f64 * 25e9;
            let key = (-score, load, node, gpu);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
    }
    // Every domain GPU failed: return the first slot and let the
    // arrival path turn the placement into a typed instance failure.
    let (_, _, node, gpu) = best.unwrap_or((0.0, 0, nodes[0], 0));
    GpuRef::new(node, gpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StageSpec;
    use grouter_sim::time::SimDuration;
    use grouter_sim::FlowNet;
    use grouter_topology::presets;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn v100() -> Topology {
        let mut net = FlowNet::new();
        Topology::build(presets::dgx_v100(), 2, &mut net)
    }

    fn chain(n: usize) -> WorkflowSpec {
        let mut wf = WorkflowSpec::new("chain", 1e6);
        for i in 0..n {
            let deps = if i == 0 { vec![] } else { vec![i - 1] };
            wf.push(StageSpec::gpu(format!("s{i}"), deps, ms(10), 1e6, 1e9));
        }
        wf
    }

    #[test]
    fn round_robin_cycles_gpus() {
        let topo = v100();
        let mut placer = Placer::new(PlacementPolicy::RoundRobin, &topo, vec![0]);
        let mut rng = DetRng::new(1);
        let placed = placer.place(&topo, &chain(10), &mut rng);
        let gpus: Vec<usize> = placed
            .iter()
            .map(|d| match d {
                Destination::Gpu(g) => g.gpu,
                _ => panic!("gpu stage"),
            })
            .collect();
        assert_eq!(gpus, vec![0, 1, 2, 3, 4, 5, 6, 7, 0, 1]);
    }

    #[test]
    fn mapa_prefers_connected_gpus() {
        let topo = v100();
        let mut placer = Placer::new(PlacementPolicy::Mapa, &topo, vec![0]);
        let mut rng = DetRng::new(1);
        let placed = placer.place(&topo, &chain(3), &mut rng);
        // Consecutive stages must be NVLink-connected (or co-located).
        for pair in placed.windows(2) {
            let (Destination::Gpu(a), Destination::Gpu(b)) = (pair[0], pair[1]) else {
                panic!("gpu stages");
            };
            assert_eq!(a.node, b.node);
            assert!(
                a.gpu == b.gpu || topo.nvlink_bw(a.gpu, b.gpu) > 0.0,
                "stages on weakly connected pair {a}-{b}"
            );
        }
    }

    #[test]
    fn mapa_balances_load_across_instances() {
        let topo = v100();
        let mut placer = Placer::new(PlacementPolicy::Mapa, &topo, vec![0]);
        let mut rng = DetRng::new(1);
        let mut used = std::collections::BTreeSet::new();
        for _ in 0..8 {
            let placed = placer.place(&topo, &chain(1), &mut rng);
            if let Destination::Gpu(g) = placed[0] {
                used.insert(g.gpu);
            }
        }
        // Eight single-stage instances spread over all eight GPUs.
        assert_eq!(used.len(), 8);
    }

    #[test]
    fn release_decrements_load() {
        let topo = v100();
        let mut placer = Placer::new(PlacementPolicy::Mapa, &topo, vec![0]);
        let mut rng = DetRng::new(1);
        let placed = placer.place(&topo, &chain(1), &mut rng);
        placer.release(&topo, placed[0]);
        assert!(placer.load.iter().all(|&l| l == 0));
    }

    #[test]
    fn cpu_stages_follow_their_producers_node() {
        let topo = v100();
        let mut placer = Placer::new(PlacementPolicy::Mapa, &topo, vec![1]);
        let mut rng = DetRng::new(1);
        let mut wf = WorkflowSpec::new("mixed", 1e6);
        let a = wf.push(StageSpec::gpu("det", vec![], ms(10), 1e6, 1e9));
        wf.push(StageSpec::cpu("post", vec![a], ms(2), 1e5));
        let placed = placer.place(&topo, &wf, &mut rng);
        let Destination::Gpu(g) = placed[0] else {
            panic!()
        };
        assert_eq!(g.node, 1, "domain restricted to node 1");
        assert_eq!(placed[1], Destination::Host(1));
    }

    #[test]
    #[should_panic(expected = "pinned placement must cover")]
    fn pinned_must_cover_all_stages() {
        let topo = v100();
        let mut placer = Placer::new(
            PlacementPolicy::Pinned(vec![Destination::Host(0)]),
            &topo,
            vec![0],
        );
        let mut rng = DetRng::new(1);
        placer.place(&topo, &chain(2), &mut rng);
    }

    #[test]
    fn pin_decode_prefers_least_kv_then_lowest_index() {
        let kv = [4e9, 1e9, 1e9, 9e9];
        assert_eq!(pin_decode(&kv, &[0, 1, 2, 3]), 1);
        assert_eq!(pin_decode(&kv, &[2, 1]), 1);
        assert_eq!(pin_decode(&kv, &[3]), 3);
    }
}
