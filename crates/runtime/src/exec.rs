//! Event-driven workflow executor.
//!
//! Drives workflow instances through their stage lifecycle:
//!
//! ```text
//! arrival → place → [per stage] fetch inputs (Get) → queue on GPU →
//! compute → store output (Put) → notify dependents → … → egress → record
//! ```
//!
//! Data movement runs on the flow network; a single "net wake" event (with
//! version-stamped staleness guards) advances the network to each next flow
//! completion and resumes whatever operation was waiting.

use std::sync::Arc;

use grouter_sim::engine::{Scheduler, Simulation};
use grouter_sim::params;
use grouter_sim::time::{SimDuration, SimTime};
use grouter_store::patterns::DataPassPattern;
use grouter_store::{AccessToken, DataId, FunctionId, Location, WorkflowId};
use grouter_topology::graph::TopologySpec;
use grouter_transfer::exec::BeginOutcome;

use crate::dataplane::{DataOp, DataPlane, Destination, PlaneCtx};
use crate::metrics::{InstanceRecord, Metrics, PassCategory};
use crate::spec::{StageKind, WorkflowSpec};
use crate::world::{Instance, OpKind, PendingOp, RuntimeConfig, StageRun, StageState, World};

/// Cached per-spec submit identities: the held `Arc<WorkflowSpec>` pins the
/// cache key's allocation, `u32` is the interned workflow name, `Arc<[u64]>`
/// the shared function-id table.
type SpecCacheEntry = (Arc<WorkflowSpec>, u32, Arc<[u64]>);

/// Public driver: a [`World`] plus its event queue.
pub struct Runtime {
    sim: Simulation<World>,
    function_ids: std::collections::HashMap<(String, usize), u64>,
    /// Per-spec submit cache keyed on `Arc` identity: interned workflow
    /// name and shared function-id table, computed once per spec. The held
    /// `Arc` keeps the pointer alive so it can never be reused by a
    /// different allocation.
    spec_cache: grouter_sim::FxHashMap<usize, SpecCacheEntry>,
}

impl Runtime {
    pub fn new(
        spec: TopologySpec,
        num_nodes: usize,
        plane: Box<dyn DataPlane>,
        config: RuntimeConfig,
    ) -> Runtime {
        let world = World::new(spec, num_nodes, plane, config);
        let mut sim = Simulation::new(world);
        let rec = sim.world.rec.clone();
        sim.sched.set_recorder(rec);
        Runtime {
            sim,
            function_ids: std::collections::HashMap::new(),
            spec_cache: grouter_sim::FxHashMap::default(),
        }
    }

    /// Switch the event core to the historical boxed-closure heap (see
    /// [`grouter_sim::Scheduler::force_boxed_dispatch`]). Benchmark baseline
    /// only; must be called before anything is scheduled.
    pub fn force_boxed_dispatch(&mut self) {
        self.sim.sched.force_boxed_dispatch();
    }

    /// The world's trace recorder (shared handle; cheap to clone).
    pub fn recorder(&self) -> &grouter_obs::Recorder {
        &self.sim.world.rec
    }

    /// Schedule a request for `spec` at absolute time `at`.
    pub fn submit(&mut self, spec: Arc<WorkflowSpec>, at: SimTime) {
        let (wf_name, fn_ids) = self.spec_identity(&spec);
        self.sim.world.metrics.arrivals += 1;
        self.sim.sched.schedule_at(
            at,
            Event::Arrival {
                spec,
                wf_name,
                fn_ids,
            },
        );
    }

    /// The submit identities of `spec` — interned workflow name and stable
    /// per-stage function ids — computed once per distinct spec.
    fn spec_identity(&mut self, spec: &Arc<WorkflowSpec>) -> (u32, Arc<[u64]>) {
        let cache_key = Arc::as_ptr(spec) as usize;
        match self.spec_cache.get(&cache_key) {
            Some((_, wf, ids)) => (*wf, ids.clone()),
            None => {
                // grouter-lint: allow(no-panic-in-dataplane): submit() is the public entry point; an invalid spec is caller error and must abort
                spec.validate().expect("workflow spec must be valid");
                // Stable per-(workflow, stage) function identities for the
                // pre-warm scalers: stage 0 of "traffic" is the same
                // function on every request.
                let base = self.function_ids.len() as u64;
                for i in 0..spec.stages.len() {
                    // grouter-lint: allow(no-hot-string-clone): spec-cache miss, once per distinct spec
                    let key = (spec.name.clone(), i);
                    let next = base + i as u64 + 1;
                    self.function_ids.entry(key).or_insert(next);
                }
                let ids: Arc<[u64]> = (0..spec.stages.len())
                    // grouter-lint: allow(no-hot-string-clone): spec-cache miss, once per distinct spec
                    .map(|i| self.function_ids[&(spec.name.clone(), i)])
                    .collect();
                let wf = self.sim.world.metrics.intern(&spec.name);
                self.spec_cache
                    .insert(cache_key, (spec.clone(), wf, ids.clone()));
                (wf, ids)
            }
        }
    }

    /// Register `spec` with a cluster port: compute its submit identities
    /// against this group's world and append it to the port's registry.
    /// Returns the logical id (registry index).
    pub fn cluster_register(
        &mut self,
        port: &mut crate::cluster::ClusterPort,
        spec: Arc<WorkflowSpec>,
    ) -> u32 {
        let (wf_name, fn_ids) = self.spec_identity(&spec);
        port.registry.push(crate::cluster::RegisteredSpec {
            spec,
            wf_name,
            fn_ids,
        });
        (port.registry.len() - 1) as u32
    }

    /// Kick the cluster arrival pump: schedule the first `NextArrival`
    /// pull. Requires an installed [`crate::cluster::ClusterPort`] with a
    /// source; a no-op otherwise.
    pub fn start_cluster_arrivals(&mut self) {
        let has_source = self
            .sim
            .world
            .cluster
            .as_ref()
            .is_some_and(|p| p.source.is_some());
        if has_source {
            self.sim
                .sched
                .schedule_at(SimTime::ZERO, Event::NextArrival);
        }
    }

    /// Surrender the driver wrapper, keeping the warmed-up simulation
    /// (scheduled events, installed fault plans, cluster port) — the form
    /// the sharded engine consumes.
    pub fn into_sim(self) -> Simulation<World> {
        self.sim
    }

    /// Record per-GPU idle-memory samples every `every` until `until`
    /// (Fig. 7a). Must be called before `run`.
    pub fn schedule_memory_samples(&mut self, every: SimDuration, until: SimTime) {
        let mut t = SimTime::ZERO;
        while t <= until {
            self.sim.sched.schedule_at(t, Event::MemSample);
            t += every;
        }
    }

    /// Watch `links`, sampling their utilisation every `every` until
    /// `until` (bandwidth-aggregation analysis, Fig. 5a). Must be called
    /// before `run`.
    pub fn schedule_link_samples(
        &mut self,
        links: Vec<grouter_sim::LinkId>,
        every: SimDuration,
        until: SimTime,
    ) {
        for l in links {
            self.sim
                .world
                .link_series
                .push((l, grouter_sim::stats::TimeSeries::new()));
        }
        let mut t = SimTime::ZERO;
        while t <= until {
            self.sim.sched.schedule_at(t, Event::LinkSample);
            t += every;
        }
    }

    /// Change a link's capacity at the current instant (failure injection /
    /// co-tenant congestion) and reschedule the network wake so in-flight
    /// transfers adapt. Mutating `world().net` directly would strand live
    /// flows: the pending wake events carry stale version stamps.
    pub fn set_link_capacity(&mut self, link: grouter_sim::LinkId, capacity: f64) {
        let now = self.sim.now();
        self.sim.world.net.set_link_capacity(now, link, capacity);
        schedule_net_wake(&mut self.sim.world, &mut self.sim.sched);
    }

    /// Install a deterministic fault plan: every event is scheduled into the
    /// simulation and interpreted by the recovery engine ([`crate::fault`]),
    /// interleaving deterministically with workload events. Must be called
    /// before `run`.
    pub fn install_fault_plan(&mut self, plan: &grouter_sim::fault::FaultPlan) {
        for ev in plan.events() {
            self.sim.sched.schedule_at(ev.at, Event::Fault(ev.clone()));
        }
    }

    /// Run to quiescence (all submitted requests completed).
    pub fn run(&mut self) {
        self.sim.run();
    }

    /// Run until the clock passes `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.sim.run_until(deadline);
    }

    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    pub fn metrics(&self) -> &Metrics {
        &self.sim.world.metrics
    }

    pub fn world(&self) -> &World {
        &self.sim.world
    }

    pub fn world_mut(&mut self) -> &mut World {
        &mut self.sim.world
    }
}

// ---------------------------------------------------------------------------
// Typed event core
// ---------------------------------------------------------------------------

/// Every event the executor schedules, as a value: dispatch moves a small
/// enum out of the scheduler's recycled buckets instead of calling a
/// heap-boxed closure. Cold one-off hooks (tests poking the world) can
/// still use [`grouter_sim::Scheduler::schedule_boxed`].
#[derive(Debug)]
pub enum Event {
    /// A submitted request arrives.
    Arrival {
        spec: Arc<WorkflowSpec>,
        /// Interned workflow name (id into `Metrics`' name table).
        wf_name: u32,
        fn_ids: Arc<[u64]>,
    },
    /// Record per-GPU idle-memory samples (Fig. 7a).
    MemSample,
    /// Record watched-link utilisation samples (Fig. 5a).
    LinkSample,
    /// Stage compute finished (stale when the attempt moved on).
    ComputeDone {
        inst: u64,
        stage: usize,
        attempt: u32,
    },
    /// An op's control latency (or previous leg) finished: pop the next leg.
    AdvanceOp { op: u64 },
    /// The staged leg's setup latency elapsed: start its flows.
    BeginLeg { op: u64 },
    /// Flow-network wake, version-stamped against re-allocation staleness.
    NetWake { version: u64 },
    /// An injected fault fires (interpreted by [`crate::fault`]).
    Fault(grouter_sim::fault::FaultEvent),
    /// Deferred dispatch attempt after recovery freed a GPU.
    TryDispatchGpu { gpu: usize },
    /// Deferred stage re-entry after a recovery reset wave; dropped when a
    /// later reset superseded `attempt`.
    StageReadyIfWaiting {
        inst: u64,
        stage: usize,
        attempt: u32,
    },
    /// Re-issue a cancelled data operation after its retry backoff.
    ReIssue {
        inst: u64,
        stage: usize,
        kind: OpKind,
        attempt: u32,
    },
    /// Pull the next arrival from the cluster port's open-loop source.
    NextArrival,
    /// A request reached this group's gateway: run locally or forward to
    /// its home group.
    ClusterIngress { spec: u32, home: u32 },
    /// A cross-group envelope from group `src` stamped for this instant.
    ClusterDeliver {
        src: u32,
        msg: crate::cluster::CrossMsg,
    },
    /// Service-mode worker heartbeat: publish a state snapshot to the
    /// router and keep the chain alive while the group has work.
    HeartbeatTick,
}

impl grouter_sim::EventWorld for World {
    type Event = Event;

    fn dispatch(&mut self, s: &mut Scheduler<World>, ev: Event) {
        match ev {
            Event::Arrival {
                spec,
                wf_name,
                fn_ids,
            } => arrival(self, s, spec, wf_name, fn_ids),
            Event::MemSample => self.sample_memory(s.now()),
            Event::LinkSample => self.sample_links(s.now()),
            Event::ComputeDone {
                inst,
                stage,
                attempt,
            } => compute_done(self, s, inst, stage, attempt),
            Event::AdvanceOp { op } => advance_op(self, s, op),
            Event::BeginLeg { op } => begin_leg(self, s, op),
            Event::NetWake { version } => net_wake(self, s, version),
            Event::Fault(ev) => crate::fault::apply_fault(self, s, &ev),
            Event::TryDispatchGpu { gpu } => try_dispatch_gpu(self, s, gpu),
            Event::StageReadyIfWaiting {
                inst,
                stage,
                attempt,
            } => {
                let ok = self.instances.get(&inst).is_some_and(|i| {
                    i.stages[stage].attempt == attempt
                        && matches!(i.stages[stage].state, StageState::Waiting { deps_left: 0 })
                });
                if ok {
                    stage_ready(self, s, inst, stage);
                }
            }
            Event::ReIssue {
                inst,
                stage,
                kind,
                attempt,
            } => crate::fault::re_issue(self, s, inst, stage, kind, attempt),
            Event::NextArrival => crate::cluster::next_arrival(self, s),
            Event::ClusterIngress { spec, home } => crate::cluster::ingress(self, s, spec, home),
            Event::ClusterDeliver { src, msg } => crate::cluster::deliver(self, s, src, msg),
            Event::HeartbeatTick => crate::cluster::heartbeat_tick(self, s),
        }
    }
}

/// Run a closure against the plane with a borrow-split context.
pub(crate) fn with_plane<R>(
    w: &mut World,
    now: SimTime,
    slo: Option<grouter_transfer::rate::SloSpec>,
    f: impl FnOnce(&mut dyn DataPlane, &mut PlaneCtx<'_>) -> R,
) -> R {
    // grouter-lint: allow(no-panic-in-dataplane): with_plane restores the plane before returning, and the event loop is single-threaded
    let mut plane = w.plane.take().expect("plane re-entrancy");
    let r = {
        let mut ctx = PlaneCtx {
            topo: &w.topo,
            net: &w.net,
            store: &mut w.store,
            pools: &mut w.pools,
            scalers: &mut w.scalers,
            ledgers: &mut w.ledgers,
            pinned: &mut w.pinned,
            rates: &mut w.rates,
            now,
            slo,
            trace: w.rec.clone(),
        };
        f(plane.as_mut(), &mut ctx)
    };
    w.plane = Some(plane);
    r
}

/// SLO spec of an instance's workflow (for `Rate_least`), if calibrated.
pub(crate) fn instance_slo(inst: &Instance) -> Option<grouter_transfer::rate::SloSpec> {
    if inst.spec.slo > SimDuration::ZERO {
        Some(grouter_transfer::rate::SloSpec {
            slo: inst.spec.slo,
            infer: inst.spec.critical_path_compute(),
        })
    } else {
        None
    }
}

/// Latency attribution by *logical* edge, as in the paper's Fig. 3: a
/// gFn→gFn hop counts as gFn–gFn passing even when a host-centric plane
/// routes it through host memory; cFn and ingress/egress endpoints count as
/// host-side.
fn edge_category(producer_is_gfn: bool, consumer_is_gfn: bool) -> PassCategory {
    match (producer_is_gfn, consumer_is_gfn) {
        (true, true) => PassCategory::GpuGpu,
        (false, false) => PassCategory::HostHost,
        _ => PassCategory::GpuHost,
    }
}

#[allow(dead_code)]
fn pass_category(pattern: DataPassPattern) -> PassCategory {
    match pattern {
        DataPassPattern::ZeroCopy
        | DataPassPattern::IntraNodeGpu { .. }
        | DataPassPattern::CrossNodeGpu { .. } => PassCategory::GpuGpu,
        DataPassPattern::HostToGpu { .. } | DataPassPattern::GpuToHost { .. } => {
            PassCategory::GpuHost
        }
        DataPassPattern::HostLocal { .. } | DataPassPattern::HostCross { .. } => {
            PassCategory::HostHost
        }
    }
}

// ---------------------------------------------------------------------------
// Arrival
// ---------------------------------------------------------------------------

pub(crate) fn arrival(
    w: &mut World,
    s: &mut Scheduler<World>,
    spec: Arc<WorkflowSpec>,
    wf_name: u32,
    fn_ids: Arc<[u64]>,
) {
    let now = s.now();
    let inst_id = w.next_instance;
    w.next_instance += 1;
    let mut placements = w.placer.place(&w.topo, &spec, &mut w.rng);

    // Failed-GPU avoidance: the load-aware policies already steer around
    // down GPUs, but pinned placements (and the all-GPUs-down corner) can
    // still land on one. Remap onto a healthy GPU; when none exists the
    // request fails *typed* instead of queueing on a dead device forever.
    if !w.fault.failed_gpus.is_empty() {
        for p in placements.iter_mut() {
            let Destination::Gpu(g) = *p else { continue };
            if !w.gpus[w.gpu_index(g.node, g.gpu)].failed {
                continue;
            }
            match w.placer.pick_healthy(&w.topo, Some(g.node)) {
                Some(ng) => {
                    w.placer.release(&w.topo, *p);
                    *p = Destination::Gpu(ng);
                    w.placer.bump(&w.topo, *p);
                }
                None => {
                    for d in &placements {
                        w.placer.release(&w.topo, *d);
                    }
                    w.metrics.failed += 1;
                    w.log_recovery(
                        now,
                        crate::fault::RecoveryEvent::InstanceFailed { inst: inst_id },
                    );
                    return;
                }
            }
        }
    }

    // Conditional branch sampling: pick one alternative per group.
    let mut skipped = vec![false; spec.stages.len()];
    let mut groups: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    for (i, st) in spec.stages.iter().enumerate() {
        if let Some((g, _)) = st.cond_group {
            groups.entry(g).or_default().push(i);
        }
    }
    for members in groups.values() {
        let total: f64 = members
            .iter()
            // grouter-lint: allow(no-panic-in-dataplane): members were collected from stages whose cond_group is Some
            .map(|&i| spec.stages[i].cond_group.expect("grouped").1)
            .sum();
        let mut pick = w.rng.next_f64() * total;
        let mut chosen = members[members.len() - 1];
        for &i in members {
            // grouter-lint: allow(no-panic-in-dataplane): members were collected from stages whose cond_group is Some
            let wgt = spec.stages[i].cond_group.expect("grouped").1;
            if pick < wgt {
                chosen = i;
                break;
            }
            pick -= wgt;
        }
        for &i in members {
            if i != chosen {
                skipped[i] = true;
            }
        }
    }
    // Cascade: a stage whose deps are all skipped is skipped too.
    for i in 0..spec.stages.len() {
        let deps = &spec.stages[i].deps;
        if !deps.is_empty() && deps.iter().all(|&d| skipped[d]) {
            skipped[i] = true;
        }
    }

    let stages: Vec<StageRun> = (0..spec.stages.len())
        .map(|i| {
            let state = if skipped[i] {
                StageState::Skipped
            } else {
                let deps_left = spec.stages[i].deps.iter().filter(|&&d| !skipped[d]).count() as u32;
                StageState::Waiting { deps_left }
            };
            StageRun {
                state,
                output: None,
                rank: None,
                enqueued: None,
                attempt: 0,
                got: Vec::new(),
                egressed: false,
            }
        })
        .collect();

    let terminals_left = (0..spec.stages.len())
        .filter(|&i| !skipped[i] && spec.is_terminal(i))
        .count() as u32;
    let roots: Vec<usize> = (0..spec.stages.len())
        .filter(|&i| !skipped[i] && spec.stages[i].deps.is_empty())
        .collect();

    // Pre-warm hook for the elastic store.
    with_plane(w, now, None, |p, ctx| p.on_request(ctx, &placements));
    for (i, &fid) in fn_ids.iter().enumerate() {
        if !skipped[i] {
            if let Destination::Gpu(g) = placements[i] {
                let idx = g.node * w.topo.gpus_per_node() + g.gpu;
                w.scalers[idx].on_request(fid, now);
            }
        }
    }

    // The request payload lands in host memory of the first root's node.
    let input_node = roots
        .first()
        .map(|&r| match placements[r] {
            Destination::Gpu(g) => g.node,
            Destination::Host(n) => n,
        })
        .unwrap_or(0);
    let token = AccessToken {
        function: FunctionId(0),
        workflow: WorkflowId(inst_id),
    };
    let (input_data, _) = w.store.put(
        now,
        token,
        Location::Host(input_node),
        spec.input_bytes,
        roots.len() as u32,
    );

    w.instances.insert(
        inst_id,
        Instance {
            spec,
            arrived: now,
            placements,
            stages,
            input_data,
            terminals_left,
            compute_total: SimDuration::ZERO,
            passing: Default::default(),
            op_durations: Vec::new(),
            workflow_id: WorkflowId(inst_id),
            wf_name,
            fn_ids,
        },
    );

    for root in roots {
        stage_ready(w, s, inst_id, root);
    }
    if w.config.sample_memory {
        w.sample_memory(now);
    }
}

// ---------------------------------------------------------------------------
// Stage lifecycle
// ---------------------------------------------------------------------------

/// Stage dependencies are satisfied: enqueue it. Serverless functions call
/// `Get` when they are *invoked*, not when upstream data appears, so inputs
/// stay in the store while the stage waits in the GPU queue — the
/// accumulation the elastic storage of §4.4 manages (Figs. 7 and 11).
pub(crate) fn stage_ready(w: &mut World, s: &mut Scheduler<World>, inst_id: u64, stage: usize) {
    // Queue rank drives queue-aware migration: record which queued stage
    // will consume each input and when.
    let rank = w.enqueue_counter;
    w.enqueue_counter += 1;
    let (dest, inputs) = {
        // grouter-lint: allow(no-panic-in-dataplane): scheduled events reference instances that outlive them; a miss is a scheduler bug
        let inst = w.instances.get_mut(&inst_id).expect("live");
        inst.stages[stage].rank = Some(rank);
        inst.stages[stage].state = StageState::Queued;
        (inst.placements[stage], stage_inputs(inst, stage))
    };
    for d in inputs {
        let cur = w.store.peek(d).and_then(|e| e.next_use);
        if cur.is_none_or(|c| rank < c) {
            w.store.set_next_use(d, Some(rank));
        }
    }
    match dest {
        Destination::Gpu(g) => {
            let idx = w.gpu_index(g.node, g.gpu);
            if w.rec.on(grouter_obs::Comp::Runtime) {
                // grouter-lint: allow(no-panic-in-dataplane): stage_ready just wrote this instance above
                let inst = w.instances.get_mut(&inst_id).expect("live");
                inst.stages[stage].enqueued = Some(s.now());
                w.rec.instant(
                    grouter_obs::Comp::Runtime,
                    "stage_enqueue",
                    grouter_obs::Ids::inst(inst_id),
                    vec![
                        ("stage", stage.into()),
                        ("gpu", idx.into()),
                        ("rank", rank.into()),
                    ],
                );
            }
            w.gpus[idx].queue.push_back((inst_id, stage));
            try_dispatch_gpu(w, s, idx);
        }
        Destination::Host(_) => {
            // CPU slots are not a bottleneck in the paper's workloads.
            start_fetch(w, s, inst_id, stage);
        }
    }
}

/// The data IDs a stage consumes (outputs of completed deps, or the
/// workflow input for roots).
fn stage_inputs(inst: &Instance, stage: usize) -> Vec<DataId> {
    let deps = &inst.spec.stages[stage].deps;
    if deps.is_empty() {
        vec![inst.input_data]
    } else {
        deps.iter()
            .filter(|&&d| inst.stages[d].state == StageState::Done)
            // grouter-lint: allow(no-panic-in-dataplane): stage_done records the output before dependents are enqueued
            .map(|&d| inst.stages[d].output.expect("done stage has output"))
            .collect()
    }
}

pub(crate) fn try_dispatch_gpu(w: &mut World, s: &mut Scheduler<World>, gpu_idx: usize) {
    if w.gpus[gpu_idx].busy || w.gpus[gpu_idx].failed {
        return;
    }
    loop {
        let Some((inst_id, stage)) = w.gpus[gpu_idx].queue.pop_front() else {
            return;
        };
        // Recovery can fail an instance or reset a stage while it sits in
        // the queue; such entries are dropped here rather than eagerly
        // scrubbed from every queue.
        let valid = w
            .instances
            .get(&inst_id)
            .map(|i| i.stages[stage].state == StageState::Queued)
            .unwrap_or(false);
        if valid {
            w.gpus[gpu_idx].busy = true;
            if w.rec.on(grouter_obs::Comp::Runtime) {
                let enqueued = w
                    .instances
                    .get(&inst_id)
                    .and_then(|i| i.stages[stage].enqueued);
                let wait_ns = enqueued.map_or(0, |t| s.now().as_nanos() - t.as_nanos());
                w.rec.instant(
                    grouter_obs::Comp::Runtime,
                    "stage_dispatch",
                    grouter_obs::Ids::inst(inst_id),
                    vec![
                        ("stage", stage.into()),
                        ("gpu", gpu_idx.into()),
                        ("queue_wait_ns", wait_ns.into()),
                    ],
                );
                w.rec
                    .count(grouter_obs::Comp::Runtime, "stage_dispatches", 1);
                w.rec
                    .sample(grouter_obs::Comp::Runtime, "queue_wait_ns", wait_ns);
            }
            start_fetch(w, s, inst_id, stage);
            return;
        }
    }
}

/// The function was invoked (GPU assigned / CPU slot taken): fetch inputs
/// through the data plane, then run.
fn start_fetch(w: &mut World, s: &mut Scheduler<World>, inst_id: u64, stage: usize) {
    let now = s.now();
    let (token, dest, inputs) = {
        // grouter-lint: allow(no-panic-in-dataplane): scheduled events reference instances that outlive them; a miss is a scheduler bug
        let inst = w.instances.get_mut(&inst_id).expect("live instance");
        let token = AccessToken {
            function: FunctionId(inst.fn_ids[stage]),
            workflow: inst.workflow_id,
        };
        let inputs = stage_inputs(inst, stage);
        inst.stages[stage].state = StageState::Fetching {
            gets_left: inputs.len() as u32,
        };
        (token, inst.placements[stage], inputs)
    };
    if inputs.is_empty() {
        start_running(w, s, inst_id, stage);
        return;
    }
    for d in inputs {
        let cat = {
            // grouter-lint: allow(no-panic-in-dataplane): scheduled events reference instances that outlive them; a miss is a scheduler bug
            let inst = w.instances.get(&inst_id).expect("live");
            let producer_gfn = if d == inst.input_data {
                false // workflow input arrives via host memory
            } else {
                inst.spec
                    .stages
                    .iter()
                    .enumerate()
                    .find(|(j, _)| inst.stages[*j].output == Some(d))
                    .map(|(_, st)| st.is_gpu())
                    .unwrap_or(false)
            };
            edge_category(producer_gfn, inst.spec.stages[stage].is_gpu())
        };
        // grouter-lint: allow(no-panic-in-dataplane): scheduled events reference instances that outlive them; a miss is a scheduler bug
        let slo = instance_slo(w.instances.get(&inst_id).expect("live"));
        let op = with_plane(w, now, slo, |p, ctx| p.get(ctx, token, d, dest))
            // grouter-lint: allow(no-panic-in-dataplane): a failed plane Get/Put is a DataPlane contract violation; the driver aborts the run
            .unwrap_or_else(|e| panic!("Get({d:?}) failed: {e}"));
        start_op(
            w,
            s,
            op,
            OpKind::Get {
                inst: inst_id,
                stage,
                data: d,
            },
            cat,
        );
    }
}

fn start_running(w: &mut World, s: &mut Scheduler<World>, inst_id: u64, stage: usize) {
    let now = s.now();
    let (dest, compute, mem_bytes, fid, attempt) = {
        // grouter-lint: allow(no-panic-in-dataplane): scheduled events reference instances that outlive them; a miss is a scheduler bug
        let inst = w.instances.get_mut(&inst_id).expect("live");
        inst.stages[stage].state = StageState::Running;
        let spec = &inst.spec.stages[stage];
        let mem = match spec.kind {
            StageKind::Gpu { mem_bytes } => mem_bytes,
            StageKind::Cpu => 0.0,
        };
        (
            inst.placements[stage],
            spec.compute,
            mem,
            inst.fn_ids[stage],
            inst.stages[stage].attempt,
        )
    };

    let mut delay = SimDuration::ZERO;
    if let Destination::Gpu(g) = dest {
        // Cold start unless pre-warmed (paper pre-warms, SHEPHERD-style).
        // Function ids are bijective with (workflow, stage), so the warm key
        // never clones the workflow name.
        let warm_key = (fid, w.gpu_index(g.node, g.gpu));
        if !w.config.prewarm && !w.warm.contains(&warm_key) {
            delay = params::COLD_START_GFN;
        }
        w.warm.insert(warm_key);
        // Model memory while running — may squeeze the storage pool.
        let idx = w.gpu_index(g.node, g.gpu);
        let used = w.pools[idx].runtime_used() + mem_bytes;
        w.pools[idx].set_runtime_used(used);
        let background = with_plane(w, now, None, |p, ctx| p.on_memory_change(ctx, g));
        run_background(w, s, background);
        if w.config.sample_memory {
            w.sample_memory(now);
        }
    } else if !w.config.prewarm {
        delay = params::COLD_START_CFN;
    }

    s.schedule_in(
        delay + compute,
        Event::ComputeDone {
            inst: inst_id,
            stage,
            attempt,
        },
    );
}

fn compute_done(w: &mut World, s: &mut Scheduler<World>, inst_id: u64, stage: usize, attempt: u32) {
    let now = s.now();
    let (dest, compute, mem_bytes, output_bytes, fid) = {
        // The instance may have failed, or the stage may have been reset to
        // a newer attempt, while this completion was in flight. Recovery
        // already unwound the GPU/pool state; a stale completion must not
        // touch it again.
        let Some(inst) = w.instances.get_mut(&inst_id) else {
            return;
        };
        if inst.stages[stage].attempt != attempt || inst.stages[stage].state != StageState::Running
        {
            return;
        }
        let spec = &inst.spec.stages[stage];
        inst.compute_total = inst.compute_total + spec.compute;
        let mem = match spec.kind {
            StageKind::Gpu { mem_bytes } => mem_bytes,
            StageKind::Cpu => 0.0,
        };
        (
            inst.placements[stage],
            spec.compute,
            mem,
            spec.output_bytes,
            inst.fn_ids[stage],
        )
    };
    let _ = compute;

    if let Destination::Gpu(g) = dest {
        let idx = w.gpu_index(g.node, g.gpu);
        w.gpus[idx].busy = false;
        let used = (w.pools[idx].runtime_used() - mem_bytes).max(0.0);
        w.pools[idx].set_runtime_used(used);
        let background = with_plane(w, now, None, |p, ctx| p.on_memory_change(ctx, g));
        run_background(w, s, background);
        try_dispatch_gpu(w, s, idx);
        if w.config.sample_memory {
            w.sample_memory(now);
        }
    }

    // Store the output through the data plane. On a recovery re-run some
    // dependents may already hold their copy from the first attempt, so the
    // consumer count is restricted to the ones that will actually fetch.
    let consumers = {
        let inst = &w.instances[&inst_id];
        if inst.stages[stage].attempt == 0 {
            inst.consumers_of(stage)
        } else {
            crate::fault::rerun_consumers(inst, stage)
        }
    };
    let token = AccessToken {
        function: FunctionId(fid),
        workflow: w.instances[&inst_id].workflow_id,
    };
    // grouter-lint: allow(no-panic-in-dataplane): scheduled events reference instances that outlive them; a miss is a scheduler bug
    w.instances.get_mut(&inst_id).expect("live").stages[stage].state = StageState::Storing;
    let slo = instance_slo(&w.instances[&inst_id]);
    let put = with_plane(w, now, slo, |p, ctx| {
        p.put(ctx, token, dest, output_bytes, consumers)
    })
    // grouter-lint: allow(no-panic-in-dataplane): a failed plane Get/Put is a DataPlane contract violation; the driver aborts the run
    .unwrap_or_else(|e| panic!("Put for stage {stage} failed: {e}"));
    let cat = {
        let inst = &w.instances[&inst_id];
        let producer_gfn = inst.spec.stages[stage].is_gpu();
        // Attribute the put to the dominant downstream edge: gFn–gFn when
        // any live dependent is a GPU function, otherwise host-side
        // (cFn consumers or the response egress).
        let any_gfn_consumer = inst.spec.stages.iter().enumerate().any(|(j, st)| {
            st.deps.contains(&stage) && inst.stages[j].state != StageState::Skipped && st.is_gpu()
        });
        edge_category(producer_gfn, any_gfn_consumer)
    };
    start_op(
        w,
        s,
        put.op,
        OpKind::Put {
            inst: inst_id,
            stage,
            data: put.id,
        },
        cat,
    );
}

fn stage_done(w: &mut World, s: &mut Scheduler<World>, inst_id: u64, stage: usize, data: DataId) {
    let now = s.now();
    let (is_terminal, dependents, dest) = {
        // grouter-lint: allow(no-panic-in-dataplane): scheduled events reference instances that outlive them; a miss is a scheduler bug
        let inst = w.instances.get_mut(&inst_id).expect("live");
        inst.stages[stage].state = StageState::Done;
        inst.stages[stage].output = Some(data);
        // A re-run of a terminal whose egress already completed must not
        // egress (and decrement `terminals_left`) twice.
        let is_terminal = inst.spec.is_terminal(stage) && !inst.stages[stage].egressed;
        let mut dependents = Vec::new();
        for (j, st) in inst.spec.stages.iter().enumerate() {
            if st.deps.contains(&stage)
                && matches!(inst.stages[j].state, StageState::Waiting { .. })
            {
                dependents.push(j);
            }
        }
        (is_terminal, dependents, inst.placements[stage])
    };
    let topo = &w.topo;
    w.placer.release(topo, dest);

    for j in dependents {
        let ready = {
            // grouter-lint: allow(no-panic-in-dataplane): scheduled events reference instances that outlive them; a miss is a scheduler bug
            let inst = w.instances.get_mut(&inst_id).expect("live");
            if let StageState::Waiting { deps_left } = inst.stages[j].state {
                let left = deps_left - 1;
                inst.stages[j].state = StageState::Waiting { deps_left: left };
                left == 0
            } else {
                false
            }
        };
        if ready {
            stage_ready(w, s, inst_id, j);
        }
    }

    if is_terminal {
        // Response egress: pull the output into host memory.
        let (token, node) = {
            let inst = &w.instances[&inst_id];
            let node = match inst.placements[stage] {
                Destination::Gpu(g) => g.node,
                Destination::Host(n) => n,
            };
            (
                AccessToken {
                    function: FunctionId(inst.fn_ids[stage]),
                    workflow: inst.workflow_id,
                },
                node,
            )
        };
        let cat = edge_category(w.instances[&inst_id].spec.stages[stage].is_gpu(), false);
        let slo = instance_slo(&w.instances[&inst_id]);
        let op = with_plane(w, now, slo, |p, ctx| {
            p.get(ctx, token, data, Destination::Host(node))
        })
        // grouter-lint: allow(no-panic-in-dataplane): a failed plane Get/Put is a DataPlane contract violation; the driver aborts the run
        .unwrap_or_else(|e| panic!("egress Get failed: {e}"));
        start_op(
            w,
            s,
            op,
            OpKind::Egress {
                inst: inst_id,
                stage,
                data,
            },
            cat,
        );
    }
}

fn finish_instance(w: &mut World, s: &mut Scheduler<World>, inst_id: u64) {
    let now = s.now();
    // grouter-lint: allow(no-panic-in-dataplane): scheduled events reference instances that outlive them; a miss is a scheduler bug
    let inst = w.instances.remove(&inst_id).expect("live");
    // Response payload back to the admitting gateway: the terminal stages'
    // outputs (what egress returned to the caller).
    let resp_bytes: f64 = inst
        .spec
        .terminals()
        .iter()
        .map(|&t| inst.spec.stages[t].output_bytes)
        .sum();
    w.metrics.record(InstanceRecord {
        workflow: inst.wf_name,
        arrived: inst.arrived,
        completed: now,
        compute: inst.compute_total,
        passing: inst.passing,
        op_durations: inst.op_durations,
    });
    crate::cluster::on_instance_finished(w, now, inst_id, resp_bytes);
    let _ = s;
}

// ---------------------------------------------------------------------------
// Data operations
// ---------------------------------------------------------------------------

pub(crate) fn start_op(
    w: &mut World,
    s: &mut Scheduler<World>,
    op: DataOp,
    kind: OpKind,
    category: PassCategory,
) {
    let op_id = w.next_op;
    w.next_op += 1;
    let span = if w.rec.on(grouter_obs::Comp::Runtime) {
        let (label, ids) = match kind {
            OpKind::Get { inst, .. } => ("get", grouter_obs::Ids::op(op_id).with_inst(inst)),
            OpKind::Put { inst, .. } => ("put", grouter_obs::Ids::op(op_id).with_inst(inst)),
            OpKind::Egress { inst, .. } => ("egress", grouter_obs::Ids::op(op_id).with_inst(inst)),
            OpKind::Background => ("background", grouter_obs::Ids::op(op_id)),
        };
        w.rec.begin(
            grouter_obs::Comp::Runtime,
            "op",
            ids,
            vec![("kind", label.into()), ("legs", op.legs.len().into())],
        )
    } else {
        0
    };
    w.ops.insert(
        op_id,
        PendingOp {
            legs: op.legs.into(),
            staged: None,
            started: s.now(),
            kind,
            category,
            rate_token: None,
            ledger_release: None,
            pinned_release: None,
            span,
        },
    );
    s.schedule_in(op.control_latency, Event::AdvanceOp { op: op_id });
}

fn advance_op(w: &mut World, s: &mut Scheduler<World>, op_id: u64) {
    let Some(pending) = w.ops.get_mut(&op_id) else {
        return;
    };
    match pending.legs.pop_front() {
        None => complete_op(w, s, op_id),
        Some(leg) => {
            let setup = leg.plan.setup;
            pending.staged = Some(leg);
            s.schedule_in(setup, Event::BeginLeg { op: op_id });
        }
    }
}

fn begin_leg(w: &mut World, s: &mut Scheduler<World>, op_id: u64) {
    let now = s.now();
    let leg = match w.ops.get_mut(&op_id) {
        Some(pending) => {
            // grouter-lint: allow(no-panic-in-dataplane): advance_op stages exactly one leg per BeginLeg event
            let leg = pending.staged.take().expect("staged leg");
            pending.rate_token = leg.rate_token;
            pending.ledger_release = leg.ledger_release;
            pending.pinned_release = leg.pinned_release;
            leg
        }
        None => {
            // The op was cancelled by recovery between advance_op and this
            // event; cancel_op parked the staged leg. Its pre-attached
            // reservations were made when the plane built it and would leak
            // without an explicit release.
            if let Some(leg) = w.orphan_legs.remove(&op_id) {
                release_leg_resources(w, &leg);
            }
            return;
        }
    };
    if leg.health == crate::dataplane::LegHealth::Degraded {
        w.log_recovery(now, crate::fault::RecoveryEvent::DegradedLeg { op: op_id });
    }
    // Apply direct-path rebalances: move other functions' in-flight flows
    // onto their new routes (§4.3.3 reassignment). A flow that already
    // finished simply isn't in the index any more. The reroutes and the
    // leg's own flow starts all land at this instant, so the whole leg is
    // one allocation batch: rates are recomputed once, over the union of
    // the touched contention components.
    w.net.begin_batch();
    for (node, rb) in &leg.reroutes {
        if let Some(fid) = w.nv_flow_index.find(*node, &rb.old) {
            let mut links = Vec::new();
            for hop in rb.new.windows(2) {
                links.extend(
                    w.topo
                        .nvlink_edge(*node, hop[0], hop[1])
                        // grouter-lint: allow(no-panic-in-dataplane): ledger rebalances route over edges of the live topology
                        .expect("rebalance routes use existing edges"),
                );
            }
            w.net
                .reroute_flow(now, fid, links)
                // grouter-lint: allow(no-panic-in-dataplane): the flow id comes from nv_flow_index, which tracks only live flows
                .expect("rerouted flow is live");
            w.nv_flow_index.insert(fid, *node, rb.new.clone());
            w.rebalances_applied += 1;
        }
    }
    let outcome = w.engine.begin(&mut w.net, now, leg.plan, leg.nv_node);
    w.net.commit_batch();
    match outcome {
        // grouter-lint: allow(no-panic-in-dataplane): a plan over unknown links is a planner/topology mismatch; the driver aborts the run
        Err(e) => panic!("transfer begin failed: {e}"),
        Ok(BeginOutcome::Immediate) => {
            release_rate_token(w, op_id);
            release_ledger(w, op_id);
            advance_op(w, s, op_id);
        }
        Ok(BeginOutcome::InFlight(tid, flows)) => {
            for (fid, route) in flows {
                if let Some(route) = route {
                    w.nv_flow_index.insert(fid, leg.nv_node, route);
                }
            }
            w.transfer_waiters.insert(tid, op_id);
            schedule_net_wake(w, s);
        }
    }
}

/// Release a not-yet-begun leg's reservations (rate token, ledger paths,
/// pinned staging bytes) without running it.
pub(crate) fn release_leg_resources(w: &mut World, leg: &crate::dataplane::OpLeg) {
    if let Some((node, token)) = leg.rate_token {
        w.rates[node].finish(token);
    }
    if let Some((node, res)) = leg.ledger_release {
        w.ledgers[node].release(res);
    }
    if let Some((node, bytes)) = leg.pinned_release {
        w.pinned[node].release(bytes);
    }
}

fn release_rate_token(w: &mut World, op_id: u64) {
    if let Some(pending) = w.ops.get_mut(&op_id) {
        if let Some((node, token)) = pending.rate_token.take() {
            w.rates[node].finish(token);
        }
    }
}

fn release_ledger(w: &mut World, op_id: u64) {
    if let Some(pending) = w.ops.get_mut(&op_id) {
        if let Some((node, res)) = pending.ledger_release.take() {
            w.ledgers[node].release(res);
        }
        if let Some((node, bytes)) = pending.pinned_release.take() {
            w.pinned[node].release(bytes);
        }
    }
}

fn complete_op(w: &mut World, s: &mut Scheduler<World>, op_id: u64) {
    let now = s.now();
    // grouter-lint: allow(no-panic-in-dataplane): op completion events fire exactly once per op the driver created
    let op = w.ops.remove(&op_id).expect("pending op");
    w.rec.end(op.span, vec![]);
    let duration = now - op.started;
    match op.kind {
        OpKind::Get { inst, stage, data } => {
            record_pass(w, inst, op.category, duration);
            // The consumer has its copy; release the stored object.
            let background = with_plane(w, now, None, |p, ctx| p.on_consumed(ctx, data));
            run_background(w, s, background);
            let ready = {
                let Some(instance) = w.instances.get_mut(&inst) else {
                    return;
                };
                if let StageState::Fetching { gets_left } = instance.stages[stage].state {
                    instance.stages[stage].got.push(data);
                    let left = gets_left - 1;
                    instance.stages[stage].state = StageState::Fetching { gets_left: left };
                    left == 0
                } else {
                    false
                }
            };
            if ready {
                start_running(w, s, inst, stage);
            }
        }
        OpKind::Put { inst, stage, data } => {
            record_pass(w, inst, op.category, duration);
            stage_done(w, s, inst, stage, data);
        }
        OpKind::Egress { inst, stage, data } => {
            record_pass(w, inst, op.category, duration);
            let background = with_plane(w, now, None, |p, ctx| p.on_consumed(ctx, data));
            run_background(w, s, background);
            let done = {
                let Some(instance) = w.instances.get_mut(&inst) else {
                    return;
                };
                instance.stages[stage].egressed = true;
                instance.terminals_left -= 1;
                instance.terminals_left == 0
            };
            if done {
                finish_instance(w, s, inst);
            }
        }
        OpKind::Background => {}
    }
}

fn record_pass(w: &mut World, inst_id: u64, cat: PassCategory, dur: SimDuration) {
    if let Some(inst) = w.instances.get_mut(&inst_id) {
        let slot = inst.passing.entry(cat).or_insert(SimDuration::ZERO);
        *slot = *slot + dur;
        inst.op_durations.push((cat, dur));
    }
}

pub(crate) fn run_background(w: &mut World, s: &mut Scheduler<World>, ops: Vec<DataOp>) {
    for op in ops {
        start_op(w, s, op, OpKind::Background, PassCategory::GpuHost);
    }
}

// ---------------------------------------------------------------------------
// Network wake
// ---------------------------------------------------------------------------

pub(crate) fn schedule_net_wake(w: &mut World, s: &mut Scheduler<World>) {
    let Some(at) = w.net.next_completion() else {
        return;
    };
    let version = w.net.version();
    s.schedule_at(at, Event::NetWake { version });
}

/// Harvest the flow network at a wake instant: one event per *batch* of
/// completions sharing the instant, not one per flow.
fn net_wake(w: &mut World, s: &mut Scheduler<World>, version: u64) {
    if w.net.version() != version {
        return; // stale wake; a fresher one is scheduled
    }
    let mut done = std::mem::take(&mut w.flow_scratch);
    w.net.advance_to_into(s.now(), &mut done);
    for fid in &done {
        w.nv_flow_index.remove(fid);
    }
    let finished = w.engine.on_flows_complete(&done);
    done.clear();
    w.flow_scratch = done;
    for td in finished {
        for (route, rate) in &td.nv_releases {
            w.ledgers[td.nv_node].bwm_mut().release_path(route, *rate);
        }
        if let Some(op_id) = w.transfer_waiters.remove(&td.id) {
            release_rate_token(w, op_id);
            release_ledger(w, op_id);
            advance_op(w, s, op_id);
        }
    }
    schedule_net_wake(w, s);
}
