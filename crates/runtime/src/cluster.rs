//! Cluster-scale sharded runtime: node groups as conservative shards.
//!
//! A 64–128-GPU serverless cluster is modelled as a set of *node groups*
//! (one DGX-class node each, or a small rack), every group owning a full
//! [`World`] — its own topology, data plane, event timeline and RNG stream.
//! Groups interact only through the cluster frontend: a request is routed
//! to a *home* group, and if the gateway that admitted it belongs to a
//! different group, the invocation (and later its response) crosses a
//! frontend channel with [`params::CROSS_GROUP_LATENCY`] one-way latency
//! and [`params::CROSS_GROUP_BW`] bandwidth. That latency is the
//! conservative lookahead of the sharded engine: no group can affect
//! another sooner, so every group may simulate that far ahead of the
//! global safe horizon in parallel (see `grouter_sim::shard`).
//!
//! Determinism: group worlds draw from [`DetRng::split`] streams of the
//! run seed, cross-group messages are delivered in `(time, src, seq)`
//! order regardless of worker threads, and merged reports iterate groups
//! in index order — the same seed yields byte-identical metrics CSV and
//! recovery logs on 1 or N threads.

use std::sync::Arc;

use grouter_sim::engine::Scheduler;
use grouter_sim::fault::FaultPlan;
use grouter_sim::params;
use grouter_sim::rng::DetRng;
use grouter_sim::shard::{Envelope, RunStats, ShardWorld, ShardedEngine};
use grouter_sim::time::{SimDuration, SimTime};
use grouter_sim::FxHashMap;
use grouter_topology::graph::TopologySpec;

use crate::dataplane::DataPlane;
use crate::exec::{Event, Runtime};
use crate::spec::WorkflowSpec;
use crate::world::{RuntimeConfig, World};

/// A message crossing the cluster frontend between two groups.
#[derive(Clone, Debug)]
pub enum CrossMsg {
    /// Forwarded invocation: run logical workflow `spec` here; tell
    /// `origin` when it finishes.
    Invoke { spec: u32, origin: u32 },
    /// Completion notification flowing back to the admitting group.
    Response,
    /// Worker state snapshot published to the router (service mode). Boxed:
    /// the snapshot carries per-GPU vectors and must not fatten every
    /// envelope in the fabric.
    Heartbeat(Box<Heartbeat>),
}

/// One worker heartbeat: everything the router's scheduler is allowed to
/// know about a group, as of the emission instant (`DESIGN.md` §5.9). The
/// router's view is exactly the last snapshot per group — between beats it
/// is stale by construction, which is the point of the control-plane
/// boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct Heartbeat {
    /// Emitting group.
    pub group: u32,
    /// Per-group monotone sequence number.
    pub seq: u64,
    /// Virtual emission time.
    pub at: SimTime,
    /// Live workflow instances on the group (queue depth).
    pub depth: u32,
    /// Outstanding stage count per flat GPU index (the MAPA load vector).
    pub gpu_load: Vec<u32>,
    /// Per-GPU failure flags (flat index).
    pub gpu_failed: Vec<bool>,
    /// Per-GPU memory occupancy snapshots (flat index).
    pub pool: Vec<grouter_mem::PoolOccupancy>,
    /// Requests completed so far.
    pub completed: u64,
    /// Requests failed (typed) so far.
    pub failed: u64,
    /// `false` on the final beat before the group's daemon goes idle; the
    /// router must not suspect a group that told it it went quiet.
    pub active: bool,
}

/// Router-side admission/placement policy consulted by the service-mode
/// gateway. The mechanism (heartbeat transport, drop budgets, arming) lives
/// here in `runtime`; the policy (`grouter-ctl`'s heartbeat-view scheduler)
/// is injected through this trait.
///
/// Every call happens inside the router group's deterministic event
/// dispatch, so implementations may keep mutable state and an admission log
/// without any thread-count dependence.
pub trait RouterAgent: Send {
    /// A heartbeat from `src` survived the fabric (and any drop budget).
    fn on_heartbeat(&mut self, now: SimTime, src: u32, hb: &Heartbeat, rec: &grouter_obs::Recorder);

    /// Pick the executing group for a request admitted at the router.
    fn route(&mut self, now: SimTime, spec: u32, rec: &grouter_obs::Recorder) -> u32;

    /// The admission log accumulated so far (one line per routed request);
    /// byte-identical across worker thread counts.
    fn admission_log(&self) -> String;
}

/// Heartbeat wiring for one group: publish snapshots to group `to` every
/// `interval` while the group has live work.
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatConfig {
    /// Router group receiving this group's beats.
    pub to: u32,
    /// Beat period (virtual time).
    pub interval: SimDuration,
}

impl Default for HeartbeatConfig {
    fn default() -> HeartbeatConfig {
        HeartbeatConfig {
            to: 0,
            interval: params::HEARTBEAT_INTERVAL,
        }
    }
}

/// Open-loop request generator a group's gateway pulls from. Arrivals must
/// be non-decreasing in time; `home` picks the executing group (locality
/// routing keeps most requests on the admitting group).
pub trait ArrivalSource: Send {
    fn next(&mut self) -> Option<ClusterArrival>;
}

/// One frontend arrival: at `at`, logical workflow `spec` (an index into
/// the cluster-global registry) is admitted and routed to group `home`.
#[derive(Clone, Copy, Debug)]
pub struct ClusterArrival {
    pub at: SimTime,
    pub spec: u32,
    pub home: u32,
}

/// A workflow registered with a group, with the submit identities the
/// executor needs precomputed (interned name + stable function ids).
pub struct RegisteredSpec {
    pub spec: Arc<WorkflowSpec>,
    pub wf_name: u32,
    pub fn_ids: Arc<[u64]>,
}

/// Per-group cluster frontend state, carried inside the group's [`World`].
///
/// Registry indices are *cluster-global logical ids*: every group registers
/// the same workflow list in the same order (heterogeneous groups register
/// their own GPU-tuned variant at the same index), so a forwarded `Invoke`
/// names the right workflow everywhere.
pub struct ClusterPort {
    /// This group's index.
    pub group: u32,
    /// Total groups in the cluster.
    pub groups: u32,
    pub registry: Vec<RegisteredSpec>,
    /// This group's share of the frontend request stream.
    pub source: Option<Box<dyn ArrivalSource>>,
    /// One-way frontend latency (also the engine lookahead floor).
    pub cross_latency: SimDuration,
    /// Directed per-(src,dst) frontend channel bandwidth, bytes/sec.
    pub cross_bw: f64,
    /// Envelopes produced this window, drained by the sharded engine.
    pub(crate) outbox: Vec<Envelope<CrossMsg>>,
    /// Per-destination envelope sequence counter.
    seq: u64,
    /// FIFO serialization point of each directed channel: the next message
    /// to `dst` cannot depart before the previous one finished transmitting.
    busy_until: FxHashMap<u32, SimTime>,
    /// Admitting group of each remotely-requested live instance.
    origin: FxHashMap<u64, u32>,
    /// Responses received for requests this group admitted (local
    /// completions count immediately; remote ones on `Response` delivery).
    pub responses: u64,
    /// Invocations this group forwarded elsewhere.
    pub remote_out: u64,
    /// Invocations this group executed for another group.
    pub remote_in: u64,
    /// Service-mode heartbeat wiring; `None` outside service mode.
    pub hb: Option<HeartbeatConfig>,
    /// Per-group heartbeat sequence counter.
    pub(crate) hb_seq: u64,
    /// A heartbeat tick chain is scheduled (armed on admit, disarmed by the
    /// final idle beat — the chain never outlives the work, so service runs
    /// still quiesce).
    pub(crate) hb_armed: bool,
    /// Worker death: the daemon is silent until a `WorkerRestart`.
    pub(crate) hb_muted: bool,
    /// Router-side fault budget: the next `hb_drop[g]` heartbeats from
    /// group `g` are lost before the agent sees them (`HeartbeatLoss`).
    pub(crate) hb_drop: Vec<u32>,
    /// Heartbeats published by this group.
    pub hb_sent: u64,
    /// Heartbeats this group's agent consumed.
    pub hb_recv: u64,
    /// Heartbeats lost to an injected drop budget.
    pub hb_drops: u64,
    /// Router-side admission/placement policy (service mode, router group
    /// only).
    pub agent: Option<Box<dyn RouterAgent>>,
}

impl ClusterPort {
    pub fn new(group: u32, groups: u32) -> ClusterPort {
        ClusterPort {
            group,
            groups,
            registry: Vec::new(),
            source: None,
            cross_latency: params::CROSS_GROUP_LATENCY,
            cross_bw: params::CROSS_GROUP_BW,
            outbox: Vec::new(),
            seq: 0,
            busy_until: FxHashMap::default(),
            origin: FxHashMap::default(),
            responses: 0,
            remote_out: 0,
            remote_in: 0,
            hb: None,
            hb_seq: 0,
            hb_armed: false,
            hb_muted: false,
            hb_drop: vec![0; groups as usize],
            hb_sent: 0,
            hb_recv: 0,
            hb_drops: 0,
            agent: None,
        }
    }

    /// Queue `msg` for `dst`: serialize on the directed channel's FIFO,
    /// transmit `bytes` at the channel bandwidth, then add the one-way
    /// latency. The stamped time is always ≥ `now + cross_latency`, which
    /// is what licenses the engine's lookahead.
    fn send(&mut self, now: SimTime, dst: u32, bytes: f64, msg: CrossMsg) {
        let busy = self
            .busy_until
            .get(&dst)
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(now);
        let xfer = SimDuration::from_secs_f64(bytes.max(0.0) / self.cross_bw);
        let ready = busy + xfer;
        self.busy_until.insert(dst, ready);
        self.outbox.push(Envelope {
            at: ready + self.cross_latency,
            src: self.group,
            dst,
            seq: self.seq,
            msg,
        });
        self.seq += 1;
    }
}

/// The engine lookahead a cluster of these ports supports: the frontend
/// one-way latency, which every cross-group message pays on top of its
/// send time.
pub fn cross_group_lookahead() -> SimDuration {
    params::CROSS_GROUP_LATENCY
}

// ---------------------------------------------------------------------------
// Event handlers (dispatched from `exec`)
// ---------------------------------------------------------------------------

/// Pull the next arrival off this group's source and schedule its ingress
/// plus the following pull (chained so the event queue holds O(1) future
/// arrivals instead of the whole trace).
pub(crate) fn next_arrival(w: &mut World, s: &mut Scheduler<World>) {
    let Some(port) = w.cluster.as_mut() else {
        return;
    };
    let Some(source) = port.source.as_mut() else {
        return;
    };
    if let Some(a) = source.next() {
        debug_assert!(a.at >= s.now(), "arrival sources must be time-ordered");
        let at = a.at.max(s.now());
        s.schedule_at(
            at,
            Event::ClusterIngress {
                spec: a.spec,
                home: a.home,
            },
        );
        s.schedule_at(at, Event::NextArrival);
    }
}

/// A request reached this group's gateway: run it here if this is its home
/// group, otherwise forward the invocation across the frontend. A
/// service-mode router (a group carrying a [`RouterAgent`]) re-routes
/// requests homed on it from the agent's heartbeat view instead of the
/// omniscient scan.
pub(crate) fn ingress(w: &mut World, s: &mut Scheduler<World>, spec: u32, home: u32) {
    let now = s.now();
    let rec = w.rec.clone();
    let Some(port) = w.cluster.as_mut() else {
        return;
    };
    let me = port.group;
    let groups = port.groups;
    let mut home = home;
    if home == me {
        if let Some(mut agent) = port.agent.take() {
            rec.count(grouter_obs::Comp::Ctl, "admit", 1);
            home = agent.route(now, spec, &rec);
            debug_assert!(home < groups, "agent routed to unknown group");
            if home != me {
                rec.count(grouter_obs::Comp::Ctl, "route_remote", 1);
            }
            port.agent = Some(agent);
        }
    }
    if home == me {
        admit(w, s, spec, None);
    } else {
        port.remote_out += 1;
        let bytes = port.registry[spec as usize].spec.input_bytes;
        port.send(now, home, bytes, CrossMsg::Invoke { spec, origin: me });
    }
}

/// A frontend envelope from group `src` stamped for this instant: execute a
/// forwarded invocation, account a returning response, or absorb a worker
/// heartbeat into the router's view.
pub(crate) fn deliver(w: &mut World, s: &mut Scheduler<World>, src: u32, msg: CrossMsg) {
    let now = s.now();
    match msg {
        CrossMsg::Invoke { spec, origin } => {
            if let Some(port) = w.cluster.as_mut() {
                port.remote_in += 1;
            }
            admit(w, s, spec, Some(origin));
        }
        CrossMsg::Response => {
            if let Some(port) = w.cluster.as_mut() {
                port.responses += 1;
            }
        }
        CrossMsg::Heartbeat(hb) => {
            let rec = w.rec.clone();
            let Some(port) = w.cluster.as_mut() else {
                return;
            };
            // Injected router-side loss: burn the budget before the agent
            // ever sees the beat.
            let dropped = match port.hb_drop.get_mut(src as usize) {
                Some(budget) if *budget > 0 => {
                    *budget -= 1;
                    port.hb_drops += 1;
                    true
                }
                _ => false,
            };
            if dropped {
                rec.count(grouter_obs::Comp::Ctl, "hb_drop", 1);
                w.log_recovery(
                    now,
                    crate::fault::RecoveryEvent::HbDropped {
                        group: src as usize,
                    },
                );
                return;
            }
            port.hb_recv += 1;
            if let Some(mut agent) = port.agent.take() {
                rec.count(grouter_obs::Comp::Ctl, "hb_recv", 1);
                agent.on_heartbeat(now, src, &hb, &rec);
                port.agent = Some(agent);
            }
        }
    }
}

/// Schedule the heartbeat tick chain if service-mode wiring is installed
/// and the daemon is neither already ticking nor dead. Called on every
/// admit: the chain runs exactly while the group has work (plus one final
/// idle beat), so it never blocks global quiescence.
pub(crate) fn arm_heartbeat(w: &mut World, s: &mut Scheduler<World>) {
    let Some(port) = w.cluster.as_mut() else {
        return;
    };
    let Some(hb) = port.hb else {
        return;
    };
    if port.hb_armed || port.hb_muted {
        return;
    }
    port.hb_armed = true;
    s.schedule_at(s.now() + hb.interval, Event::HeartbeatTick);
}

/// Emit one heartbeat and keep the chain alive while the group is busy.
/// The last beat of a burst reports `active: false` and disarms; a muted
/// (dead) worker silently drops the chain until restart re-arms it.
pub(crate) fn heartbeat_tick(w: &mut World, s: &mut Scheduler<World>) {
    let now = s.now();
    // Snapshot world state before borrowing the port.
    let depth = w.instances.len() as u32;
    let active = depth > 0;
    let gpu_load = w.placer.load().to_vec();
    let gpu_failed = w.placer.failed_mask().to_vec();
    let pool: Vec<grouter_mem::PoolOccupancy> = w.pools.iter().map(|p| p.occupancy()).collect();
    let completed = w.metrics.completed() as u64;
    let failed = w.metrics.failed;
    let rec = w.rec.clone();
    let Some(port) = w.cluster.as_mut() else {
        return;
    };
    let Some(cfg) = port.hb else {
        return;
    };
    if port.hb_muted {
        port.hb_armed = false;
        return;
    }
    let hb = Heartbeat {
        group: port.group,
        seq: port.hb_seq,
        at: now,
        depth,
        gpu_load,
        gpu_failed,
        pool,
        completed,
        failed,
        active,
    };
    port.hb_seq += 1;
    port.hb_sent += 1;
    rec.count(grouter_obs::Comp::Ctl, "hb_sent", 1);
    let src = port.group;
    if cfg.to == src {
        // The router's own worker daemon: zero network staleness, no
        // envelope — the snapshot goes straight into the agent's view.
        if let Some(mut agent) = port.agent.take() {
            port.hb_recv += 1;
            rec.count(grouter_obs::Comp::Ctl, "hb_recv", 1);
            agent.on_heartbeat(now, src, &hb, &rec);
            port.agent = Some(agent);
        }
    } else {
        port.send(
            now,
            cfg.to,
            params::HEARTBEAT_BYTES,
            CrossMsg::Heartbeat(Box::new(hb)),
        );
    }
    if active {
        s.schedule_at(now + cfg.interval, Event::HeartbeatTick);
    } else {
        port.hb_armed = false;
    }
}

/// Start a registered workflow on this group's world, remembering the
/// admitting group so the completion can be routed back.
fn admit(w: &mut World, s: &mut Scheduler<World>, spec_idx: u32, origin: Option<u32>) {
    let (spec, wf_name, fn_ids) = {
        // grouter-lint: allow(no-panic-in-dataplane): admit is only reachable from cluster events, which require the port
        let port = w.cluster.as_ref().expect("admit on non-cluster world");
        let r = &port.registry[spec_idx as usize];
        (r.spec.clone(), r.wf_name, r.fn_ids.clone())
    };
    // `arrival` consumes this id; a fail-fast arrival never inserts it.
    let inst_id = w.next_instance;
    w.metrics.arrivals += 1;
    crate::exec::arrival(w, s, spec, wf_name, fn_ids);
    if let Some(origin) = origin {
        if w.instances.contains_key(&inst_id) {
            if let Some(port) = w.cluster.as_mut() {
                port.origin.insert(inst_id, origin);
            }
        }
    }
    // Service mode: admitting work (re)starts the worker's heartbeat
    // daemon; a no-op without heartbeat wiring.
    arm_heartbeat(w, s);
}

/// Executor hook: an instance finished. Route the response (terminal-stage
/// output bytes) back to its admitting group, or count it locally.
pub(crate) fn on_instance_finished(w: &mut World, now: SimTime, inst_id: u64, resp_bytes: f64) {
    let Some(port) = w.cluster.as_mut() else {
        return;
    };
    match port.origin.remove(&inst_id) {
        Some(origin) if origin != port.group => {
            port.send(now, origin, resp_bytes, CrossMsg::Response);
        }
        _ => port.responses += 1,
    }
}

/// Executor hook: an instance failed (typed recovery failure). Failed
/// requests never answer their admitting gateway; drop the routing entry
/// so the origin map cannot grow over a chaotic run.
pub(crate) fn on_instance_failed(w: &mut World, inst_id: u64) {
    if let Some(port) = w.cluster.as_mut() {
        port.origin.remove(&inst_id);
    }
}

impl ShardWorld for World {
    type Msg = CrossMsg;

    fn drain_outbox(&mut self, sink: &mut Vec<Envelope<CrossMsg>>) {
        if let Some(port) = self.cluster.as_mut() {
            sink.append(&mut port.outbox);
        }
    }

    fn apply_message(&mut self, sched: &mut Scheduler<World>, env: Envelope<CrossMsg>) {
        sched.schedule_at(
            env.at,
            Event::ClusterDeliver {
                src: env.src,
                msg: env.msg,
            },
        );
    }
}

// ---------------------------------------------------------------------------
// ClusterSim facade
// ---------------------------------------------------------------------------

/// Everything needed to build one group's world.
pub struct GroupSetup {
    pub topo: TopologySpec,
    pub nodes: usize,
    pub plane: Box<dyn DataPlane>,
    pub config: RuntimeConfig,
    /// Cluster-global workflow registry, in logical-id order. Every group
    /// must supply the same-length list; heterogeneous groups supply their
    /// own GPU-tuned variants at matching indices.
    pub specs: Vec<Arc<WorkflowSpec>>,
    pub source: Option<Box<dyn ArrivalSource>>,
    /// Fault plans to install on this group's world (data-plane and
    /// control-plane plans compose; each is scheduled independently).
    pub fault_plans: Vec<FaultPlan>,
    /// Service-mode heartbeat wiring for this group's worker daemon.
    pub hb: Option<HeartbeatConfig>,
    /// Router-side scheduling policy; set on exactly the router group in
    /// service mode.
    pub agent: Option<Box<dyn RouterAgent>>,
}

/// A sharded cluster: one [`World`] per node group under a conservative
/// parallel engine, plus deterministic merged reporting.
pub struct ClusterSim {
    engine: ShardedEngine<World>,
}

impl ClusterSim {
    /// Build the cluster. Each group's world seeds its RNG from
    /// `DetRng::new(run_seed).split(group)` — deterministic and independent
    /// of group construction order.
    pub fn new(run_seed: u64, groups: Vec<GroupSetup>) -> ClusterSim {
        let n = groups.len() as u32;
        assert!(n > 0, "a cluster needs at least one group");
        let root = DetRng::new(run_seed);
        let mut sims = Vec::with_capacity(groups.len());
        for (g, setup) in groups.into_iter().enumerate() {
            let mut rt = Runtime::new(setup.topo, setup.nodes, setup.plane, setup.config);
            rt.world_mut().rng = root.split(g as u64);
            let mut port = ClusterPort::new(g as u32, n);
            for spec in setup.specs {
                rt.cluster_register(&mut port, spec);
            }
            port.source = setup.source;
            port.hb = setup.hb;
            port.agent = setup.agent;
            rt.world_mut().cluster = Some(Box::new(port));
            for plan in &setup.fault_plans {
                rt.install_fault_plan(plan);
            }
            rt.start_cluster_arrivals();
            sims.push(rt.into_sim());
        }
        ClusterSim {
            engine: ShardedEngine::from_sims(sims, cross_group_lookahead()),
        }
    }

    /// Run every group to global quiescence on `threads` workers. The
    /// result is byte-identical for any thread count.
    pub fn run(&mut self, threads: usize) -> RunStats {
        self.engine.run(threads)
    }

    pub fn groups(&self) -> usize {
        self.engine.shards()
    }

    pub fn world(&self, group: usize) -> &World {
        &self.engine.shard(group).world
    }

    /// A group's local virtual clock (groups stop at slightly different
    /// instants; the cluster-wide sim time is the max).
    pub fn now(&self, group: usize) -> SimTime {
        self.engine.shard(group).now()
    }

    pub fn port(&self, group: usize) -> &ClusterPort {
        self.world(group)
            .cluster
            .as_ref()
            // grouter-lint: allow(no-panic-in-dataplane): ClusterSim::new installs a port on every group world it builds
            .expect("cluster worlds carry a port")
    }

    pub fn arrivals(&self) -> u64 {
        self.each().map(|w| w.metrics.arrivals).sum()
    }

    pub fn completed(&self) -> usize {
        self.each().map(|w| w.metrics.completed()).sum()
    }

    pub fn failed(&self) -> u64 {
        self.each().map(|w| w.metrics.failed).sum()
    }

    pub fn responses(&self) -> u64 {
        (0..self.groups()).map(|g| self.port(g).responses).sum()
    }

    /// Heartbeats published / consumed / injected-dropped, cluster-wide.
    pub fn heartbeat_stats(&self) -> (u64, u64, u64) {
        (0..self.groups()).fold((0, 0, 0), |(s, r, d), g| {
            let p = self.port(g);
            (s + p.hb_sent, r + p.hb_recv, d + p.hb_drops)
        })
    }

    /// The router agent's admission log, if any group carries one (service
    /// mode). Byte-identical across worker thread counts.
    pub fn admission_log(&self) -> Option<String> {
        (0..self.groups()).find_map(|g| self.port(g).agent.as_ref().map(|a| a.admission_log()))
    }

    fn each(&self) -> impl Iterator<Item = &World> {
        self.engine.sims().iter().map(|s| &s.world)
    }

    /// Merged per-instance metrics, grouped deterministically: the standard
    /// CSV prefixed with a `group` column, groups in index order. Identical
    /// bytes for any worker thread count.
    pub fn merged_csv(&self) -> String {
        let mut out = String::from(
            "group,workflow,arrived_s,latency_ms,compute_ms,gfn_gfn_ms,gfn_host_ms,cfn_cfn_ms\n",
        );
        for (g, w) in self.each().enumerate() {
            let csv = w.metrics.to_csv();
            for line in csv.lines().skip(1) {
                out.push_str(&format!("{g},{line}\n"));
            }
        }
        out
    }

    /// Merged recovery log, ordered by `(time, group, per-group index)` —
    /// a deterministic global interleaving of every group's typed log.
    pub fn merged_recovery_log(&self) -> String {
        let mut rows: Vec<(SimTime, usize, usize, String)> = Vec::new();
        for (g, w) in self.each().enumerate() {
            for (i, (t, ev)) in w.recovery_log().into_iter().enumerate() {
                rows.push((t, g, i, format!("{ev:?}")));
            }
        }
        rows.sort_by_key(|r| (r.0, r.1, r.2));
        let mut out = String::new();
        for (t, g, _, ev) in rows {
            out.push_str(&format!("{} g{} {}\n", t.as_nanos(), g, ev));
        }
        out
    }
}
