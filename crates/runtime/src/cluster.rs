//! Cluster-scale sharded runtime: node groups as conservative shards.
//!
//! A 64–128-GPU serverless cluster is modelled as a set of *node groups*
//! (one DGX-class node each, or a small rack), every group owning a full
//! [`World`] — its own topology, data plane, event timeline and RNG stream.
//! Groups interact only through the cluster frontend: a request is routed
//! to a *home* group, and if the gateway that admitted it belongs to a
//! different group, the invocation (and later its response) crosses a
//! frontend channel with [`params::CROSS_GROUP_LATENCY`] one-way latency
//! and [`params::CROSS_GROUP_BW`] bandwidth. That latency is the
//! conservative lookahead of the sharded engine: no group can affect
//! another sooner, so every group may simulate that far ahead of the
//! global safe horizon in parallel (see `grouter_sim::shard`).
//!
//! Determinism: group worlds draw from [`DetRng::split`] streams of the
//! run seed, cross-group messages are delivered in `(time, src, seq)`
//! order regardless of worker threads, and merged reports iterate groups
//! in index order — the same seed yields byte-identical metrics CSV and
//! recovery logs on 1 or N threads.

use std::sync::Arc;

use grouter_sim::engine::Scheduler;
use grouter_sim::fault::FaultPlan;
use grouter_sim::params;
use grouter_sim::rng::DetRng;
use grouter_sim::shard::{Envelope, RunStats, ShardWorld, ShardedEngine};
use grouter_sim::time::{SimDuration, SimTime};
use grouter_sim::FxHashMap;
use grouter_topology::graph::TopologySpec;

use crate::dataplane::DataPlane;
use crate::exec::{Event, Runtime};
use crate::spec::WorkflowSpec;
use crate::world::{RuntimeConfig, World};

/// A message crossing the cluster frontend between two groups.
#[derive(Clone, Debug)]
pub enum CrossMsg {
    /// Forwarded invocation: run logical workflow `spec` here; tell
    /// `origin` when it finishes.
    Invoke { spec: u32, origin: u32 },
    /// Completion notification flowing back to the admitting group.
    Response,
}

/// Open-loop request generator a group's gateway pulls from. Arrivals must
/// be non-decreasing in time; `home` picks the executing group (locality
/// routing keeps most requests on the admitting group).
pub trait ArrivalSource: Send {
    fn next(&mut self) -> Option<ClusterArrival>;
}

/// One frontend arrival: at `at`, logical workflow `spec` (an index into
/// the cluster-global registry) is admitted and routed to group `home`.
#[derive(Clone, Copy, Debug)]
pub struct ClusterArrival {
    pub at: SimTime,
    pub spec: u32,
    pub home: u32,
}

/// A workflow registered with a group, with the submit identities the
/// executor needs precomputed (interned name + stable function ids).
pub struct RegisteredSpec {
    pub spec: Arc<WorkflowSpec>,
    pub wf_name: u32,
    pub fn_ids: Arc<[u64]>,
}

/// Per-group cluster frontend state, carried inside the group's [`World`].
///
/// Registry indices are *cluster-global logical ids*: every group registers
/// the same workflow list in the same order (heterogeneous groups register
/// their own GPU-tuned variant at the same index), so a forwarded `Invoke`
/// names the right workflow everywhere.
pub struct ClusterPort {
    /// This group's index.
    pub group: u32,
    /// Total groups in the cluster.
    pub groups: u32,
    pub registry: Vec<RegisteredSpec>,
    /// This group's share of the frontend request stream.
    pub source: Option<Box<dyn ArrivalSource>>,
    /// One-way frontend latency (also the engine lookahead floor).
    pub cross_latency: SimDuration,
    /// Directed per-(src,dst) frontend channel bandwidth, bytes/sec.
    pub cross_bw: f64,
    /// Envelopes produced this window, drained by the sharded engine.
    pub(crate) outbox: Vec<Envelope<CrossMsg>>,
    /// Per-destination envelope sequence counter.
    seq: u64,
    /// FIFO serialization point of each directed channel: the next message
    /// to `dst` cannot depart before the previous one finished transmitting.
    busy_until: FxHashMap<u32, SimTime>,
    /// Admitting group of each remotely-requested live instance.
    origin: FxHashMap<u64, u32>,
    /// Responses received for requests this group admitted (local
    /// completions count immediately; remote ones on `Response` delivery).
    pub responses: u64,
    /// Invocations this group forwarded elsewhere.
    pub remote_out: u64,
    /// Invocations this group executed for another group.
    pub remote_in: u64,
}

impl ClusterPort {
    pub fn new(group: u32, groups: u32) -> ClusterPort {
        ClusterPort {
            group,
            groups,
            registry: Vec::new(),
            source: None,
            cross_latency: params::CROSS_GROUP_LATENCY,
            cross_bw: params::CROSS_GROUP_BW,
            outbox: Vec::new(),
            seq: 0,
            busy_until: FxHashMap::default(),
            origin: FxHashMap::default(),
            responses: 0,
            remote_out: 0,
            remote_in: 0,
        }
    }

    /// Queue `msg` for `dst`: serialize on the directed channel's FIFO,
    /// transmit `bytes` at the channel bandwidth, then add the one-way
    /// latency. The stamped time is always ≥ `now + cross_latency`, which
    /// is what licenses the engine's lookahead.
    fn send(&mut self, now: SimTime, dst: u32, bytes: f64, msg: CrossMsg) {
        let busy = self
            .busy_until
            .get(&dst)
            .copied()
            .unwrap_or(SimTime::ZERO)
            .max(now);
        let xfer = SimDuration::from_secs_f64(bytes.max(0.0) / self.cross_bw);
        let ready = busy + xfer;
        self.busy_until.insert(dst, ready);
        self.outbox.push(Envelope {
            at: ready + self.cross_latency,
            src: self.group,
            dst,
            seq: self.seq,
            msg,
        });
        self.seq += 1;
    }
}

/// The engine lookahead a cluster of these ports supports: the frontend
/// one-way latency, which every cross-group message pays on top of its
/// send time.
pub fn cross_group_lookahead() -> SimDuration {
    params::CROSS_GROUP_LATENCY
}

// ---------------------------------------------------------------------------
// Event handlers (dispatched from `exec`)
// ---------------------------------------------------------------------------

/// Pull the next arrival off this group's source and schedule its ingress
/// plus the following pull (chained so the event queue holds O(1) future
/// arrivals instead of the whole trace).
pub(crate) fn next_arrival(w: &mut World, s: &mut Scheduler<World>) {
    let Some(port) = w.cluster.as_mut() else {
        return;
    };
    let Some(source) = port.source.as_mut() else {
        return;
    };
    if let Some(a) = source.next() {
        debug_assert!(a.at >= s.now(), "arrival sources must be time-ordered");
        let at = a.at.max(s.now());
        s.schedule_at(
            at,
            Event::ClusterIngress {
                spec: a.spec,
                home: a.home,
            },
        );
        s.schedule_at(at, Event::NextArrival);
    }
}

/// A request reached this group's gateway: run it here if this is its home
/// group, otherwise forward the invocation across the frontend.
pub(crate) fn ingress(w: &mut World, s: &mut Scheduler<World>, spec: u32, home: u32) {
    let now = s.now();
    let Some(port) = w.cluster.as_mut() else {
        return;
    };
    if home == port.group {
        admit(w, s, spec, None);
    } else {
        port.remote_out += 1;
        let bytes = port.registry[spec as usize].spec.input_bytes;
        let origin = port.group;
        port.send(now, home, bytes, CrossMsg::Invoke { spec, origin });
    }
}

/// A frontend envelope stamped for this instant: execute a forwarded
/// invocation, or account a returning response.
pub(crate) fn deliver(w: &mut World, s: &mut Scheduler<World>, msg: CrossMsg) {
    match msg {
        CrossMsg::Invoke { spec, origin } => {
            if let Some(port) = w.cluster.as_mut() {
                port.remote_in += 1;
            }
            admit(w, s, spec, Some(origin));
        }
        CrossMsg::Response => {
            if let Some(port) = w.cluster.as_mut() {
                port.responses += 1;
            }
        }
    }
}

/// Start a registered workflow on this group's world, remembering the
/// admitting group so the completion can be routed back.
fn admit(w: &mut World, s: &mut Scheduler<World>, spec_idx: u32, origin: Option<u32>) {
    let (spec, wf_name, fn_ids) = {
        // grouter-lint: allow(no-panic-in-dataplane): admit is only reachable from cluster events, which require the port
        let port = w.cluster.as_ref().expect("admit on non-cluster world");
        let r = &port.registry[spec_idx as usize];
        (r.spec.clone(), r.wf_name, r.fn_ids.clone())
    };
    // `arrival` consumes this id; a fail-fast arrival never inserts it.
    let inst_id = w.next_instance;
    w.metrics.arrivals += 1;
    crate::exec::arrival(w, s, spec, wf_name, fn_ids);
    if let Some(origin) = origin {
        if w.instances.contains_key(&inst_id) {
            if let Some(port) = w.cluster.as_mut() {
                port.origin.insert(inst_id, origin);
            }
        }
    }
}

/// Executor hook: an instance finished. Route the response (terminal-stage
/// output bytes) back to its admitting group, or count it locally.
pub(crate) fn on_instance_finished(w: &mut World, now: SimTime, inst_id: u64, resp_bytes: f64) {
    let Some(port) = w.cluster.as_mut() else {
        return;
    };
    match port.origin.remove(&inst_id) {
        Some(origin) if origin != port.group => {
            port.send(now, origin, resp_bytes, CrossMsg::Response);
        }
        _ => port.responses += 1,
    }
}

/// Executor hook: an instance failed (typed recovery failure). Failed
/// requests never answer their admitting gateway; drop the routing entry
/// so the origin map cannot grow over a chaotic run.
pub(crate) fn on_instance_failed(w: &mut World, inst_id: u64) {
    if let Some(port) = w.cluster.as_mut() {
        port.origin.remove(&inst_id);
    }
}

impl ShardWorld for World {
    type Msg = CrossMsg;

    fn drain_outbox(&mut self, sink: &mut Vec<Envelope<CrossMsg>>) {
        if let Some(port) = self.cluster.as_mut() {
            sink.append(&mut port.outbox);
        }
    }

    fn apply_message(&mut self, sched: &mut Scheduler<World>, env: Envelope<CrossMsg>) {
        sched.schedule_at(env.at, Event::ClusterDeliver(env.msg));
    }
}

// ---------------------------------------------------------------------------
// ClusterSim facade
// ---------------------------------------------------------------------------

/// Everything needed to build one group's world.
pub struct GroupSetup {
    pub topo: TopologySpec,
    pub nodes: usize,
    pub plane: Box<dyn DataPlane>,
    pub config: RuntimeConfig,
    /// Cluster-global workflow registry, in logical-id order. Every group
    /// must supply the same-length list; heterogeneous groups supply their
    /// own GPU-tuned variants at matching indices.
    pub specs: Vec<Arc<WorkflowSpec>>,
    pub source: Option<Box<dyn ArrivalSource>>,
    pub fault_plan: Option<FaultPlan>,
}

/// A sharded cluster: one [`World`] per node group under a conservative
/// parallel engine, plus deterministic merged reporting.
pub struct ClusterSim {
    engine: ShardedEngine<World>,
}

impl ClusterSim {
    /// Build the cluster. Each group's world seeds its RNG from
    /// `DetRng::new(run_seed).split(group)` — deterministic and independent
    /// of group construction order.
    pub fn new(run_seed: u64, groups: Vec<GroupSetup>) -> ClusterSim {
        let n = groups.len() as u32;
        assert!(n > 0, "a cluster needs at least one group");
        let root = DetRng::new(run_seed);
        let mut sims = Vec::with_capacity(groups.len());
        for (g, setup) in groups.into_iter().enumerate() {
            let mut rt = Runtime::new(setup.topo, setup.nodes, setup.plane, setup.config);
            rt.world_mut().rng = root.split(g as u64);
            let mut port = ClusterPort::new(g as u32, n);
            for spec in setup.specs {
                rt.cluster_register(&mut port, spec);
            }
            port.source = setup.source;
            rt.world_mut().cluster = Some(Box::new(port));
            if let Some(plan) = &setup.fault_plan {
                rt.install_fault_plan(plan);
            }
            rt.start_cluster_arrivals();
            sims.push(rt.into_sim());
        }
        ClusterSim {
            engine: ShardedEngine::from_sims(sims, cross_group_lookahead()),
        }
    }

    /// Run every group to global quiescence on `threads` workers. The
    /// result is byte-identical for any thread count.
    pub fn run(&mut self, threads: usize) -> RunStats {
        self.engine.run(threads)
    }

    pub fn groups(&self) -> usize {
        self.engine.shards()
    }

    pub fn world(&self, group: usize) -> &World {
        &self.engine.shard(group).world
    }

    /// A group's local virtual clock (groups stop at slightly different
    /// instants; the cluster-wide sim time is the max).
    pub fn now(&self, group: usize) -> SimTime {
        self.engine.shard(group).now()
    }

    pub fn port(&self, group: usize) -> &ClusterPort {
        self.world(group)
            .cluster
            .as_ref()
            // grouter-lint: allow(no-panic-in-dataplane): ClusterSim::new installs a port on every group world it builds
            .expect("cluster worlds carry a port")
    }

    pub fn arrivals(&self) -> u64 {
        self.each().map(|w| w.metrics.arrivals).sum()
    }

    pub fn completed(&self) -> usize {
        self.each().map(|w| w.metrics.completed()).sum()
    }

    pub fn failed(&self) -> u64 {
        self.each().map(|w| w.metrics.failed).sum()
    }

    pub fn responses(&self) -> u64 {
        (0..self.groups()).map(|g| self.port(g).responses).sum()
    }

    fn each(&self) -> impl Iterator<Item = &World> {
        self.engine.sims().iter().map(|s| &s.world)
    }

    /// Merged per-instance metrics, grouped deterministically: the standard
    /// CSV prefixed with a `group` column, groups in index order. Identical
    /// bytes for any worker thread count.
    pub fn merged_csv(&self) -> String {
        let mut out = String::from(
            "group,workflow,arrived_s,latency_ms,compute_ms,gfn_gfn_ms,gfn_host_ms,cfn_cfn_ms\n",
        );
        for (g, w) in self.each().enumerate() {
            let csv = w.metrics.to_csv();
            for line in csv.lines().skip(1) {
                out.push_str(&format!("{g},{line}\n"));
            }
        }
        out
    }

    /// Merged recovery log, ordered by `(time, group, per-group index)` —
    /// a deterministic global interleaving of every group's typed log.
    pub fn merged_recovery_log(&self) -> String {
        let mut rows: Vec<(SimTime, usize, usize, String)> = Vec::new();
        for (g, w) in self.each().enumerate() {
            for (i, (t, ev)) in w.recovery_log().into_iter().enumerate() {
                rows.push((t, g, i, format!("{ev:?}")));
            }
        }
        rows.sort_by_key(|r| (r.0, r.1, r.2));
        let mut out = String::new();
        for (t, g, _, ev) in rows {
            out.push_str(&format!("{} g{} {}\n", t.as_nanos(), g, ev));
        }
        out
    }
}
