//! Streaming invocation bookkeeping for token-at-a-time workloads.
//!
//! A decode instance emits one small gFn invocation per generated token, so a
//! request's observable output is a *stream* of completions rather than a
//! single stage finish. [`TokenStream`] tracks that stream per request and
//! enforces the contract the `llm.stream_order` audit checker gates on: token
//! completions are strictly monotone in virtual time and dense in token index
//! (token `k` completes before token `k + 1`, never skipping).

use grouter_sim::time::SimTime;

/// Per-request token-stream progress.
#[derive(Clone, Debug)]
pub struct TokenStream {
    /// When the request arrived (TTFT baseline).
    pub arrival: SimTime,
    /// Tokens the stream must emit before it is complete.
    pub target_tokens: u32,
    /// Tokens emitted so far.
    pub emitted: u32,
    /// Completion time of the most recent token.
    pub last_emit: Option<SimTime>,
    /// Completion time of the first token (TTFT observation point).
    pub first_emit: Option<SimTime>,
}

impl TokenStream {
    pub fn new(arrival: SimTime, target_tokens: u32) -> TokenStream {
        assert!(target_tokens > 0, "a stream must emit at least one token");
        TokenStream {
            arrival,
            target_tokens,
            emitted: 0,
            last_emit: None,
            first_emit: None,
        }
    }

    /// Record the completion of the next token at `now`. Returns the new
    /// emitted count. Panics if the stream is already complete or if `now`
    /// runs backwards relative to the previous token — both are executor
    /// bugs, not workload conditions.
    pub fn emit(&mut self, now: SimTime) -> u32 {
        assert!(self.emitted < self.target_tokens, "stream over-emits");
        if let Some(prev) = self.last_emit {
            assert!(now >= prev, "token stream went backwards: {now} < {prev}");
        }
        if self.first_emit.is_none() {
            self.first_emit = Some(now);
        }
        self.last_emit = Some(now);
        self.emitted += 1;
        self.emitted
    }

    pub fn complete(&self) -> bool {
        self.emitted == self.target_tokens
    }

    /// Time-to-first-token, if the first token has been emitted.
    pub fn ttft(&self) -> Option<grouter_sim::time::SimDuration> {
        self.first_emit.map(|t| t - self.arrival)
    }

    /// Mean time-between-tokens over the emitted stream (first → last), if
    /// at least two tokens are out.
    pub fn mean_tbt(&self) -> Option<grouter_sim::time::SimDuration> {
        match (self.first_emit, self.last_emit) {
            (Some(first), Some(last)) if self.emitted >= 2 => {
                Some(grouter_sim::time::SimDuration::from_secs_f64(
                    (last - first).as_secs_f64() / (self.emitted - 1) as f64,
                ))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouter_sim::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn stream_tracks_ttft_and_tbt() {
        let mut s = TokenStream::new(t(0), 3);
        assert!(s.ttft().is_none());
        s.emit(t(40));
        assert_eq!(s.ttft(), Some(SimDuration::from_millis(40)));
        assert!(s.mean_tbt().is_none());
        s.emit(t(60));
        s.emit(t(80));
        assert!(s.complete());
        assert_eq!(s.mean_tbt(), Some(SimDuration::from_millis(20)));
    }

    #[test]
    #[should_panic(expected = "over-emits")]
    fn over_emission_is_rejected() {
        let mut s = TokenStream::new(t(0), 1);
        s.emit(t(10));
        s.emit(t(20));
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn time_regression_is_rejected() {
        let mut s = TokenStream::new(t(0), 4);
        s.emit(t(30));
        s.emit(t(10));
    }
}
