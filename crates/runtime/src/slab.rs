//! Dense storage for the executor's hot collections.
//!
//! The runtime's public identities (instance ids, op ids) are monotonically
//! increasing `u64`s that appear in traces, recovery logs and tests — they
//! must not change. What *can* change is where the records live: a
//! `BTreeMap<u64, T>` costs an allocation per insert and a pointer-chasing
//! tree walk per lookup, on paths hit several times per data operation.
//!
//! [`IdSlab`] keeps the `u64` keys but stores records in a recycled slot
//! vector with an Fx-hashed id→slot index: steady-state insert/remove is
//! allocation-free and lookups are one hash away. The BTreeMap API subset
//! the executor uses is mirrored (`get(&id)`, `Index<&u64>`, `iter()`, …).
//!
//! **Iteration order is slot order, not id order.** Callers that need
//! id-ordered effects (the recovery engine's cancel waves) must collect and
//! sort — exactly as documented on [`IdSlab::iter`].

use grouter_sim::fxhash::fx_hash_one;
use grouter_sim::{FlowId, FxHashMap};

/// Slab keyed by externally-assigned `u64` ids.
#[derive(Debug)]
pub struct IdSlab<T> {
    /// `Some((id, value))` for live slots; freed slots are `None` and listed
    /// in `free`.
    slots: Vec<Option<(u64, T)>>,
    index: FxHashMap<u64, u32>,
    free: Vec<u32>,
}

impl<T> Default for IdSlab<T> {
    fn default() -> Self {
        IdSlab {
            slots: Vec::new(),
            index: FxHashMap::default(),
            free: Vec::new(),
        }
    }
}

impl<T> IdSlab<T> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Insert under a caller-assigned id, returning any displaced value
    /// (ids are monotonic in practice, so collisions mean a caller bug).
    pub fn insert(&mut self, id: u64, value: T) -> Option<T> {
        if let Some(&slot) = self.index.get(&id) {
            let old = self.slots[slot as usize].replace((id, value));
            return old.map(|(_, v)| v);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some((id, value));
                s
            }
            None => {
                self.slots.push(Some((id, value)));
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(id, slot);
        None
    }

    pub fn get(&self, id: &u64) -> Option<&T> {
        let &slot = self.index.get(id)?;
        self.slots[slot as usize].as_ref().map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, id: &u64) -> Option<&mut T> {
        let &slot = self.index.get(id)?;
        self.slots[slot as usize].as_mut().map(|(_, v)| v)
    }

    pub fn contains_key(&self, id: &u64) -> bool {
        self.index.contains_key(id)
    }

    pub fn remove(&mut self, id: &u64) -> Option<T> {
        let slot = self.index.remove(id)?;
        let (_, v) = self.slots[slot as usize].take()?;
        self.free.push(slot);
        Some(v)
    }

    /// Live entries in **slot order** (not id order): deterministic for a
    /// deterministic insert/remove history, but arbitrary with respect to
    /// ids. Sort collected ids before any order-sensitive effect.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &T)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(id, v)| (id, v)))
    }

    /// Live values in slot order (see [`IdSlab::iter`] for ordering).
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }
}

impl<T> std::ops::Index<&u64> for IdSlab<T> {
    type Output = T;
    fn index(&self, id: &u64) -> &T {
        // grouter-lint: allow(no-panic-in-dataplane): Index mirrors BTreeMap semantics; a missing id is a caller bug
        self.get(id).expect("no entry found for id")
    }
}

/// Live NVLink flows and their current `(node, GPU route)`, with a reverse
/// index so a ledger rebalance finds the in-flight flow for a route in O(1)
/// instead of scanning every live flow.
#[derive(Debug, Default)]
pub struct NvFlowIndex {
    forward: FxHashMap<FlowId, (usize, Vec<usize>)>,
    /// `(node, route fingerprint)` → flows currently on that route. The
    /// fingerprint is a hash; `find` verifies against `forward` so a
    /// collision can never return the wrong flow.
    reverse: FxHashMap<(usize, u64), Vec<FlowId>>,
}

impl NvFlowIndex {
    /// Register (or re-path) a live flow.
    pub fn insert(&mut self, fid: FlowId, node: usize, route: Vec<usize>) {
        if self.forward.contains_key(&fid) {
            self.unlink(fid);
        }
        let key = (node, fx_hash_one(&route));
        self.reverse.entry(key).or_default().push(fid);
        self.forward.insert(fid, (node, route));
    }

    pub fn remove(&mut self, fid: &FlowId) {
        if self.forward.contains_key(fid) {
            self.unlink(*fid);
            self.forward.remove(fid);
        }
    }

    /// The lowest-id live flow currently on `(node, route)`, if any.
    pub fn find(&self, node: usize, route: &[usize]) -> Option<FlowId> {
        let key = (node, fx_hash_one(&route));
        self.reverse
            .get(&key)?
            .iter()
            .filter(|fid| {
                // Verify against the forward map: fingerprints may collide.
                self.forward
                    .get(fid)
                    .is_some_and(|(n, r)| *n == node && r == route)
            })
            .min()
            .copied()
    }

    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Drop `fid` from the reverse index (forward entry untouched).
    fn unlink(&mut self, fid: FlowId) {
        let Some((node, route)) = self.forward.get(&fid) else {
            return;
        };
        let key = (*node, fx_hash_one(route));
        if let Some(v) = self.reverse.get_mut(&key) {
            v.retain(|f| *f != fid);
            if v.is_empty() {
                self.reverse.remove(&key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idslab_mirrors_map_semantics() {
        let mut s: IdSlab<&'static str> = IdSlab::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(10, "a"), None);
        assert_eq!(s.insert(20, "b"), None);
        assert_eq!(s.get(&10), Some(&"a"));
        assert_eq!(s[&20], "b");
        assert_eq!(s.insert(10, "a2"), Some("a"));
        assert_eq!(s.remove(&10), Some("a2"));
        assert_eq!(s.get(&10), None);
        assert!(!s.contains_key(&10));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn idslab_recycles_slots() {
        let mut s: IdSlab<u64> = IdSlab::new();
        for round in 0..100u64 {
            for i in 0..8 {
                s.insert(round * 8 + i, i);
            }
            for i in 0..8 {
                assert_eq!(s.remove(&(round * 8 + i)), Some(i));
            }
        }
        assert!(s.slots.len() <= 8, "slab grew: {} slots", s.slots.len());
    }

    #[test]
    fn nv_flow_index_finds_by_route() {
        let mut ix = NvFlowIndex::default();
        ix.insert(FlowId(7), 0, vec![1, 2, 3]);
        ix.insert(FlowId(9), 0, vec![1, 2, 3]); // same route, higher id
        ix.insert(FlowId(8), 1, vec![1, 2, 3]); // same route, other node
        assert_eq!(ix.find(0, &[1, 2, 3]), Some(FlowId(7)));
        assert_eq!(ix.find(1, &[1, 2, 3]), Some(FlowId(8)));
        assert_eq!(ix.find(0, &[3, 2, 1]), None);
        ix.remove(&FlowId(7));
        assert_eq!(ix.find(0, &[1, 2, 3]), Some(FlowId(9)));
        ix.remove(&FlowId(9));
        assert_eq!(ix.find(0, &[1, 2, 3]), None);
    }

    #[test]
    fn nv_flow_index_reroute_replaces_reverse_entry() {
        let mut ix = NvFlowIndex::default();
        ix.insert(FlowId(1), 0, vec![0, 1]);
        // Re-path the same flow: the old route must stop matching.
        ix.insert(FlowId(1), 0, vec![0, 2, 1]);
        assert_eq!(ix.find(0, &[0, 1]), None);
        assert_eq!(ix.find(0, &[0, 2, 1]), Some(FlowId(1)));
        assert_eq!(ix.len(), 1);
        ix.remove(&FlowId(1));
        assert!(ix.is_empty());
    }
}
