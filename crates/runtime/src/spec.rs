//! Workflow and stage descriptions.
//!
//! A [`WorkflowSpec`] is a DAG of [`StageSpec`]s covering the four patterns
//! of the paper's Fig. 12 — sequence, condition, fan-out, fan-in. Compute
//! latencies and data sizes are fixed per spec (inference latency is highly
//! predictable, §4.3.2); batch-size sweeps build one spec per batch via the
//! workload crate's profiles.

use grouter_sim::time::SimDuration;

/// What a stage runs on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StageKind {
    /// GPU function: occupies its GPU for the compute duration and
    /// `mem_bytes` of GPU memory while running.
    Gpu { mem_bytes: f64 },
    /// CPU function: occupies a host CPU slot.
    Cpu,
}

/// One node of the workflow DAG.
#[derive(Clone, Debug)]
pub struct StageSpec {
    /// Human-readable name (model name, operation).
    pub name: String,
    pub kind: StageKind,
    /// Indices of upstream stages whose outputs this stage consumes.
    /// Empty ⇒ the stage reads the workflow input (from host memory).
    pub deps: Vec<usize>,
    /// Predicted compute latency (offline profile).
    pub compute: SimDuration,
    /// Output (intermediate) data size in bytes.
    pub output_bytes: f64,
    /// Conditional-branch group: at request time exactly one stage of each
    /// group is chosen (weighted by the `f64`); the others are skipped.
    pub cond_group: Option<(u32, f64)>,
}

impl StageSpec {
    /// A GPU stage with the given profile.
    pub fn gpu(
        name: impl Into<String>,
        deps: Vec<usize>,
        compute: SimDuration,
        output_bytes: f64,
        mem_bytes: f64,
    ) -> StageSpec {
        StageSpec {
            name: name.into(),
            kind: StageKind::Gpu { mem_bytes },
            deps,
            compute,
            output_bytes,
            cond_group: None,
        }
    }

    /// A CPU stage with the given profile.
    pub fn cpu(
        name: impl Into<String>,
        deps: Vec<usize>,
        compute: SimDuration,
        output_bytes: f64,
    ) -> StageSpec {
        StageSpec {
            name: name.into(),
            kind: StageKind::Cpu,
            deps,
            compute,
            output_bytes,
            cond_group: None,
        }
    }

    /// Mark the stage as a conditional alternative.
    pub fn with_cond(mut self, group: u32, weight: f64) -> StageSpec {
        self.cond_group = Some((group, weight));
        self
    }

    pub fn is_gpu(&self) -> bool {
        matches!(self.kind, StageKind::Gpu { .. })
    }
}

/// A full inference workflow.
#[derive(Clone, Debug)]
pub struct WorkflowSpec {
    pub name: String,
    pub stages: Vec<StageSpec>,
    /// Request payload registered in host memory on arrival.
    pub input_bytes: f64,
    /// Latency SLO for the whole workflow (e.g. 1.5 × solo latency). Zero
    /// means "not yet calibrated"; the runtime then skips rate guarantees.
    pub slo: SimDuration,
}

impl WorkflowSpec {
    pub fn new(name: impl Into<String>, input_bytes: f64) -> WorkflowSpec {
        WorkflowSpec {
            name: name.into(),
            stages: Vec::new(),
            input_bytes,
            slo: SimDuration::ZERO,
        }
    }

    /// Append a stage, returning its index for dependency wiring.
    pub fn push(&mut self, stage: StageSpec) -> usize {
        self.stages.push(stage);
        self.stages.len() - 1
    }

    pub fn with_slo(mut self, slo: SimDuration) -> WorkflowSpec {
        self.slo = slo;
        self
    }

    /// Validate DAG shape: deps in range, acyclic by construction (deps must
    /// point backwards), conditional groups have positive total weight.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err(format!("workflow '{}' has no stages", self.name));
        }
        for (i, s) in self.stages.iter().enumerate() {
            for &d in &s.deps {
                if d >= i {
                    return Err(format!(
                        "stage {i} ('{}') depends on {d}, which is not an earlier stage",
                        s.name
                    ));
                }
            }
        }
        let mut group_weight = std::collections::BTreeMap::new();
        for s in &self.stages {
            if let Some((g, w)) = s.cond_group {
                if w < 0.0 {
                    return Err(format!("stage '{}' has negative branch weight", s.name));
                }
                *group_weight.entry(g).or_insert(0.0) += w;
            }
        }
        for (g, w) in group_weight {
            if w <= 0.0 {
                return Err(format!("conditional group {g} has zero total weight"));
            }
        }
        Ok(())
    }

    /// Sum of stage compute times along the critical path (ignoring data
    /// passing) — the "computation" floor of the latency breakdowns.
    pub fn critical_path_compute(&self) -> SimDuration {
        let mut finish = vec![SimDuration::ZERO; self.stages.len()];
        for (i, s) in self.stages.iter().enumerate() {
            let dep_max = s
                .deps
                .iter()
                .map(|&d| finish[d])
                .max()
                .unwrap_or(SimDuration::ZERO);
            finish[i] = dep_max + s.compute;
        }
        finish.into_iter().max().unwrap_or(SimDuration::ZERO)
    }

    /// Whether `stage` is terminal (no stage depends on it) — the
    /// allocation-free membership test hot paths use instead of
    /// [`WorkflowSpec::terminals`]. Dependency lists are a handful of
    /// entries, so the scan beats building the terminal set.
    pub fn is_terminal(&self, stage: usize) -> bool {
        !self.stages.iter().any(|s| s.deps.contains(&stage))
    }

    /// Terminal stages (no stage depends on them); their outputs form the
    /// workflow response.
    pub fn terminals(&self) -> Vec<usize> {
        let mut has_consumer = vec![false; self.stages.len()];
        for s in &self.stages {
            for &d in &s.deps {
                has_consumer[d] = true;
            }
        }
        (0..self.stages.len())
            .filter(|&i| !has_consumer[i])
            .collect()
    }

    /// Number of downstream consumers of each stage's output (terminals get
    /// one extra: the response egress to host).
    pub fn consumer_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.stages.len()];
        for s in &self.stages {
            for &d in &s.deps {
                counts[d] += 1;
            }
        }
        for t in self.terminals() {
            counts[t] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn linear3() -> WorkflowSpec {
        let mut wf = WorkflowSpec::new("lin", 1e6);
        let a = wf.push(StageSpec::cpu("decode", vec![], ms(5), 2e6));
        let b = wf.push(StageSpec::gpu("det", vec![a], ms(20), 3e6, 1e9));
        wf.push(StageSpec::gpu("rec", vec![b], ms(10), 1e6, 1e9));
        wf
    }

    #[test]
    fn valid_linear_workflow() {
        let wf = linear3();
        assert!(wf.validate().is_ok());
        assert_eq!(wf.terminals(), vec![2]);
        assert_eq!(wf.consumer_counts(), vec![1, 1, 1]);
        assert_eq!(wf.critical_path_compute(), ms(35));
    }

    #[test]
    fn forward_dependency_rejected() {
        let mut wf = WorkflowSpec::new("bad", 1e6);
        wf.push(StageSpec::cpu("a", vec![1], ms(1), 1.0));
        wf.push(StageSpec::cpu("b", vec![], ms(1), 1.0));
        assert!(wf.validate().is_err());
    }

    #[test]
    fn self_dependency_rejected() {
        let mut wf = WorkflowSpec::new("bad", 1e6);
        wf.push(StageSpec::cpu("a", vec![0], ms(1), 1.0));
        assert!(wf.validate().is_err());
    }

    #[test]
    fn empty_workflow_rejected() {
        let wf = WorkflowSpec::new("empty", 1e6);
        assert!(wf.validate().is_err());
    }

    #[test]
    fn fan_out_fan_in_counts() {
        // a → (b, c) → d
        let mut wf = WorkflowSpec::new("diamond", 1e6);
        let a = wf.push(StageSpec::gpu("a", vec![], ms(10), 1e6, 1e9));
        let b = wf.push(StageSpec::gpu("b", vec![a], ms(20), 1e6, 1e9));
        let c = wf.push(StageSpec::gpu("c", vec![a], ms(30), 1e6, 1e9));
        wf.push(StageSpec::gpu("d", vec![b, c], ms(5), 1e6, 1e9));
        assert!(wf.validate().is_ok());
        assert_eq!(wf.consumer_counts(), vec![2, 1, 1, 1]);
        // Critical path takes the slower branch.
        assert_eq!(wf.critical_path_compute(), ms(45));
    }

    #[test]
    fn conditional_groups_validate_weights() {
        let mut wf = WorkflowSpec::new("cond", 1e6);
        let a = wf.push(StageSpec::gpu("a", vec![], ms(1), 1e6, 1e9));
        wf.push(StageSpec::gpu("b1", vec![a], ms(1), 1e6, 1e9).with_cond(0, 0.7));
        wf.push(StageSpec::gpu("b2", vec![a], ms(1), 1e6, 1e9).with_cond(0, 0.3));
        assert!(wf.validate().is_ok());
        let mut bad = WorkflowSpec::new("cond0", 1e6);
        bad.push(StageSpec::gpu("x", vec![], ms(1), 1e6, 1e9).with_cond(1, 0.0));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn multiple_terminals_each_count_an_egress() {
        let mut wf = WorkflowSpec::new("fan", 1e6);
        let a = wf.push(StageSpec::gpu("a", vec![], ms(1), 1e6, 1e9));
        wf.push(StageSpec::gpu("t1", vec![a], ms(1), 1e6, 1e9));
        wf.push(StageSpec::gpu("t2", vec![a], ms(1), 1e6, 1e9));
        assert_eq!(wf.terminals(), vec![1, 2]);
        assert_eq!(wf.consumer_counts(), vec![2, 1, 1]);
    }
}
