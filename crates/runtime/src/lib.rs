//! # grouter-runtime
//!
//! The serverless inference platform the paper builds on (INFless-style):
//! workflow DAGs of CPU and GPU functions, MAPA-style placement,
//! time-multiplexed GPU execution, request queues, pre-warming, and SLO
//! accounting — everything the data plane needs from its host system
//! (`DESIGN.md` §2).
//!
//! * [`spec`] — workflow/stage descriptions (sequence, condition, fan-in,
//!   fan-out patterns of Fig. 12).
//! * [`placement`] — function → GPU/CPU placement policies.
//! * [`dataplane`] — the [`dataplane::DataPlane`] trait every data plane
//!   (GROUTER and the baselines) implements, plus the operation types the
//!   executor runs.
//! * [`metrics`] — per-instance latency breakdowns (compute vs gFn–gFn vs
//!   gFn–host data passing, Fig. 3) and aggregate summaries.
//! * [`world`] — cluster state: topology, flow network, pools, matrices,
//!   GPU/CPU occupancy.
//! * [`exec`] — the event-driven executor tying it all together.

pub mod cluster;
pub mod dataplane;
pub mod exec;
pub mod fault;
pub mod metrics;
pub mod placement;
pub mod simple_plane;
pub mod slab;
pub mod spec;
pub mod stream;
pub mod world;

pub use cluster::{
    ArrivalSource, ClusterArrival, ClusterPort, ClusterSim, CrossMsg, GroupSetup, Heartbeat,
    HeartbeatConfig, RouterAgent,
};
pub use dataplane::{DataOp, DataPlane, Destination, LegHealth, OpLeg, PlaneCtx, PutOp};
pub use exec::{Event, Runtime};
pub use fault::{FaultState, RecoveryEvent};
pub use metrics::{InstanceRecord, Metrics, PassCategory};
pub use placement::{mapa_scan, pin_decode, PlacementPolicy, Placer};
pub use slab::{IdSlab, NvFlowIndex};
pub use spec::{StageKind, StageSpec, WorkflowSpec};
pub use stream::TokenStream;
pub use world::World;
