//! Cluster + platform state for the executor.
//!
//! [`World`] owns everything the event handlers mutate: the interconnect
//! flow network, the transfer engine, the metadata store, per-GPU memory
//! pools and pre-warm scalers, per-node bandwidth matrices and rate
//! controllers, GPU run queues, live workflow instances and in-flight data
//! operations.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use grouter_mem::{ElasticPool, PinnedRing, PoolDiscipline, PrewarmScaler};
use grouter_sim::rng::DetRng;
use grouter_sim::stats::TimeSeries;
use grouter_sim::time::{SimDuration, SimTime};
use grouter_sim::{FlowNet, FxHashMap, FxHashSet};
use grouter_store::DataStore;
use grouter_store::{DataId, WorkflowId};
use grouter_topology::graph::TopologySpec;
use grouter_topology::{PathLedger, Topology};
use grouter_transfer::exec::{TransferEngine, TransferId};
use grouter_transfer::rate::RateController;

use crate::dataplane::{DataPlane, Destination, OpLeg};
use crate::metrics::{Metrics, PassCategory};
use crate::placement::{PlacementPolicy, Placer};
use crate::slab::{IdSlab, NvFlowIndex};
use crate::spec::WorkflowSpec;

/// Executor configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    pub placement: PlacementPolicy,
    /// Nodes functions may be placed on (defaults to all nodes).
    pub placement_nodes: Vec<usize>,
    /// Deterministic seed for branch sampling and random-placement planes.
    pub seed: u64,
    /// Pre-warm containers (the paper's default, SHEPHERD-style). When
    /// `false`, the first run of a stage on a GPU pays a cold start.
    pub prewarm: bool,
    /// Record a per-GPU idle-memory time series (Fig. 7a).
    pub sample_memory: bool,
    /// GPU pool discipline (elastic for GROUTER, static/symmetric for the
    /// memory-overhead baselines of Fig. 20c).
    pub pool_discipline: PoolDiscipline,
    /// Enable full tracing: every component records into the flight
    /// recorder. When `false` (default) only fault/recovery events are
    /// recorded — they back [`World::recovery_log`] — and every other
    /// emit site costs one atomic load.
    pub trace: bool,
    /// Flight-recorder ring capacity in events (oldest evicted first).
    pub trace_buffer: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            placement: PlacementPolicy::Mapa,
            placement_nodes: Vec::new(),
            seed: 42,
            prewarm: true,
            sample_memory: false,
            pool_discipline: PoolDiscipline::Elastic,
            trace: false,
            trace_buffer: 65_536,
        }
    }
}

/// Lifecycle of one stage of one instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StageState {
    /// Waiting for `deps_left` upstream stages.
    Waiting {
        deps_left: u32,
    },
    /// Inputs being fetched (`gets_left` outstanding `Get`s).
    Fetching {
        gets_left: u32,
    },
    /// Inputs resident; waiting for the GPU.
    Queued,
    Running,
    /// Output `Put` in flight.
    Storing,
    Done,
    /// Conditional branch not taken (or all deps skipped).
    Skipped,
}

/// Per-instance stage bookkeeping.
#[derive(Clone, Debug)]
pub struct StageRun {
    pub state: StageState,
    pub output: Option<DataId>,
    /// Global enqueue rank (queue-aware migration input).
    pub rank: Option<u64>,
    /// When the stage entered its GPU queue (feeds the queue-wait
    /// histogram; `None` for host stages, which never queue).
    pub enqueued: Option<SimTime>,
    /// Execution attempt, bumped on every recovery reset. Scheduled events
    /// (compute completions, retry re-issues) carry the attempt they were
    /// created under and no-op when it has moved on.
    pub attempt: u32,
    /// Inputs this attempt has already consumed (`Get` completed). A reset
    /// re-fetches everything, so these claims must be re-added to the
    /// store's pending-consumer counts.
    pub got: Vec<DataId>,
    /// Response egress for this terminal already completed (guards against
    /// double egress when a terminal stage re-runs).
    pub egressed: bool,
}

/// One live workflow invocation.
#[derive(Debug)]
pub struct Instance {
    pub spec: Arc<WorkflowSpec>,
    pub arrived: SimTime,
    pub placements: Vec<Destination>,
    pub stages: Vec<StageRun>,
    pub input_data: DataId,
    /// Non-skipped terminal stages whose egress has not completed yet.
    pub terminals_left: u32,
    pub compute_total: SimDuration,
    pub passing: BTreeMap<PassCategory, SimDuration>,
    pub op_durations: Vec<(PassCategory, SimDuration)>,
    pub workflow_id: WorkflowId,
    /// Interned workflow name (id into `Metrics`' name table).
    pub wf_name: u32,
    /// Stable per-(workflow, stage) function identity (pre-warm statistics).
    /// Shared across every instance of the workflow — no per-arrival copy.
    pub fn_ids: Arc<[u64]>,
}

impl Instance {
    /// Per-instance consumer count of `stage`'s output: non-skipped
    /// dependents plus the response egress for terminals.
    pub fn consumers_of(&self, stage: usize) -> u32 {
        let mut n = 0;
        for (j, s) in self.spec.stages.iter().enumerate() {
            if s.deps.contains(&stage) && self.stages[j].state != StageState::Skipped {
                n += 1;
            }
        }
        let is_terminal = self.spec.is_terminal(stage);
        if is_terminal && self.stages[stage].state != StageState::Skipped {
            n += 1;
        }
        n
    }
}

/// What a finished [`crate::dataplane::DataOp`] was doing.
#[derive(Clone, Copy, Debug)]
pub enum OpKind {
    /// Fetch one input of `stage`.
    Get {
        inst: u64,
        stage: usize,
        data: DataId,
    },
    /// Store `stage`'s output.
    Put {
        inst: u64,
        stage: usize,
        data: DataId,
    },
    /// Move a terminal output to host memory (the response).
    Egress {
        inst: u64,
        stage: usize,
        data: DataId,
    },
    /// Migration / restoration traffic not on any request's critical path.
    Background,
}

/// An in-flight data operation.
#[derive(Debug)]
pub struct PendingOp {
    pub legs: VecDeque<OpLeg>,
    /// Leg popped by `advance_op`, waiting out its setup latency until the
    /// `BeginLeg` event fires.
    pub staged: Option<OpLeg>,
    pub started: SimTime,
    pub kind: OpKind,
    pub category: PassCategory,
    /// SLO rate-controller registration of the current leg, released when
    /// the leg completes.
    pub rate_token: Option<(usize, u64)>,
    /// Ledger reservation of the current leg, released when it completes.
    pub ledger_release: Option<(usize, grouter_topology::ResId)>,
    /// Pinned-ring bytes of the current leg, returned when it completes.
    pub pinned_release: Option<(usize, f64)>,
    /// Trace span covering the op from issue to completion (0 = untraced).
    pub span: u64,
}

/// Compute occupancy of one GPU (time-multiplexed, §4.3.2 footnote).
#[derive(Debug, Default)]
pub struct GpuExec {
    pub busy: bool,
    pub queue: VecDeque<(u64, usize)>,
    /// Whole-GPU failure: no dispatch until the recovery engine clears it.
    pub failed: bool,
}

/// All mutable simulation state.
pub struct World {
    pub topo: Topology,
    pub net: FlowNet,
    pub engine: TransferEngine,
    pub store: DataStore,
    pub pools: Vec<ElasticPool>,
    pub scalers: Vec<PrewarmScaler>,
    pub ledgers: Vec<PathLedger>,
    pub pinned: Vec<PinnedRing>,
    pub rates: Vec<RateController>,
    /// Taken out while a plane method runs (borrow split).
    pub plane: Option<Box<dyn DataPlane>>,
    pub gpus: Vec<GpuExec>,
    pub placer: Placer,
    pub rng: DetRng,
    pub instances: IdSlab<Instance>,
    pub ops: IdSlab<PendingOp>,
    pub transfer_waiters: FxHashMap<TransferId, u64>,
    /// Live NVLink flows and their current `(node, GPU route)`, reverse-
    /// indexed so a ledger rebalance finds the in-flight flow for a route
    /// without scanning (see [`NvFlowIndex`]).
    pub nv_flow_index: NvFlowIndex,
    /// Staged legs of cancelled ops, parked until their still-in-flight
    /// `BeginLeg` event fires and releases them (matching the instant the
    /// boxed-closure core released them at).
    pub orphan_legs: FxHashMap<u64, OpLeg>,
    /// Recycled buffer for flow-completion harvests (net-wake batches).
    pub flow_scratch: Vec<grouter_sim::FlowId>,
    pub metrics: Metrics,
    pub mem_series: Vec<TimeSeries>,
    /// Watched links and their utilisation-fraction time series (enabled by
    /// `Runtime::schedule_link_samples`).
    pub link_series: Vec<(grouter_sim::LinkId, TimeSeries)>,
    /// `(function id, flat GPU index)` pairs that have run at least once
    /// (container warm; function ids are bijective with (workflow, stage)).
    pub warm: FxHashSet<(u64, usize)>,
    pub config: RuntimeConfig,
    pub enqueue_counter: u64,
    pub next_instance: u64,
    pub next_op: u64,
    /// In-flight flows re-pathed by direct-path rebalancing (§4.3.3).
    pub rebalances_applied: u64,
    /// Fault-injection bookkeeping (failed GPUs, degraded-link baselines,
    /// per-stage retry budgets).
    pub fault: crate::fault::FaultState,
    /// Cross-group port installed when this world is one shard of a
    /// [`crate::cluster::ClusterSim`]; `None` for standalone worlds.
    pub cluster: Option<Box<crate::cluster::ClusterPort>>,
    /// The flight recorder every component in this world reports into.
    /// `Comp::Fault` events are recorded even with tracing off, so the
    /// recovery log ([`World::recovery_log`]) is a decoded *view* over this
    /// stream rather than a bespoke `Vec`.
    pub rec: grouter_obs::Recorder,
}

impl World {
    /// Build a cluster of `num_nodes` copies of `spec` with `plane` as the
    /// data plane.
    pub fn new(
        spec: TopologySpec,
        num_nodes: usize,
        plane: Box<dyn DataPlane>,
        mut config: RuntimeConfig,
    ) -> World {
        let mut net = FlowNet::new();
        let topo = Topology::build(spec, num_nodes, &mut net);
        if config.placement_nodes.is_empty() {
            config.placement_nodes = (0..num_nodes).collect();
        }
        // The world's flight recorder: fault events always recorded (they
        // back the recovery-log view); everything else only under full
        // tracing. Every component below gets a clone of the handle.
        let mask = if config.trace {
            grouter_obs::MASK_ALL
        } else {
            grouter_obs::MASK_FAULT_ONLY
        };
        let rec = grouter_obs::Recorder::with_mask(config.trace_buffer, mask);
        net.set_recorder(rec.clone());
        let n_gpus = topo.num_gpus();
        let pools: Vec<ElasticPool> = (0..n_gpus)
            .map(|g| {
                let mut p = ElasticPool::new(config.pool_discipline, topo.gpu_mem_bytes());
                p.set_recorder(rec.clone(), g as u64);
                p
            })
            .collect();
        let scalers = (0..n_gpus).map(|_| PrewarmScaler::new()).collect();
        let ledgers = {
            // Every node shares the same NVLink fabric, so the loop-free
            // path sets are identical: warm one prototype's path cache once
            // and clone it per node — the first transfer on any node is
            // already a cache hit.
            let mut proto = PathLedger::from_topology(&topo);
            if topo.has_nvlink() {
                let hops = if topo.has_nvswitch() { 1 } else { 3 };
                proto.warm(hops);
            }
            proto.set_recorder(rec.clone());
            vec![proto; num_nodes]
        };
        let pinned = (0..num_nodes)
            .map(|_| PinnedRing::new(grouter_sim::params::PINNED_RING_BYTES))
            .collect();
        let rates = (0..num_nodes).map(|_| RateController::new()).collect();
        let placer = Placer::new(
            config.placement.clone(),
            &topo,
            config.placement_nodes.clone(),
        );
        let mem_series = (0..n_gpus).map(|_| TimeSeries::new()).collect();
        let mut engine = TransferEngine::new();
        engine.set_recorder(rec.clone());
        let mut store = DataStore::new(num_nodes);
        store.set_recorder(rec.clone());
        World {
            rng: DetRng::new(config.seed),
            placer,
            gpus: (0..n_gpus).map(|_| GpuExec::default()).collect(),
            engine,
            store,
            pools,
            scalers,
            ledgers,
            pinned,
            rates,
            plane: Some(plane),
            instances: IdSlab::new(),
            ops: IdSlab::new(),
            transfer_waiters: FxHashMap::default(),
            nv_flow_index: NvFlowIndex::default(),
            orphan_legs: FxHashMap::default(),
            flow_scratch: Vec::new(),
            metrics: Metrics::new(),
            mem_series,
            link_series: Vec::new(),
            warm: FxHashSet::default(),
            config,
            enqueue_counter: 0,
            next_instance: 0,
            next_op: 0,
            rebalances_applied: 0,
            fault: Default::default(),
            cluster: None,
            rec,
            topo,
            net,
        }
    }

    /// Decode the fault-component events of the flight recorder back into
    /// the typed recovery log (PR 4's `Vec` is now a view over the trace
    /// stream). Order is emit order; entries evicted by ring wrap are gone
    /// — size [`RuntimeConfig::trace_buffer`] accordingly.
    pub fn recovery_log(&self) -> Vec<(SimTime, crate::fault::RecoveryEvent)> {
        self.rec
            .snapshot()
            .events
            .iter()
            .filter_map(crate::fault::decode_recovery)
            .collect()
    }

    /// Append a typed recovery event to the trace stream (always recorded:
    /// `Comp::Fault` is in the default mask).
    pub(crate) fn log_recovery(&self, now: SimTime, ev: crate::fault::RecoveryEvent) {
        crate::fault::record_recovery(&self.rec, now, &ev);
    }

    /// Flat GPU index (canonical ordering from [`Topology::flat_index`]).
    pub fn gpu_index(&self, node: usize, gpu: usize) -> usize {
        self.topo.flat_index(node, gpu)
    }

    /// Idle (neither runtime- nor pool-reserved) memory on a GPU.
    pub fn idle_gpu_memory(&self, node: usize, gpu: usize) -> f64 {
        self.pools[self.gpu_index(node, gpu)].idle_gpu_memory()
    }

    /// Record utilisation (fraction of capacity) for every watched link.
    pub fn sample_links(&mut self, now: SimTime) {
        for (link, series) in &mut self.link_series {
            let used = self.net.link_utilization(*link);
            let cap = self.net.link_capacity(*link);
            series.record(now, used / cap);
        }
    }

    /// Record idle memory for every GPU (Fig. 7a sampling).
    pub fn sample_memory(&mut self, now: SimTime) {
        for idx in 0..self.pools.len() {
            let v = self.pools[idx].idle_gpu_memory();
            self.mem_series[idx].record(now, v);
        }
    }

    /// Are any requests still in flight?
    pub fn quiescent(&self) -> bool {
        self.instances.is_empty() && self.ops.is_empty() && self.engine.in_flight() == 0
    }

    /// `true` when every node's path ledger holds no reservations and its
    /// bandwidth matrix is fully idle — i.e. no NVLink bandwidth leaked.
    pub fn ledgers_idle(&self) -> bool {
        let g = self.topo.gpus_per_node();
        self.ledgers.iter().all(|l| {
            l.active() == 0
                && (0..g)
                    .all(|a| (0..g).all(|b| l.bwm().capacity(a, b) <= 0.0 || l.bwm().is_idle(a, b)))
        }) && self.nv_flow_index.is_empty()
    }
}
