//! A minimal reference data plane.
//!
//! [`LocalityPlane`] stores every output where it was produced (GPU outputs
//! in the producer's pool, CPU outputs in host memory) and serves every
//! `Get` over a single direct path. It exists to (a) document the
//! [`DataPlane`] contract with the simplest correct implementation and
//! (b) exercise the executor in this crate's tests without pulling in the
//! full GROUTER/baseline planes.
//!
//! It is *not* one of the paper's systems: GROUTER adds bandwidth
//! harvesting, topology-aware multi-path transfers and elastic storage on
//! top of this locality baseline; the baselines degrade it in other
//! directions (host-only storage, random store GPU).

use grouter_mem::{AllocError, EvictionPolicy, LruPolicy, ObjectMeta};
use grouter_sim::time::SimDuration;
use grouter_store::{AccessToken, DataId, Location, StoreError};
use grouter_topology::GpuRef;
use grouter_transfer::plan::{
    plan_cross_node, plan_d2h, plan_h2d, plan_intra_node, plan_shm, PlanConfig, TransferPlan,
};

use crate::dataplane::{DataOp, DataPlane, Destination, OpLeg, PlaneCtx, PutOp};

/// Store-local, single-path data plane.
#[derive(Debug, Default)]
pub struct LocalityPlane;

impl LocalityPlane {
    pub fn new() -> LocalityPlane {
        LocalityPlane
    }

    /// Free pool space on `gpu` by migrating LRU victims to host memory.
    /// Returns the migration legs and accumulates freed bytes.
    fn evict(ctx: &mut PlaneCtx<'_>, gpu: GpuRef, need: f64) -> Vec<OpLeg> {
        let entries = ctx.store.entries_at(Location::Gpu(gpu));
        let metas: Vec<ObjectMeta> = entries
            .iter()
            .map(|e| ObjectMeta {
                key: e.id.0,
                bytes: e.bytes,
                last_access: e.last_access,
                next_use: e.next_use,
            })
            .collect();
        let victims = LruPolicy.select_victims(&metas, need);
        let mut legs = Vec::new();
        for v in victims {
            let id = DataId(v);
            // Victims come from the store snapshot above; one that vanished
            // in between is skipped, not fatal.
            let Some(entry) = ctx.store.peek(id).cloned() else {
                continue;
            };
            if ctx.store.relocate(id, Location::Host(gpu.node)).is_err() {
                continue;
            }
            let plan = plan_d2h(
                ctx.topo,
                ctx.net,
                gpu.node,
                gpu.gpu,
                entry.bytes,
                &PlanConfig::single_path(),
            );
            legs.push(OpLeg::new(plan, gpu.node));
            ctx.pool(gpu).free(entry.bytes);
        }
        legs
    }
}

impl DataPlane for LocalityPlane {
    fn name(&self) -> &'static str {
        "Locality"
    }

    fn put(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        source: Destination,
        bytes: f64,
        consumers: u32,
    ) -> Result<PutOp, StoreError> {
        match source {
            Destination::Gpu(g) => {
                let mut legs = Vec::new();
                let mut control = SimDuration::ZERO;
                let grant = match ctx.pool(g).try_alloc(bytes) {
                    Ok(grant) => grant,
                    Err(AllocError::NeedsEviction { shortfall }) => {
                        legs.extend(Self::evict(ctx, g, shortfall));
                        // grouter-lint: allow(no-panic-in-dataplane): evict() freed at least `shortfall`, so the retry cannot fail
                        ctx.pool(g).try_alloc(bytes).expect("eviction freed space")
                    }
                    Err(AllocError::TooLarge) => {
                        // Fall back to host storage for oversized objects.
                        let (id, lat) =
                            ctx.store
                                .put(ctx.now, token, Location::Host(g.node), bytes, consumers);
                        let plan = plan_d2h(
                            ctx.topo,
                            ctx.net,
                            g.node,
                            g.gpu,
                            bytes,
                            &PlanConfig::single_path(),
                        );
                        return Ok(PutOp {
                            id,
                            op: DataOp {
                                control_latency: lat,
                                legs: vec![OpLeg::new(plan, g.node)],
                            },
                        });
                    }
                };
                control = control + grant.latency;
                let (id, lat) = ctx
                    .store
                    .put(ctx.now, token, Location::Gpu(g), bytes, consumers);
                Ok(PutOp {
                    id,
                    op: DataOp {
                        control_latency: control + lat,
                        legs,
                    },
                })
            }
            Destination::Host(n) => {
                let (id, lat) = ctx
                    .store
                    .put(ctx.now, token, Location::Host(n), bytes, consumers);
                Ok(PutOp {
                    id,
                    op: DataOp::control_only(lat),
                })
            }
        }
    }

    fn get(
        &mut self,
        ctx: &mut PlaneCtx<'_>,
        token: AccessToken,
        id: DataId,
        dest: Destination,
    ) -> Result<DataOp, StoreError> {
        let node = match dest {
            Destination::Gpu(g) => g.node,
            Destination::Host(n) => n,
        };
        let (entry, lookup) = ctx.store.resolve(ctx.now, node, token, id)?;
        let cfg = PlanConfig::single_path();
        let plan: TransferPlan = match (entry.location, dest) {
            (Location::Gpu(s), Destination::Gpu(d)) if s == d => {
                return Ok(DataOp::control_only(
                    lookup + grouter_sim::params::IPC_MAP_CACHED,
                ));
            }
            (Location::Gpu(s), Destination::Gpu(d)) if s.node == d.node => plan_intra_node(
                ctx.topo,
                ctx.net,
                None,
                s.node,
                s.gpu,
                d.gpu,
                entry.bytes,
                &cfg,
            ),
            (Location::Gpu(s), Destination::Gpu(d)) => {
                plan_cross_node(ctx.topo, ctx.net, s, d, entry.bytes, &cfg)
            }
            (Location::Host(n), Destination::Gpu(d)) if n == d.node => {
                plan_h2d(ctx.topo, ctx.net, d.node, d.gpu, entry.bytes, &cfg)
            }
            (Location::Host(n), Destination::Gpu(d)) => {
                // Remote host data: network hop, then PCIe up.
                let mut op = DataOp {
                    control_latency: lookup,
                    legs: vec![
                        OpLeg::new(
                            grouter_transfer::plan::plan_host_to_host(
                                ctx.topo,
                                ctx.net,
                                n,
                                d.node,
                                entry.bytes,
                            ),
                            n,
                        ),
                        OpLeg::new(
                            plan_h2d(ctx.topo, ctx.net, d.node, d.gpu, entry.bytes, &cfg),
                            d.node,
                        ),
                    ],
                };
                op.control_latency = lookup;
                return Ok(op);
            }
            (Location::Gpu(s), Destination::Host(n)) if s.node == n => {
                plan_d2h(ctx.topo, ctx.net, s.node, s.gpu, entry.bytes, &cfg)
            }
            (Location::Gpu(s), Destination::Host(n)) => {
                let mut legs = vec![OpLeg::new(
                    plan_d2h(ctx.topo, ctx.net, s.node, s.gpu, entry.bytes, &cfg),
                    s.node,
                )];
                legs.push(OpLeg::new(
                    grouter_transfer::plan::plan_host_to_host(
                        ctx.topo,
                        ctx.net,
                        s.node,
                        n,
                        entry.bytes,
                    ),
                    s.node,
                ));
                return Ok(DataOp {
                    control_latency: lookup,
                    legs,
                });
            }
            (Location::Host(a), Destination::Host(b)) if a == b => {
                plan_shm(ctx.topo, ctx.net, a, entry.bytes)
            }
            (Location::Host(a), Destination::Host(b)) => {
                grouter_transfer::plan::plan_host_to_host(ctx.topo, ctx.net, a, b, entry.bytes)
            }
        };
        Ok(DataOp {
            control_latency: lookup,
            legs: vec![OpLeg::new(plan, entry.location.node())],
        })
    }

    fn on_consumed(&mut self, ctx: &mut PlaneCtx<'_>, id: DataId) -> Vec<DataOp> {
        let entry = ctx.store.peek(id).cloned();
        if ctx.store.consumed(id) {
            if let Some(entry) = entry {
                if let Location::Gpu(g) = entry.location {
                    ctx.pool(g).free(entry.bytes);
                }
            }
        }
        Vec::new()
    }

    fn on_memory_change(&mut self, ctx: &mut PlaneCtx<'_>, gpu: GpuRef) -> Vec<DataOp> {
        let over = ctx.pool(gpu).used() - ctx.pool(gpu).storage_cap();
        if over <= 0.0 {
            return Vec::new();
        }
        let legs = Self::evict(ctx, gpu, over);
        if legs.is_empty() {
            return Vec::new();
        }
        vec![DataOp {
            control_latency: SimDuration::ZERO,
            legs,
        }]
    }
}
