//! Failure recovery for the executor — the world-side interpreter of a
//! [`grouter_sim::fault::FaultPlan`].
//!
//! A fault plan says *what* breaks and *when*; this module says what the
//! platform does about it:
//!
//! * **Link degrade/restore** — rescale the FlowNet capacity (in-flight
//!   flows re-share automatically) and remember the healthy baseline.
//! * **NIC failure** — both directions of the NIC's links crawl at a
//!   residual trickle until repaired (cross-node traffic survives, slowly).
//! * **Route-GPU loss** — the GPU vanishes from the bandwidth matrix
//!   (Algorithm 1 replans around it); transfers routed through it are
//!   cancelled and retried with bounded exponential backoff over whatever
//!   paths survive — down to the single-path PCIe fallback, surfaced as a
//!   [`crate::dataplane::LegHealth::Degraded`] leg.
//! * **Whole-GPU failure** — compute, NVLink ports and stored intermediates
//!   all go at once: the pool is quarantined, resident objects are purged,
//!   stages placed there restart on a healthy GPU, and lost intermediates
//!   are re-produced by re-running their producer stages (lineage
//!   re-execution). When no healthy GPU remains, or the per-stage retry
//!   budget is exhausted, the instance terminates with a *typed* failure
//!   (`Metrics::failed`) — never a silent stall.
//!
//! Every action is recorded as a `Comp::Fault` instant in the observability
//! trace; `World::recovery_log()` decodes that stream back into typed events,
//! which chaos tests replay byte-for-byte: the whole module is deterministic
//! (BTree iteration, sorted id collection, no wall-clock).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use grouter_sim::engine::Scheduler;
use grouter_sim::fault::{FaultEvent, FaultKind};
use grouter_sim::time::{SimDuration, SimTime};
use grouter_sim::LinkId;
use grouter_store::{AccessToken, DataId, FunctionId, Location};
use grouter_topology::GpuRef;

use crate::dataplane::Destination;
use crate::exec::{self, Event};
use crate::metrics::PassCategory;
use crate::spec::StageKind;
use crate::world::{Instance, OpKind, StageState, World};

/// Residual capacity factor of a failed NIC's links (keeping the FlowNet's
/// strictly-positive capacity invariant while modelling a dead device).
const NIC_RESIDUAL_FACTOR: f64 = 0.02;

/// Per-stage cap on data-operation retries before the instance fails typed.
const MAX_OP_RETRIES: u32 = 4;

/// Fault-injection bookkeeping carried by the [`World`].
#[derive(Debug, Default)]
pub struct FaultState {
    /// Flat indices of currently-failed GPUs.
    pub failed_gpus: BTreeSet<usize>,
    /// Healthy capacity of every link a fault has touched, for restores.
    pub link_baseline: BTreeMap<LinkId, f64>,
    /// Retry counters per `(instance, stage)` — bounded by
    /// [`MAX_OP_RETRIES`].
    pub retries: BTreeMap<(u64, usize), u32>,
}

/// One entry of `World::recovery_log`: a fault the world absorbed or a
/// recovery action it took. Typed so tests (and operators) observe degraded
/// service instead of inferring it from stalls.
#[derive(Clone, Debug, PartialEq)]
pub enum RecoveryEvent {
    LinkDegraded {
        link: LinkId,
    },
    LinkRestored {
        link: LinkId,
    },
    NicDegraded {
        node: usize,
        nic: usize,
    },
    NicRestored {
        node: usize,
        nic: usize,
    },
    /// A GPU's NVLink ports died; Algorithm 1 replans around it.
    RouteLost {
        gpu: usize,
    },
    RouteRestored {
        gpu: usize,
    },
    /// Whole-GPU failure with the intermediates it destroyed.
    GpuFailed {
        gpu: usize,
        lost_objects: usize,
        lost_bytes: f64,
    },
    GpuRestored {
        gpu: usize,
    },
    /// A data operation was cancelled and re-issued (attempt = retry count).
    OpRetried {
        inst: u64,
        stage: usize,
        attempt: u32,
    },
    /// A stage was reset to re-run (re-placement and/or lineage).
    StageRestarted {
        inst: u64,
        stage: usize,
    },
    /// The instance terminated with a typed failure.
    InstanceFailed {
        inst: u64,
    },
    /// A leg was planned on a degraded fallback path class.
    DegradedLeg {
        op: u64,
    },
    /// Service mode: this worker group died — heartbeat daemon silent,
    /// every local GPU failed (the host gateway survives).
    WorkerDied,
    /// Service mode: the worker came back — GPUs restored, daemon re-armed.
    WorkerRestarted,
    /// Service mode: a router-side drop budget was armed for `group`'s
    /// next `drops` heartbeats.
    HbLossArmed {
        group: usize,
        drops: u32,
    },
    /// Service mode: one heartbeat from `group` was lost to a drop budget
    /// before the router's agent saw it.
    HbDropped {
        group: usize,
    },
}

// ---------------------------------------------------------------------------
// Trace-stream codec
// ---------------------------------------------------------------------------
//
// `World::recovery_log` is a *view* over the observability trace: every
// recovery action is encoded as a `Comp::Fault` instant (always recorded,
// even with tracing off — see `MASK_FAULT_ONLY`), and decoded back on
// demand. Chaos tests keep comparing the decoded log byte-for-byte.

/// Encode one recovery action as a fault instant stamped at `now`.
pub(crate) fn record_recovery(rec: &grouter_obs::Recorder, now: SimTime, ev: &RecoveryEvent) {
    use grouter_obs::{Comp, Ids, Val};
    let mut ids = Ids::NONE;
    let (name, args): (&'static str, Vec<(&'static str, Val)>) = match *ev {
        RecoveryEvent::LinkDegraded { link } => {
            ("link_degraded", vec![("link", u64::from(link.0).into())])
        }
        RecoveryEvent::LinkRestored { link } => {
            ("link_restored", vec![("link", u64::from(link.0).into())])
        }
        RecoveryEvent::NicDegraded { node, nic } => (
            "nic_degraded",
            vec![("node", node.into()), ("nic", nic.into())],
        ),
        RecoveryEvent::NicRestored { node, nic } => (
            "nic_restored",
            vec![("node", node.into()), ("nic", nic.into())],
        ),
        RecoveryEvent::RouteLost { gpu } => ("route_lost", vec![("gpu", gpu.into())]),
        RecoveryEvent::RouteRestored { gpu } => ("route_restored", vec![("gpu", gpu.into())]),
        RecoveryEvent::GpuFailed {
            gpu,
            lost_objects,
            lost_bytes,
        } => (
            "gpu_failed",
            vec![
                ("gpu", gpu.into()),
                ("lost_objects", lost_objects.into()),
                ("lost_bytes", lost_bytes.into()),
            ],
        ),
        RecoveryEvent::GpuRestored { gpu } => ("gpu_restored", vec![("gpu", gpu.into())]),
        RecoveryEvent::OpRetried {
            inst,
            stage,
            attempt,
        } => {
            ids = Ids::inst(inst);
            (
                "op_retried",
                vec![("stage", stage.into()), ("attempt", attempt.into())],
            )
        }
        RecoveryEvent::StageRestarted { inst, stage } => {
            ids = Ids::inst(inst);
            ("stage_restarted", vec![("stage", stage.into())])
        }
        RecoveryEvent::InstanceFailed { inst } => {
            ids = Ids::inst(inst);
            ("instance_failed", vec![])
        }
        RecoveryEvent::DegradedLeg { op } => {
            ids = Ids::op(op);
            ("degraded_leg", vec![])
        }
        RecoveryEvent::WorkerDied => ("worker_died", vec![]),
        RecoveryEvent::WorkerRestarted => ("worker_restarted", vec![]),
        RecoveryEvent::HbLossArmed { group, drops } => (
            "hb_loss_armed",
            vec![("group", group.into()), ("drops", drops.into())],
        ),
        RecoveryEvent::HbDropped { group } => ("hb_dropped", vec![("group", group.into())]),
    };
    rec.instant_at(now.as_nanos(), Comp::Fault, name, ids, args);
}

/// Decode a fault instant back into its typed form. Non-fault events (and
/// fault events that are not recovery actions) decode to `None`.
pub(crate) fn decode_recovery(e: &grouter_obs::Event) -> Option<(SimTime, RecoveryEvent)> {
    use grouter_obs::{Comp, Val};
    if e.comp != Comp::Fault {
        return None;
    }
    let arg_u64 = |k: &str| -> Option<u64> {
        e.args
            .iter()
            .find(|(n, _)| *n == k)
            .and_then(|(_, v)| match *v {
                Val::U64(x) => Some(x),
                _ => None,
            })
    };
    let arg_f64 = |k: &str| -> Option<f64> {
        e.args
            .iter()
            .find(|(n, _)| *n == k)
            .and_then(|(_, v)| match *v {
                Val::F64(x) => Some(x),
                _ => None,
            })
    };
    let link = || -> Option<LinkId> { Some(LinkId(u32::try_from(arg_u64("link")?).ok()?)) };
    let ev = match e.name {
        "link_degraded" => RecoveryEvent::LinkDegraded { link: link()? },
        "link_restored" => RecoveryEvent::LinkRestored { link: link()? },
        "nic_degraded" => RecoveryEvent::NicDegraded {
            node: arg_u64("node")? as usize,
            nic: arg_u64("nic")? as usize,
        },
        "nic_restored" => RecoveryEvent::NicRestored {
            node: arg_u64("node")? as usize,
            nic: arg_u64("nic")? as usize,
        },
        "route_lost" => RecoveryEvent::RouteLost {
            gpu: arg_u64("gpu")? as usize,
        },
        "route_restored" => RecoveryEvent::RouteRestored {
            gpu: arg_u64("gpu")? as usize,
        },
        "gpu_failed" => RecoveryEvent::GpuFailed {
            gpu: arg_u64("gpu")? as usize,
            lost_objects: arg_u64("lost_objects")? as usize,
            lost_bytes: arg_f64("lost_bytes")?,
        },
        "gpu_restored" => RecoveryEvent::GpuRestored {
            gpu: arg_u64("gpu")? as usize,
        },
        "op_retried" => RecoveryEvent::OpRetried {
            inst: e.ids.inst?,
            stage: arg_u64("stage")? as usize,
            attempt: arg_u64("attempt")? as u32,
        },
        "stage_restarted" => RecoveryEvent::StageRestarted {
            inst: e.ids.inst?,
            stage: arg_u64("stage")? as usize,
        },
        "instance_failed" => RecoveryEvent::InstanceFailed { inst: e.ids.inst? },
        "degraded_leg" => RecoveryEvent::DegradedLeg { op: e.ids.op? },
        "worker_died" => RecoveryEvent::WorkerDied,
        "worker_restarted" => RecoveryEvent::WorkerRestarted,
        "hb_loss_armed" => RecoveryEvent::HbLossArmed {
            group: arg_u64("group")? as usize,
            drops: arg_u64("drops")? as u32,
        },
        "hb_dropped" => RecoveryEvent::HbDropped {
            group: arg_u64("group")? as usize,
        },
        _ => return None,
    };
    Some((SimTime(e.t_ns), ev))
}

/// The `(inst, stage, data)` of a request-owned op (`None` for background
/// migration traffic).
fn op_owner(kind: &OpKind) -> Option<(u64, usize, DataId)> {
    match *kind {
        OpKind::Get { inst, stage, data }
        | OpKind::Put { inst, stage, data }
        | OpKind::Egress { inst, stage, data } => Some((inst, stage, data)),
        OpKind::Background => None,
    }
}

// ---------------------------------------------------------------------------
// Fault dispatch
// ---------------------------------------------------------------------------

/// Interpret one fault event against the world. Installed as the handler of
/// [`grouter_sim::fault::FaultPlan::install`] by
/// [`crate::Runtime::install_fault_plan`].
pub(crate) fn apply_fault(w: &mut World, s: &mut Scheduler<World>, ev: &FaultEvent) {
    let now = s.now();
    match &ev.kind {
        FaultKind::LinkDegrade { link, factor } => {
            let cur = w.net.link_capacity(*link);
            let base = *w.fault.link_baseline.entry(*link).or_insert(cur);
            // FlowNet rejects non-positive capacities; plans guarantee
            // factor > 0, the clamp guards hand-written scripts.
            w.net
                .set_link_capacity(now, *link, (base * factor).max(base * 1e-6));
            w.log_recovery(now, RecoveryEvent::LinkDegraded { link: *link });
            exec::schedule_net_wake(w, s);
        }
        FaultKind::LinkRestore { link } => {
            if let Some(&base) = w.fault.link_baseline.get(link) {
                w.net.set_link_capacity(now, *link, base);
            }
            w.log_recovery(now, RecoveryEvent::LinkRestored { link: *link });
            exec::schedule_net_wake(w, s);
        }
        FaultKind::NicFail { node, nic } => {
            let (tx, rx) = w.topo.nic_links(*node, *nic);
            for link in [tx, rx] {
                let cur = w.net.link_capacity(link);
                let base = *w.fault.link_baseline.entry(link).or_insert(cur);
                w.net
                    .set_link_capacity(now, link, base * NIC_RESIDUAL_FACTOR);
            }
            w.log_recovery(
                now,
                RecoveryEvent::NicDegraded {
                    node: *node,
                    nic: *nic,
                },
            );
            exec::schedule_net_wake(w, s);
        }
        FaultKind::NicRestore { node, nic } => {
            let (tx, rx) = w.topo.nic_links(*node, *nic);
            for link in [tx, rx] {
                if let Some(&base) = w.fault.link_baseline.get(&link) {
                    w.net.set_link_capacity(now, link, base);
                }
            }
            w.log_recovery(
                now,
                RecoveryEvent::NicRestored {
                    node: *node,
                    nic: *nic,
                },
            );
            exec::schedule_net_wake(w, s);
        }
        FaultKind::RouteGpuLoss { gpu } => {
            let per = w.topo.gpus_per_node();
            let (node, local) = (*gpu / per, *gpu % per);
            w.ledgers[node].mask_node(local);
            w.log_recovery(now, RecoveryEvent::RouteLost { gpu: *gpu });
            recover_route_ops(w, s, node, local, None);
            exec::schedule_net_wake(w, s);
        }
        FaultKind::RouteGpuRestore { gpu } => {
            // A whole-GPU failure subsumes the route loss; GpuRestore
            // handles the unmask then.
            if !w.fault.failed_gpus.contains(gpu) {
                let per = w.topo.gpus_per_node();
                w.ledgers[*gpu / per].unmask_node(*gpu % per);
            }
            w.log_recovery(now, RecoveryEvent::RouteRestored { gpu: *gpu });
        }
        FaultKind::GpuFail { gpu } => {
            apply_gpu_fail(w, s, *gpu);
        }
        FaultKind::GpuRestore { gpu } => {
            apply_gpu_restore(w, now, *gpu);
        }
        FaultKind::WorkerDeath => {
            // The worker host dies mid-heartbeat-interval: the daemon goes
            // silent (the router only finds out via its failure detector)
            // and every local GPU fails at once. The gateway itself
            // survives, so forwarded invocations keep arriving and fail
            // typed instead of stalling.
            if let Some(port) = w.cluster.as_mut() {
                port.hb_muted = true;
            }
            w.log_recovery(now, RecoveryEvent::WorkerDied);
            for gpu in 0..w.topo.num_gpus() {
                apply_gpu_fail(w, s, gpu);
            }
        }
        FaultKind::WorkerRestart => {
            if let Some(port) = w.cluster.as_mut() {
                port.hb_muted = false;
            }
            w.log_recovery(now, RecoveryEvent::WorkerRestarted);
            // A host restart brings every local GPU back (including any
            // that failed independently before the death).
            let downed: Vec<usize> = w.fault.failed_gpus.iter().copied().collect();
            for gpu in downed {
                apply_gpu_restore(w, now, gpu);
            }
            // Live work resumes the daemon immediately; otherwise the next
            // admit re-arms it.
            if !w.instances.is_empty() {
                crate::cluster::arm_heartbeat(w, s);
            }
        }
        FaultKind::HeartbeatLoss { group, drops } => {
            // Router-side: arm a drop budget so the next `drops` beats
            // from `group` vanish before the agent's view sees them.
            if let Some(port) = w.cluster.as_mut() {
                if let Some(budget) = port.hb_drop.get_mut(*group) {
                    *budget += drops;
                }
            }
            w.log_recovery(
                now,
                RecoveryEvent::HbLossArmed {
                    group: *group,
                    drops: *drops,
                },
            );
        }
    }
    #[cfg(feature = "audit")]
    audit_recovery(w);
}

/// Bring a failed GPU back: clear device and placement flags, unmask its
/// routes, release the pool quarantine. Idempotent — a GPU that is not
/// down is left untouched.
fn apply_gpu_restore(w: &mut World, now: SimTime, gpu: usize) {
    if w.fault.failed_gpus.remove(&gpu) {
        let per = w.topo.gpus_per_node();
        w.gpus[gpu].failed = false;
        w.gpus[gpu].busy = false;
        w.gpus[gpu].queue.clear();
        w.placer.set_failed(gpu, false);
        w.ledgers[gpu / per].unmask_node(gpu % per);
        w.pools[gpu].release_quarantine();
        w.log_recovery(now, RecoveryEvent::GpuRestored { gpu });
    }
}

/// Whole-GPU failure: quarantine the device, purge its data, restart the
/// work it carried, re-produce what it destroyed.
fn apply_gpu_fail(w: &mut World, s: &mut Scheduler<World>, gpu: usize) {
    let now = s.now();
    if !w.fault.failed_gpus.insert(gpu) {
        return; // already down
    }
    let per = w.topo.gpus_per_node();
    let (node, local) = (gpu / per, gpu % per);
    let gref = GpuRef::new(node, local);
    w.gpus[gpu].failed = true;
    w.placer.set_failed(gpu, true);
    w.ledgers[node].mask_node(local);

    // Work that must restart elsewhere: stages queued on the device plus
    // every unfinished stage placed on it (the ops they own go with them).
    let mut affected: BTreeSet<(u64, usize)> = w.gpus[gpu].queue.iter().copied().collect();
    w.gpus[gpu].queue.clear();
    w.gpus[gpu].busy = false;
    for (&inst_id, inst) in w.instances.iter() {
        for (stage, run) in inst.stages.iter().enumerate() {
            if inst.placements[stage] == Destination::Gpu(gref)
                && !matches!(run.state, StageState::Done | StageState::Skipped)
            {
                affected.insert((inst_id, stage));
            }
        }
    }
    // Ops reading data stored on the dead GPU lose their source mid-flight.
    for (_, op) in w.ops.iter() {
        if let Some((inst_id, stage, data)) = op_owner(&op.kind) {
            let data_here = w
                .store
                .peek(data)
                .is_some_and(|e| e.location == Location::Gpu(gref));
            if data_here {
                affected.insert((inst_id, stage));
            }
        }
    }
    // Transfers merely *routed* through the GPU (both endpoints alive):
    // retry over surviving paths instead of restarting the whole stage.
    recover_route_ops(w, s, node, local, Some(&affected));

    // Data loss: purge everything resident on the device. Producers of
    // still-needed objects re-run (lineage recovery).
    let lost = w.store.purge_at(Location::Gpu(gref));
    let lost_bytes: f64 = lost.iter().map(|e| e.bytes).sum();
    let mut producers: Vec<(u64, usize)> = Vec::new();
    for e in &lost {
        if e.pending_consumers == 0 {
            continue;
        }
        if let Some(inst) = w.instances.get(&e.workflow.0) {
            if let Some(p) = inst.stages.iter().position(|run| run.output == Some(e.id)) {
                producers.push((e.workflow.0, p));
            }
        }
    }
    w.pools[gpu].quarantine();
    w.scalers[gpu].quarantine();
    w.log_recovery(
        now,
        RecoveryEvent::GpuFailed {
            gpu,
            lost_objects: lost.len(),
            lost_bytes,
        },
    );

    let mut visited: BTreeSet<(u64, usize)> = BTreeSet::new();
    for &(inst_id, stage) in &affected {
        reset_stage(w, s, inst_id, stage, &mut visited);
    }
    for &(inst_id, p) in &producers {
        restart_stage(w, s, inst_id, p, &mut visited);
    }
    // One reconciliation pass per touched instance: pending-consumer counts
    // must equal the number of future consumes after the reset wave.
    let touched: BTreeSet<u64> = visited.iter().map(|&(i, _)| i).collect();
    for inst_id in touched {
        fixup_claims(w, s, inst_id);
    }
    exec::schedule_net_wake(w, s);
}

// ---------------------------------------------------------------------------
// Op-level recovery (cancel + bounded retry)
// ---------------------------------------------------------------------------

/// Tear down an in-flight data operation: release its current-leg holds,
/// its queued legs' pre-attached reservations, and any transfers (flows,
/// NVLink path reservations) it was waiting on. Returns what it was doing.
pub(crate) fn cancel_op(w: &mut World, s: &mut Scheduler<World>, op_id: u64) -> Option<OpKind> {
    let now = s.now();
    let mut op = w.ops.remove(&op_id)?;
    w.rec.end(op.span, vec![("cancelled", true.into())]);
    if let Some((node, token)) = op.rate_token.take() {
        w.rates[node].finish(token);
    }
    if let Some((node, res)) = op.ledger_release.take() {
        w.ledgers[node].release(res);
    }
    if let Some((node, bytes)) = op.pinned_release.take() {
        w.pinned[node].release(bytes);
    }
    if let Some(leg) = op.staged.take() {
        // A BeginLeg event for this leg is still in flight; park the leg so
        // that event releases its reservations when it fires — the same
        // instant the boxed-closure core released them at.
        w.orphan_legs.insert(op_id, leg);
    }
    for leg in op.legs.drain(..) {
        exec::release_leg_resources(w, &leg);
    }
    let mut tids: Vec<grouter_transfer::exec::TransferId> = w
        .transfer_waiters
        .iter()
        .filter(|&(_, &waiter)| waiter == op_id)
        .map(|(&tid, _)| tid)
        .collect();
    tids.sort();
    for tid in tids {
        w.transfer_waiters.remove(&tid);
        if let Some((td, flows)) = w.engine.cancel(&mut w.net, now, tid) {
            for fid in &flows {
                w.nv_flow_index.remove(fid);
            }
            for (route, rate) in &td.nv_releases {
                w.ledgers[td.nv_node].bwm_mut().release_path(route, *rate);
            }
        }
    }
    exec::schedule_net_wake(w, s);
    Some(op.kind)
}

/// Cancel `op_id` and schedule a re-issue with exponential backoff; on
/// budget exhaustion the owning instance fails typed. Background traffic is
/// simply dropped (it is best-effort by definition).
fn recover_op(w: &mut World, s: &mut Scheduler<World>, op_id: u64) {
    let now = s.now();
    let Some(kind) = cancel_op(w, s, op_id) else {
        return;
    };
    let Some((inst_id, stage, _)) = op_owner(&kind) else {
        return; // background migration/restore traffic: dropped
    };
    let Some(inst) = w.instances.get(&inst_id) else {
        return;
    };
    let attempt = inst.stages[stage].attempt;
    let n = {
        let c = w.fault.retries.entry((inst_id, stage)).or_insert(0);
        *c += 1;
        *c
    };
    if n > MAX_OP_RETRIES {
        fail_instance(w, s, inst_id);
        return;
    }
    w.log_recovery(
        now,
        RecoveryEvent::OpRetried {
            inst: inst_id,
            stage,
            attempt: n,
        },
    );
    let delay = SimDuration::from_millis(1u64 << (n - 1).min(8));
    s.schedule_in(
        delay,
        Event::ReIssue {
            inst: inst_id,
            stage,
            kind,
            attempt,
        },
    );
}

/// Re-plan a cancelled operation through the data plane over the *current*
/// (degraded) topology. Runs after the backoff delay; a stage reset or
/// instance failure in the meantime makes it a no-op.
pub(crate) fn re_issue(
    w: &mut World,
    s: &mut Scheduler<World>,
    inst_id: u64,
    stage: usize,
    kind: OpKind,
    attempt: u32,
) {
    let now = s.now();
    let Some(inst) = w.instances.get(&inst_id) else {
        return;
    };
    if inst.stages[stage].attempt != attempt {
        return; // the stage was reset; its re-run re-drives the data flow
    }
    let Some((_, _, data)) = op_owner(&kind) else {
        return;
    };
    if w.store.peek(data).is_none() {
        // The object was destroyed by a later failure while this retry sat
        // in backoff: fall back to lineage re-execution.
        let producer = w
            .instances
            .get(&inst_id)
            .and_then(|i| i.stages.iter().position(|run| run.output == Some(data)));
        let mut visited = BTreeSet::new();
        match (&kind, producer) {
            (OpKind::Put { .. }, _) | (_, None) => {
                restart_stage(w, s, inst_id, stage, &mut visited)
            }
            (_, Some(p)) => restart_stage(w, s, inst_id, p, &mut visited),
        }
        fixup_claims(w, s, inst_id);
        return;
    }
    let inst = &w.instances[&inst_id];
    let token = AccessToken {
        function: FunctionId(inst.fn_ids[stage]),
        workflow: inst.workflow_id,
    };
    let slo = exec::instance_slo(inst);
    let dest = match kind {
        OpKind::Get { .. } => inst.placements[stage],
        OpKind::Put { .. } => {
            // The store committed the object's location when the put was
            // planned; re-issuing degenerates to completing from wherever
            // the bytes now live (zero-copy for the same GPU).
            // Peek succeeded above.
            match w.store.peek(data).map(|e| e.location) {
                Some(Location::Gpu(g)) => Destination::Gpu(g),
                Some(Location::Host(n)) => Destination::Host(n),
                None => return,
            }
        }
        OpKind::Egress { .. } => Destination::Host(inst.placements[stage].node_of()),
        OpKind::Background => return,
    };
    match exec::with_plane(w, now, slo, |p, ctx| p.get(ctx, token, data, dest)) {
        Ok(op) => exec::start_op(w, s, op, kind, PassCategory::Recovery),
        Err(_) => fail_instance(w, s, inst_id),
    }
}

/// Retry every op whose NVLink traffic runs through `(node, local)` —
/// in-flight transfers and not-yet-begun legs alike. Ops in `skip` are
/// owned by stages the caller is about to reset wholesale.
fn recover_route_ops(
    w: &mut World,
    s: &mut Scheduler<World>,
    node: usize,
    local: usize,
    skip: Option<&BTreeSet<(u64, usize)>>,
) {
    let mut op_ids: BTreeSet<u64> = BTreeSet::new();
    for tid in w.engine.transfers_using_route(node, local) {
        if let Some(&op_id) = w.transfer_waiters.get(&tid) {
            op_ids.insert(op_id);
        }
    }
    for (&op_id, op) in w.ops.iter() {
        let routed_through = op.legs.iter().any(|leg| {
            leg.nv_node == node
                && leg
                    .plan
                    .flows
                    .iter()
                    .any(|f| f.route.as_ref().is_some_and(|r| r.contains(&local)))
        });
        if routed_through {
            op_ids.insert(op_id);
        }
    }
    for op_id in op_ids {
        let Some(op) = w.ops.get(&op_id) else {
            continue;
        };
        if let Some((inst_id, stage, _)) = op_owner(&op.kind) {
            if skip.is_some_and(|set| set.contains(&(inst_id, stage))) {
                continue; // reset_stage will cancel it
            }
        }
        recover_op(w, s, op_id);
    }
}

// ---------------------------------------------------------------------------
// Stage-level recovery (reset / lineage restart)
// ---------------------------------------------------------------------------

/// Reset a stage to re-run from its inputs: cancel its ops, undo occupancy,
/// re-place off failed GPUs, recompute dependencies (restarting `Done`
/// upstream stages whose outputs no longer exist), and re-enter `Waiting`.
fn reset_stage(
    w: &mut World,
    s: &mut Scheduler<World>,
    inst_id: u64,
    stage: usize,
    visited: &mut BTreeSet<(u64, usize)>,
) {
    let now = s.now();
    if !visited.insert((inst_id, stage)) {
        return;
    }
    let Some(inst) = w.instances.get(&inst_id) else {
        return;
    };
    if matches!(inst.stages[stage].state, StageState::Skipped) {
        return;
    }
    let old_state = inst.stages[stage].state;
    let old_dest = inst.placements[stage];
    let mem = match inst.spec.stages[stage].kind {
        StageKind::Gpu { mem_bytes } => mem_bytes,
        StageKind::Cpu => 0.0,
    };

    // Cancel the stage's in-flight data operations. A cancelled Put's
    // half-stored output is garbage: drain its claims so the plane GCs it.
    let mut op_ids: Vec<u64> = w
        .ops
        .iter()
        .filter(|(_, op)| op_owner(&op.kind).is_some_and(|(i, j, _)| i == inst_id && j == stage))
        .map(|(&id, _)| id)
        .collect();
    // Slab iteration is slot-ordered; cancel in ascending id order (the
    // BTreeMap order the recovery goldens were captured under).
    op_ids.sort_unstable();
    for id in op_ids {
        if let Some(OpKind::Put { data, .. }) = cancel_op(w, s, id) {
            drain_object(w, s, data);
        }
    }

    // Out of every run queue (try_dispatch_gpu also validates lazily, but
    // eager scrubbing keeps queue lengths meaningful).
    for exec_gpu in w.gpus.iter_mut() {
        exec_gpu
            .queue
            .retain(|&(i, j)| !(i == inst_id && j == stage));
    }

    // Undo compute occupancy on a still-healthy GPU. `busy` is held from
    // dispatch (Fetching) through completion, but runtime memory is only
    // charged once the stage is Running. (On a failed GPU the quarantine
    // already zeroed the pool and apply_gpu_fail cleared `busy`.)
    if matches!(old_state, StageState::Running | StageState::Fetching { .. }) {
        if let Destination::Gpu(g) = old_dest {
            let idx = w.gpu_index(g.node, g.gpu);
            if !w.gpus[idx].failed {
                w.gpus[idx].busy = false;
                if matches!(old_state, StageState::Running) {
                    let used = (w.pools[idx].runtime_used() - mem).max(0.0);
                    w.pools[idx].set_runtime_used(used);
                    let background =
                        exec::with_plane(w, now, None, |p, ctx| p.on_memory_change(ctx, g));
                    exec::run_background(w, s, background);
                }
                // Deferred so the dispatch sees post-recovery state only.
                s.schedule_in(SimDuration::ZERO, Event::TryDispatchGpu { gpu: idx });
            }
        }
    }

    // Placement. Load-slot bookkeeping follows the executor's convention:
    // a slot is held from arrival until stage_done releases it.
    let was_done = matches!(old_state, StageState::Done);
    let on_failed =
        matches!(old_dest, Destination::Gpu(g) if w.gpus[w.gpu_index(g.node, g.gpu)].failed);
    let mut dest = old_dest;
    if on_failed {
        if !was_done {
            w.placer.release(&w.topo, old_dest);
        }
        match w.placer.pick_healthy(&w.topo, Some(old_dest.node_of())) {
            Some(healthy) => {
                dest = Destination::Gpu(healthy);
                w.placer.bump(&w.topo, dest);
            }
            None => {
                fail_instance(w, s, inst_id);
                return;
            }
        }
    } else if was_done {
        // stage_done released the slot when the stage completed; the re-run
        // holds it again.
        w.placer.bump(&w.topo, old_dest);
    }

    // Dependencies: a `Done` upstream whose output vanished must itself
    // re-run (lineage); everything else still counts as satisfied.
    let (deps_left, dead_deps) = {
        let inst = &w.instances[&inst_id];
        let mut left = 0u32;
        let mut dead = Vec::new();
        for &d in &inst.spec.stages[stage].deps {
            if matches!(inst.stages[d].state, StageState::Skipped) {
                continue;
            }
            let done_with_data = matches!(inst.stages[d].state, StageState::Done)
                && inst.stages[d]
                    .output
                    .is_some_and(|o| w.store.peek(o).is_some());
            if !done_with_data {
                left += 1;
                if matches!(inst.stages[d].state, StageState::Done) {
                    dead.push(d);
                }
            }
        }
        (left, dead)
    };

    let attempt_now = {
        // Still live: fail_instance above is the only removal and it returns.
        let Some(inst) = w.instances.get_mut(&inst_id) else {
            return;
        };
        inst.placements[stage] = dest;
        inst.stages[stage].attempt += 1;
        inst.stages[stage].output = None;
        inst.stages[stage].rank = None;
        inst.stages[stage].got.clear();
        inst.stages[stage].state = StageState::Waiting { deps_left };
        inst.stages[stage].attempt
    };
    w.log_recovery(
        now,
        RecoveryEvent::StageRestarted {
            inst: inst_id,
            stage,
        },
    );
    for d in dead_deps {
        restart_stage(w, s, inst_id, d, visited);
    }
    if deps_left == 0 {
        // Deferred past the current recovery wave (and its claims fixup) so
        // the fetch sees a consistent store; the dispatch-side guard drops
        // the event if a later reset in the same wave superseded this one.
        s.schedule_in(
            SimDuration::ZERO,
            Event::StageReadyIfWaiting {
                inst: inst_id,
                stage,
                attempt: attempt_now,
            },
        );
    }
}

/// Re-run producer stage `p` because its stored output was destroyed:
/// dependents that still needed that output re-enter `Waiting` too.
fn restart_stage(
    w: &mut World,
    s: &mut Scheduler<World>,
    inst_id: u64,
    p: usize,
    visited: &mut BTreeSet<(u64, usize)>,
) {
    let Some(inst) = w.instances.get(&inst_id) else {
        return;
    };
    // Computed before the reset clears `output`: a dependent that already
    // consumed its copy (`got`) keeps it and must not re-run.
    let old_output = inst.stages[p].output;
    let needy: Vec<usize> = inst
        .spec
        .stages
        .iter()
        .enumerate()
        .filter(|(j, st)| {
            st.deps.contains(&p)
                && match inst.stages[*j].state {
                    StageState::Waiting { .. } | StageState::Queued => true,
                    StageState::Fetching { .. } => old_output
                        .map(|o| !inst.stages[*j].got.contains(&o))
                        .unwrap_or(true),
                    _ => false,
                }
        })
        .map(|(j, _)| j)
        .collect();
    reset_stage(w, s, inst_id, p, visited);
    for j in needy {
        reset_stage(w, s, inst_id, j, visited);
    }
}

/// Consumer count of a *re-run* put. Unlike `Instance::consumers_of`, this
/// excludes dependents that already hold their copy from a previous attempt
/// (a `Fetching` dependent fixed its input set when it was invoked and will
/// never fetch the re-produced object).
pub(crate) fn rerun_consumers(inst: &Instance, stage: usize) -> u32 {
    let mut n = 0;
    for (j, st) in inst.spec.stages.iter().enumerate() {
        if st.deps.contains(&stage)
            && matches!(
                inst.stages[j].state,
                StageState::Waiting { .. } | StageState::Queued
            )
        {
            n += 1;
        }
    }
    if inst.spec.is_terminal(stage)
        && inst.stages[stage].state != StageState::Skipped
        && !inst.stages[stage].egressed
    {
        n += 1;
    }
    n
}

// ---------------------------------------------------------------------------
// Claims reconciliation & typed failure
// ---------------------------------------------------------------------------

/// Release every outstanding claim on `data` through the plane so its
/// storage accounting (pool bytes, scaler live-output counts, migration
/// homes) unwinds and the object is GC'd.
fn drain_object(w: &mut World, s: &mut Scheduler<World>, data: DataId) {
    let now = s.now();
    let Some(pending) = w.store.peek(data).map(|e| e.pending_consumers) else {
        return;
    };
    for _ in 0..pending.max(1) {
        let background = exec::with_plane(w, now, None, |p, ctx| p.on_consumed(ctx, data));
        exec::run_background(w, s, background);
        if w.store.peek(data).is_none() {
            break;
        }
    }
}

/// Restore the invariant that every live object's pending-consumer count
/// equals the number of consumes still ahead of it, after a reset wave
/// changed which stages will (re-)fetch what. Re-creates the workflow input
/// in host memory when roots must re-fetch a fully-consumed one.
fn fixup_claims(w: &mut World, s: &mut Scheduler<World>, inst_id: u64) {
    let now = s.now();
    let Some(inst) = w.instances.get(&inst_id) else {
        return;
    };

    // How many future fetches does `data` have from dependents in the given
    // states? Waiting/Queued stages will fetch on invocation; a Fetching
    // stage re-fetches only what it has not `got`.
    let future_fetches = |deps_on: Option<usize>, data: DataId, inst: &Instance| -> u32 {
        let mut n = 0;
        for (j, st) in inst.spec.stages.iter().enumerate() {
            let is_consumer = match deps_on {
                Some(p) => st.deps.contains(&p),
                None => st.deps.is_empty(),
            };
            if !is_consumer {
                continue;
            }
            match inst.stages[j].state {
                StageState::Waiting { .. } | StageState::Queued => n += 1,
                StageState::Fetching { .. } if !inst.stages[j].got.contains(&data) => n += 1,
                _ => {}
            }
        }
        n
    };

    let input_id = inst.input_data;
    let input_needed = future_fetches(None, input_id, inst);
    let input_bytes = inst.spec.input_bytes;
    let wf = inst.workflow_id;
    let input_node = inst
        .spec
        .stages
        .iter()
        .enumerate()
        .filter(|(j, st)| {
            st.deps.is_empty() && !matches!(inst.stages[*j].state, StageState::Skipped)
        })
        .map(|(j, _)| inst.placements[j].node_of())
        .next()
        .unwrap_or(0);

    let mut outs: Vec<(DataId, u32)> = Vec::new();
    for (p, run) in inst.stages.iter().enumerate() {
        if !matches!(run.state, StageState::Done) {
            continue;
        }
        let Some(o) = run.output else { continue };
        if w.store.peek(o).is_none() {
            continue;
        }
        let mut needed = future_fetches(Some(p), o, inst);
        if inst.spec.is_terminal(p) && !run.egressed {
            needed += 1; // the response egress still consumes one claim
        }
        outs.push((o, needed));
    }

    match w.store.peek(input_id).map(|e| e.pending_consumers) {
        Some(cur) => adjust_claims(w, s, input_id, cur, input_needed),
        None if input_needed > 0 => {
            // The input was fully consumed before a root was reset: the
            // request payload is durable in host memory, re-register it.
            let token = AccessToken {
                function: FunctionId(0),
                workflow: wf,
            };
            let (new_id, _) = w.store.put(
                now,
                token,
                Location::Host(input_node),
                input_bytes,
                input_needed,
            );
            if let Some(inst) = w.instances.get_mut(&inst_id) {
                inst.input_data = new_id;
            }
        }
        None => {}
    }
    for (o, needed) in outs {
        if let Some(cur) = w.store.peek(o).map(|e| e.pending_consumers) {
            adjust_claims(w, s, o, cur, needed);
        }
    }
}

/// Move `data`'s pending-consumer count from `cur` to `needed`: deficits
/// are re-registered, surpluses drained through the plane (its GC hook owns
/// the pool/scaler bookkeeping).
fn adjust_claims(w: &mut World, s: &mut Scheduler<World>, data: DataId, cur: u32, needed: u32) {
    let now = s.now();
    if needed > cur {
        w.store.add_pending(data, needed - cur);
    } else {
        for _ in 0..(cur - needed) {
            let background = exec::with_plane(w, now, None, |p, ctx| p.on_consumed(ctx, data));
            exec::run_background(w, s, background);
            if w.store.peek(data).is_none() {
                break;
            }
        }
    }
}

/// Terminate an instance with a typed failure: cancel its ops, release its
/// queue slots, occupancy, placement load and data claims, and count it in
/// `Metrics::failed`. The arrivals identity `completed + failed == arrivals`
/// is the chaos suite's termination check.
pub(crate) fn fail_instance(w: &mut World, s: &mut Scheduler<World>, inst_id: u64) {
    let now = s.now();
    if !w.instances.contains_key(&inst_id) {
        return;
    }
    let mut op_ids: Vec<u64> = w
        .ops
        .iter()
        .filter(|(_, op)| op_owner(&op.kind).is_some_and(|(i, _, _)| i == inst_id))
        .map(|(&id, _)| id)
        .collect();
    op_ids.sort_unstable();
    let mut orphan_puts: Vec<DataId> = Vec::new();
    for id in op_ids {
        if let Some(OpKind::Put { data, .. }) = cancel_op(w, s, id) {
            orphan_puts.push(data);
        }
    }
    for exec_gpu in w.gpus.iter_mut() {
        exec_gpu.queue.retain(|&(i, _)| i != inst_id);
    }
    let stage_info: Vec<(StageState, Destination, f64)> = {
        let inst = &w.instances[&inst_id];
        (0..inst.spec.stages.len())
            .map(|j| {
                let mem = match inst.spec.stages[j].kind {
                    StageKind::Gpu { mem_bytes } => mem_bytes,
                    StageKind::Cpu => 0.0,
                };
                (inst.stages[j].state, inst.placements[j], mem)
            })
            .collect()
    };
    for &(state, dest, mem) in &stage_info {
        if matches!(state, StageState::Running | StageState::Fetching { .. }) {
            if let Destination::Gpu(g) = dest {
                let idx = w.gpu_index(g.node, g.gpu);
                if !w.gpus[idx].failed {
                    w.gpus[idx].busy = false;
                    if matches!(state, StageState::Running) {
                        let used = (w.pools[idx].runtime_used() - mem).max(0.0);
                        w.pools[idx].set_runtime_used(used);
                        let background =
                            exec::with_plane(w, now, None, |p, ctx| p.on_memory_change(ctx, g));
                        exec::run_background(w, s, background);
                    }
                    s.schedule_in(SimDuration::ZERO, Event::TryDispatchGpu { gpu: idx });
                }
            }
        }
        // stage_done already released completed stages' slots.
        if !matches!(state, StageState::Done | StageState::Skipped) {
            w.placer.release(&w.topo, dest);
        }
    }
    let mut doomed: Vec<DataId> = vec![w.instances[&inst_id].input_data];
    doomed.extend(
        w.instances[&inst_id]
            .stages
            .iter()
            .filter_map(|run| run.output),
    );
    doomed.extend(orphan_puts);
    for data in doomed {
        drain_object(w, s, data);
    }
    w.instances.remove(&inst_id);
    crate::cluster::on_instance_failed(w, inst_id);
    w.fault.retries.retain(|&(i, _), _| i != inst_id);
    w.metrics.failed += 1;
    w.log_recovery(now, RecoveryEvent::InstanceFailed { inst: inst_id });
}

// ---------------------------------------------------------------------------
// Audit
// ---------------------------------------------------------------------------

/// "recovery.no_orphans": after a fault is absorbed, no waiter references a
/// cancelled transfer, no transfer waits for a dead op, and no request op
/// belongs to a dead instance. Aggregated so the checker fires on every
/// fault event, even when the world is idle.
#[cfg(feature = "audit")]
fn audit_recovery(w: &World) {
    let stale_waiters = w
        .transfer_waiters
        .keys()
        .filter(|tid| !w.engine.is_active(**tid))
        .count();
    let dead_waited_ops = w
        .transfer_waiters
        .values()
        .filter(|op_id| !w.ops.contains_key(op_id))
        .count();
    let orphan_ops = w
        .ops
        .values()
        .filter(|op| op_owner(&op.kind).is_some_and(|(i, _, _)| !w.instances.contains_key(&i)))
        .count();
    grouter_audit::check(
        "recovery.no_orphans",
        stale_waiters == 0 && dead_waited_ops == 0 && orphan_ops == 0,
        || {
            format!(
                "{stale_waiters} waiter(s) on cancelled transfers, \
                 {dead_waited_ops} transfer(s) waiting for dead ops, \
                 {orphan_ops} op(s) owned by dead instances"
            )
        },
    );
}
