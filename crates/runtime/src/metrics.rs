//! Latency accounting.
//!
//! The paper's headline analysis (Fig. 3) splits end-to-end latency into
//! computation, gFn–gFn data passing, and gFn–host data passing; the
//! elastic-storage experiments (Fig. 18) additionally need raw data-passing
//! latencies. [`Metrics`] collects all of it per workflow instance.

use std::collections::BTreeMap;

use grouter_sim::stats::Summary;
use grouter_sim::time::{SimDuration, SimTime};

/// Which kind of data passing an operation was (paper Fig. 3's breakdown).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PassCategory {
    /// gFn–gFn (intra- or cross-node GPU to GPU).
    GpuGpu,
    /// gFn–host in either direction (PCIe staging, response egress, input
    /// ingest into a GPU).
    GpuHost,
    /// cFn–cFn via host shared memory (negligible in the paper).
    HostHost,
    /// Data passing re-issued by failure recovery (retried/replanned
    /// operations); kept out of the paper-figure categories so the
    /// failure-free breakdowns are unchanged.
    Recovery,
}

/// Finished-instance record. The workflow name is an interned id into the
/// owning [`Metrics`]' name table ([`Metrics::intern`] /
/// [`Metrics::workflow_name`]) so recording an instance never clones a
/// `String` on the hot path.
#[derive(Clone, Debug)]
pub struct InstanceRecord {
    pub workflow: u32,
    pub arrived: SimTime,
    pub completed: SimTime,
    /// Total busy compute time across stages (not the critical path).
    pub compute: SimDuration,
    /// Data-passing wall time by category, summed over operations.
    pub passing: BTreeMap<PassCategory, SimDuration>,
    /// Individual data-passing operation durations (for Fig. 18c averages).
    pub op_durations: Vec<(PassCategory, SimDuration)>,
}

impl InstanceRecord {
    pub fn latency(&self) -> SimDuration {
        self.completed - self.arrived
    }

    pub fn passing_total(&self) -> SimDuration {
        self.passing.values().fold(SimDuration::ZERO, |a, &b| a + b)
    }

    pub fn passing_of(&self, cat: PassCategory) -> SimDuration {
        self.passing.get(&cat).copied().unwrap_or(SimDuration::ZERO)
    }
}

/// Aggregate metrics over a run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    records: Vec<InstanceRecord>,
    /// Requests that arrived (some may still be in flight at harvest time).
    pub arrivals: u64,
    /// Requests terminated with a typed failure by the recovery engine
    /// (unplaceable after GPU loss, or retry budget exhausted). Every
    /// arrival ends as exactly one completion or one failure.
    pub failed: u64,
    /// Interned workflow names, indexed by the ids in
    /// [`InstanceRecord::workflow`].
    names: Vec<String>,
    name_ids: grouter_sim::FxHashMap<String, u32>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Self::default()
    }

    /// Intern a workflow name, returning its dense id. Idempotent: the same
    /// name always maps to the same id within one `Metrics`.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.name_ids.insert(name.to_string(), id);
        id
    }

    /// The name behind an interned workflow id.
    pub fn workflow_name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// The interned id of a workflow name, if any instance of it was
    /// submitted.
    pub fn name_id(&self, name: &str) -> Option<u32> {
        self.name_ids.get(name).copied()
    }

    pub fn record(&mut self, rec: InstanceRecord) {
        self.records.push(rec);
    }

    pub fn completed(&self) -> usize {
        self.records.len()
    }

    pub fn records(&self) -> &[InstanceRecord] {
        &self.records
    }

    /// End-to-end latency distribution in milliseconds (optionally filtered
    /// by workflow name).
    pub fn latency_ms(&self, workflow: Option<&str>) -> Summary {
        let mut s = Summary::new();
        for r in self.filtered(workflow) {
            s.record(r.latency().as_millis_f64());
        }
        s
    }

    /// Distribution of per-operation data-passing latencies (ms) in a
    /// category.
    pub fn op_latency_ms(&self, cat: PassCategory, workflow: Option<&str>) -> Summary {
        let mut s = Summary::new();
        for r in self.filtered(workflow) {
            for &(c, d) in &r.op_durations {
                if c == cat {
                    s.record(d.as_millis_f64());
                }
            }
        }
        s
    }

    /// Distribution of per-instance total data-passing latencies (ms).
    pub fn passing_ms(&self, workflow: Option<&str>) -> Summary {
        let mut s = Summary::new();
        for r in self.filtered(workflow) {
            s.record(r.passing_total().as_millis_f64());
        }
        s
    }

    /// Mean latency breakdown `(compute, gfn_gfn, gfn_host, cfn_cfn)` in ms
    /// — the stacked bars of Fig. 3.
    pub fn breakdown_ms(&self, workflow: Option<&str>) -> (f64, f64, f64, f64) {
        let mut n = 0u64;
        let (mut comp, mut gg, mut gh, mut hh) = (0.0, 0.0, 0.0, 0.0);
        for r in self.filtered(workflow) {
            n += 1;
            comp += r.compute.as_millis_f64();
            gg += r.passing_of(PassCategory::GpuGpu).as_millis_f64();
            gh += r.passing_of(PassCategory::GpuHost).as_millis_f64();
            hh += r.passing_of(PassCategory::HostHost).as_millis_f64();
        }
        if n == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let n = n as f64;
        (comp / n, gg / n, gh / n, hh / n)
    }

    /// Completed requests per second over the span of the run.
    pub fn throughput(&self, until: SimTime) -> f64 {
        if until == SimTime::ZERO {
            return 0.0;
        }
        self.records.len() as f64 / until.as_secs_f64()
    }

    /// Fraction of completed instances whose latency met `slo`.
    pub fn slo_compliance(&self, workflow: Option<&str>, slo: SimDuration) -> f64 {
        let mut total = 0u64;
        let mut ok = 0u64;
        for r in self.filtered(workflow) {
            total += 1;
            if r.latency() <= slo {
                ok += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            ok as f64 / total as f64
        }
    }

    /// Per-request records as CSV (for external plotting):
    /// `workflow,arrived_s,latency_ms,compute_ms,gfn_gfn_ms,gfn_host_ms,cfn_cfn_ms`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "workflow,arrived_s,latency_ms,compute_ms,gfn_gfn_ms,gfn_host_ms,cfn_cfn_ms\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                self.workflow_name(r.workflow),
                r.arrived.as_secs_f64(),
                r.latency().as_millis_f64(),
                r.compute.as_millis_f64(),
                r.passing_of(PassCategory::GpuGpu).as_millis_f64(),
                r.passing_of(PassCategory::GpuHost).as_millis_f64(),
                r.passing_of(PassCategory::HostHost).as_millis_f64(),
            ));
        }
        out
    }

    fn filtered<'a>(
        &'a self,
        workflow: Option<&'a str>,
    ) -> impl Iterator<Item = &'a InstanceRecord> {
        // A name no instance was ever submitted under matches nothing.
        let want = workflow.map(|w| self.name_id(w));
        self.records.iter().filter(move |r| match want {
            None => true,
            Some(Some(id)) => r.workflow == id,
            Some(None) => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(m: &mut Metrics, name: &str, arrive_ms: u64, done_ms: u64, gg_ms: u64, gh_ms: u64) {
        let workflow = m.intern(name);
        let mut passing = BTreeMap::new();
        passing.insert(PassCategory::GpuGpu, SimDuration::from_millis(gg_ms));
        passing.insert(PassCategory::GpuHost, SimDuration::from_millis(gh_ms));
        let record = InstanceRecord {
            workflow,
            arrived: SimTime(arrive_ms * 1_000_000),
            completed: SimTime(done_ms * 1_000_000),
            compute: SimDuration::from_millis(done_ms - arrive_ms - gg_ms - gh_ms),
            passing,
            op_durations: vec![
                (PassCategory::GpuGpu, SimDuration::from_millis(gg_ms)),
                (PassCategory::GpuHost, SimDuration::from_millis(gh_ms)),
            ],
        };
        m.record(InstanceRecord { workflow, ..record });
    }

    #[test]
    fn latency_and_breakdown() {
        let mut m = Metrics::new();
        rec(&mut m, "t", 0, 100, 60, 30);
        rec(&mut m, "t", 0, 200, 120, 60);
        let lat = m.latency_ms(Some("t"));
        assert_eq!(lat.len(), 2);
        assert_eq!(lat.max(), 200.0);
        let (comp, gg, gh, hh) = m.breakdown_ms(Some("t"));
        assert_eq!(comp, 15.0);
        assert_eq!(gg, 90.0);
        assert_eq!(gh, 45.0);
        assert_eq!(hh, 0.0);
        // Data passing dominates, as in Fig. 3.
        assert!((gg + gh) / (comp + gg + gh) >= 0.9);
    }

    #[test]
    fn filters_by_workflow() {
        let mut m = Metrics::new();
        rec(&mut m, "a", 0, 100, 10, 10);
        rec(&mut m, "b", 0, 300, 10, 10);
        assert_eq!(m.latency_ms(Some("a")).len(), 1);
        assert_eq!(m.latency_ms(None).len(), 2);
        assert_eq!(m.breakdown_ms(Some("zzz")), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn slo_compliance_counts_fractions() {
        let mut m = Metrics::new();
        rec(&mut m, "a", 0, 100, 10, 10);
        rec(&mut m, "a", 0, 300, 10, 10);
        assert_eq!(
            m.slo_compliance(Some("a"), SimDuration::from_millis(150)),
            0.5
        );
        assert_eq!(
            m.slo_compliance(Some("none"), SimDuration::from_millis(1)),
            0.0
        );
    }

    #[test]
    fn throughput_is_completions_over_time() {
        let mut m = Metrics::new();
        rec(&mut m, "a", 0, 100, 10, 10);
        rec(&mut m, "a", 0, 100, 10, 10);
        assert_eq!(m.throughput(SimTime(2_000_000_000)), 1.0);
        assert_eq!(m.throughput(SimTime::ZERO), 0.0);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut m = Metrics::new();
        rec(&mut m, "a", 0, 100, 40, 20);
        let csv = m.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("workflow,arrived_s"));
        assert!(lines[1].starts_with("a,0,100,"));
    }

    #[test]
    fn op_latency_collects_per_category() {
        let mut m = Metrics::new();
        rec(&mut m, "a", 0, 100, 40, 20);
        let gg = m.op_latency_ms(PassCategory::GpuGpu, None);
        assert_eq!(gg.len(), 1);
        assert_eq!(gg.max(), 40.0);
        let hh = m.op_latency_ms(PassCategory::HostHost, None);
        assert!(hh.is_empty());
    }
}
