//! SLO-aware transfer rate control (paper §4.3.2, Fig. 10).
//!
//! For PCIe and NIC transfers — where bandwidth is the bottleneck — GROUTER
//! guarantees each function the minimum rate that still meets its latency
//! SLO:
//!
//! ```text
//! Rate_least = data_size / (L_slo − L_infer)
//! ```
//!
//! and hands the *idle* bandwidth (`Rate_idle = BW_all − Σ Rate_least`) to
//! the function with the tightest SLO, letting latency-critical transfers
//! finish first without starving anyone. In the simulator the guarantee maps
//! to a [`grouter_sim::FlowOptions::floor`] and the tightest-SLO preference
//! to a large [`grouter_sim::FlowOptions::weight`].

use std::collections::BTreeMap;

use grouter_sim::time::{SimDuration, SimTime};
use grouter_sim::FlowOptions;

/// A function's latency budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// End-to-end latency objective (e.g. 1.5× solo execution time).
    pub slo: SimDuration,
    /// Predicted inference computation latency (offline profile).
    pub infer: SimDuration,
}

impl SloSpec {
    /// Time left for data movement: `L_slo − L_infer` (zero-clamped).
    pub fn transfer_budget(&self) -> SimDuration {
        if self.slo > self.infer {
            self.slo - self.infer
        } else {
            SimDuration::ZERO
        }
    }
}

/// Typed outcome of the `Rate_least` computation: either a rate that still
/// meets the SLO, or the typed admission that the deadline is already blown
/// and the transfer runs best-effort at the domain's max rate. The naive
/// formula `size / (L_slo − L_infer)` produces a negative (or, at
/// `L_slo == L_infer`, infinite) rate in that regime — the clamp must be a
/// *visible* outcome so callers can classify the transfer instead of
/// silently booking a nonsense floor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateLeast {
    /// `L_slo > L_infer`: this rate finishes the transfer inside the budget.
    Guaranteed(f64),
    /// `L_slo ≤ L_infer` (deadline already blown by compute alone): run at
    /// the carried best-effort max rate, typically the link capacity.
    BestEffort(f64),
}

impl RateLeast {
    /// The rate to book, whichever regime applies.
    pub fn rate(self) -> f64 {
        match self {
            RateLeast::Guaranteed(r) | RateLeast::BestEffort(r) => r,
        }
    }

    /// Whether the SLO can still be met by this transfer.
    pub fn is_guaranteed(self) -> bool {
        matches!(self, RateLeast::Guaranteed(_))
    }
}

/// `Rate_least` with a typed regime classification. `max_rate` is the
/// best-effort ceiling used when the budget is non-positive (or the division
/// degenerates to a non-finite rate).
pub fn rate_least_typed(bytes: f64, spec: SloSpec, max_rate: f64) -> RateLeast {
    let budget = spec.transfer_budget().as_secs_f64();
    if budget <= 0.0 {
        return RateLeast::BestEffort(max_rate);
    }
    let rate = bytes / budget;
    if !rate.is_finite() {
        return RateLeast::BestEffort(max_rate);
    }
    RateLeast::Guaranteed(rate)
}

/// `Rate_least` in bytes/s. A non-positive budget means the SLO is already
/// blown; the controller then asks for the full `fallback_rate` (the link
/// capacity) — the best it can still do. See [`rate_least_typed`] for the
/// classified variant.
pub fn rate_least(bytes: f64, spec: SloSpec, fallback_rate: f64) -> f64 {
    rate_least_typed(bytes, spec, fallback_rate).rate()
}

#[derive(Clone, Debug)]
struct Registered {
    bytes: f64,
    spec: SloSpec,
    deadline: SimTime,
}

/// Tracks the SLO transfers sharing one bandwidth domain (a node's PCIe
/// complex or NIC set) and derives per-flow floors and weights.
#[derive(Clone, Debug, Default)]
pub struct RateController {
    transfers: BTreeMap<u64, Registered>,
    next_id: u64,
}

impl RateController {
    pub fn new() -> RateController {
        Self::default()
    }

    /// Register a transfer that must finish inside `spec`'s budget.
    /// Returns a token for [`RateController::finish`].
    pub fn register(&mut self, now: SimTime, bytes: f64, spec: SloSpec) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.transfers.insert(
            id,
            Registered {
                bytes,
                spec,
                deadline: now + spec.slo,
            },
        );
        id
    }

    /// Deregister a finished/cancelled transfer.
    pub fn finish(&mut self, id: u64) {
        self.transfers.remove(&id);
    }

    /// Number of live SLO transfers.
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// `Σ Rate_least` over live transfers (for `Rate_idle` accounting).
    pub fn total_floor(&self, domain_bw: f64) -> f64 {
        self.transfers
            .values()
            .map(|r| rate_least(r.bytes, r.spec, domain_bw))
            .sum()
    }

    /// Idle bandwidth after all guarantees: `BW_all − Σ Rate_least`,
    /// zero-clamped.
    pub fn rate_idle(&self, domain_bw: f64) -> f64 {
        (domain_bw - self.total_floor(domain_bw)).max(0.0)
    }

    /// Whether `id` currently holds the tightest (earliest) deadline.
    /// Ties break toward the earlier registration for determinism.
    pub fn is_tightest(&self, id: u64) -> bool {
        let Some(me) = self.transfers.get(&id) else {
            return false;
        };
        self.transfers
            .iter()
            .all(|(&other, r)| other == id || (r.deadline, other) > (me.deadline, id))
    }

    /// Flow options for one path of transfer `id` carrying `path_bytes` of
    /// the total: the floor is the byte-proportional share of `Rate_least`;
    /// the tightest-SLO transfer gets a large weight so max-min fairness
    /// hands it the idle bandwidth first.
    pub fn flow_options(&self, id: u64, path_bytes: f64, domain_bw: f64) -> FlowOptions {
        let Some(reg) = self.transfers.get(&id) else {
            return FlowOptions::default();
        };
        let least = rate_least(reg.bytes, reg.spec, domain_bw);
        let share = if reg.bytes > 0.0 {
            path_bytes / reg.bytes
        } else {
            0.0
        };
        FlowOptions {
            floor: least * share,
            cap: f64::INFINITY,
            weight: if self.is_tightest(id) { 64.0 } else { 1.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(slo_ms: u64, infer_ms: u64) -> SloSpec {
        SloSpec {
            slo: SimDuration::from_millis(slo_ms),
            infer: SimDuration::from_millis(infer_ms),
        }
    }

    #[test]
    fn rate_least_matches_formula() {
        // 100 MB in (150 − 50) ms → 1 GB/s.
        let r = rate_least(100e6, spec(150, 50), 12e9);
        assert!((r - 1e9).abs() < 1.0);
    }

    #[test]
    fn blown_budget_falls_back_to_link_rate() {
        let r = rate_least(100e6, spec(50, 50), 12e9);
        assert_eq!(r, 12e9);
        let r = rate_least(100e6, spec(40, 50), 12e9);
        assert_eq!(r, 12e9);
    }

    #[test]
    fn blown_budget_is_a_typed_best_effort_clamp() {
        // L_slo == L_infer: the naive formula divides by zero.
        let r = rate_least_typed(100e6, spec(50, 50), 12e9);
        assert_eq!(r, RateLeast::BestEffort(12e9));
        assert!(!r.is_guaranteed());
        // L_slo < L_infer: the naive formula goes negative.
        let r = rate_least_typed(100e6, spec(40, 50), 12e9);
        assert_eq!(r, RateLeast::BestEffort(12e9));
        // Healthy budget stays a guarantee with the formula's exact value.
        let r = rate_least_typed(100e6, spec(150, 50), 12e9);
        assert_eq!(r, RateLeast::Guaranteed(1e9));
        assert!(r.is_guaranteed());
    }

    #[test]
    fn rate_least_is_never_negative_or_non_finite() {
        for (slo, infer) in [(50, 50), (40, 50), (1, 1000), (150, 50)] {
            for bytes in [0.0, 1.0, 100e6, 1e12, f64::INFINITY] {
                let r = rate_least(bytes, spec(slo, infer), 12e9);
                assert!(
                    r.is_finite() && r >= 0.0,
                    "rate_least({bytes}, slo={slo}, infer={infer}) = {r}"
                );
            }
        }
    }

    #[test]
    fn idle_rate_is_capacity_minus_guarantees() {
        let mut rc = RateController::new();
        rc.register(SimTime::ZERO, 100e6, spec(150, 50)); // 1 GB/s
        rc.register(SimTime::ZERO, 400e6, spec(250, 50)); // 2 GB/s
        assert!((rc.total_floor(12e9) - 3e9).abs() < 1.0);
        assert!((rc.rate_idle(12e9) - 9e9).abs() < 1.0);
    }

    #[test]
    fn idle_rate_clamps_at_zero_when_oversubscribed() {
        let mut rc = RateController::new();
        for _ in 0..20 {
            rc.register(SimTime::ZERO, 1e9, spec(150, 50)); // 10 GB/s each
        }
        assert_eq!(rc.rate_idle(12e9), 0.0);
    }

    #[test]
    fn tightest_slo_gets_the_weight() {
        let mut rc = RateController::new();
        let loose = rc.register(SimTime::ZERO, 100e6, spec(500, 50));
        let tight = rc.register(SimTime::ZERO, 100e6, spec(100, 50));
        assert!(rc.is_tightest(tight));
        assert!(!rc.is_tightest(loose));
        let opts_tight = rc.flow_options(tight, 100e6, 12e9);
        let opts_loose = rc.flow_options(loose, 100e6, 12e9);
        assert!(opts_tight.weight > opts_loose.weight);
    }

    #[test]
    fn floors_split_proportionally_across_paths() {
        let mut rc = RateController::new();
        let id = rc.register(SimTime::ZERO, 100e6, spec(150, 50)); // 1 GB/s total
        let a = rc.flow_options(id, 75e6, 12e9);
        let b = rc.flow_options(id, 25e6, 12e9);
        assert!((a.floor - 0.75e9).abs() < 1.0);
        assert!((b.floor - 0.25e9).abs() < 1.0);
    }

    #[test]
    fn finish_releases_guarantee() {
        let mut rc = RateController::new();
        let id = rc.register(SimTime::ZERO, 100e6, spec(150, 50));
        assert_eq!(rc.len(), 1);
        rc.finish(id);
        assert!(rc.is_empty());
        assert_eq!(rc.rate_idle(12e9), 12e9);
        // Options for a finished transfer degrade to best-effort defaults.
        let opts = rc.flow_options(id, 1e6, 12e9);
        assert_eq!(opts.floor, 0.0);
        assert_eq!(opts.weight, 1.0);
    }

    #[test]
    fn tightest_tie_breaks_by_registration_order() {
        let mut rc = RateController::new();
        let first = rc.register(SimTime::ZERO, 1e6, spec(100, 10));
        let second = rc.register(SimTime::ZERO, 1e6, spec(100, 10));
        assert!(rc.is_tightest(first));
        assert!(!rc.is_tightest(second));
    }
}
