//! # grouter-transfer
//!
//! GROUTER's *efficient parallel data transfers* (paper §4.3): the machinery
//! that turns "move N bytes from A to B" into a set of concurrent flows over
//! NVLink, PCIe and NIC links.
//!
//! * [`chunk`] — 2 MB chunking, 5-chunk batches, and capacity-proportional
//!   chunk sizing across heterogeneous paths (§4.3.1, §4.3.3).
//! * [`rate`] — SLO-aware transfer rate control: `Rate_least =
//!   size / (L_slo − L_infer)`, idle-bandwidth assignment to the tightest
//!   SLO (§4.3.2).
//! * [`pipeline`] — the batched chunk-admission discipline on one link:
//!   the fairness-vs-overhead trade-off behind the 5-chunk batch default.
//! * [`plan`] — transfer planning for every data-passing pattern: parallel
//!   PCIe staging via route GPUs, parallel NIC fan-out/fan-in, parallel
//!   NVLink paths via Algorithm 1, plus the degraded single-path variants
//!   the baselines use.
//! * [`exec`] — the transfer engine: starts a plan's flows on the
//!   [`grouter_sim::FlowNet`], tracks completions, and releases NVLink
//!   bandwidth reservations.

pub mod chunk;
pub mod exec;
pub mod pipeline;
pub mod plan;
pub mod rate;

pub use chunk::{chunk_count, proportional_split, ChunkPlan};
pub use exec::{TransferDone, TransferEngine, TransferId};
pub use pipeline::{BatchPipeline, Completion, Offered};
pub use plan::{PlanConfig, PlannedFlow, TransferPlan};
pub use rate::{rate_least, rate_least_typed, RateController, RateLeast, SloSpec};
