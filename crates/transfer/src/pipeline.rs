//! Batched chunk admission on a shared link (paper §4.3.2, Fig. 10).
//!
//! Once a DMA chunk transfer is launched it cannot be interrupted, so the
//! admission granularity determines fairness: launching a whole transfer at
//! once blocks newly arrived functions until it drains ("initiated data
//! chunk transfers cannot be interrupted"), while launching chunk-by-chunk
//! pays connection/launch overhead per chunk. GROUTER groups chunks into
//! **batches** (default 5) — new transfers inject their batches at the next
//! boundary, and the per-batch overhead is amortised over five chunks.
//!
//! [`BatchPipeline`] is an exact, self-contained model of one link under
//! this discipline (round-robin among active transfers, one batch in flight
//! at a time). The flow-level network model elsewhere in the simulator is
//! the *idealised* (continuously fair) limit of this mechanism; this module
//! quantifies how close a given batch size gets to that limit and what it
//! costs — the trade-off behind the paper's default, swept in
//! `grouter-bench --bin sweeps`.

use grouter_sim::time::{SimDuration, SimTime};

/// One link under batched round-robin admission.
///
/// # Examples
///
/// ```
/// use grouter_sim::SimTime;
/// use grouter_transfer::pipeline::{BatchPipeline, Offered};
///
/// let pipe = BatchPipeline::with_defaults(12e9);
/// let offered = [
///     Offered { arrival: SimTime::ZERO, bytes: 64e6 },
///     Offered { arrival: SimTime(1_000_000), bytes: 2e6 },
/// ];
/// let done = pipe.simulate(&offered);
/// assert_eq!(done.len(), 2);
/// // The small late transfer slots in at a batch boundary and finishes
/// // long before the large one.
/// assert_eq!(done[0].id, 1);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BatchPipeline {
    /// Link bandwidth in bytes/second.
    pub link_bw: f64,
    /// Chunk size in bytes (paper default 2 MB).
    pub chunk_bytes: f64,
    /// Chunks per batch (paper default 5).
    pub chunks_per_batch: usize,
    /// Fixed overhead to launch one batch (connection setup / DMA launch).
    pub batch_overhead: SimDuration,
}

/// A transfer offered to the pipeline.
#[derive(Clone, Copy, Debug)]
pub struct Offered {
    pub arrival: SimTime,
    pub bytes: f64,
}

/// Completion record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Completion {
    /// Index into the offered slice.
    pub id: usize,
    pub finished: SimTime,
}

impl BatchPipeline {
    /// Paper defaults on a link of `link_bw` bytes/s.
    pub fn with_defaults(link_bw: f64) -> BatchPipeline {
        BatchPipeline {
            link_bw,
            chunk_bytes: grouter_sim::params::CHUNK_SIZE,
            chunks_per_batch: grouter_sim::params::CHUNKS_PER_BATCH,
            batch_overhead: grouter_sim::params::NIC_CONN_SETUP,
        }
    }

    /// Time to move one batch of `chunks` chunks (the last batch may be
    /// short).
    fn batch_time(&self, chunks: usize, last_partial: f64) -> SimDuration {
        let bytes = (chunks.saturating_sub(1)) as f64 * self.chunk_bytes + last_partial;
        self.batch_overhead + SimDuration::from_secs_f64(bytes / self.link_bw)
    }

    /// Simulate the offered transfers to completion. Transfers must be
    /// sorted by arrival. Returns completions in finish order.
    ///
    /// Discipline: the link serves one batch at a time; among transfers
    /// that have arrived and still have chunks, admission is round-robin in
    /// arrival order ("fair bandwidth preemption").
    pub fn simulate(&self, offered: &[Offered]) -> Vec<Completion> {
        assert!(self.link_bw > 0.0 && self.chunk_bytes > 0.0);
        assert!(self.chunks_per_batch > 0);
        for pair in offered.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival, "sort by arrival");
        }
        let mut remaining: Vec<f64> = offered.iter().map(|o| o.bytes.max(0.0)).collect();
        let mut done: Vec<Completion> = Vec::new();
        // Zero-byte transfers complete on arrival.
        for (i, o) in offered.iter().enumerate() {
            if remaining[i] <= 0.0 {
                done.push(Completion {
                    id: i,
                    finished: o.arrival,
                });
            }
        }
        let mut now = match offered.first() {
            Some(o) => o.arrival,
            None => return done,
        };
        let mut rr = 0usize; // round-robin cursor
        loop {
            // Active transfers: arrived, bytes left.
            let active: Vec<usize> = (0..offered.len())
                .filter(|&i| offered[i].arrival <= now && remaining[i] > 0.0)
                .collect();
            if active.is_empty() {
                // Jump to the next arrival, if any.
                match (0..offered.len())
                    .filter(|&i| remaining[i] > 0.0)
                    .map(|i| offered[i].arrival)
                    .min()
                {
                    Some(next) => {
                        now = next;
                        continue;
                    }
                    None => break,
                }
            }
            // Pick the next active transfer at or after the cursor.
            let pick = *active.iter().find(|&&i| i >= rr).unwrap_or(&active[0]);
            rr = pick + 1;
            // Serve one batch of it.
            let full_chunks = (remaining[pick] / self.chunk_bytes).ceil() as usize;
            let chunks = full_chunks.min(self.chunks_per_batch);
            let last_bytes = remaining[pick] - (chunks as f64 - 1.0) * self.chunk_bytes;
            let last_partial = if chunks == full_chunks {
                last_bytes.min(self.chunk_bytes).max(0.0)
            } else {
                self.chunk_bytes
            };
            let dt = self.batch_time(chunks, last_partial);
            now += dt;
            remaining[pick] = (remaining[pick] - chunks as f64 * self.chunk_bytes).max(0.0);
            if remaining[pick] <= 0.0 {
                done.push(Completion {
                    id: pick,
                    finished: now,
                });
            }
        }
        done
    }

    /// Latency (from its arrival) of transfer `id` under this discipline,
    /// or `None` if `id` is not among the offered transfers.
    pub fn latency_of(&self, offered: &[Offered], id: usize) -> Option<SimDuration> {
        let done = self.simulate(offered);
        let c = done.iter().find(|c| c.id == id)?;
        Some(c.finished - offered.get(id)?.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1024.0 * 1024.0;

    fn pipe(chunks_per_batch: usize) -> BatchPipeline {
        BatchPipeline {
            link_bw: 12e9,
            chunk_bytes: 2.0 * MB,
            chunks_per_batch,
            batch_overhead: SimDuration::from_micros(30),
        }
    }

    #[test]
    fn lone_transfer_time_matches_bandwidth_plus_overhead() {
        let p = pipe(5);
        let offered = [Offered {
            arrival: SimTime::ZERO,
            bytes: 100.0 * MB, // 50 chunks = 10 batches
        }];
        let lat = p.latency_of(&offered, 0).unwrap();
        let ideal = 100.0 * MB / 12e9;
        let overhead = 10.0 * 30e-6;
        assert!(
            (lat.as_secs_f64() - (ideal + overhead)).abs() < 1e-6,
            "{lat}"
        );
    }

    #[test]
    fn small_batches_let_late_arrivals_preempt() {
        // A huge transfer starts; a tiny one arrives shortly after. With
        // batch=5 it slots in at the next boundary; with one giant batch it
        // waits for the whole elephant.
        let offered = [
            Offered {
                arrival: SimTime::ZERO,
                bytes: 400.0 * MB,
            },
            Offered {
                arrival: SimTime(1_000_000), // t = 1 ms
                bytes: 2.0 * MB,
            },
        ];
        let batched = pipe(5).latency_of(&offered, 1).unwrap();
        let monolithic = pipe(100_000).latency_of(&offered, 1).unwrap();
        assert!(
            batched.as_millis_f64() < 0.15 * monolithic.as_millis_f64(),
            "batched {batched} vs monolithic {monolithic}"
        );
    }

    #[test]
    fn tiny_batches_pay_overhead() {
        let offered = [Offered {
            arrival: SimTime::ZERO,
            bytes: 200.0 * MB, // 100 chunks
        }];
        let per_chunk = pipe(1).latency_of(&offered, 0).unwrap();
        let per_five = pipe(5).latency_of(&offered, 0).unwrap();
        // batch=1 launches 100 connections; batch=5 launches 20.
        let diff = per_chunk.as_secs_f64() - per_five.as_secs_f64();
        assert!((diff - 80.0 * 30e-6).abs() < 1e-6, "diff {diff}");
    }

    #[test]
    fn round_robin_is_fair_between_equals() {
        let offered = [
            Offered {
                arrival: SimTime::ZERO,
                bytes: 50.0 * MB,
            },
            Offered {
                arrival: SimTime::ZERO,
                bytes: 50.0 * MB,
            },
        ];
        let p = pipe(5);
        let done = p.simulate(&offered);
        assert_eq!(done.len(), 2);
        // Finish within one batch of each other.
        let gap = (done[1].finished.as_secs_f64() - done[0].finished.as_secs_f64()).abs();
        let batch_secs = 10.0 * MB / 12e9 + 30e-6;
        assert!(gap <= batch_secs + 1e-9, "gap {gap}");
    }

    #[test]
    fn conservation_every_transfer_completes() {
        let offered: Vec<Offered> = (0..7)
            .map(|i| Offered {
                arrival: SimTime(i as u64 * 500_000),
                bytes: (i as f64 + 1.0) * 3.0 * MB,
            })
            .collect();
        let done = pipe(5).simulate(&offered);
        assert_eq!(done.len(), 7);
        let mut ids: Vec<usize> = done.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
        // Finish times are non-decreasing in report order.
        assert!(done.windows(2).all(|w| w[0].finished <= w[1].finished));
    }

    #[test]
    fn empty_and_zero_byte_inputs() {
        let p = pipe(5);
        assert!(p.simulate(&[]).is_empty());
        let done = p.simulate(&[Offered {
            arrival: SimTime(5),
            bytes: 0.0,
        }]);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].finished, SimTime(5));
    }
}
