//! Chunking and batching arithmetic (paper §4.3.1–§4.3.3).
//!
//! GROUTER splits every transfer into 2 MB chunks pipelined across GPU
//! streams, groups chunks into batches of 5 so newly arrived functions can
//! preempt bandwidth at batch boundaries, and — on heterogeneous NVLink
//! paths — sizes per-path shares proportionally to path capacity so all
//! paths drain at the same time (minimising tail latency).

use grouter_sim::params;

/// Shape of one transfer after chunking.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChunkPlan {
    /// Total bytes.
    pub bytes: f64,
    /// Number of chunks (≥ 1 for non-empty transfers).
    pub chunks: usize,
    /// Number of batches (≥ 1 for non-empty transfers).
    pub batches: usize,
}

/// Number of `chunk_size`-byte chunks needed for `bytes`.
pub fn chunk_count(bytes: f64, chunk_size: f64) -> usize {
    assert!(chunk_size > 0.0, "chunk size must be positive");
    if bytes <= 0.0 {
        return 0;
    }
    (bytes / chunk_size).ceil() as usize
}

impl ChunkPlan {
    /// Chunk a transfer with the paper's defaults (2 MB chunks, 5 per batch).
    pub fn with_defaults(bytes: f64) -> ChunkPlan {
        ChunkPlan::new(bytes, params::CHUNK_SIZE, params::CHUNKS_PER_BATCH)
    }

    pub fn new(bytes: f64, chunk_size: f64, chunks_per_batch: usize) -> ChunkPlan {
        assert!(chunks_per_batch > 0, "batch must hold at least one chunk");
        let chunks = chunk_count(bytes, chunk_size);
        let batches = chunks.div_ceil(chunks_per_batch);
        ChunkPlan {
            bytes: bytes.max(0.0),
            chunks,
            batches,
        }
    }
}

/// Split `bytes` across paths proportionally to their `capacities`
/// (bytes/s), so every path finishes at the same instant. Returns one share
/// per capacity; shares sum to `bytes`. Paths with non-positive capacity get
/// zero.
pub fn proportional_split(bytes: f64, capacities: &[f64]) -> Vec<f64> {
    let total: f64 = capacities.iter().filter(|&&c| c > 0.0).sum();
    if total <= 0.0 {
        return vec![0.0; capacities.len()];
    }
    capacities
        .iter()
        .map(|&c| if c > 0.0 { bytes * c / total } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_counts_round_up() {
        assert_eq!(chunk_count(0.0, 2e6), 0);
        assert_eq!(chunk_count(1.0, 2e6), 1);
        assert_eq!(chunk_count(2e6, 2e6), 1);
        assert_eq!(chunk_count(2e6 + 1.0, 2e6), 2);
    }

    #[test]
    fn default_plan_matches_paper_constants() {
        // 20 MiB = 10 chunks of 2 MiB = 2 batches of 5.
        let p = ChunkPlan::with_defaults(20.0 * 1024.0 * 1024.0);
        assert_eq!(p.chunks, 10);
        assert_eq!(p.batches, 2);
    }

    #[test]
    fn empty_transfer_has_no_batches() {
        let p = ChunkPlan::with_defaults(0.0);
        assert_eq!(p.chunks, 0);
        assert_eq!(p.batches, 0);
    }

    #[test]
    fn proportional_split_equalises_finish_times() {
        // Paper: a 48 GB/s link gets twice the share of a 24 GB/s link.
        let shares = proportional_split(90.0, &[48e9, 24e9, 24e9]);
        assert_eq!(shares, vec![45.0, 22.5, 22.5]);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 90.0).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_paths_get_nothing() {
        let shares = proportional_split(10.0, &[0.0, 5.0, -1.0]);
        assert_eq!(shares, vec![0.0, 10.0, 0.0]);
    }

    #[test]
    fn no_usable_paths_yields_zeros() {
        assert_eq!(proportional_split(10.0, &[0.0, 0.0]), vec![0.0, 0.0]);
        assert_eq!(proportional_split(10.0, &[]), Vec::<f64>::new());
    }
}
