//! Transfer execution over the flow network.
//!
//! [`TransferEngine`] turns a [`TransferPlan`] into live flows and tracks
//! them to completion. The surrounding event loop owns the
//! [`grouter_sim::FlowNet`] and calls [`TransferEngine::on_flows_complete`]
//! with whatever [`grouter_sim::FlowNet::advance_to`] harvested; the engine
//! reports which logical transfers finished so the runtime can resume the
//! waiting function and release NVLink reservations.

use std::collections::BTreeMap;

use grouter_sim::time::SimTime;
use grouter_sim::{FlowId, FlowNet, FlowNetError, FxHashMap};

use crate::plan::TransferPlan;

/// Identifies one logical transfer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TransferId(pub u64);

#[derive(Debug)]
struct Active {
    /// Flows not yet complete. Plans are at most a handful of paths wide, so
    /// a flat vector with `swap_remove` beats a hash set on every metric.
    pending: Vec<FlowId>,
    started: SimTime,
    bytes: f64,
    nv_releases: Vec<(Vec<usize>, f64)>,
    /// GPU routes of this transfer's flows (rebalance index keys).
    routes: Vec<Vec<usize>>,
    /// Node whose bandwidth matrix holds the reservations.
    nv_node: usize,
    /// Open `transfer.leg` span (0 when tracing was off at begin).
    span: u64,
}

/// A finished transfer.
#[derive(Clone, Debug)]
pub struct TransferDone {
    pub id: TransferId,
    /// When the flows started (after plan setup).
    pub started: SimTime,
    pub bytes: f64,
    /// NVLink reservations `(gpu route, rate)` to release on `nv_node`.
    pub nv_releases: Vec<(Vec<usize>, f64)>,
    /// GPU routes of this transfer's flows (for rebalance de-indexing).
    pub routes: Vec<Vec<usize>>,
    pub nv_node: usize,
}

/// Tracks in-flight transfers.
#[derive(Debug, Default)]
pub struct TransferEngine {
    next_id: u64,
    active: BTreeMap<u64, Active>,
    flow_owner: FxHashMap<FlowId, u64>,
    /// Observability handle ([`TransferEngine::set_recorder`]).
    rec: grouter_obs::Recorder,
}

/// A plan could not be started: one of its flows references links the flow
/// network does not know (a planner/topology mismatch). Flows started
/// before the failing one have been cancelled — the engine and the network
/// are left as if `begin` was never called.
#[derive(Clone, Debug, PartialEq)]
pub struct BeginError {
    /// Index of the failing flow within `plan.flows`.
    pub flow_index: usize,
    pub source: FlowNetError,
}

impl std::fmt::Display for BeginError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "planned flow #{} could not start: {}",
            self.flow_index, self.source
        )
    }
}

impl std::error::Error for BeginError {}

/// Result of starting a plan.
#[derive(Clone, Debug, PartialEq)]
pub enum BeginOutcome {
    /// Flows are in flight; completion arrives via `on_flows_complete`.
    /// Carries each started flow with its GPU route (if any) so the caller
    /// can index flows for live rebalancing.
    InFlight(TransferId, Vec<(FlowId, Option<Vec<usize>>)>),
    /// The plan was zero-copy: it is already complete (after its setup
    /// latency, which the caller charges).
    Immediate,
}

impl TransferEngine {
    pub fn new() -> TransferEngine {
        Self::default()
    }

    /// Attach an observability recorder: each non-zero-copy transfer then
    /// runs inside a `transfer.leg` span and every started chunk flow emits
    /// a flow-correlated `chunk_flow` instant.
    pub fn set_recorder(&mut self, rec: grouter_obs::Recorder) {
        self.rec = rec;
    }

    /// `--features audit`: the two tracking maps must mirror each other —
    /// every owned flow is pending in its active transfer and every pending
    /// flow has exactly one ownership record.
    #[cfg(feature = "audit")]
    fn audit_pending(&self) {
        if !grouter_audit::every("transfer.pending", 8) {
            return;
        }
        grouter_audit::record_hit("transfer.pending");
        // Sorted so a corrupt ownership map aborts naming the same flow
        // each run (`check` panics on the first violation it sees).
        let mut owners: Vec<(FlowId, u64)> =
            self.flow_owner.iter().map(|(&f, &t)| (f, t)).collect();
        owners.sort_unstable();
        for (fid, tid) in owners.iter().map(|(f, t)| (f, t)) {
            grouter_audit::check(
                "transfer.pending",
                self.active
                    .get(tid)
                    .is_some_and(|a| a.pending.contains(fid)),
                || format!("flow {fid:?} owned by transfer {tid} but not pending there"),
            );
        }
        let pending_total: usize = self.active.values().map(|a| a.pending.len()).sum();
        grouter_audit::check(
            "transfer.pending",
            pending_total == self.flow_owner.len(),
            || {
                format!(
                    "{pending_total} pending flows vs {} ownership records",
                    self.flow_owner.len()
                )
            },
        );
    }

    /// Number of in-flight transfers.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Whether `id` is still live (started and neither completed nor
    /// cancelled). Recovery audits use this to detect orphaned waiters.
    pub fn is_active(&self, id: TransferId) -> bool {
        self.active.contains_key(&id.0)
    }

    /// Start `plan`'s flows at `now`. `nv_node` names the node whose
    /// bandwidth matrix holds the plan's NVLink reservations (ignored when
    /// the plan has none).
    ///
    /// The plan is consumed: its link paths, reservations and routes move
    /// straight into the flow network and the active-transfer record, so a
    /// steady-state leg start performs no per-flow clones.
    ///
    /// The caller is responsible for charging `plan.setup` *before* `now`
    /// (schedule `begin` at `t + setup`).
    pub fn begin(
        &mut self,
        net: &mut FlowNet,
        now: SimTime,
        plan: TransferPlan,
        nv_node: usize,
    ) -> Result<BeginOutcome, BeginError> {
        if plan.is_zero_copy() {
            return Ok(BeginOutcome::Immediate);
        }
        let id = self.next_id;
        self.next_id += 1;
        let total_bytes = plan.total_bytes;
        let mut pending = Vec::new();
        let mut nv_releases = Vec::new();
        let mut started = Vec::new();
        // A multi-path plan starts all of its flows at the same instant;
        // batching collapses the per-flow rate recomputes into one pass
        // over the affected contention component.
        net.begin_batch();
        for (flow_index, flow) in plan.flows.into_iter().enumerate() {
            match net.start_flow(now, flow.links, flow.bytes, flow.opts) {
                Ok(fid) => {
                    pending.push(fid);
                    self.flow_owner.insert(fid, id);
                    if let Some(res) = flow.nv_reservation {
                        nv_releases.push(res);
                    }
                    started.push((fid, flow.route));
                }
                Err(source) => {
                    // Unwind the flows already started so the caller sees
                    // an all-or-nothing failure.
                    for (fid, _) in &started {
                        self.flow_owner.remove(fid);
                        let _ = net.cancel_flow(now, *fid);
                    }
                    net.commit_batch();
                    return Err(BeginError { flow_index, source });
                }
            }
        }
        net.commit_batch();
        let routes: Vec<Vec<usize>> = started
            .iter()
            .filter_map(|(_, r)| r.as_ref().cloned())
            .collect();
        let mut span = 0;
        if self.rec.on(grouter_obs::Comp::Transfer) {
            span = self.rec.begin(
                grouter_obs::Comp::Transfer,
                "leg",
                grouter_obs::Ids::NONE,
                vec![
                    ("transfer", id.into()),
                    ("bytes", total_bytes.into()),
                    ("chunk_flows", started.len().into()),
                    ("nv_node", nv_node.into()),
                ],
            );
            for (fid, route) in &started {
                let mut args: Vec<(&'static str, grouter_obs::Val)> = vec![("transfer", id.into())];
                if let Some(route) = route {
                    args.push(("route_gpus", format!("{route:?}").into()));
                }
                self.rec.instant(
                    grouter_obs::Comp::Transfer,
                    "chunk_flow",
                    grouter_obs::Ids::flow(fid.0),
                    args,
                );
            }
            self.rec.sample(
                grouter_obs::Comp::Transfer,
                "chunk_batch",
                started.len() as u64,
            );
        }
        self.active.insert(
            id,
            Active {
                pending,
                started: now,
                bytes: total_bytes,
                nv_releases,
                routes,
                nv_node,
                span,
            },
        );
        #[cfg(feature = "audit")]
        self.audit_pending();
        Ok(BeginOutcome::InFlight(TransferId(id), started))
    }

    /// Feed flow completions from `FlowNet::advance_to`; returns transfers
    /// whose last flow just finished (ascending id order).
    pub fn on_flows_complete(&mut self, done: &[FlowId]) -> Vec<TransferDone> {
        let mut finished = Vec::new();
        for fid in done {
            let Some(tid) = self.flow_owner.remove(fid) else {
                continue; // flow owned by someone else (e.g. background noise)
            };
            // Ownership implies an active entry (the audit checker verifies
            // the two maps stay coherent); a miss would only drop the
            // completion, never crash the data plane.
            let Some(entry) = self.active.get_mut(&tid) else {
                debug_assert!(false, "flow owner {tid} has no active transfer");
                continue;
            };
            if let Some(pos) = entry.pending.iter().position(|f| f == fid) {
                entry.pending.swap_remove(pos);
            }
            if entry.pending.is_empty() {
                if let Some(act) = self.active.remove(&tid) {
                    self.rec.end(act.span, vec![("bytes", act.bytes.into())]);
                    finished.push(TransferDone {
                        id: TransferId(tid),
                        started: act.started,
                        bytes: act.bytes,
                        nv_releases: act.nv_releases,
                        routes: act.routes,
                        nv_node: act.nv_node,
                    });
                }
            }
        }
        finished.sort_by_key(|t| t.id);
        #[cfg(feature = "audit")]
        self.audit_pending();
        finished
    }

    /// Abort an in-flight transfer, cancelling its flows. Returns the
    /// reservations to release plus the flow ids that were torn down (so the
    /// caller can drop any per-flow indices), or `None` if the id is
    /// unknown/complete.
    pub fn cancel(
        &mut self,
        net: &mut FlowNet,
        now: SimTime,
        id: TransferId,
    ) -> Option<(TransferDone, Vec<FlowId>)> {
        let act = self.active.remove(&id.0)?;
        self.rec.end(act.span, vec![("cancelled", true.into())]);
        let mut cancelled: Vec<FlowId> = act.pending.to_vec();
        cancelled.sort();
        for fid in &cancelled {
            self.flow_owner.remove(fid);
            let _ = net.cancel_flow(now, *fid);
        }
        Some((
            TransferDone {
                id,
                started: act.started,
                bytes: act.bytes,
                nv_releases: act.nv_releases,
                routes: act.routes,
                nv_node: act.nv_node,
            },
            cancelled,
        ))
    }

    /// In-flight transfers on `nv_node` whose NVLink routes visit `gpu`
    /// (endpoint or relay) — the set a GPU failure strands mid-flight.
    /// Ascending id order.
    pub fn transfers_using_route(&self, nv_node: usize, gpu: usize) -> Vec<TransferId> {
        self.active
            .iter()
            .filter(|(_, a)| a.nv_node == nv_node && a.routes.iter().any(|r| r.contains(&gpu)))
            .map(|(&id, _)| TransferId(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_d2h, plan_intra_node, PlanConfig, TransferPlan};
    use grouter_sim::time::SimDuration;
    use grouter_topology::{presets, PathSelector, Topology};

    const MB: f64 = 1e6;

    fn setup() -> (FlowNet, Topology) {
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::dgx_v100(), 1, &mut net);
        (net, topo)
    }

    /// Drive the net until all of `eng`'s transfers finish; returns
    /// (finish time, completions).
    fn drain(net: &mut FlowNet, eng: &mut TransferEngine) -> (SimTime, Vec<TransferDone>) {
        let mut all = Vec::new();
        let mut t = SimTime::ZERO;
        while eng.in_flight() > 0 {
            let next = net.next_completion().expect("flows make progress");
            t = next;
            let done = net.advance_to(next);
            all.extend(eng.on_flows_complete(&done));
        }
        (t, all)
    }

    #[test]
    fn zero_copy_completes_immediately() {
        let (mut net, _) = setup();
        let mut eng = TransferEngine::new();
        let plan = TransferPlan::zero_copy(SimDuration::from_micros(5));
        assert_eq!(
            eng.begin(&mut net, SimTime::ZERO, plan, 0).unwrap(),
            BeginOutcome::Immediate
        );
        assert_eq!(eng.in_flight(), 0);
    }

    #[test]
    fn single_flow_transfer_completes_with_expected_latency() {
        let (mut net, topo) = setup();
        let mut eng = TransferEngine::new();
        let cfg = PlanConfig::single_path();
        // 120 MB over one 12 GB/s PCIe chain → 10 ms.
        let plan = plan_d2h(&topo, &net, 0, 0, 120.0 * MB, &cfg);
        let out = eng.begin(&mut net, SimTime::ZERO, plan, 0).unwrap();
        assert!(matches!(out, BeginOutcome::InFlight(..)));
        let (t, done) = drain(&mut net, &mut eng);
        assert_eq!(done.len(), 1);
        assert!((t.as_millis_f64() - 10.0).abs() < 0.05, "t = {t}");
    }

    #[test]
    fn parallel_transfer_is_faster_than_single() {
        let (mut net1, topo1) = setup();
        let mut eng = TransferEngine::new();
        let single = plan_d2h(&topo1, &net1, 0, 0, 480.0 * MB, &PlanConfig::single_path());
        eng.begin(&mut net1, SimTime::ZERO, single, 0).unwrap();
        let (t_single, _) = drain(&mut net1, &mut eng);

        let (mut net2, topo2) = setup();
        let mut eng2 = TransferEngine::new();
        let par = plan_d2h(&topo2, &net2, 0, 0, 480.0 * MB, &PlanConfig::grouter());
        eng2.begin(&mut net2, SimTime::ZERO, par, 0).unwrap();
        let (t_par, _) = drain(&mut net2, &mut eng2);

        // 4 disjoint PCIe chains → ~4× faster (paper: 2–4×).
        let speedup = t_single.as_secs_f64() / t_par.as_secs_f64();
        assert!(speedup > 3.5, "speedup {speedup}");
    }

    #[test]
    fn transfer_finishes_only_when_all_flows_do() {
        let (mut net, topo) = setup();
        let mut eng = TransferEngine::new();
        let mut sel = PathSelector::from_topology(&topo);
        let plan = plan_intra_node(
            &topo,
            &net,
            Some(&mut sel),
            0,
            0,
            1,
            100.0 * MB,
            &PlanConfig::grouter(),
        );
        assert!(plan.flows.len() >= 2);
        eng.begin(&mut net, SimTime::ZERO, plan.clone(), 0).unwrap();
        // First completion may not finish the transfer if flows end at
        // different instants; drain handles the general case.
        let (_, done) = drain(&mut net, &mut eng);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].nv_releases.len(), plan.flows.len());
    }

    #[test]
    fn reservations_surface_in_completion() {
        let (mut net, topo) = setup();
        let mut eng = TransferEngine::new();
        let mut sel = PathSelector::from_topology(&topo);
        let plan = plan_intra_node(
            &topo,
            &net,
            Some(&mut sel),
            0,
            0,
            3,
            10.0 * MB,
            &PlanConfig::grouter(),
        );
        eng.begin(&mut net, SimTime::ZERO, plan, 0).unwrap();
        let (_, done) = drain(&mut net, &mut eng);
        for (route, rate) in &done[0].nv_releases {
            assert!(route.len() >= 2);
            assert!(*rate > 0.0);
            sel.bwm_mut().release_path(route, *rate);
        }
        // Fully released → matrix idle again.
        assert!(sel.bwm().is_idle(0, 3));
    }

    #[test]
    fn cancel_removes_flows_and_returns_reservations() {
        let (mut net, topo) = setup();
        let mut eng = TransferEngine::new();
        let plan = plan_d2h(&topo, &net, 0, 0, 480.0 * MB, &PlanConfig::grouter());
        let BeginOutcome::InFlight(id, _) = eng.begin(&mut net, SimTime::ZERO, plan, 0).unwrap()
        else {
            panic!("expected in-flight");
        };
        assert!(net.num_flows() > 0);
        let flows_before = net.num_flows();
        let (done, cancelled) = eng
            .cancel(&mut net, SimTime::ZERO, id)
            .expect("cancellable");
        assert_eq!(done.id, id);
        assert_eq!(cancelled.len(), flows_before, "every pending flow reported");
        assert!(cancelled.windows(2).all(|w| w[0] < w[1]), "sorted flow ids");
        assert_eq!(net.num_flows(), 0);
        assert_eq!(eng.in_flight(), 0);
        // Double-cancel is a no-op.
        assert!(eng.cancel(&mut net, SimTime::ZERO, id).is_none());
    }

    #[test]
    fn route_query_finds_transfers_crossing_a_gpu() {
        let (mut net, topo) = setup();
        let mut eng = TransferEngine::new();
        let mut sel = PathSelector::from_topology(&topo);
        let plan = plan_intra_node(
            &topo,
            &net,
            Some(&mut sel),
            0,
            0,
            3,
            100.0 * MB,
            &PlanConfig::grouter(),
        );
        let BeginOutcome::InFlight(id, _) =
            eng.begin(&mut net, SimTime::ZERO, plan.clone(), 0).unwrap()
        else {
            panic!("expected in-flight");
        };
        // Endpoints are always on some route.
        assert_eq!(eng.transfers_using_route(0, 0), vec![id]);
        assert_eq!(eng.transfers_using_route(0, 3), vec![id]);
        // Wrong node → no hit even for the same GPU index.
        assert!(eng.transfers_using_route(1, 0).is_empty());
        // A GPU on no route of this transfer → no hit.
        let on_routes: std::collections::HashSet<usize> = plan
            .flows
            .iter()
            .filter_map(|f| f.route.as_ref())
            .flatten()
            .copied()
            .collect();
        if let Some(absent) = (0..8).find(|g| !on_routes.contains(g)) {
            assert!(eng.transfers_using_route(0, absent).is_empty());
        }
    }

    #[test]
    fn concurrent_transfers_complete_independently() {
        let (mut net, topo) = setup();
        let mut eng = TransferEngine::new();
        let small = plan_d2h(&topo, &net, 0, 2, 12.0 * MB, &PlanConfig::single_path());
        let large = plan_d2h(&topo, &net, 0, 4, 480.0 * MB, &PlanConfig::single_path());
        eng.begin(&mut net, SimTime::ZERO, small, 0).unwrap();
        eng.begin(&mut net, SimTime::ZERO, large, 0).unwrap();
        // Distinct switches → no contention; small finishes first.
        let next = net.next_completion().unwrap();
        let done = net.advance_to(next);
        let finished = eng.on_flows_complete(&done);
        assert_eq!(finished.len(), 1);
        assert!((finished[0].bytes - 12.0 * MB).abs() < 1.0);
        assert_eq!(eng.in_flight(), 1);
        let (_, rest) = drain(&mut net, &mut eng);
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn foreign_flows_are_ignored() {
        let (mut net, topo) = setup();
        let mut eng = TransferEngine::new();
        // A flow the engine does not own.
        let links = topo.d2h_path(0, 6);
        let fid = net
            .start_flow(SimTime::ZERO, links, 1.0 * MB, Default::default())
            .unwrap();
        let done = eng.on_flows_complete(&[fid]);
        assert!(done.is_empty());
    }
}
