//! Transfer planning: pattern → concrete multi-path flow layout.
//!
//! A [`TransferPlan`] is the static part of one data movement: which link
//! paths participate, how many bytes each carries (capacity-proportional,
//! §4.3.3), which NVLink reservations Algorithm 1 took, and the software
//! setup latency to charge before the first byte moves. Executing the plan
//! (starting flows, waiting for completions) is [`crate::exec`]'s job.
//!
//! Each planner has a GROUTER mode and the degraded modes the baselines use
//! (single path, or DeepPlan-style parallel PCIe without topology
//! awareness), selected through [`PlanConfig`].

use grouter_sim::time::SimDuration;
use grouter_sim::{params, FlowNet, FlowOptions, LinkId};
use grouter_topology::{GpuRef, PathSelector, Topology};

/// Feature switches for the planners (the ablation knobs of Fig. 16 map to
/// these plus the storage/locality toggles in the core crate).
#[derive(Clone, Copy, Debug)]
pub struct PlanConfig {
    /// Stage gFn–host traffic over peer GPUs' PCIe links in parallel (BH).
    pub parallel_pcie: bool,
    /// Fan cross-node traffic over multiple NICs in parallel (BH).
    pub parallel_nics: bool,
    /// Use Algorithm 1 multi-path NVLink transfers (TA).
    pub parallel_nvlink: bool,
    /// Select route GPUs topology-aware (exclude shared PCIe switches,
    /// require NVLink reachability). DeepPlan+ sets this to `false`.
    pub topology_aware: bool,
    /// Maximum parallel paths per transfer.
    pub max_paths: usize,
    /// Maximum NVLink hops for detour paths.
    pub max_hops: usize,
}

impl PlanConfig {
    /// Full GROUTER behaviour.
    pub fn grouter() -> PlanConfig {
        PlanConfig {
            parallel_pcie: true,
            parallel_nics: true,
            parallel_nvlink: true,
            topology_aware: true,
            max_paths: 4,
            max_hops: 3,
        }
    }

    /// One path per transfer (NCCL/NVSHMEM-style point-to-point).
    pub fn single_path() -> PlanConfig {
        PlanConfig {
            parallel_pcie: false,
            parallel_nics: false,
            parallel_nvlink: false,
            topology_aware: true,
            max_paths: 1,
            max_hops: 1,
        }
    }

    /// DeepPlan: parallel PCIe staging, but no topology awareness and no
    /// NVLink/NIC multi-pathing.
    pub fn deepplan() -> PlanConfig {
        PlanConfig {
            parallel_pcie: true,
            parallel_nics: false,
            parallel_nvlink: false,
            topology_aware: false,
            max_paths: 4,
            max_hops: 1,
        }
    }
}

/// One flow of a plan.
#[derive(Clone, Debug)]
pub struct PlannedFlow {
    /// Ordered links the bytes traverse.
    pub links: Vec<LinkId>,
    /// Bytes assigned to this path.
    pub bytes: f64,
    /// Rate constraints (rewritten by the SLO controller where applicable).
    pub opts: FlowOptions,
    /// NVLink bandwidth reservation to release on completion:
    /// `(GPU route, reserved bytes/s)` in the source node's matrix.
    /// `None` when a `PathLedger` owns the reservation instead.
    pub nv_reservation: Option<(Vec<usize>, f64)>,
    /// GPU route of this flow, if it rides NVLink paths — the key under
    /// which the executor indexes the flow for live rebalancing.
    pub route: Option<Vec<usize>>,
}

/// A planned transfer, ready for [`crate::TransferEngine::begin`].
#[derive(Clone, Debug)]
pub struct TransferPlan {
    /// Parallel flows (empty ⇒ zero-copy: only `setup` is charged).
    pub flows: Vec<PlannedFlow>,
    /// Software latency before the first byte moves (IPC mapping, DMA
    /// launch, GDR/connection setup, pipeline fill).
    pub setup: SimDuration,
    /// Total payload bytes.
    pub total_bytes: f64,
}

impl TransferPlan {
    /// A same-GPU exchange: address sharing via IPC, no data movement.
    pub fn zero_copy(setup: SimDuration) -> TransferPlan {
        TransferPlan {
            flows: Vec::new(),
            setup,
            total_bytes: 0.0,
        }
    }

    pub fn is_zero_copy(&self) -> bool {
        self.flows.is_empty()
    }

    /// Sum of per-flow byte assignments (== `total_bytes` up to rounding).
    pub fn assigned_bytes(&self) -> f64 {
        self.flows.iter().map(|f| f.bytes).sum()
    }
}

/// A candidate link path, optionally backed by an NVLink bandwidth
/// reservation `(GPU route, reserved rate)`.
type CandidatePath = (Vec<LinkId>, Option<(Vec<usize>, f64)>);

fn flows_from_paths(paths: Vec<CandidatePath>, caps: &[f64], bytes: f64) -> Vec<PlannedFlow> {
    let shares = crate::chunk::proportional_split(bytes, caps);
    paths
        .into_iter()
        .zip(shares)
        .filter(|(_, share)| *share > 0.0 || bytes == 0.0)
        .map(|((links, nv_reservation), share)| PlannedFlow {
            route: nv_reservation.as_ref().map(|(r, _)| r.clone()),
            links,
            bytes: share,
            opts: FlowOptions::default(),
            nv_reservation,
        })
        .collect()
}

/// Link sequence for a GPU route that must ride NVLink edges only.
/// `None` when some hop has no NVLink edge — callers drop or degrade the
/// path instead of panicking in the data plane.
fn nvlink_route_links(topo: &Topology, node: usize, route: &[usize]) -> Option<Vec<LinkId>> {
    let mut links = Vec::new();
    for hop in route.windows(2) {
        links.extend(topo.nvlink_edge(node, hop[0], hop[1])?);
    }
    Some(links)
}

/// Bottleneck hardware capacity of a link path.
fn path_capacity(net: &FlowNet, links: &[LinkId]) -> f64 {
    links
        .iter()
        .map(|&l| net.link_capacity(l))
        .fold(f64::INFINITY, f64::min)
}

/// Plan an intra-node gFn–gFn transfer (paper §4.2.2 pattern 1, Fig. 9b).
///
/// * Same GPU → zero-copy (IPC address sharing).
/// * NVLink machine + `parallel_nvlink` → Algorithm 1 multi-path selection
///   through the cached `selector` (reservations recorded for release at
///   completion; candidate paths come from the topology-epoch cache, so no
///   DFS or intermediate path vectors on this hot path).
/// * NVLink machine, single-path → direct edge, else shortest NVLink route,
///   else PCIe peer-to-peer.
/// * PCIe-only machine → PCIe peer-to-peer.
#[allow(clippy::too_many_arguments)]
pub fn plan_intra_node(
    topo: &Topology,
    net: &FlowNet,
    selector: Option<&mut PathSelector>,
    node: usize,
    src: usize,
    dst: usize,
    bytes: f64,
    cfg: &PlanConfig,
) -> TransferPlan {
    if src == dst {
        return TransferPlan::zero_copy(params::IPC_MAP_CACHED);
    }
    let setup = params::IPC_MAP_FIRST + params::DMA_LAUNCH + params::CHUNK_OVERHEAD;

    if topo.has_nvlink() {
        if cfg.parallel_nvlink {
            if let Some(sel) = selector {
                // NVSwitch fabrics gain nothing from detours (the port is
                // the bottleneck): restrict to the direct path.
                let max_hops = if topo.has_nvswitch() { 1 } else { cfg.max_hops };
                if !sel.select(src, dst, max_hops, cfg.max_paths).is_empty() {
                    // Resolve each selected GPU route to its link sequence.
                    // A route over a vanished edge cannot happen while the
                    // selection cache is epoch-coherent with the topology;
                    // if it ever does, release that reservation and degrade
                    // to fewer paths instead of crashing the data plane.
                    let nv_paths = sel.take_last_selection();
                    let mut routed = Vec::new();
                    for p in nv_paths {
                        match nvlink_route_links(topo, node, &p.gpus) {
                            Some(links) => routed.push((p, links)),
                            None => sel.bwm_mut().release_path(&p.gpus, p.rate),
                        }
                    }
                    if !routed.is_empty() {
                        let caps: Vec<f64> = routed.iter().map(|(p, _)| p.rate).collect();
                        let shares = crate::chunk::proportional_split(bytes, &caps);
                        let flows = routed
                            .into_iter()
                            .zip(shares)
                            .filter(|(_, share)| *share > 0.0 || bytes == 0.0)
                            .map(|((p, links), share)| PlannedFlow {
                                route: Some(p.gpus.clone()),
                                links,
                                bytes: share,
                                opts: FlowOptions::default(),
                                nv_reservation: Some((p.gpus, p.rate)),
                            })
                            .collect();
                        return TransferPlan {
                            flows,
                            setup,
                            total_bytes: bytes,
                        };
                    }
                }
                // No NVLink route at all → fall through to PCIe.
            }
        }
        // Single NVLink path: direct edge, else shortest route. The route
        // comes from the live topology, so every hop has an edge; should
        // one be missing, feeder_links degrades that hop to PCIe p2p.
        if let Some(route) = topo.nvlink_route(src, dst) {
            let links = feeder_links(topo, node, route);
            let cap = path_capacity(net, &links);
            return TransferPlan {
                flows: flows_from_paths(vec![(links, None)], &[cap], bytes),
                setup,
                total_bytes: bytes,
            };
        }
    }

    // PCIe peer-to-peer fallback.
    let links = topo.pcie_p2p_path(node, src, dst);
    let cap = path_capacity(net, &links);
    TransferPlan {
        flows: flows_from_paths(vec![(links, None)], &[cap], bytes),
        setup,
        total_bytes: bytes,
    }
}

/// Route-GPU candidates for parallel PCIe staging from `gpu`.
///
/// Topology-aware (GROUTER, Fig. 5a): NVLink neighbours of `gpu` on *other*
/// PCIe switches, at most one per switch (shared-switch GPUs share one host
/// uplink and are excluded), best NVLink bandwidth first.
///
/// Naive (DeepPlan+): the first GPUs by index, regardless of switch sharing
/// or NVLink reachability — unreachable ones are fed over PCIe peer-to-peer,
/// which doubles traffic on `gpu`'s own PCIe segment (§3.2.2).
///
/// Both modes read the topology's precomputed feeder tables; the
/// topology-aware table is unlimited and truncated to the `max_paths`
/// budget here (a prefix of the table is exactly what a limited search
/// would have produced — see [`Topology::pcie_feeder_route_table`]).
fn pcie_feeder_routes<'t>(topo: &'t Topology, gpu: usize, cfg: &PlanConfig) -> Vec<&'t [usize]> {
    let limit = cfg.max_paths.saturating_sub(1);
    if cfg.topology_aware {
        let mut routes: Vec<&[usize]> = topo
            .pcie_feeder_route_table(gpu)
            .iter()
            .take(limit)
            .map(|r| r.as_slice())
            .collect();
        // Nearest routes first so the widest feeders carry shares first.
        routes.sort_by_key(|r| (r.len(), r[r.len() - 1]));
        routes
    } else {
        topo.naive_feeder_route_table(gpu)
            .iter()
            .take(limit)
            .map(|r| r.as_slice())
            .collect()
    }
}

/// Feeder path along `route` (a GPU sequence): NVLink edges when they exist,
/// PCIe peer-to-peer otherwise — the naive mode's congestion source (the
/// data crosses `gpu`'s own PCIe segment twice, §3.2.2).
fn feeder_links(topo: &Topology, node: usize, route: &[usize]) -> Vec<LinkId> {
    let mut links = Vec::new();
    for hop in route.windows(2) {
        match topo.nvlink_edge(node, hop[0], hop[1]) {
            Some(edge) => links.extend(edge),
            None => links.extend(topo.pcie_p2p_path(node, hop[0], hop[1])),
        }
    }
    links
}

/// Plan a device-to-host transfer (paper §4.2.2 pattern 3 / Fig. 5a).
pub fn plan_d2h(
    topo: &Topology,
    net: &FlowNet,
    node: usize,
    gpu: usize,
    bytes: f64,
    cfg: &PlanConfig,
) -> TransferPlan {
    let setup = params::DMA_LAUNCH + params::CHUNK_OVERHEAD;
    let mut paths: Vec<CandidatePath> = vec![(topo.d2h_path(node, gpu), None)];
    if cfg.parallel_pcie && topo.has_nvlink() {
        for route in pcie_feeder_routes(topo, gpu, cfg) {
            let Some(&peer) = route.last() else {
                continue; // feeder routes are at least [gpu, peer]
            };
            let mut links = feeder_links(topo, node, route);
            links.extend(topo.d2h_path(node, peer));
            paths.push((links, None));
        }
    }
    let caps: Vec<f64> = paths.iter().map(|(l, _)| path_capacity(net, l)).collect();
    TransferPlan {
        flows: flows_from_paths(paths, &caps, bytes),
        setup,
        total_bytes: bytes,
    }
}

/// Plan a host-to-device transfer (mirror of [`plan_d2h`]).
pub fn plan_h2d(
    topo: &Topology,
    net: &FlowNet,
    node: usize,
    gpu: usize,
    bytes: f64,
    cfg: &PlanConfig,
) -> TransferPlan {
    let setup = params::DMA_LAUNCH + params::CHUNK_OVERHEAD;
    let mut paths: Vec<CandidatePath> = vec![(topo.h2d_path(node, gpu), None)];
    if cfg.parallel_pcie && topo.has_nvlink() {
        for route in pcie_feeder_routes(topo, gpu, cfg) {
            let Some(&peer) = route.last() else {
                continue; // feeder routes are at least [gpu, peer]
            };
            let mut links = topo.h2d_path(node, peer);
            // Reverse feeder: peer → gpu.
            let mut back = route.to_vec();
            back.reverse();
            links.extend(feeder_links(topo, node, &back));
            paths.push((links, None));
        }
    }
    let caps: Vec<f64> = paths.iter().map(|(l, _)| path_capacity(net, l)).collect();
    TransferPlan {
        flows: flows_from_paths(paths, &caps, bytes),
        setup,
        total_bytes: bytes,
    }
}

/// NIC routes for a cross-node transfer (Fig. 9a): per NIC, a forwarding
/// GPU on the NIC's switch reachable from `src` over NVLink, and the mirror
/// entry GPU on the destination node.
fn nic_routes(topo: &Topology, src_gpu: usize, dst_gpu: usize) -> Vec<(usize, &[usize], &[usize])> {
    // (nic, src-side GPU route ending at forwarder, dst-side route from entry)
    let mut routes = Vec::new();
    for nic in 0..topo.num_nics() {
        let fwd = best_gpu_on_nic_switch(topo, src_gpu, nic);
        let entry = best_gpu_on_nic_switch(topo, dst_gpu, nic);
        let (Some(fwd), Some(entry)) = (fwd, entry) else {
            continue;
        };
        let Some(src_route) = topo.nvlink_route(src_gpu, fwd) else {
            continue;
        };
        let Some(dst_route) = topo.nvlink_route(entry, dst_gpu) else {
            continue;
        };
        routes.push((nic, src_route, dst_route));
    }
    routes
}

/// The GPU on `nic`'s switch that is cheapest to reach from `from` over
/// NVLink (`from` itself when it is already on that switch).
fn best_gpu_on_nic_switch(topo: &Topology, from: usize, nic: usize) -> Option<usize> {
    let sw = topo.switch_of_nic(nic);
    if topo.switch_of(from) == sw {
        return Some(from);
    }
    (0..topo.gpus_per_node())
        .filter(|&g| topo.switch_of(g) == sw)
        .filter_map(|g| topo.nvlink_route(from, g).map(|r| (r.len(), g)))
        .min()
        .map(|(_, g)| g)
}

/// Plan a cross-node gFn–gFn transfer (paper §4.2.2 pattern 2, Fig. 9a).
///
/// GROUTER (`parallel_nics`): split across every usable NIC; each share
/// rides NVLink to a forwarding GPU, GDR out of its NIC, into the mirror
/// GPU on the remote node, and NVLink again to the destination. Baselines
/// use the single NIC nearest the source, straight into the destination.
pub fn plan_cross_node(
    topo: &Topology,
    net: &FlowNet,
    src: GpuRef,
    dst: GpuRef,
    bytes: f64,
    cfg: &PlanConfig,
) -> TransferPlan {
    assert_ne!(src.node, dst.node, "cross-node plan needs distinct nodes");
    let setup = params::GDR_SETUP + params::NIC_CONN_SETUP + params::CHUNK_OVERHEAD;

    let mut paths: Vec<CandidatePath> = Vec::new();
    if cfg.parallel_nics && topo.has_nvlink() {
        for (nic, src_route, dst_route) in nic_routes(topo, src.gpu, dst.gpu) {
            // Routes come from `nvlink_shortest_route`, so every hop has an
            // edge and the endpoints exist; a NIC whose routes cannot be
            // resolved is simply skipped.
            let (Some(src_links), Some(dst_links), Some(&fwd), Some(&entry)) = (
                nvlink_route_links(topo, src.node, src_route),
                nvlink_route_links(topo, dst.node, dst_route),
                src_route.last(),
                dst_route.first(),
            ) else {
                continue;
            };
            let mut links = src_links;
            links.extend(topo.gdr_tx_path(src.node, fwd, nic));
            links.extend(topo.gdr_rx_path(dst.node, entry, nic));
            links.extend(dst_links);
            paths.push((links, None));
            if paths.len() >= cfg.max_paths {
                break;
            }
        }
    }
    if paths.is_empty() {
        // Single NIC: the source's nearest NIC into the destination GPU.
        let nic = topo.nic_of_gpu(src.gpu);
        let mut links = topo.gdr_tx_path(src.node, src.gpu, nic);
        links.extend(topo.gdr_rx_path(dst.node, dst.gpu, nic));
        paths.push((links, None));
    }
    let caps: Vec<f64> = paths.iter().map(|(l, _)| path_capacity(net, l)).collect();
    TransferPlan {
        flows: flows_from_paths(paths, &caps, bytes),
        setup,
        total_bytes: bytes,
    }
}

/// Host-centric cross-node hop: DRAM → NIC → DRAM (used by INFless+).
/// The kernel bonds host traffic across the node's NICs; model that by
/// spreading node pairs deterministically over the NIC set.
pub fn plan_host_to_host(
    topo: &Topology,
    net: &FlowNet,
    src_node: usize,
    dst_node: usize,
    bytes: f64,
) -> TransferPlan {
    let nic = (src_node * 7 + dst_node * 3) % topo.num_nics().max(1);
    let links = topo.host_net_path(src_node, dst_node, nic);
    let cap = path_capacity(net, &links);
    TransferPlan {
        flows: flows_from_paths(vec![(links, None)], &[cap], bytes),
        setup: params::NIC_CONN_SETUP,
        total_bytes: bytes,
    }
}

/// cFn–cFn exchange over host shared memory ("negligible overhead", §2.2).
pub fn plan_shm(topo: &Topology, net: &FlowNet, node: usize, bytes: f64) -> TransferPlan {
    let links = topo.shm_path(node);
    let cap = path_capacity(net, &links);
    TransferPlan {
        flows: flows_from_paths(vec![(links, None)], &[cap], bytes),
        setup: SimDuration::from_micros(2),
        total_bytes: bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouter_topology::presets;

    const MB: f64 = 1e6;

    fn v100(nodes: usize) -> (FlowNet, Topology) {
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::dgx_v100(), nodes, &mut net);
        (net, topo)
    }

    #[test]
    fn same_gpu_is_zero_copy() {
        let (net, topo) = v100(1);
        let cfg = PlanConfig::grouter();
        let p = plan_intra_node(&topo, &net, None, 0, 2, 2, 100.0 * MB, &cfg);
        assert!(p.is_zero_copy());
        assert_eq!(p.setup, params::IPC_MAP_CACHED);
    }

    #[test]
    fn parallel_nvlink_plan_conserves_bytes() {
        let (net, topo) = v100(1);
        let mut sel = PathSelector::from_topology(&topo);
        let cfg = PlanConfig::grouter();
        let p = plan_intra_node(&topo, &net, Some(&mut sel), 0, 0, 1, 100.0 * MB, &cfg);
        assert!(p.flows.len() >= 2, "weak pair should use parallel paths");
        assert!((p.assigned_bytes() - 100.0 * MB).abs() < 1.0);
        // Every flow carries an NVLink reservation to release later.
        assert!(p.flows.iter().all(|f| f.nv_reservation.is_some()));
    }

    #[test]
    fn single_path_uses_direct_edge() {
        let (net, topo) = v100(1);
        let cfg = PlanConfig::single_path();
        let p = plan_intra_node(&topo, &net, None, 0, 0, 3, 100.0 * MB, &cfg);
        assert_eq!(p.flows.len(), 1);
        assert_eq!(p.flows[0].links.len(), 1, "0-3 is a direct NVLink edge");
    }

    #[test]
    fn weak_pair_without_ta_takes_shortest_route() {
        let (net, topo) = v100(1);
        let cfg = PlanConfig::single_path();
        // 1 and 4 lack a direct NVLink.
        let p = plan_intra_node(&topo, &net, None, 0, 1, 4, 100.0 * MB, &cfg);
        assert_eq!(p.flows.len(), 1);
        assert_eq!(p.flows[0].links.len(), 2, "two NVLink hops");
    }

    #[test]
    fn a10_falls_back_to_pcie_p2p() {
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::a10x4(), 1, &mut net);
        let cfg = PlanConfig::grouter();
        let mut sel = PathSelector::from_topology(&topo);
        let p = plan_intra_node(&topo, &net, Some(&mut sel), 0, 0, 1, 100.0 * MB, &cfg);
        assert_eq!(p.flows.len(), 1);
        // Distinct switches → 4 PCIe hops.
        assert_eq!(p.flows[0].links.len(), 4);
    }

    #[test]
    fn d2h_grouter_uses_disjoint_uplinks() {
        let (net, topo) = v100(1);
        let cfg = PlanConfig::grouter();
        let p = plan_d2h(&topo, &net, 0, 0, 400.0 * MB, &cfg);
        assert_eq!(p.flows.len(), 4, "direct + 3 route GPUs");
        // No two flows may share any PCIe link (switch uplinks in
        // particular). The final DRAM sink is legitimately shared and never
        // the bottleneck.
        for i in 0..p.flows.len() {
            for j in (i + 1)..p.flows.len() {
                let a = &p.flows[i].links[..p.flows[i].links.len() - 1];
                let b = &p.flows[j].links[..p.flows[j].links.len() - 1];
                let shared = a.iter().filter(|l| b.contains(l)).count();
                assert_eq!(shared, 0, "flows {i} and {j} share PCIe links");
            }
        }
        assert!((p.assigned_bytes() - 400.0 * MB).abs() < 1.0);
    }

    #[test]
    fn d2h_deepplan_congests_shared_resources() {
        let (net, topo) = v100(1);
        let cfg = PlanConfig::deepplan();
        let p = plan_d2h(&topo, &net, 0, 0, 400.0 * MB, &cfg);
        assert!(p.flows.len() >= 2);
        // Naive route choice includes GPU 1 — the same-switch neighbour —
        // whose staging path shares the uplink with the direct path.
        let mut any_shared = false;
        for i in 0..p.flows.len() {
            for j in (i + 1)..p.flows.len() {
                let a = &p.flows[i].links[..p.flows[i].links.len() - 1];
                let b = &p.flows[j].links[..p.flows[j].links.len() - 1];
                if a.iter().any(|l| b.contains(l)) {
                    any_shared = true;
                }
            }
        }
        assert!(any_shared, "DeepPlan mode should exhibit PCIe link sharing");
    }

    #[test]
    fn d2h_single_path_has_one_flow() {
        let (net, topo) = v100(1);
        let cfg = PlanConfig::single_path();
        let p = plan_d2h(&topo, &net, 0, 0, 400.0 * MB, &cfg);
        assert_eq!(p.flows.len(), 1);
        assert_eq!(p.flows[0].links.len(), 3);
    }

    #[test]
    fn h2d_mirrors_d2h_shape() {
        let (net, topo) = v100(1);
        let cfg = PlanConfig::grouter();
        let d = plan_d2h(&topo, &net, 0, 2, 100.0 * MB, &cfg);
        let h = plan_h2d(&topo, &net, 0, 2, 100.0 * MB, &cfg);
        assert_eq!(d.flows.len(), h.flows.len());
        assert!((h.assigned_bytes() - 100.0 * MB).abs() < 1.0);
    }

    #[test]
    fn cross_node_grouter_fans_over_nics() {
        let (net, topo) = v100(2);
        let cfg = PlanConfig::grouter();
        let p = plan_cross_node(
            &topo,
            &net,
            GpuRef::new(0, 0),
            GpuRef::new(1, 3),
            400.0 * MB,
            &cfg,
        );
        assert!(p.flows.len() >= 2, "expected multi-NIC fan-out");
        assert!((p.assigned_bytes() - 400.0 * MB).abs() < 1.0);
    }

    #[test]
    fn cross_node_single_nic_baseline() {
        let (net, topo) = v100(2);
        let cfg = PlanConfig::single_path();
        let p = plan_cross_node(
            &topo,
            &net,
            GpuRef::new(0, 0),
            GpuRef::new(1, 3),
            400.0 * MB,
            &cfg,
        );
        assert_eq!(p.flows.len(), 1);
    }

    #[test]
    fn cross_node_works_without_nvlink() {
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::a10x4(), 2, &mut net);
        let cfg = PlanConfig::grouter();
        let p = plan_cross_node(
            &topo,
            &net,
            GpuRef::new(0, 1),
            GpuRef::new(1, 2),
            100.0 * MB,
            &cfg,
        );
        assert_eq!(p.flows.len(), 1, "no NVLink → single NIC");
        assert!((p.assigned_bytes() - 100.0 * MB).abs() < 1.0);
    }

    #[test]
    fn host_paths_have_sane_shapes() {
        let (net, topo) = v100(2);
        let hh = plan_host_to_host(&topo, &net, 0, 1, 100.0 * MB);
        assert_eq!(hh.flows.len(), 1);
        assert_eq!(hh.flows[0].links.len(), 4);
        let shm = plan_shm(&topo, &net, 0, 100.0 * MB);
        assert_eq!(shm.flows.len(), 1);
        assert_eq!(shm.flows[0].links.len(), 1);
    }

    #[test]
    fn nvswitch_plan_is_direct_only() {
        let mut net = FlowNet::new();
        let topo = Topology::build(presets::dgx_a100(), 1, &mut net);
        let mut sel = PathSelector::from_topology(&topo);
        let cfg = PlanConfig::grouter();
        let p = plan_intra_node(&topo, &net, Some(&mut sel), 0, 0, 5, 100.0 * MB, &cfg);
        assert_eq!(p.flows.len(), 1, "NVSwitch gains nothing from detours");
        assert_eq!(p.flows[0].links.len(), 2, "egress + ingress port");
    }

    #[test]
    fn zero_byte_plan_keeps_a_flow_for_signalling() {
        let (net, topo) = v100(1);
        let cfg = PlanConfig::single_path();
        let p = plan_d2h(&topo, &net, 0, 0, 0.0, &cfg);
        // Zero-byte transfers still complete through the engine.
        assert_eq!(p.total_bytes, 0.0);
        assert_eq!(p.flows.len(), 1);
        assert_eq!(p.flows[0].bytes, 0.0);
    }
}
