//! Property tests over the transfer planners: whatever the pattern, config
//! and size, plans conserve bytes, reference valid links, and respect the
//! configured fan-out bound.

use proptest::prelude::*;

use grouter_sim::FlowNet;
use grouter_topology::graph::TopologySpec;
use grouter_topology::{presets, GpuRef, PathSelector, Topology};
use grouter_transfer::plan::{
    plan_cross_node, plan_d2h, plan_h2d, plan_intra_node, plan_shm, PlanConfig, TransferPlan,
};

fn arb_cfg() -> impl Strategy<Value = PlanConfig> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        1usize..6,
        1usize..4,
    )
        .prop_map(|(pcie, nics, nvl, ta, max_paths, max_hops)| PlanConfig {
            parallel_pcie: pcie,
            parallel_nics: nics,
            parallel_nvlink: nvl,
            topology_aware: ta,
            max_paths,
            max_hops,
        })
}

fn arb_preset() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        Just(presets::dgx_v100()),
        Just(presets::dgx_a100()),
        Just(presets::a10x4()),
        Just(presets::h800x8()),
    ]
}

fn check_plan(plan: &TransferPlan, bytes: f64, net: &FlowNet, max_paths: usize) {
    if bytes > 0.0 && !plan.is_zero_copy() {
        let assigned = plan.assigned_bytes();
        assert!(
            (assigned - bytes).abs() < 1e-3 * bytes.max(1.0),
            "assigned {assigned} of {bytes}"
        );
    }
    assert!(plan.flows.len() <= max_paths.max(1), "fan-out exceeded");
    for f in &plan.flows {
        assert!(f.bytes >= 0.0);
        assert!(!f.links.is_empty());
        for l in &f.links {
            assert!((l.0 as usize) < net.num_links(), "dangling link");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn intra_node_plans_are_sound(
        spec in arb_preset(),
        cfg in arb_cfg(),
        src in 0usize..8,
        dst in 0usize..8,
        bytes in 0.0f64..1e9,
        use_selector in any::<bool>(),
    ) {
        let mut net = FlowNet::new();
        let topo = Topology::build(spec, 1, &mut net);
        let g = topo.gpus_per_node();
        let (src, dst) = (src % g, dst % g);
        let mut sel = PathSelector::from_topology(&topo);
        let plan = plan_intra_node(
            &topo,
            &net,
            if use_selector { Some(&mut sel) } else { None },
            0,
            src,
            dst,
            bytes,
            &cfg,
        );
        if src == dst {
            prop_assert!(plan.is_zero_copy());
        } else {
            check_plan(&plan, bytes, &net, cfg.max_paths);
            // Reservations in the plan must be releasable without going
            // negative or over capacity.
            for f in &plan.flows {
                if let Some((route, rate)) = &f.nv_reservation {
                    sel.bwm_mut().release_path(route, *rate);
                }
            }
            for a in 0..g {
                for b in 0..g {
                    prop_assert!(sel.bwm().residual(a, b) <= sel.bwm().capacity(a, b) + 1.0);
                    prop_assert!(sel.bwm().residual(a, b) >= 0.0);
                }
            }
        }
    }

    #[test]
    fn host_plans_are_sound(
        spec in arb_preset(),
        cfg in arb_cfg(),
        gpu in 0usize..8,
        bytes in 0.0f64..1e9,
    ) {
        let mut net = FlowNet::new();
        let topo = Topology::build(spec, 1, &mut net);
        let gpu = gpu % topo.gpus_per_node();
        let d = plan_d2h(&topo, &net, 0, gpu, bytes, &cfg);
        check_plan(&d, bytes, &net, cfg.max_paths);
        let h = plan_h2d(&topo, &net, 0, gpu, bytes, &cfg);
        check_plan(&h, bytes, &net, cfg.max_paths);
        let s = plan_shm(&topo, &net, 0, bytes);
        check_plan(&s, bytes, &net, 1);
    }

    #[test]
    fn cross_node_plans_are_sound(
        spec in arb_preset(),
        cfg in arb_cfg(),
        src in 0usize..8,
        dst in 0usize..8,
        bytes in 0.0f64..1e9,
    ) {
        let mut net = FlowNet::new();
        let topo = Topology::build(spec, 2, &mut net);
        let g = topo.gpus_per_node();
        let plan = plan_cross_node(
            &topo,
            &net,
            GpuRef::new(0, src % g),
            GpuRef::new(1, dst % g),
            bytes,
            &cfg,
        );
        check_plan(&plan, bytes, &net, cfg.max_paths);
        prop_assert!(!plan.flows.is_empty(), "cross-node always moves bytes");
    }
}
