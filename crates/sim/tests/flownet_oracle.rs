//! Oracle property tests: the incremental, contention-scoped allocator
//! ([`grouter_sim::FlowNet`]) must agree with the full-recompute reference
//! ([`grouter_sim::ReferenceNet`]) when both are driven by the same event
//! sequence over a randomized topology.
//!
//! Rates are compared after *every* event within a relative tolerance of
//! 1e-6 (component-scoped fills change floating-point accumulation order,
//! so bit equality is not expected; anything beyond ulp noise is a real
//! divergence). Completion sets from `advance_to` must match exactly, and
//! per-link utilization must agree as well.

use grouter_sim::{FlowId, FlowNet, FlowOptions, LinkId, ReferenceNet, SimTime};
use proptest::prelude::*;

const REL_TOL: f64 = 1e-6;

/// One scripted event. Indices are resolved against the live-flow list
/// modulo its length, so a script is meaningful for any interleaving.
#[derive(Clone, Debug)]
enum Op {
    Start {
        path: Vec<usize>,
        bytes: f64,
        floor: f64,
        cap: f64,
        weight: f64,
    },
    Cancel(usize),
    SetFloor(usize, f64),
    SetCap(usize, f64),
    SetWeight(usize, f64),
    Reroute(usize, Vec<usize>),
    SetLinkCapacity(usize, f64),
    Advance(u64),
    AdvanceToNextCompletion,
}

fn arb_op(n_links: usize) -> impl Strategy<Value = Op> {
    let path = proptest::collection::vec(0..n_links, 1..4);
    let path2 = proptest::collection::vec(0..n_links, 1..4);
    prop_oneof![
        (path, 1e3f64..2e9, 0.0f64..8e9, 0.0f64..1e11, 0.1f64..4.0).prop_map(
            |(path, bytes, floor, cap, weight)| Op::Start {
                path,
                bytes,
                floor,
                // Exercise the non-positive-cap normalisation path too.
                cap: if cap < 1e8 { 0.0 } else { cap },
                weight,
            }
        ),
        (0usize..64).prop_map(Op::Cancel),
        (0usize..64, 0.0f64..8e9).prop_map(|(i, f)| Op::SetFloor(i, f)),
        (0usize..64, 0.0f64..1e11).prop_map(|(i, c)| Op::SetCap(i, c)),
        (0usize..64, 0.1f64..4.0).prop_map(|(i, w)| Op::SetWeight(i, w)),
        (0usize..64, path2).prop_map(|(i, p)| Op::Reroute(i, p)),
        (0usize..16, 1e9f64..50e9).prop_map(|(l, c)| Op::SetLinkCapacity(l, c)),
        (1u64..500_000_000).prop_map(Op::Advance),
        Just(Op::AdvanceToNextCompletion),
    ]
}

fn arb_scenario() -> impl Strategy<Value = (Vec<f64>, Vec<Op>)> {
    (2usize..8).prop_flat_map(|n_links| {
        (
            proptest::collection::vec(1e9f64..50e9, n_links),
            proptest::collection::vec(arb_op(n_links), 1..40),
        )
    })
}

struct Harness {
    inc: FlowNet,
    refn: ReferenceNet,
    links: Vec<LinkId>,
    /// (incremental id, reference id) pairs — ids are assigned in the same
    /// order by both, but kept separate to avoid relying on that.
    live: Vec<(FlowId, FlowId)>,
    now: SimTime,
}

impl Harness {
    fn new(caps: &[f64]) -> Self {
        let mut inc = FlowNet::new();
        let mut refn = ReferenceNet::new();
        let links: Vec<LinkId> = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let l = inc.add_link(format!("l{i}"), c);
                let lr = refn.add_link(format!("l{i}"), c);
                assert_eq!(l, lr);
                l
            })
            .collect();
        Harness {
            inc,
            refn,
            links,
            live: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// Drop completed flows from the live list (both nets remove them on
    /// `advance_to`; the list must follow).
    fn forget(&mut self, done: &[FlowId]) {
        self.live.retain(|(fi, _)| !done.contains(fi));
    }

    fn check(&mut self) -> Result<(), String> {
        for &(fi, fr) in &self.live {
            let ri = self
                .inc
                .flow_rate(fi)
                .map_err(|e| format!("incremental lost flow {fi:?}: {e}"))?;
            let rr = self
                .refn
                .flow_rate(fr)
                .map_err(|e| format!("reference lost flow {fr:?}: {e}"))?;
            let tol = REL_TOL * rr.abs().max(1.0);
            if (ri - rr).abs() > tol {
                return Err(format!(
                    "rate mismatch for {fi:?}: incremental {ri} vs reference {rr}"
                ));
            }
            let mi = self.inc.flow_remaining(fi).unwrap();
            let mr = self.refn.flow_remaining(fr).unwrap();
            // Remaining diverges only by settle-chaining float noise plus
            // rate noise integrated over at most ~0.5 simulated seconds.
            let mtol = REL_TOL * mr.abs().max(1.0) + tol;
            if (mi - mr).abs() > mtol {
                return Err(format!(
                    "remaining mismatch for {fi:?}: incremental {mi} vs reference {mr}"
                ));
            }
        }
        for &l in &self.links {
            let ui = self.inc.link_utilization(l);
            let ur = self.refn.link_utilization(l);
            if (ui - ur).abs() > REL_TOL * ur.abs().max(1.0) {
                return Err(format!(
                    "utilization mismatch on {l:?}: incremental {ui} vs reference {ur}"
                ));
            }
        }
        if self.inc.num_flows() != self.refn.num_flows() {
            return Err(format!(
                "flow count mismatch: incremental {} vs reference {}",
                self.inc.num_flows(),
                self.refn.num_flows()
            ));
        }
        Ok(())
    }

    fn apply(&mut self, op: &Op) -> Result<(), String> {
        match op {
            Op::Start {
                path,
                bytes,
                floor,
                cap,
                weight,
            } => {
                let p: Vec<LinkId> = path.iter().map(|&i| self.links[i]).collect();
                let opts = FlowOptions {
                    floor: *floor,
                    cap: *cap,
                    weight: *weight,
                };
                let fi = self
                    .inc
                    .start_flow(self.now, p.clone(), *bytes, opts)
                    .map_err(|e| e.to_string())?;
                let fr = self
                    .refn
                    .start_flow(self.now, p, *bytes, opts)
                    .map_err(|e| e.to_string())?;
                self.live.push((fi, fr));
            }
            Op::Cancel(i) => {
                if self.live.is_empty() {
                    return Ok(());
                }
                let (fi, fr) = self.live.remove(i % self.live.len());
                self.inc
                    .cancel_flow(self.now, fi)
                    .map_err(|e| e.to_string())?;
                self.refn
                    .cancel_flow(self.now, fr)
                    .map_err(|e| e.to_string())?;
            }
            Op::SetFloor(i, f) => {
                if self.live.is_empty() {
                    return Ok(());
                }
                let (fi, fr) = self.live[i % self.live.len()];
                self.inc
                    .set_floor(self.now, fi, *f)
                    .map_err(|e| e.to_string())?;
                self.refn
                    .set_floor(self.now, fr, *f)
                    .map_err(|e| e.to_string())?;
            }
            Op::SetCap(i, c) => {
                if self.live.is_empty() {
                    return Ok(());
                }
                let (fi, fr) = self.live[i % self.live.len()];
                self.inc
                    .set_cap(self.now, fi, *c)
                    .map_err(|e| e.to_string())?;
                self.refn
                    .set_cap(self.now, fr, *c)
                    .map_err(|e| e.to_string())?;
            }
            Op::SetWeight(i, w) => {
                if self.live.is_empty() {
                    return Ok(());
                }
                let (fi, fr) = self.live[i % self.live.len()];
                self.inc
                    .set_weight(self.now, fi, *w)
                    .map_err(|e| e.to_string())?;
                self.refn
                    .set_weight(self.now, fr, *w)
                    .map_err(|e| e.to_string())?;
            }
            Op::Reroute(i, path) => {
                if self.live.is_empty() {
                    return Ok(());
                }
                let (fi, fr) = self.live[i % self.live.len()];
                let p: Vec<LinkId> = path.iter().map(|&i| self.links[i]).collect();
                self.inc
                    .reroute_flow(self.now, fi, p.clone())
                    .map_err(|e| e.to_string())?;
                self.refn
                    .reroute_flow(self.now, fr, p)
                    .map_err(|e| e.to_string())?;
            }
            Op::SetLinkCapacity(i, c) => {
                let l = self.links[i % self.links.len()];
                self.inc.set_link_capacity(self.now, l, *c);
                self.refn.set_link_capacity(self.now, l, *c);
            }
            Op::Advance(dt) => {
                self.now = SimTime(self.now.0 + dt);
                let di = self.inc.advance_to(self.now);
                let dr = self.refn.advance_to(self.now);
                if di != dr {
                    return Err(format!("completion sets differ: {di:?} vs {dr:?}"));
                }
                self.forget(&di);
            }
            Op::AdvanceToNextCompletion => {
                // Both allocators must agree on *when* the next completion
                // happens (within a few ns of quantization) and on *which*
                // flows complete there.
                let ti = self.inc.next_completion();
                let tr = self.refn.next_completion();
                match (ti, tr) {
                    (None, None) => {}
                    (Some(ti), Some(tr)) => {
                        let diff = ti.as_nanos().abs_diff(tr.as_nanos());
                        if diff > 16 {
                            return Err(format!(
                                "next_completion differs by {diff} ns: {ti:?} vs {tr:?}"
                            ));
                        }
                        // Advance both to the *later* estimate so ns
                        // quantization cannot strand one side short.
                        let t = ti.max(tr).max(self.now);
                        self.now = t;
                        let di = self.inc.advance_to(t);
                        let dr = self.refn.advance_to(t);
                        if di != dr {
                            return Err(format!("completion sets differ: {di:?} vs {dr:?}"));
                        }
                        self.forget(&di);
                    }
                    _ => {
                        return Err(format!(
                            "next_completion presence differs: {ti:?} vs {tr:?}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Incremental ≡ full recompute on randomized topologies and event
    /// sequences covering floors, caps (incl. zero-cap normalisation),
    /// weights, reroutes, link degradation, cancels and completions.
    #[test]
    fn incremental_matches_reference((caps, ops) in arb_scenario()) {
        let mut h = Harness::new(&caps);
        for op in &ops {
            h.apply(op).map_err(|e| format!("applying {op:?}: {e}"))?;
            h.check().map_err(|e| format!("after {op:?}: {e}"))?;
        }
        // Drain both to empty: they must agree on every completion batch.
        let mut guard = 0;
        while h.inc.num_flows() > 0 || h.refn.num_flows() > 0 {
            h.apply(&Op::AdvanceToNextCompletion)
                .map_err(|e| format!("draining: {e}"))?;
            h.check().map_err(|e| format!("draining: {e}"))?;
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not converge");
        }
    }

    /// Determinism: the incremental allocator is bit-identical across two
    /// runs of the same scenario (no iteration-order or slab-reuse leakage).
    #[test]
    fn incremental_is_deterministic((caps, ops) in arb_scenario()) {
        let run = |caps: &[f64], ops: &[Op]| -> Vec<u64> {
            let mut h = Harness::new(caps);
            let mut trace = Vec::new();
            for op in ops {
                let _ = h.apply(op);
                for &(fi, _) in &h.live {
                    trace.push(h.inc.flow_rate(fi).unwrap().to_bits());
                    trace.push(h.inc.flow_remaining(fi).unwrap().to_bits());
                }
                if let Some(t) = h.inc.next_completion() {
                    trace.push(t.as_nanos());
                }
            }
            trace
        };
        let a = run(&caps, &ops);
        let b = run(&caps, &ops);
        prop_assert_eq!(a, b, "incremental allocator not deterministic");
    }
}
