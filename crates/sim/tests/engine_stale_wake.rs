//! Engine-level regression tests for the network-wake protocol used by the
//! runtime (`schedule_net_wake`): a wake-up event snapshots
//! [`FlowNet::version`] at scheduling time and returns early when the net
//! has been re-versioned since. A stale wake that ignored the stamp — or a
//! duplicate wake for the same flow generation — must never harvest the
//! same flow twice or harvest it at a superseded completion time.

use grouter_sim::{EventWorld, FlowId, FlowNet, FlowOptions, Scheduler, SimTime, Simulation};

const GB: f64 = 1e9;

struct World {
    net: FlowNet,
    /// Every flow id ever reported complete, in harvest order. Duplicates
    /// here mean a double-complete.
    completed: Vec<FlowId>,
    stale_wakes_dropped: usize,
}

/// The wake is a typed event, exactly as in the runtime's event enum; the
/// version stamp rides in the event value.
struct NetWake {
    version: u64,
}

impl EventWorld for World {
    type Event = NetWake;
    fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: NetWake) {
        if self.net.version() != ev.version {
            self.stale_wakes_dropped += 1;
            return;
        }
        let done = self.net.advance_to(s.now());
        self.completed.extend(done);
        schedule_net_wake(self, s);
    }
}

/// Mirror of the runtime's `schedule_net_wake`: one pending wake per
/// version; on fire, drop if stale, otherwise harvest and rearm.
fn schedule_net_wake(w: &mut World, s: &mut Scheduler<World>) {
    let Some(at) = w.net.next_completion() else {
        return;
    };
    let version = w.net.version();
    s.schedule_at(at, NetWake { version });
}

#[test]
fn stale_wake_does_not_double_complete() {
    let mut sim = Simulation::new(World {
        net: FlowNet::new(),
        completed: Vec::new(),
        stale_wakes_dropped: 0,
    });
    let link = sim.world.net.add_link("pcie", 10.0 * GB);

    // Flow A: 1 GB at 10 GB/s → wake armed for t = 100 ms, version v_a.
    let a = sim
        .world
        .net
        .start_flow(SimTime::ZERO, vec![link], GB, FlowOptions::default())
        .unwrap();
    schedule_net_wake(&mut sim.world, &mut sim.sched);

    // At t = 50 ms a second flow arrives on the same link: rates halve,
    // A's completion moves to 150 ms and the version bumps, so the wake
    // already queued for 100 ms is stale. The handler re-arms a fresh one.
    sim.sched.schedule_boxed(SimTime(50_000_000), |w, s| {
        w.net
            .start_flow(s.now(), vec![w.link_of_b()], GB, FlowOptions::default())
            .unwrap();
        schedule_net_wake(w, s);
    });

    sim.run();

    // Both flows complete exactly once, and the 100 ms wake was dropped.
    assert_eq!(
        sim.world.completed.len(),
        2,
        "completions: {:?}",
        sim.world.completed
    );
    let a_count = sim.world.completed.iter().filter(|&&f| f == a).count();
    assert_eq!(a_count, 1, "flow A completed {a_count} times");
    assert!(
        sim.world.stale_wakes_dropped >= 1,
        "stale wake was not dropped"
    );
    assert_eq!(sim.world.net.num_flows(), 0);
    // A finished at 150 ms (not the stale 100 ms estimate); B's last
    // 0.5 GB then runs at full rate and finishes at 200 ms.
    assert_eq!(sim.world.completed[0], a, "A should complete first");
    assert!(
        (sim.now().as_millis_f64() - 200.0).abs() < 0.01,
        "now {}",
        sim.now()
    );
}

impl World {
    fn link_of_b(&self) -> grouter_sim::LinkId {
        grouter_sim::LinkId(0)
    }
}

#[test]
fn duplicate_wake_for_same_generation_completes_once() {
    // Two wake events armed for the *same* flow generation (same version,
    // same instant — e.g. redundant rearming after an unrelated event).
    // The first harvests the flow and re-versions the net; the second must
    // observe the stamp mismatch and do nothing.
    let mut sim = Simulation::new(World {
        net: FlowNet::new(),
        completed: Vec::new(),
        stale_wakes_dropped: 0,
    });
    let link = sim.world.net.add_link("nvlink", 10.0 * GB);
    let f = sim
        .world
        .net
        .start_flow(SimTime::ZERO, vec![link], GB, FlowOptions::default())
        .unwrap();
    schedule_net_wake(&mut sim.world, &mut sim.sched);
    schedule_net_wake(&mut sim.world, &mut sim.sched); // duplicate, same version

    sim.run();

    assert_eq!(sim.world.completed, vec![f], "flow double-completed");
    assert_eq!(sim.world.stale_wakes_dropped, 1);
    assert_eq!(sim.world.net.num_flows(), 0);
}

#[test]
fn wake_after_cancel_is_dropped() {
    // The flow the wake was armed for is cancelled before the wake fires;
    // the version guard must drop the wake instead of harvesting a
    // different generation of the net.
    let mut sim = Simulation::new(World {
        net: FlowNet::new(),
        completed: Vec::new(),
        stale_wakes_dropped: 0,
    });
    let link = sim.world.net.add_link("nic", 10.0 * GB);
    let f = sim
        .world
        .net
        .start_flow(SimTime::ZERO, vec![link], GB, FlowOptions::default())
        .unwrap();
    schedule_net_wake(&mut sim.world, &mut sim.sched);
    sim.sched.schedule_boxed(SimTime(10_000_000), move |w, s| {
        w.net.cancel_flow(s.now(), f).unwrap();
        schedule_net_wake(w, s);
    });

    sim.run();

    assert!(
        sim.world.completed.is_empty(),
        "cancelled flow completed: {:?}",
        sim.world.completed
    );
    assert_eq!(sim.world.stale_wakes_dropped, 1);
}
