//! Fast, deterministic hashing for hot-path maps.
//!
//! `std`'s default `RandomState` SipHash is keyed per process: iteration
//! order varies run to run (a determinism hazard for any code that iterates
//! a map) and the hash itself costs tens of nanoseconds per lookup. The
//! event core and the runtime's per-op indexes key on small integers, so we
//! use the Firefox/rustc multiply-xor hash instead: a couple of cycles per
//! word, and — with no random seed — byte-identical iteration order on
//! every run.
//!
//! Not DoS-resistant, by design: all keys are simulator-generated ids, never
//! attacker-controlled input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (golden-ratio derived, as in rustc's `FxHasher`).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-at-a-time word hasher: `hash = (hash rotl 5 ^ word) * K`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // grouter-lint: allow(no-panic-in-dataplane): chunks_exact(8) yields exactly 8 bytes
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` with the Fx hasher (deterministic iteration order).
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher (deterministic iteration order).
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hash one value with the Fx hasher (route fingerprints, cache keys).
pub fn fx_hash_one<T: std::hash::Hash>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_maps() {
        let mut a = FxHashMap::default();
        let mut b = FxHashMap::default();
        for i in 0..1000u64 {
            a.insert(i, i * 2);
            b.insert(i, i * 2);
        }
        let ka: Vec<u64> = a.keys().copied().collect();
        let kb: Vec<u64> = b.keys().copied().collect();
        assert_eq!(ka, kb, "same insertion history must give same order");
    }

    #[test]
    fn distributes_small_integers() {
        // Sequential ids must not collide into a handful of buckets.
        let hashes: FxHashSet<u64> = (0..10_000u64).map(|i| fx_hash_one(&i)).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn hashes_byte_slices() {
        assert_ne!(
            fx_hash_one(&b"abcdefgh".as_slice()),
            fx_hash_one(&b"abcdefgi".as_slice())
        );
        // Tail shorter than a word still contributes.
        assert_ne!(
            fx_hash_one(&b"abc".as_slice()),
            fx_hash_one(&b"abd".as_slice())
        );
    }
}
