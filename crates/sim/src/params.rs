//! Hardware calibration table.
//!
//! Every physical constant used by the simulation lives here, so the mapping
//! from the paper's testbeds to the model is auditable in one place (see
//! `DESIGN.md` §2 and `EXPERIMENTS.md`). Link speeds are datasheet values for
//! the paper's hardware; software latencies are set to the magnitudes the
//! paper reports (e.g. "millisecond-level" `cudaMalloc`, "<10 µs" path
//! selection, CUDA IPC open cost).

use crate::time::SimDuration;

/// One gigabyte per second in bytes/second.
pub const GBPS: f64 = 1e9;
/// One gigabit per second in bytes/second.
pub const GBITPS: f64 = 1e9 / 8.0;
/// Mebibyte in bytes.
pub const MIB: f64 = 1024.0 * 1024.0;
/// Gibibyte in bytes.
pub const GIB: f64 = 1024.0 * MIB;

// ---------------------------------------------------------------------------
// Interconnect bandwidths (bytes/second)
// ---------------------------------------------------------------------------

/// Single NVLink2 connection on DGX-V100 (paper §4.3.3: 24 GB/s class).
pub const NVLINK_V100_SINGLE: f64 = 24.0 * GBPS;
/// Double NVLink2 connection on DGX-V100 (48 GB/s class).
pub const NVLINK_V100_DOUBLE: f64 = 48.0 * GBPS;
/// Per-GPU NVLink3 port into the NVSwitch fabric on DGX-A100.
pub const NVLINK_A100_PORT: f64 = 300.0 * GBPS;
/// Per-GPU NVLink port on H800 nodes (paper §6.4: 200 GB/s).
pub const NVLINK_H800_PORT: f64 = 200.0 * GBPS;

/// PCIe 3.0 ×16 effective bandwidth (V100 hosts).
pub const PCIE_GEN3_X16: f64 = 12.0 * GBPS;
/// PCIe 4.0 ×16 effective bandwidth (A100 / A10 hosts).
pub const PCIE_GEN4_X16: f64 = 24.0 * GBPS;
/// PCIe 5.0 ×16 effective bandwidth (H800 hosts).
pub const PCIE_GEN5_X16: f64 = 48.0 * GBPS;

/// 100 Gbps NIC (p3.16xlarge has 4 of them).
pub const NIC_100G: f64 = 100.0 * GBITPS;
/// 200 Gbps NIC (p4d.24xlarge has 8; H800 nodes use 200 Gbps networks).
pub const NIC_200G: f64 = 200.0 * GBITPS;

/// Host DRAM bandwidth available to staged copies. High enough that DRAM is
/// never the bottleneck against a handful of PCIe uplinks, matching real
/// servers.
pub const HOST_DRAM_BW: f64 = 150.0 * GBPS;

/// Intra-host shared-memory copy bandwidth for cFn–cFn exchanges. The paper
/// measures cFn–cFn via shared memory as "negligible overhead".
pub const HOST_SHM_BW: f64 = 25.0 * GBPS;

/// Serialization/deserialization bandwidth for host-centric storage
/// (Fig. 2a): external stores hold language objects, so every GPU tensor is
/// serialised on `Put` and deserialised on `Get`. GPU-side stores exchange
/// raw device buffers and skip this entirely — a large part of why
/// host-centric data passing dominates end-to-end latency (Fig. 3).
pub const HOST_SERIALIZE_BW: f64 = 1.5 * GBPS;

// ---------------------------------------------------------------------------
// Software / control-plane latencies
// ---------------------------------------------------------------------------

/// First-time CUDA IPC handle open + map into a foreign address space.
pub const IPC_MAP_FIRST: SimDuration = SimDuration::from_micros(50);
/// Re-mapping a cached IPC handle.
pub const IPC_MAP_CACHED: SimDuration = SimDuration::from_micros(5);
/// GPUDirect RDMA registration / QP setup per transfer.
pub const GDR_SETUP: SimDuration = SimDuration::from_micros(20);
/// Launching one DMA copy (PCIe or NVLink) on a stream.
pub const DMA_LAUNCH: SimDuration = SimDuration::from_micros(5);
/// Per-chunk pipeline overhead (stream sync + doorbell).
pub const CHUNK_OVERHEAD: SimDuration = SimDuration::from_micros(5);
/// Establishing a network connection for a batch of chunks.
pub const NIC_CONN_SETUP: SimDuration = SimDuration::from_micros(30);

/// Native `cudaMalloc`/`cudaFree` cost (paper §4.4.1: millisecond-level).
pub const CUDA_MALLOC: SimDuration = SimDuration::from_millis(1);
/// Allocation served from a pre-warmed memory pool.
pub const POOL_ALLOC: SimDuration = SimDuration::from_micros(10);
/// Pinned host memory allocation (expensive; why the pinned ring is reused).
pub const PINNED_ALLOC: SimDuration = SimDuration::from_millis(2);

/// Local (same-node) mapping-table lookup.
pub const LOCAL_TABLE_LOOKUP: SimDuration = SimDuration::from_micros(2);
/// Global-table RPC on a local miss (hierarchical control plane, §4.2.2).
pub const GLOBAL_TABLE_LOOKUP: SimDuration = SimDuration::from_micros(30);

/// One-way latency between node groups through the cluster frontend
/// (gateway dispatch + cross-rack fabric floor). Doubles as the sharded
/// engine's conservative lookahead: no cross-group message can land
/// sooner, so each group may safely simulate this far ahead of the rest.
pub const CROSS_GROUP_LATENCY: SimDuration = SimDuration::from_millis(1);
/// Effective bandwidth of one directed frontend channel between groups
/// (request/response payloads, not intra-group data-plane traffic).
pub const CROSS_GROUP_BW: f64 = 10.0 * GBPS;

/// Worker heartbeat period in service mode: each active node group
/// publishes a state snapshot (queue depth, pool occupancy, SLO headroom)
/// to the router this often. Small against the paper's second-scale SLOs,
/// large against the per-request service times — the router's view is
/// genuinely stale between beats.
pub const HEARTBEAT_INTERVAL: SimDuration = SimDuration::from_millis(50);
/// Wire size of one heartbeat message on the frontend channel (a few
/// counters plus a per-GPU load vector).
pub const HEARTBEAT_BYTES: f64 = 256.0;
/// A worker is suspected dead after this many silent heartbeat intervals
/// (classic 3× failure-detector timeout); the router stops routing to it
/// until a fresh heartbeat arrives.
pub const HEARTBEAT_SUSPECT_FACTOR: u64 = 3;

/// Container cold start (pull + init) for a CPU function.
pub const COLD_START_CFN: SimDuration = SimDuration::from_millis(500);
/// Container cold start + model load for a GPU function.
pub const COLD_START_GFN: SimDuration = SimDuration::from_millis(2_000);

// ---------------------------------------------------------------------------
// GROUTER policy defaults (paper values)
// ---------------------------------------------------------------------------

/// Default transfer chunk size (paper §4.3.1: 2 MB).
pub const CHUNK_SIZE: f64 = 2.0 * MIB;
/// Chunks per batch for fair preemption (paper §4.3.2: 5).
pub const CHUNKS_PER_BATCH: usize = 5;
/// Minimum storage memory pool retained during idle periods (§4.4.1: 300 MB).
pub const MIN_POOL_BYTES: f64 = 300.0 * 1e6;
/// Fraction of free GPU memory the storage may occupy (§4.4.2: 50 %).
pub const STORAGE_FREE_FRACTION: f64 = 0.5;
/// SLO multiplier over measured solo latency (§4.3.2 / §6.3: 1.5–2×).
pub const SLO_FACTOR: f64 = 1.5;

/// Capacity of the per-node circular pinned staging buffer GROUTER shares
/// across functions (§4.3.2). Baselines that pin per transfer pay
/// [`PINNED_ALLOC`] each time instead.
pub const PINNED_RING_BYTES: f64 = 128.0 * 1e6;
/// Staging footprint one active host transfer takes from the ring (a few
/// in-flight batches of 2 MB chunks).
pub const PINNED_STAGE_BYTES: f64 = 16.0 * 1e6;

/// GPU memory capacity per V100 (16 GB variant used in the paper's Fig. 7).
pub const V100_MEM_BYTES: f64 = 16.0 * GIB;
/// GPU memory capacity per A100 (p4d: 40 GB).
pub const A100_MEM_BYTES: f64 = 40.0 * GIB;
/// GPU memory capacity per A10 (24 GB).
pub const A10_MEM_BYTES: f64 = 24.0 * GIB;
/// GPU memory capacity per H800 (80 GB).
pub const H800_MEM_BYTES: f64 = 80.0 * GIB;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(GBITPS * 8.0, GBPS);
        assert_eq!(NIC_100G, 12.5e9);
        assert_eq!(CHUNK_SIZE, 2.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn link_speed_ordering_matches_hardware() {
        // NVLink beats PCIe, which beats a single NIC, on every testbed.
        assert!(NVLINK_V100_SINGLE > PCIE_GEN3_X16);
        assert!(PCIE_GEN3_X16 > NIC_100G * 0.9);
        assert!(NVLINK_A100_PORT > PCIE_GEN4_X16);
        assert!(NVLINK_H800_PORT > PCIE_GEN5_X16);
    }

    #[test]
    fn double_link_is_twice_single() {
        assert_eq!(NVLINK_V100_DOUBLE, 2.0 * NVLINK_V100_SINGLE);
    }
}
