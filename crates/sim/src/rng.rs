//! Seeded deterministic randomness.
//!
//! All stochastic inputs (trace arrivals, data-size jitter, baseline random
//! placement) draw from [`DetRng`], a thin wrapper over a SplitMix64 core.
//! We deliberately avoid `thread_rng`: reproducibility of every experiment is
//! a hard requirement, and a self-contained generator keeps behaviour stable
//! across `rand` versions.

/// A deterministic 64-bit generator (SplitMix64).
///
/// SplitMix64 passes BigCrush, is trivially seedable, and two instances with
/// the same seed generate identical streams on all platforms.
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
    /// Construction seed, kept so [`DetRng::split`] can derive streams that
    /// do not depend on how many values this generator has produced.
    seed: u64,
}

impl DetRng {
    /// Create a generator from a seed. Distinct seeds give independent
    /// streams for practical purposes.
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            seed,
        }
    }

    /// Derive an independent child generator (e.g. one per workflow).
    ///
    /// Consumes one value from this generator, so the child depends on how
    /// much the parent has already produced. For position-insensitive
    /// derivation (per-shard streams) use [`DetRng::split`].
    pub fn fork(&mut self, tag: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ tag.wrapping_mul(0xBF58_476D_1CE4_E5B9))
    }

    /// Derive an independent stream keyed only by `(construction seed,
    /// stream_id)`.
    ///
    /// Unlike [`DetRng::fork`], `split` does not advance this generator:
    /// the same `stream_id` yields the same stream no matter how many values
    /// were drawn in between and no matter the order streams are split in.
    /// This is the per-shard derivation the sharded engine relies on — a
    /// shard's randomness must not depend on how other shards were set up.
    pub fn split(&self, stream_id: u64) -> DetRng {
        // Two SplitMix64 finalisation rounds over (seed, stream_id):
        // consecutive stream ids land on decorrelated seeds.
        let mut z = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15)
            ^ stream_id.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        DetRng::new(z ^ (z >> 31))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is negligible for our bounds (≪ 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponentially distributed value with the given `mean` (> 0).
    ///
    /// Used for Poisson inter-arrival times in the trace generators.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Guard against ln(0).
        let u = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (single value; the pair's second half
    /// is discarded for simplicity).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = DetRng::new(9);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = DetRng::new(123);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut r = DetRng::new(321);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = DetRng::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_reproducible() {
        let a = DetRng::new(42);
        let b = DetRng::new(42);
        let mut s1 = a.split(7);
        let mut s2 = b.split(7);
        for _ in 0..100 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn split_is_order_and_position_insensitive() {
        // Splitting after draws, and splitting streams in any order, must
        // yield the same streams: split depends only on (seed, stream_id).
        let mut a = DetRng::new(99);
        let b = DetRng::new(99);
        for _ in 0..17 {
            a.next_u64(); // advance the parent
        }
        let mut a3 = a.split(3);
        let mut a1 = a.split(1);
        let mut b1 = b.split(1);
        let mut b3 = b.split(3);
        for _ in 0..64 {
            assert_eq!(a1.next_u64(), b1.next_u64());
            assert_eq!(a3.next_u64(), b3.next_u64());
        }
    }

    #[test]
    fn split_streams_are_independent() {
        let r = DetRng::new(5);
        let mut s1 = r.split(0);
        let mut s2 = r.split(1);
        let same = (0..64).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert_eq!(same, 0);
        // A split stream also differs from its parent's own output.
        let mut parent = DetRng::new(5);
        let mut child = DetRng::new(5).split(0);
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = DetRng::new(77);
        let items = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*r.choose(&items)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
