//! Conservative parallel simulation: many timelines, one virtual clock.
//!
//! The PR 6 engine runs one world on one timeline. At cluster scale (64–128
//! GPUs, millions of invocations) that single global event queue is the
//! bottleneck: every arrival, flow wakeup and stage completion across the
//! whole cluster funnels through one heap and one cache-hostile world.
//!
//! [`ShardedEngine`] instead runs `N` *shards* — each a full
//! [`Simulation`] owning its own typed-event timeline — and synchronises
//! them conservatively, YAWNS-style:
//!
//! 1. **Window.** Let `T` be the minimum next-event time across all shards
//!    and all undelivered cross-shard envelopes. Every shard may safely
//!    execute events with `t < T + L`, where `L` is the *lookahead*: the
//!    guaranteed minimum latency of any cross-shard interaction (derived
//!    from topology — a cross-group message rides at least one NIC hop, so
//!    `L ≥` NIC setup + propagation; see DESIGN.md §5.7).
//! 2. **Barrier.** At the window edge every shard drains its outbox of
//!    timestamped [`Envelope`]s. Because an envelope sent at `t_send ≥ T`
//!    is stamped `at ≥ t_send + L ≥ T + L`, it can never land inside the
//!    window just executed — no shard ever receives a message in its past.
//! 3. **Deliver.** Envelopes are sorted by `(at, src, seq)` — a total order
//!    fixed at send time — and applied to their destination shards before
//!    the next window opens. Thread arrival order never influences
//!    delivery order, which is what makes the engine deterministic: same
//!    seed ⇒ byte-identical results whether the shards run inline on one
//!    thread or spread over eight.
//!
//! `run(threads)` with `threads ≤ 1` executes the identical window
//! algorithm inline; with more threads, shards are partitioned over
//! persistent workers (`shard i → worker i mod threads`) coordinated with
//! two barriers per window. The window sequence itself depends only on
//! event timestamps, so the epoch structure — and therefore every
//! tie-breaking decision — is the same for every thread count.

use std::panic::{self, AssertUnwindSafe};
// grouter-lint: allow(no-shared-mut-across-shards): epoch-barrier plumbing for the threaded driver; simulation state never crosses shards outside envelopes
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
// grouter-lint: allow(no-shared-mut-across-shards): worker handoff slots, touched only at window edges under the barriers
use std::sync::{Barrier, Mutex};

use crate::engine::{EventWorld, Scheduler, Simulation};
use crate::time::{SimDuration, SimTime};

/// A timestamped cross-shard message.
///
/// `seq` is assigned by the *sending* world, monotonically per shard, so
/// `(at, src, seq)` is a total order over all envelopes of a run that is
/// fixed the moment a message is sent — the delivery order can never
/// depend on which worker thread happened to finish first.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Virtual delivery time; must be ≥ send time + the engine lookahead.
    pub at: SimTime,
    /// Sending shard index.
    pub src: u32,
    /// Destination shard index.
    pub dst: u32,
    /// Per-sender monotone sequence number (ties on `at` break by
    /// `(src, seq)`).
    pub seq: u64,
    pub msg: M,
}

/// A world that can participate in a sharded run.
///
/// Contract (checked with debug assertions in the engine):
/// * every envelope pushed by [`drain_outbox`](ShardWorld::drain_outbox)
///   satisfies `at ≥ now + lookahead` of the sending shard;
/// * [`apply_message`](ShardWorld::apply_message) schedules any resulting
///   events at `≥ env.at` (the scheduler clamp makes earlier impossible
///   anyway — the clock never runs backwards).
pub trait ShardWorld: EventWorld + Send
where
    Self::Event: Send,
{
    type Msg: Send + 'static;

    /// Move every envelope produced since the last call into `sink`.
    fn drain_outbox(&mut self, sink: &mut Vec<Envelope<Self::Msg>>);

    /// Apply one incoming envelope (typically: schedule a typed event at
    /// `env.at`).
    fn apply_message(&mut self, sched: &mut Scheduler<Self>, env: Envelope<Self::Msg>);
}

/// Counters reported by [`ShardedEngine::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Synchronisation windows executed.
    pub epochs: u64,
    /// Cross-shard envelopes delivered.
    pub messages: u64,
}

/// `N` independent simulations advanced in lockstep safe windows.
pub struct ShardedEngine<W: ShardWorld>
where
    W::Event: Send,
{
    sims: Vec<Simulation<W>>,
    lookahead: SimDuration,
    /// Envelopes produced in the last window, awaiting sorted delivery.
    pending: Vec<Envelope<W::Msg>>,
}

impl<W: ShardWorld> ShardedEngine<W>
where
    W::Event: Send,
{
    /// Build an engine over pre-seeded shard worlds. `lookahead` must be
    /// positive: a zero lookahead would admit zero-latency cross-shard
    /// interaction, and the safe window would never contain any event.
    pub fn new(worlds: Vec<W>, lookahead: SimDuration) -> Self {
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative sync needs a positive lookahead"
        );
        ShardedEngine {
            sims: worlds.into_iter().map(Simulation::new).collect(),
            lookahead,
            pending: Vec::new(),
        }
    }

    /// Build an engine over already-running simulations (worlds that were
    /// warmed up — events scheduled, state installed — before sharding).
    pub fn from_sims(sims: Vec<Simulation<W>>, lookahead: SimDuration) -> Self {
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative sync needs a positive lookahead"
        );
        ShardedEngine {
            sims,
            lookahead,
            pending: Vec::new(),
        }
    }

    /// The minimum cross-shard latency the window protocol relies on.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    pub fn shards(&self) -> usize {
        self.sims.len()
    }

    pub fn shard(&self, i: usize) -> &Simulation<W> {
        &self.sims[i]
    }

    pub fn shard_mut(&mut self, i: usize) -> &mut Simulation<W> {
        &mut self.sims[i]
    }

    pub fn sims(&self) -> &[Simulation<W>] {
        &self.sims
    }

    /// Run to global quiescence (no pending events, no undelivered
    /// envelopes) on `threads` worker threads. `threads ≤ 1` runs the same
    /// window algorithm inline. Returns window/message counters.
    pub fn run(&mut self, threads: usize) -> RunStats {
        if threads <= 1 || self.sims.len() <= 1 {
            self.run_inline()
        } else {
            self.run_threaded(threads.min(self.sims.len()))
        }
    }

    /// Sort pending envelopes into their fixed delivery order and compute
    /// the next window horizon, or `None` at global quiescence.
    fn next_horizon(&mut self, stats: &mut RunStats) -> Option<SimTime> {
        self.pending.sort_unstable_by_key(|e| (e.at, e.src, e.seq));
        let mut t = self.pending.first().map(|e| e.at);
        for sim in &self.sims {
            if let Some(n) = sim.sched.next_event_at() {
                t = Some(t.map_or(n, |t0| t0.min(n)));
            }
        }
        let t = t?;
        stats.epochs += 1;
        stats.messages += self.pending.len() as u64;
        Some(t.saturating_add(self.lookahead))
    }

    fn deliver(sim: &mut Simulation<W>, env: Envelope<W::Msg>) {
        let Simulation { world, sched } = sim;
        world.apply_message(sched, env);
    }

    fn run_inline(&mut self) -> RunStats {
        let mut stats = RunStats::default();
        while let Some(horizon) = self.next_horizon(&mut stats) {
            for env in std::mem::take(&mut self.pending) {
                Self::deliver(&mut self.sims[env.dst as usize], env);
            }
            for sim in &mut self.sims {
                sim.run_before(horizon);
                let before = self.pending.len();
                sim.world.drain_outbox(&mut self.pending);
                debug_assert!(
                    self.pending[before..].iter().all(|e| e.at >= horizon),
                    "cross-shard envelope stamped inside the safe window"
                );
            }
        }
        stats
    }

    fn run_threaded(&mut self, threads: usize) -> RunStats {
        const STOP: u64 = u64::MAX;
        let mut stats = RunStats::default();

        // Worker mailboxes. Main touches a slot only between the `done` and
        // `start` barriers; its worker only between `start` and `done` — the
        // mutexes are never contended, they just carry the data across the
        // barrier synchronisation.
        struct Io<W: ShardWorld>
        where
            W::Event: Send,
        {
            inbox: Vec<Envelope<W::Msg>>,
            outbox: Vec<Envelope<W::Msg>>,
            next: Option<SimTime>,
            sims: Vec<(usize, Simulation<W>)>,
        }

        let lookahead = self.lookahead;
        let mut per: Vec<Vec<(usize, Simulation<W>)>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, sim) in std::mem::take(&mut self.sims).into_iter().enumerate() {
            per[i % threads].push((i, sim));
        }
        // grouter-lint: allow(no-shared-mut-across-shards): one slot per worker, locked only at window edges; envelope order carries determinism
        let ios: Vec<Mutex<Io<W>>> = per
            .into_iter()
            .map(|sims| {
                // grouter-lint: allow(no-shared-mut-across-shards): see slot vector above
                Mutex::new(Io {
                    inbox: Vec::new(),
                    outbox: Vec::new(),
                    next: None,
                    sims,
                })
            })
            .collect();
        let start = Barrier::new(threads + 1);
        let done = Barrier::new(threads + 1);
        // Current window horizon in nanoseconds; `STOP` ends the run.
        // grouter-lint: allow(no-shared-mut-across-shards): window broadcast written by main between barriers, read by workers after
        let horizon = AtomicU64::new(0);
        // grouter-lint: allow(no-shared-mut-across-shards): sticky poison flag so one panicking shard aborts the scope cleanly
        let panicked = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for k in 0..threads {
                let (ios, start, done) = (&ios, &start, &done);
                let (horizon, panicked) = (&horizon, &panicked);
                scope.spawn(move || {
                    let mut mine = {
                        // grouter-lint: allow(no-panic-in-dataplane): lock poisoning is already a shard panic; propagating it is the orderly shutdown path
                        let mut io = ios[k].lock().unwrap();
                        std::mem::take(&mut io.sims)
                    };
                    // Initial handshake: report first next-event times so
                    // main can open the first window.
                    {
                        // grouter-lint: allow(no-panic-in-dataplane): lock poisoning is already a shard panic; propagating it is the orderly shutdown path
                        let mut io = ios[k].lock().unwrap();
                        io.next = mine
                            .iter()
                            .filter_map(|(_, s)| s.sched.next_event_at())
                            .min();
                    }
                    done.wait();
                    loop {
                        start.wait();
                        let h = horizon.load(Ordering::SeqCst);
                        if h == STOP {
                            // grouter-lint: allow(no-panic-in-dataplane): lock poisoning is already a shard panic; propagating it is the orderly shutdown path
                            ios[k].lock().unwrap().sims = mine;
                            return;
                        }
                        // A panicking shard must still reach the `done`
                        // barrier or main would hang; the flag re-raises the
                        // panic on the main thread.
                        let res = panic::catch_unwind(AssertUnwindSafe(|| {
                            let inbox = {
                                // grouter-lint: allow(no-panic-in-dataplane): lock poisoning is already a shard panic; propagating it is the orderly shutdown path
                                let mut io = ios[k].lock().unwrap();
                                std::mem::take(&mut io.inbox)
                            };
                            for env in inbox {
                                let (_, sim) = mine
                                    .iter_mut()
                                    .find(|(i, _)| *i == env.dst as usize)
                                    // grouter-lint: allow(no-panic-in-dataplane): routing is dst % threads by construction; a miss is engine corruption
                                    .expect("envelope routed to wrong worker");
                                Self::deliver(sim, env);
                            }
                            let mut outbox = Vec::new();
                            let mut next: Option<SimTime> = None;
                            for (_, sim) in mine.iter_mut() {
                                sim.run_before(SimTime(h));
                                let before = outbox.len();
                                sim.world.drain_outbox(&mut outbox);
                                debug_assert!(
                                    outbox[before..].iter().all(|e| e.at.as_nanos() >= h),
                                    "cross-shard envelope stamped inside the safe window"
                                );
                                if let Some(n) = sim.sched.next_event_at() {
                                    next = Some(next.map_or(n, |n0| n0.min(n)));
                                }
                            }
                            // grouter-lint: allow(no-panic-in-dataplane): lock poisoning is already a shard panic; propagating it is the orderly shutdown path
                            let mut io = ios[k].lock().unwrap();
                            io.outbox = outbox;
                            io.next = next;
                        }));
                        if res.is_err() {
                            panicked.store(true, Ordering::SeqCst);
                        }
                        done.wait();
                    }
                });
            }

            done.wait(); // initial handshake
            loop {
                // Same horizon computation as the inline path, over the
                // workers' reported minima plus undelivered envelopes.
                self.pending.sort_unstable_by_key(|e| (e.at, e.src, e.seq));
                let mut t = self.pending.first().map(|e| e.at);
                for io in &ios {
                    // grouter-lint: allow(no-panic-in-dataplane): lock poisoning is already a shard panic; propagating it is the orderly shutdown path
                    if let Some(n) = io.lock().unwrap().next {
                        t = Some(t.map_or(n, |t0| t0.min(n)));
                    }
                }
                let Some(t) = t else {
                    horizon.store(STOP, Ordering::SeqCst);
                    start.wait();
                    break;
                };
                stats.epochs += 1;
                stats.messages += self.pending.len() as u64;
                let h = t.saturating_add(lookahead);
                // Route envelopes in their sorted order; each worker's inbox
                // receives its shards' sub-sequence in delivery order.
                for env in self.pending.drain(..) {
                    let w = env.dst as usize % threads;
                    // grouter-lint: allow(no-panic-in-dataplane): lock poisoning is already a shard panic; propagating it is the orderly shutdown path
                    ios[w].lock().unwrap().inbox.push(env);
                }
                horizon.store(h.as_nanos(), Ordering::SeqCst);
                start.wait();
                done.wait();
                if panicked.load(Ordering::SeqCst) {
                    horizon.store(STOP, Ordering::SeqCst);
                    start.wait();
                    // grouter-lint: allow(no-panic-in-dataplane): re-raise a shard worker's panic after an orderly shutdown
                    panic!("sharded engine: shard worker panicked");
                }
                for io in &ios {
                    // grouter-lint: allow(no-panic-in-dataplane): lock poisoning is already a shard panic; propagating it is the orderly shutdown path
                    let mut io = io.lock().unwrap();
                    self.pending.append(&mut io.outbox);
                }
            }
        });

        let mut collected: Vec<(usize, Simulation<W>)> = ios
            .into_iter()
            // grouter-lint: allow(no-panic-in-dataplane): scope has joined every worker; the mutex cannot be poisoned or held
            .flat_map(|m| m.into_inner().unwrap().sims)
            .collect();
        collected.sort_unstable_by_key(|(i, _)| *i);
        self.sims = collected.into_iter().map(|(_, s)| s).collect();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: u64 = 1_000; // lookahead in ns

    /// Test world: shards pass tokens around a ring, logging every hop.
    struct Ring {
        id: u32,
        n: u32,
        log: Vec<(u64, u64, u32)>, // (time, token, hops_left)
        outbox: Vec<Envelope<Token>>,
        seq: u64,
    }

    #[derive(Clone, Debug)]
    struct Token {
        id: u64,
        hops: u32,
    }

    impl EventWorld for Ring {
        type Event = Token;
        fn dispatch(&mut self, s: &mut Scheduler<Self>, ev: Token) {
            self.log.push((s.now().as_nanos(), ev.id, ev.hops));
            if ev.hops > 0 {
                let dst = (self.id + 1) % self.n;
                self.outbox.push(Envelope {
                    at: s.now().saturating_add(SimDuration(L)),
                    src: self.id,
                    dst,
                    seq: self.seq,
                    msg: Token {
                        id: ev.id,
                        hops: ev.hops - 1,
                    },
                });
                self.seq += 1;
            }
        }
    }

    impl ShardWorld for Ring {
        type Msg = Token;
        fn drain_outbox(&mut self, sink: &mut Vec<Envelope<Token>>) {
            sink.append(&mut self.outbox);
        }
        fn apply_message(&mut self, sched: &mut Scheduler<Self>, env: Envelope<Token>) {
            sched.schedule_at(env.at, env.msg);
        }
    }

    fn ring(
        n: u32,
        tokens: u64,
        hops: u32,
        threads: usize,
    ) -> (Vec<Vec<(u64, u64, u32)>>, RunStats) {
        let worlds: Vec<Ring> = (0..n)
            .map(|id| Ring {
                id,
                n,
                log: Vec::new(),
                outbox: Vec::new(),
                seq: 0,
            })
            .collect();
        let mut eng = ShardedEngine::new(worlds, SimDuration(L));
        for tok in 0..tokens {
            // Stagger injections so shards start at unequal virtual times.
            let shard = (tok % n as u64) as usize;
            eng.shard_mut(shard)
                .sched
                .schedule_at(SimTime(tok * 37), Token { id: tok, hops });
        }
        let stats = eng.run(threads);
        (
            eng.sims().iter().map(|s| s.world.log.clone()).collect(),
            stats,
        )
    }

    #[test]
    fn tokens_complete_all_hops() {
        let (logs, stats) = ring(4, 8, 10, 1);
        let total: usize = logs.iter().map(Vec::len).sum();
        // Each token fires once at injection plus once per hop.
        assert_eq!(total, 8 * 11);
        assert!(stats.epochs > 0);
        assert_eq!(stats.messages, 8 * 10);
    }

    #[test]
    fn parallel_matches_inline_byte_for_byte() {
        let base = ring(5, 16, 23, 1);
        for threads in [2, 3, 5, 8] {
            assert_eq!(ring(5, 16, 23, threads), base, "threads={threads}");
        }
    }

    #[test]
    fn messages_never_arrive_in_a_shards_past() {
        // Per-shard logs must be in nondecreasing time order: a message
        // landing in the past would fire out of order.
        let (logs, _) = ring(3, 9, 40, 4);
        for log in logs {
            assert!(log.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    fn same_instant_envelopes_deliver_in_src_seq_order() {
        // Two shards send to shard 0 with identical delivery times; the
        // applied order must be (src, seq), not arrival luck. Shard worlds
        // log in dispatch order, so the log exposes delivery order.
        struct Sink {
            log: Vec<(u32, u64)>,
            outbox: Vec<Envelope<(u32, u64)>>,
        }
        impl EventWorld for Sink {
            type Event = (u32, u64);
            fn dispatch(&mut self, _s: &mut Scheduler<Self>, ev: (u32, u64)) {
                self.log.push(ev);
            }
        }
        impl ShardWorld for Sink {
            type Msg = (u32, u64);
            fn drain_outbox(&mut self, sink: &mut Vec<Envelope<(u32, u64)>>) {
                sink.append(&mut self.outbox);
            }
            fn apply_message(&mut self, sched: &mut Scheduler<Self>, env: Envelope<(u32, u64)>) {
                sched.schedule_at(env.at, env.msg);
            }
        }
        let run = |threads: usize| {
            let worlds: Vec<Sink> = (0..3)
                .map(|_| Sink {
                    log: Vec::new(),
                    outbox: Vec::new(),
                })
                .collect();
            let mut eng = ShardedEngine::new(worlds, SimDuration(L));
            // Kick shards 1 and 2; each sends two envelopes to shard 0, all
            // stamped with the same delivery instant.
            for src in [2u32, 1] {
                let sim = eng.shard_mut(src as usize);
                sim.sched
                    .schedule_boxed(SimTime(0), move |w: &mut Sink, s| {
                        for seq in 0..2 {
                            w.outbox.push(Envelope {
                                at: s.now().saturating_add(SimDuration(L)),
                                src,
                                dst: 0,
                                seq,
                                msg: (src, seq),
                            });
                        }
                    });
            }
            eng.run(threads);
            eng.shard(0).world.log.clone()
        };
        let expect = vec![(1, 0), (1, 1), (2, 0), (2, 1)];
        for threads in [1, 2, 3] {
            assert_eq!(run(threads), expect, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_is_rejected() {
        let _ = ShardedEngine::<Ring>::new(Vec::new(), SimDuration::ZERO);
    }
}
